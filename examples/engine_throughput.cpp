// Engine tour — many concurrent clients, one micro-batching engine:
//  1. train a NObLe Wi-Fi model on a synthetic campus,
//  2. wrap it in a noble::engine::Engine (bounded queue -> batcher ->
//     shared-nothing localizer replicas),
//  3. fire asynchronous submit()s from several client threads and read the
//     fixes back through std::future,
//  4. verify the engine answers are bit-identical to direct locate(),
//  5. print the telemetry surface: queue depth, batch-size distribution and
//     end-to-end latency percentiles.
//
// Run: ./example_engine_throughput
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "engine/engine.h"
#include "serve/wifi_localizer.h"

int main() {
  using namespace noble;
  using namespace noble::engine;

  std::printf("noble::engine tour: queue -> batcher -> replicas\n\n");

  // 1. Train (scaled by NOBLE_SCALE inside the experiment builder).
  core::WifiExperimentConfig config;
  config.total_samples = 3000;
  config.seed = 11;
  core::WifiExperiment experiment = core::make_uji_experiment(config);
  core::NobleWifiConfig model_config;
  model_config.quantize.tau = 3.0;
  model_config.quantize.coarse_l = 15.0;
  model_config.epochs = 10;
  core::NobleWifiModel model(model_config);
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);
  std::printf("trained: %zu APs -> %zu neighborhood classes\n", model.input_dim(),
              model.quantizer().num_fine_classes());

  // 2. The engine: 2 workers, each with its own deep-copied replica; up to
  // 16 requests coalesced per network pass; 200 us batching window; at most
  // 512 queued requests before submit() reports kQueueFull.
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200;
  cfg.queue_cap = 512;
  Engine engine(localizer, cfg);

  // 3. Concurrent clients submit every test scan and collect futures.
  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  std::printf("serving %zu scans from 4 client threads...\n\n", queries.size());

  std::vector<std::vector<std::pair<std::size_t, std::future<serve::Fix>>>>
      per_client(4);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < per_client.size(); ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < queries.size(); i += per_client.size()) {
        Submission s = engine.submit(queries[i]);
        while (s.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();  // explicit backpressure: retry later
          s = engine.submit(queries[i]);
        }
        if (s.accepted()) per_client[c].emplace_back(i, std::move(s.result));
      }
    });
  }
  for (auto& t : clients) t.join();

  // 4. Every engine answer must be bit-identical to a direct locate().
  std::size_t checked = 0, mismatched = 0;
  for (auto& batch : per_client) {
    for (auto& [i, future] : batch) {
      const serve::Fix engine_fix = future.get();
      const serve::Fix direct_fix = localizer.locate(queries[i]);
      ++checked;
      if (engine_fix.building != direct_fix.building ||
          engine_fix.floor != direct_fix.floor ||
          engine_fix.fine_class != direct_fix.fine_class ||
          engine_fix.position != direct_fix.position ||
          engine_fix.confidence != direct_fix.confidence) {
        ++mismatched;
      }
    }
  }
  std::printf("equivalence: %zu fixes checked, %zu mismatches%s\n", checked,
              mismatched, mismatched == 0 ? " (bit-identical to locate())" : "");

  // 5. Telemetry: what the batcher actually did.
  const EngineStats stats = engine.stats();
  std::printf("\ntelemetry:\n");
  std::printf("  submitted %llu, completed %llu, rejected %llu, queue depth %zu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected), stats.queue_depth);
  std::printf("  micro-batches: %llu, size mean %.1f, largest %.0f (cap %zu)\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batch_size.mean(), stats.batch_size.max_recorded(),
              cfg.max_batch);
  std::printf("  end-to-end latency: p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
              stats.latency_p50_us, stats.latency_p95_us, stats.latency_p99_us);

  return mismatched == 0 && checked == queries.size() ? 0 : 1;
}
