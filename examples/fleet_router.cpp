// Fleet tour — one campus, many buildings, one router:
//  1. train a NObLe Wi-Fi model on a synthetic campus,
//  2. stand up a noble::fleet::Router with two shards: "bldg-A" on the
//     dense float32 backend with the fingerprint cache enabled, "bldg-B"
//     on the int8 quantized backend with two replica engines,
//  3. route every test scan to both shards,
//  4. gate: every "bldg-A" fix must be bit-identical to direct locate();
//     every "bldg-B" fix must be bit-identical to direct quantized
//     inference (the per-backend equivalence contract),
//  5. resubmit the "bldg-A" scans to show the cache fast path, then print
//     the merged FleetStats surface.
//
// Exits non-zero on any mismatch, so the smoke tier doubles as an
// end-to-end router-vs-direct equivalence check.
//
// Run: ./example_fleet_router
#include <cstdio>
#include <span>
#include <vector>

#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "engine/backend.h"
#include "fleet/router.h"
#include "serve/wifi_localizer.h"

int main() {
  using namespace noble;

  std::printf("noble::fleet tour: shards -> engines -> backend replicas\n\n");

  // 1. Train (scaled by NOBLE_SCALE inside the experiment builder).
  core::WifiExperimentConfig config;
  config.total_samples = 3000;
  config.seed = 12;
  core::WifiExperiment experiment = core::make_uji_experiment(config);
  core::NobleWifiConfig model_config;
  model_config.quantize.tau = 3.0;
  model_config.quantize.coarse_l = 15.0;
  model_config.epochs = 10;
  core::NobleWifiModel model(model_config);
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);
  std::printf("trained: %zu APs -> %zu neighborhood classes\n\n", model.input_dim(),
              model.quantizer().num_fine_classes());

  // 2. The router: two shards over the same artifact with different serving
  // profiles (a real fleet would load one artifact per building).
  fleet::Router router;
  fleet::ShardConfig shard_a;
  shard_a.key = "bldg-A";
  shard_a.engine.workers = 2;
  shard_a.engine.max_batch = 16;
  shard_a.engine.cache_capacity = 1024;  // repeated scans answered at admission
  router.add_shard(shard_a, localizer);

  fleet::ShardConfig shard_b;
  shard_b.key = "bldg-B";
  shard_b.engines = 2;  // kQueueFull spills to the sibling replica engine
  shard_b.engine.workers = 1;
  shard_b.engine.max_batch = 16;
  shard_b.engine.backend = engine::BackendKind::kQuantized;
  router.add_shard(shard_b, localizer);

  // Per-backend references for the equivalence gate.
  const engine::QuantizedBackend quantized_reference(localizer);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  std::printf("routing %zu scans to 2 shards (dense+cache / quantized x2)...\n",
              queries.size());

  // 3 + 4. Route everything, gate against direct inference per shard.
  std::size_t checked = 0, mismatched = 0;
  auto gate = [&](const char* key, const serve::RssiVector& q,
                  const serve::Fix& expected) {
    engine::Submission s = router.submit(key, q);
    while (s.status == engine::SubmitStatus::kQueueFull) {
      s = router.submit(key, q);
    }
    if (!s.accepted()) {
      ++mismatched;
      return;
    }
    const serve::Fix fix = s.result.get();
    ++checked;
    if (!(fix == expected)) ++mismatched;
  };
  for (const auto& q : queries) {
    gate("bldg-A", q, localizer.locate(q));
    gate("bldg-B", q,
         quantized_reference.locate_batch(std::span(&q, 1)).front());
  }
  std::printf("equivalence: %zu fixes checked, %zu mismatches%s\n", checked,
              mismatched,
              mismatched == 0 ? " (routed == direct, per backend)" : "");

  // 5. Cache fast path: the same scans again — now resident at admission.
  for (const auto& q : queries) gate("bldg-A", q, localizer.locate(q));

  const fleet::FleetStats stats = router.stats();
  std::printf("\nfleet telemetry (%zu shards, %zu engines):\n", stats.num_shards,
              stats.num_engines);
  for (const auto& [key, shard_stats] : stats.shards) {
    std::printf("  %-8s completed %6llu, batches %5llu, cache %llu/%llu hit/miss, "
                "p50 %7.0f us, p99 %7.0f us\n",
                key.c_str(), static_cast<unsigned long long>(shard_stats.completed),
                static_cast<unsigned long long>(shard_stats.batches),
                static_cast<unsigned long long>(shard_stats.cache_hits),
                static_cast<unsigned long long>(shard_stats.cache_misses),
                shard_stats.latency_p50_us, shard_stats.latency_p99_us);
  }
  std::printf("  %-8s completed %6llu (merged p50 %7.0f us, p95 %7.0f us, "
              "p99 %7.0f us)\n",
              "total", static_cast<unsigned long long>(stats.total.completed),
              stats.total.latency_p50_us, stats.total.latency_p95_us,
              stats.total.latency_p99_us);

  const bool cache_worked = stats.shards.at("bldg-A").cache_hits > 0;
  std::printf("cache fast path: %llu admission hits on the repeat pass%s\n",
              static_cast<unsigned long long>(stats.shards.at("bldg-A").cache_hits),
              cache_worked ? "" : " (expected > 0!)");

  const bool all_checked = checked == 3 * queries.size();
  return mismatched == 0 && all_checked && cache_worked ? 0 : 1;
}
