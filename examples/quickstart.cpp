// Quickstart — the 60-second tour of the NObLe public API:
//  1. build a synthetic indoor world and radio environment,
//  2. collect a fingerprint dataset,
//  3. train a NObLe localizer,
//  4. localize and report position error.
//
// Run: ./example_quickstart
#include <cstdio>

#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_wifi.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  std::printf("NObLe quickstart: train a structure-aware Wi-Fi localizer\n\n");

  // 1-2. A small campus experiment: three buildings, corridors, access
  // points, and an offline fingerprint collection walk.
  WifiExperimentConfig config;
  config.total_samples = 3000;
  config.seed = 42;
  WifiExperiment experiment = make_uji_experiment(config);
  std::printf("collected %zu fingerprints over %zu APs (train %zu / val %zu / "
              "test %zu)\n",
              experiment.split.train.size() + experiment.split.val.size() +
                  experiment.split.test.size(),
              experiment.wifi->num_aps(), experiment.split.train.size(),
              experiment.split.val.size(), experiment.split.test.size());

  // 3. NObLe: quantize the output space into neighborhood classes and train
  // the multi-label classifier (building | floor | fine class | coarse
  // class) with binary cross-entropy.
  NobleWifiConfig model_config;
  model_config.quantize.tau = 3.0;      // fine grid side (m)
  model_config.quantize.coarse_l = 15.0;  // coarse grid side (m)
  model_config.epochs = 15;
  NobleWifiModel model(model_config);
  model.fit(experiment.split.train, &experiment.split.val);
  std::printf("trained: %zu neighborhood classes, %zu coarse classes\n",
              model.quantizer().num_fine_classes(),
              model.quantizer().num_coarse_classes());

  // 4. Localize the test set: predicted class -> cell center coordinates.
  const auto predictions = model.predict(experiment.split.test);
  const WifiReport report = evaluate_wifi(predictions, experiment.split.test,
                                          model.quantizer(), &experiment.world.plan);
  std::printf("\nresults on %zu test fingerprints:\n", predictions.size());
  std::printf("  building accuracy : %.2f %%\n", 100.0 * report.building_accuracy);
  std::printf("  floor accuracy    : %.2f %%\n", 100.0 * report.floor_accuracy);
  std::printf("  mean position err : %.2f m\n", report.errors.mean);
  std::printf("  median position err: %.2f m\n", report.errors.median);
  std::printf("  predictions on-map: %.1f %%\n", 100.0 * report.structure_score);

  // Bonus: localize one fingerprint "live".
  data::WifiDataset one;
  one.num_aps = experiment.split.test.num_aps;
  one.samples = {experiment.split.test.samples.front()};
  const auto p = model.predict(one).front();
  std::printf("\nfirst test sample -> building %d, floor %d, position (%.1f, %.1f); "
              "truth (%.1f, %.1f)\n",
              p.building, p.floor, p.position.x, p.position.y,
              one.samples[0].position.x, one.samples[0].position.y);
  return 0;
}
