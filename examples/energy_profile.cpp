// Energy profiling — the §IV-C/§V-D deployment analysis for a model you
// trained yourself: count MACs, apply a device profile, and compare against
// continuous GPS fixes.
//
// Run: ./example_energy_profile
#include <cstdio>

#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "sim/energy.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  std::printf("NObLe on-device energy profile (Jetson TX2 model)\n\n");

  WifiExperimentConfig config;
  config.total_samples = 2000;
  WifiExperiment exp = make_uji_experiment(config);
  NobleWifiConfig ncfg;
  ncfg.epochs = 8;
  NobleWifiModel model(ncfg);
  model.fit(exp.split.train);

  const sim::EnergyModel energy(sim::jetson_tx2_profile());
  const auto cost = energy.inference(model.macs_per_inference(), model.parameter_bytes());
  std::printf("model: %zu MACs, %zu KiB parameters\n", model.macs_per_inference(),
              model.parameter_bytes() / 1024);
  std::printf("per inference: %.5f J, %.2f ms\n", cost.energy_j, cost.latency_s * 1e3);

  // Continuous localization at 1 Hz for an hour: NObLe vs GPS.
  const double queries_per_hour = 3600.0;
  const double noble_hourly = cost.energy_j * queries_per_hour;
  const double gps_hourly = energy.gps_fix() * queries_per_hour;
  std::printf("\n1 Hz localization for one hour:\n");
  std::printf("  NObLe inference : %8.1f J\n", noble_hourly);
  std::printf("  GPS fixes       : %8.1f J\n", gps_hourly);
  std::printf("  ratio           : %8.1f x (paper reports ~27x including IMU "
              "sensing for tracking)\n",
              gps_hourly / noble_hourly);

  // Swap in a custom device profile (public API usage).
  sim::DeviceProfile low_power{
      .name = "microcontroller",
      .joules_per_mac = 50e-12,
      .joules_per_byte = 2e-9,
      .joules_overhead = 1e-4,
      .latency_overhead_s = 5e-4,
      .macs_per_second = 5e7,
  };
  const sim::EnergyModel mcu(low_power);
  const auto mcu_cost = mcu.inference(model.macs_per_inference(), model.parameter_bytes());
  std::printf("\nsame model on a '%s' profile: %.5f J, %.1f ms\n",
              low_power.name.c_str(), mcu_cost.energy_j, mcu_cost.latency_s * 1e3);
  return 0;
}
