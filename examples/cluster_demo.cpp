// Cluster tour — one fleet, two nodes, one coordinator (all in-process):
//  1. train two NObLe Wi-Fi models on the same campus (v1 to deploy, v2 as
//     the retrained artifact a rollout will ship),
//  2. stand up a noble::cluster::Coordinator and two NodeAgents, each
//     wrapping its own fleet::Router serving "bldg-A" on v1 — node A with a
//     one-slot bulk lane, node B with a deep queue,
//  3. flood node A with bulk scans: the overflow spills cross-node to B,
//     and every spilled fix must be bit-identical to direct locate(),
//  4. drop the v2 artifact into the watched model directory and drive one
//     watcher pass: the coordinator canaries one node, verifies probe
//     bit-identity, then commits the fleet — both routers must converge
//     onto v2's digest,
//  5. stop node B: its heartbeats cease, the coordinator marks it dead,
//     and node A's spill stops targeting it.
//
// Exits non-zero on any gate miss, so the smoke tier doubles as an
// end-to-end cluster check. The same topology runs across real processes —
// see bench_cluster (two-process smoke) and the README's two-terminal
// quickstart with the NOBLE_CLUSTER_* knobs.
//
// Run: ./example_cluster_demo
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "serve/artifact.h"
#include "serve/wifi_localizer.h"

namespace {

template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 10'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

bool sees_alive_peer(const noble::cluster::NodeAgent& agent, const std::string& name) {
  for (const auto& peer : agent.peers()) {
    if (peer.name == name && peer.alive && !peer.shards.empty()) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace noble;

  std::printf("noble::cluster tour: heartbeats -> spill -> staged rollout\n\n");

  // 1. Train v1 and v2 (scaled by NOBLE_SCALE inside the experiment builder).
  core::WifiExperimentConfig config;
  config.total_samples = 1200;
  config.seed = 917;
  core::WifiExperiment experiment = core::make_uji_experiment(config);
  auto model_config = [](std::uint64_t seed) {
    core::NobleWifiConfig cfg;
    cfg.quantize.tau = 6.0;
    cfg.quantize.coarse_l = 24.0;
    cfg.epochs = 4;
    cfg.hidden_units = 24;
    cfg.seed = seed;
    return cfg;
  };
  core::NobleWifiModel model_v1(model_config(31));
  model_v1.fit(experiment.split.train);
  core::NobleWifiModel model_v2(model_config(32));
  model_v2.fit(experiment.split.train);
  const serve::WifiLocalizer wifi_v1 = serve::WifiLocalizer::from_model(model_v1);
  const serve::WifiLocalizer wifi_v2 = serve::WifiLocalizer::from_model(model_v2);
  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.size() < 4) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }
  std::printf("trained: v1 digest %016llx, v2 digest %016llx\n\n",
              static_cast<unsigned long long>(wifi_v1.artifact_digest()),
              static_cast<unsigned long long>(wifi_v2.artifact_digest()));

  // 2. Coordinator + two nodes. poll_ms = 0: the tour drives the watcher
  // pass itself so each phase is deterministic.
  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "noble_cluster_demo").string();
  std::filesystem::create_directories(model_dir);
  cluster::CoordinatorConfig coord_cfg;
  coord_cfg.dead_after_ms = 400;
  coord_cfg.poll_ms = 0;
  coord_cfg.model_dir = model_dir;
  cluster::Coordinator coordinator(coord_cfg);
  std::vector<serve::RssiVector> probes(queries.begin(), queries.begin() + 4);
  coordinator.set_probe_queries("bldg-A", probes);
  if (!coordinator.start()) {
    std::printf("FAIL: cannot start the coordinator\n");
    return 1;
  }

  auto make_node = [&](const char* name, std::size_t queue_cap,
                       std::size_t bulk_cap, fleet::Router& router) {
    fleet::ShardConfig shard;
    shard.key = "bldg-A";
    shard.engine.workers = 1;
    shard.engine.max_batch = 8;
    shard.engine.max_wait_us = 100;
    shard.engine.queue_cap = queue_cap;
    shard.engine.bulk_cap = bulk_cap;
    router.add_shard(shard, wifi_v1);
    cluster::NodeConfig cfg;
    cfg.name = name;
    cfg.coordinator_port = coordinator.port();
    cfg.heartbeat_ms = 50;
    return std::make_unique<cluster::NodeAgent>(router, cfg);
  };
  fleet::Router router_a, router_b;
  auto node_a = make_node("node-a", /*queue_cap=*/4, /*bulk_cap=*/1, router_a);
  auto node_b = make_node("node-b", /*queue_cap=*/512, /*bulk_cap=*/0, router_b);
  if (!node_a->start() || !node_b->start()) {
    std::printf("FAIL: cannot start the node agents\n");
    return 1;
  }
  if (!wait_until([&] {
        return sees_alive_peer(*node_a, "node-b") && sees_alive_peer(*node_b, "node-a");
      })) {
    std::printf("FAIL: the nodes never saw each other alive\n");
    return 1;
  }
  std::printf("fleet up: 2 nodes, heartbeats at 50 ms, both serving v1\n\n");

  // 3. Bulk flood through node A: the one-slot bulk lane overflows and the
  // excess spills to node B. Bit-identity is the gate.
  engine::SubmitOptions bulk;
  bulk.request_class = engine::RequestClass::kBulk;
  std::vector<std::pair<std::size_t, std::future<serve::Fix>>> accepted;
  for (std::size_t round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      engine::Submission sub = node_a->submit("bldg-A", queries[i], bulk);
      if (sub.accepted()) accepted.emplace_back(i, std::move(sub.result));
    }
  }
  std::size_t identical = 0, mismatched = 0, shed = 0;
  for (auto& [qi, result] : accepted) {
    try {
      if (result.get() == wifi_v1.locate(queries[qi])) {
        ++identical;
      } else {
        ++mismatched;
      }
    } catch (const std::exception&) {
      ++shed;  // a clean cross-node verdict, not a wrong fix
    }
  }
  const cluster::NodeCounters spill = node_a->counters();
  std::printf("spill: %llu forwarded to node-b, %zu fixes identical, %zu mismatched, "
              "%zu shed\n\n",
              static_cast<unsigned long long>(spill.spill_forwarded), identical,
              mismatched, shed);
  if (spill.spill_forwarded == 0 || identical == 0 || mismatched != 0) {
    std::printf("FAIL: cross-node spill gate\n");
    return 1;
  }

  // 4. Staged rollout: write the retrained artifact and drive one watcher
  // pass — canary, probe, commit.
  if (!serve::save_model(model_v2, model_dir + "/bldg-A.noble")) {
    std::printf("FAIL: cannot write the v2 artifact\n");
    return 1;
  }
  coordinator.scan_model_dir();
  for (const std::string& line : coordinator.rollout_log())
    std::printf("  %s\n", line.c_str());
  const cluster::CoordinatorCounters counters = coordinator.counters();
  const bool converged = wait_until([&] {
    std::size_t on_v2 = 0;
    for (const auto& member : coordinator.members()) {
      for (const auto& shard : member.shards) {
        if (shard.digest == wifi_v2.artifact_digest()) ++on_v2;
      }
    }
    return on_v2 == 2;
  });
  bool rollout_served_v2 = true;
  for (const auto& q : probes) {
    engine::Submission sub = node_b->submit("bldg-A", q, {});
    rollout_served_v2 = rollout_served_v2 && sub.accepted() &&
                        sub.result.get() == wifi_v2.locate(q);
  }
  std::printf("rollout: committed %llu, probes matched %llu, fleet on v2 %s\n\n",
              static_cast<unsigned long long>(counters.rollouts_committed),
              static_cast<unsigned long long>(counters.probes_matched),
              converged && rollout_served_v2 ? "yes" : "NO");
  if (counters.rollouts_committed != 1 || counters.probes_mismatched != 0 ||
      !converged || !rollout_served_v2) {
    std::printf("FAIL: staged rollout gate\n");
    return 1;
  }

  // 5. Death: stop node B; the coordinator's next liveness verdict marks it
  // dead and node A's spill has no target left.
  node_b->stop();
  const bool marked_dead = wait_until([&] {
    if (sees_alive_peer(*node_a, "node-b")) return false;
    for (const auto& member : coordinator.members()) {
      if (member.name == "node-b") return !member.alive;
    }
    return false;
  });
  const std::uint64_t forwarded_before = node_a->counters().spill_forwarded;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    engine::Submission sub = node_a->submit("bldg-A", queries[i % queries.size()], bulk);
    if (sub.accepted()) {
      (void)sub.result;  // settles on drain; the gate is the verdict mix below
    } else {
      ++rejected;
    }
  }
  const bool spill_stopped = node_a->counters().spill_forwarded == forwarded_before;
  std::printf("death: node-b marked dead %s; post-death flood: %zu explicit "
              "kQueueFull, spill delta 0 %s\n",
              marked_dead ? "yes" : "NO", rejected, spill_stopped ? "yes" : "NO");
  node_a->stop();
  coordinator.stop();
  std::filesystem::remove_all(model_dir);
  if (!marked_dead || !spill_stopped || rejected == 0) {
    std::printf("FAIL: death-detection gate\n");
    return 1;
  }

  std::printf("\nOK: spill, rollout and death gates all held\n");
  return 0;
}
