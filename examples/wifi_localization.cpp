// Wi-Fi localization walkthrough — the full §IV pipeline on the UJI-like
// campus, comparing NObLe against every baseline the paper evaluates, and
// saving the trained model to disk for on-device deployment.
//
// Run: ./example_wifi_localization
#include <cstdio>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "nn/serialize.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  std::printf("NObLe Wi-Fi localization: full comparison pipeline (§IV)\n\n");

  WifiExperimentConfig config;
  config.total_samples = 4000;
  WifiExperiment exp = make_uji_experiment(config);

  // --- NObLe ---------------------------------------------------------------
  NobleWifiConfig ncfg;
  ncfg.epochs = 20;
  NobleWifiModel noble(ncfg);
  noble.fit(exp.split.train, &exp.split.val);
  const auto noble_report = evaluate_wifi(noble.predict(exp.split.test), exp.split.test,
                                          noble.quantizer(), &exp.world.plan);

  // --- Deep Regression (+ map projection) ----------------------------------
  RegressionConfig rcfg;
  rcfg.epochs = 20;
  DeepRegressionWifi regression(rcfg);
  regression.fit(exp.split.train, &exp.split.val);
  const auto reg_report = evaluate_positions(regression.predict(exp.split.test),
                                             exp.split.test, &exp.world.plan);

  RegressionProjectionWifi projection(rcfg, exp.world.plan);
  projection.fit(exp.split.train, &exp.split.val);
  const auto proj_report = evaluate_positions(projection.predict(exp.split.test),
                                              exp.split.test, &exp.world.plan);

  // --- Classical fingerprint matching --------------------------------------
  KnnFingerprintWifi knn(5);
  knn.fit(exp.split.train);
  std::vector<int> knn_buildings, knn_floors;
  const auto knn_report = evaluate_positions(
      knn.predict(exp.split.test, &knn_buildings, &knn_floors), exp.split.test,
      &exp.world.plan);

  std::printf("%-26s %10s %10s %10s\n", "model", "mean (m)", "median (m)", "on-map %");
  std::printf("%-26s %10.2f %10.2f %10.1f\n", "NObLe", noble_report.errors.mean,
              noble_report.errors.median, 100.0 * noble_report.structure_score);
  std::printf("%-26s %10.2f %10.2f %10.1f\n", "Deep Regression",
              reg_report.errors.mean, reg_report.errors.median,
              100.0 * reg_report.structure_score);
  std::printf("%-26s %10.2f %10.2f %10.1f\n", "Regression Projection",
              proj_report.errors.mean, proj_report.errors.median,
              100.0 * proj_report.structure_score);
  std::printf("%-26s %10.2f %10.2f %10.1f\n", "Weighted kNN",
              knn_report.errors.mean, knn_report.errors.median,
              100.0 * knn_report.structure_score);

  // --- Deployment: persist the trained network -----------------------------
  const std::string path = "noble_wifi_model.bin";
  if (nn::save_weights(noble.network(), path)) {
    std::printf("\nsaved trained weights to %s (%zu parameters, %zu KiB)\n",
                path.c_str(), noble.network().parameter_count(),
                noble.parameter_bytes() / 1024);
  }
  std::printf("MACs per inference: %zu (feeds the sim::EnergyModel; see "
              "example_energy_profile)\n",
              noble.macs_per_inference());
  return 0;
}
