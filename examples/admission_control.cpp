// Admission-control tour — request classes, deadlines, and fleet-wide
// load shedding:
//  1. train a NObLe Wi-Fi model on a synthetic campus,
//  2. stand up one engine with reserved interactive headroom
//     (bulk_cap < queue_cap) and flood it with bulk re-localization
//     traffic: every interleaved interactive fix must still be admitted
//     (the reservation is a guarantee, not a heuristic), while bulk sheds
//     with an explicit kQueueFull,
//  3. deadlines: a submission whose deadline already passed is refused
//     with kExpired before costing anything; a generous deadline serves
//     normally and bit-identically,
//  4. a two-replica shard behind the fleet router: when the primary
//     engine fills up, bulk spills to the replica with the shallowest
//     queue — both replicas end up serving, and every served fix stays
//     bit-identical to direct locate().
//
// Exits non-zero if any gate fails, so the smoke tier doubles as an
// end-to-end admission-control check.
//
// Run: ./example_admission_control
#include <cstdio>
#include <future>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "engine/engine.h"
#include "fleet/router.h"
#include "serve/wifi_localizer.h"

namespace {

bool same_fix(const noble::serve::Fix& a, const noble::serve::Fix& b) {
  return a == b;  // serve::Fix equality IS the bit-identity contract
}

}  // namespace

int main() {
  using namespace noble;

  std::printf("noble::engine admission tour: classes, deadlines, shedding\n\n");

  // 1. Train (scaled by NOBLE_SCALE inside the experiment builder).
  core::WifiExperimentConfig config;
  config.total_samples = 3000;
  config.seed = 17;
  core::WifiExperiment experiment = core::make_uji_experiment(config);
  core::NobleWifiConfig model_config;
  model_config.quantize.tau = 3.0;
  model_config.quantize.coarse_l = 15.0;
  model_config.epochs = 10;
  core::NobleWifiModel model(model_config);
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.size() < 16) {
    std::printf("not enough test queries at this scale; nothing to do\n");
    return 1;
  }

  std::size_t failures = 0;

  // 2. Reserved interactive headroom under a bulk flood. queue_cap 8 with
  // bulk_cap 2 leaves 6 slots bulk can never take; we keep at most one
  // interactive fix in flight, so its admission is guaranteed.
  {
    engine::EngineConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 8;
    cfg.max_wait_us = 2000;  // hold batches open so the flood piles up
    cfg.queue_cap = 8;
    cfg.bulk_cap = 2;
    engine::Engine engine(localizer, cfg);

    std::size_t bulk_ok = 0, bulk_shed = 0, interactive_ok = 0;
    std::vector<std::pair<std::size_t, std::future<serve::Fix>>> bulk_fixes;
    for (std::size_t round = 0; round < 8; ++round) {
      for (std::size_t b = 0; b < 8; ++b) {
        const std::size_t q = (round * 8 + b) % queries.size();
        engine::Submission s =
            engine.submit(queries[q], engine::SubmitOptions::bulk());
        if (s.accepted()) {
          ++bulk_ok;
          bulk_fixes.emplace_back(q, std::move(s.result));
        } else {
          ++bulk_shed;
        }
      }
      const std::size_t q = round % queries.size();
      engine::Submission fix = engine.submit(queries[q]);  // interactive
      if (fix.accepted() && same_fix(fix.result.get(), localizer.locate(queries[q]))) {
        ++interactive_ok;
      } else {
        ++failures;
      }
    }
    for (auto& [q, result] : bulk_fixes) {
      if (!same_fix(result.get(), localizer.locate(queries[q]))) ++failures;
    }
    const engine::EngineStats stats = engine.stats();
    std::printf("flood: %zu/8 interactive served under a bulk flood "
                "(%zu bulk ok, %zu shed; engine says %llu/%llu)\n",
                interactive_ok, bulk_ok, bulk_shed,
                static_cast<unsigned long long>(stats.bulk.accepted),
                static_cast<unsigned long long>(stats.bulk.rejected));
    if (interactive_ok != 8) ++failures;
    if (bulk_shed == 0) ++failures;  // a 2-slot bulk cap must shed a tight flood
  }

  // 3. Deadlines: dead-on-arrival is an explicit verdict, a live deadline
  // serves bit-identically.
  {
    engine::Engine engine(localizer);
    engine::SubmitOptions late = engine::SubmitOptions::bulk();
    late.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    const engine::Submission expired = engine.submit(queries[0], late);
    engine::Submission fresh = engine.submit(
        queries[0], engine::SubmitOptions::interactive().expires_in_us(5'000'000));
    const bool expired_ok = expired.status == engine::SubmitStatus::kExpired;
    const bool fresh_ok =
        fresh.accepted() && same_fix(fresh.result.get(), localizer.locate(queries[0]));
    std::printf("deadlines: past deadline -> %s, generous deadline -> %s\n",
                expired_ok ? "kExpired (never queued)" : "WRONG STATUS",
                fresh_ok ? "served, bit-identical" : "MISMATCH");
    if (!expired_ok || !fresh_ok) ++failures;
    const engine::EngineStats stats = engine.stats();
    if (stats.expired != 1 || stats.bulk.expired != 1) ++failures;
  }

  // 4. Fleet spill: two tiny replicas of one artifact; a tight bulk flood
  // fills the primary, and the router spills to the shallower queue.
  {
    fleet::Router router;
    fleet::ShardConfig shard;
    shard.key = "bldg-A";
    shard.engines = 2;
    shard.engine.workers = 1;
    shard.engine.max_batch = 8;
    shard.engine.max_wait_us = 2000;
    shard.engine.queue_cap = 2;
    router.add_shard(shard, localizer);

    std::size_t ok = 0, shed = 0;
    std::vector<std::pair<std::size_t, std::future<serve::Fix>>> fixes;
    for (std::size_t r = 0; r < 128; ++r) {
      const std::size_t q = r % queries.size();
      engine::Submission s =
          router.submit("bldg-A", queries[q], engine::SubmitOptions::bulk());
      if (s.accepted()) {
        ++ok;
        fixes.emplace_back(q, std::move(s.result));
      } else {
        ++shed;
      }
    }
    for (auto& [q, result] : fixes) {
      if (!same_fix(result.get(), localizer.locate(queries[q]))) ++failures;
    }
    const auto engines = router.shard_engine_stats("bldg-A");
    const bool both_served = engines.size() == 2 &&
                             engines[0].bulk.accepted > 0 &&
                             engines[1].bulk.accepted > 0;
    std::printf("spill: %zu served / %zu shed across replicas "
                "(%llu + %llu per engine)%s\n",
                ok, shed,
                static_cast<unsigned long long>(engines[0].bulk.accepted),
                static_cast<unsigned long long>(engines[1].bulk.accepted),
                both_served ? " — queue-depth spill engaged" : " (expected both!)");
    if (!both_served) ++failures;
  }

  std::printf("\n%s\n", failures == 0
                            ? "admission control holds: reservations, deadlines "
                              "and spill all behaved — and every served fix "
                              "stayed bit-identical."
                            : "ADMISSION TOUR FAILED");
  return failures == 0 ? 0 : 1;
}
