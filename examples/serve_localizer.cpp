// Serve tour — train once, ship one artifact, localize single queries:
//  1. train a NObLe Wi-Fi model on a synthetic campus,
//  2. save the complete deployable state to one artifact file,
//  3. reload it into an immutable WifiLocalizer (no training data needed),
//  4. serve raw RSSI scans through the const, thread-safe locate(),
//  5. bonus: stream an IMU walk through a TrackingSession, one segment at
//     a time — the paper's §V on-device usage.
//
// Run: ./example_serve_localizer
#include <cstdio>
#include <filesystem>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "serve/artifact.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

int main() {
  using namespace noble;
  using namespace noble::core;
  using namespace noble::serve;

  std::printf("noble::serve tour: artifact -> localizer -> single queries\n\n");

  // 1. Train (the only step that ever sees datasets).
  WifiExperimentConfig config;
  config.total_samples = 3000;
  config.seed = 7;
  WifiExperiment experiment = make_uji_experiment(config);
  NobleWifiConfig model_config;
  model_config.quantize.tau = 3.0;
  model_config.quantize.coarse_l = 15.0;
  model_config.epochs = 12;
  NobleWifiModel model(model_config);
  model.fit(experiment.split.train, &experiment.split.val);
  std::printf("trained: %zu APs -> %zu neighborhood classes\n", model.input_dim(),
              model.quantizer().num_fine_classes());

  // 2. One artifact file carries config + quantizer + normalization + weights.
  const std::string artifact =
      (std::filesystem::temp_directory_path() / "noble_wifi_model.nbl").string();
  if (!save_model(model, artifact)) {
    std::printf("failed to write %s\n", artifact.c_str());
    return 1;
  }
  std::printf("saved artifact: %s (%ju bytes, kind '%s')\n", artifact.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(artifact)),
              artifact_kind(artifact).value_or("?").c_str());

  // 3. Reload on the "device": just the artifact, no experiment, no dataset.
  const auto localizer = WifiLocalizer::load(artifact);
  if (!localizer.has_value()) {
    std::printf("failed to load artifact\n");
    return 1;
  }

  // 4. Serve raw scans. locate() is const — share the localizer across
  // request threads freely.
  std::printf("\nserving 5 raw scans:\n");
  for (std::size_t i = 0; i < 5 && i < experiment.split.test.size(); ++i) {
    const auto& sample = experiment.split.test.samples[i];
    const Fix fix = localizer->locate(sample.rssi);
    std::printf("  scan %zu -> building %d floor %d cell %3d at (%6.1f, %6.1f)"
                " conf %.2f | truth (%6.1f, %6.1f)\n",
                i, fix.building, fix.floor, fix.fine_class, fix.position.x,
                fix.position.y, fix.confidence, sample.position.x,
                sample.position.y);
  }

  // 5. IMU streaming: train a tracker, clone it into a localizer, and feed
  // one walk segment-by-segment — a position fix after every update.
  std::printf("\nIMU streaming session:\n");
  ImuExperimentConfig imu_config;
  imu_config.num_paths = 800;
  imu_config.total_walk_time_s = 1800.0;
  imu_config.readings_per_segment = 16;
  imu_config.seed = 7;
  ImuExperiment imu_experiment = make_imu_experiment(imu_config);
  NobleImuConfig tracker_config;
  tracker_config.quantize.tau = 2.0;
  tracker_config.epochs = 12;
  tracker_config.projection_dim = 8;
  NobleImuTracker tracker(tracker_config);
  tracker.fit(imu_experiment.split.train);

  const ImuLocalizer imu_localizer = ImuLocalizer::from_model(tracker);
  const auto& path = imu_experiment.split.test.paths.front();
  TrackingSession session = imu_localizer.start_session(path.start);
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    ImuSegment segment(
        path.features.begin() +
            static_cast<std::ptrdiff_t>(s * imu_localizer.segment_dim()),
        path.features.begin() +
            static_cast<std::ptrdiff_t>((s + 1) * imu_localizer.segment_dim()));
    const Fix fix = session.update(segment);
    std::printf("  after segment %2zu: cell %3d at (%6.1f, %6.1f) conf %.2f\n", s,
                fix.fine_class, fix.position.x, fix.position.y, fix.confidence);
  }
  std::printf("walk truth end: (%6.1f, %6.1f)\n", path.end.x, path.end.y);

  std::filesystem::remove(artifact);
  return 0;
}
