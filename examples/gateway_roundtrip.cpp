// Gateway tour — the serving stack from the socket in:
//  1. train a NObLe Wi-Fi model and an IMU tracker on synthetic substrates,
//  2. stand up a fleet::Router (one shard, sessions enabled) behind a
//     gateway::Listener on an ephemeral loopback port,
//  3. connect a GatewayClient and drive all three traffic shapes —
//     interactive scans, bulk scans with a deadline, and a streamed IMU
//     tracking session,
//  4. gate: every fix that came over the wire must be bit-identical
//     (Fix::operator==) to direct in-process inference — the codec moves
//     exact bit patterns, the engine stack never re-derives a result,
//  5. print the gateway's scrape page (counters + fleet stats + queue
//     depths).
//
// Exits non-zero on any mismatch or protocol hiccup, so the smoke tier
// doubles as an end-to-end wire-vs-direct equivalence check.
//
// Run: ./example_gateway_roundtrip
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace {

std::vector<noble::serve::ImuSegment> segments_of(const noble::data::ImuPath& path,
                                                  std::size_t segment_dim) {
  std::vector<noble::serve::ImuSegment> out;
  out.reserve(path.num_segments);
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    out.emplace_back(
        path.features.begin() + static_cast<std::ptrdiff_t>(s * segment_dim),
        path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * segment_dim));
  }
  return out;
}

}  // namespace

int main() {
  using namespace noble;

  std::printf("noble::gateway tour: client == wire ==> listener -> router -> engine\n\n");

  // 1. Train both model families (scaled by NOBLE_SCALE inside the builders).
  core::WifiExperimentConfig wifi_config;
  wifi_config.total_samples = 3000;
  wifi_config.seed = 12;
  core::WifiExperiment wifi_exp = core::make_uji_experiment(wifi_config);
  core::NobleWifiConfig wifi_model_config;
  wifi_model_config.quantize.tau = 3.0;
  wifi_model_config.quantize.coarse_l = 15.0;
  wifi_model_config.epochs = 10;
  core::NobleWifiModel wifi_model(wifi_model_config);
  wifi_model.fit(wifi_exp.split.train, &wifi_exp.split.val);
  const serve::WifiLocalizer wifi = serve::WifiLocalizer::from_model(wifi_model);

  core::ImuExperimentConfig imu_config;
  imu_config.num_paths = 400;
  imu_config.total_walk_time_s = 1000.0;
  imu_config.readings_per_segment = 8;
  imu_config.imu.ref_interval_s = 15.0;
  imu_config.seed = 304;
  core::ImuExperiment imu_exp = core::make_imu_experiment(imu_config);
  core::NobleImuConfig imu_model_config;
  imu_model_config.quantize.tau = 2.0;
  imu_model_config.epochs = 6;
  imu_model_config.projection_dim = 6;
  core::NobleImuTracker tracker(imu_model_config);
  tracker.fit(imu_exp.split.train);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(tracker);
  std::printf("trained: wifi %zu APs, imu segment dim %zu\n\n", wifi_model.input_dim(),
              imu.segment_dim());

  // 2. One shard with sessions enabled, gateway on an ephemeral port.
  fleet::Router router;
  fleet::ShardConfig shard;
  shard.key = "bldg-A";
  shard.engine.workers = 2;
  shard.engine.max_batch = 16;
  if (!router.add_shard(shard, wifi, imu)) {
    std::printf("FAIL: add_shard\n");
    return 1;
  }

  gateway::GatewayConfig gw_config;  // port 0 = ephemeral, loopback bind
  gateway::Listener listener(router, gw_config);
  if (!listener.start()) {
    std::printf("FAIL: listener.start()\n");
    return 1;
  }
  std::printf("gateway: listening on %s:%u (%zu handler threads)\n\n",
              gw_config.bind_address.c_str(), listener.port(), gw_config.threads);

  std::optional<gateway::GatewayClient> client =
      gateway::GatewayClient::connect("127.0.0.1", listener.port());
  if (!client.has_value()) {
    std::printf("FAIL: client connect\n");
    return 1;
  }

  std::size_t checked = 0, mismatched = 0;

  // 3a + 3b. Interactive scans and bulk-with-deadline scans: the fix that
  // crosses the wire must be the exact fix direct locate() produces. Bulk
  // gets a generous deadline — this is an equivalence check, not a shedding
  // demo; the admission path is exercised, the verdict must still be kOk.
  std::vector<serve::RssiVector> queries;
  for (const auto& sample : wifi_exp.split.test.samples) queries.push_back(sample.rssi);
  std::printf("routing %zu scans over the wire (interactive + bulk)...\n",
              queries.size());
  for (const auto& q : queries) {
    const serve::Fix expected = wifi.locate(q);
    const gateway::WireResult interactive = client->locate("bldg-A", q);
    ++checked;
    if (!interactive.ok() || !(interactive.fix == expected)) ++mismatched;
    const gateway::WireResult bulk = client->locate(
        "bldg-A", q, engine::RequestClass::kBulk, /*deadline_us=*/5'000'000);
    ++checked;
    if (!bulk.ok() || !(bulk.fix == expected)) ++mismatched;
  }

  // 3c. A streamed IMU session: wire session updates vs a direct
  // TrackingSession on the same localizer, fix by fix.
  const std::size_t num_tracks = std::min<std::size_t>(imu_exp.split.test.size(), 4);
  std::printf("streaming %zu IMU tracks over the wire...\n", num_tracks);
  for (std::size_t p = 0; p < num_tracks; ++p) {
    const auto& path = imu_exp.split.test.paths[p];
    const auto segments = segments_of(path, tracker.segment_dim());
    serve::TrackingSession direct = imu.start_session(path.start);
    const std::optional<std::uint64_t> session =
        client->open_session("bldg-A", path.start);
    if (!session.has_value()) {
      ++mismatched;
      continue;
    }
    for (const auto& segment : segments) {
      const serve::Fix expected = direct.update(segment);
      const gateway::WireResult wired = client->track(*session, segment);
      ++checked;
      if (!wired.ok() || !(wired.fix == expected)) ++mismatched;
    }
    if (!client->close_session(*session)) ++mismatched;
  }

  // 4. The verdict.
  std::printf("equivalence: %zu fixes checked, %zu mismatches%s\n\n", checked,
              mismatched, mismatched == 0 ? " (wire == direct, bit for bit)" : "");

  // 5. The scrape page, fetched over the wire like a monitoring agent would.
  const std::optional<std::string> stats = client->stats_text();
  if (stats.has_value()) {
    std::printf("stats_text() over the wire:\n%s", stats->c_str());
  }

  const gateway::GatewayCounters counters = listener.counters();
  listener.stop();
  const bool clean = counters.malformed_frames == 0 && mismatched == 0 && checked > 0;
  std::printf("\ngateway saw %llu frames in / %llu out, %llu malformed\n",
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.frames_sent),
              static_cast<unsigned long long>(counters.malformed_frames));
  std::printf("%s\n", clean ? "OK: wire-served fixes are bit-identical to direct inference"
                            : "FAIL: wire/direct mismatch or protocol error");
  return clean ? 0 : 1;
}
