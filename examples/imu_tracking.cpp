// IMU device tracking walkthrough — the §V pipeline: simulate campus walks,
// build travel paths per the paper's protocol, train the NObLe tracker, and
// inspect a single path end-to-end (per-segment displacement estimates
// included).
//
// Run: ./example_imu_tracking
#include <cstdio>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_imu.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  std::printf("NObLe IMU tracking: walk simulation -> paths -> tracker (§V)\n\n");

  ImuExperimentConfig config;
  config.num_paths = 2000;
  config.total_walk_time_s = 3000.0;
  ImuExperiment exp = make_imu_experiment(config);
  std::printf("constructed %zu paths (train %zu / val %zu / test %zu), "
              "%zu-reading segments, up to %zu segments per path\n",
              exp.split.train.size() + exp.split.val.size() + exp.split.test.size(),
              exp.split.train.size(), exp.split.val.size(), exp.split.test.size(),
              exp.split.train.segment_dim / 6, exp.split.train.max_segments);

  NobleImuConfig ncfg;
  ncfg.epochs = 30;
  NobleImuTracker tracker(ncfg);
  const auto train_result = tracker.fit(exp.split.train);
  std::printf("trained %zu epochs; %zu neighborhood classes at tau=%.1f m\n",
              train_result.epochs_run, tracker.num_classes(),
              tracker.config().quantize.tau);

  const auto preds = tracker.predict(exp.split.test);
  const auto report =
      evaluate_imu(positions_of(preds), exp.split.test, &exp.world.walkways);
  std::printf("\ntest results: mean %.2f m, median %.2f m, on-walkway %.1f %%\n",
              report.errors.mean, report.errors.median,
              100.0 * report.structure_score);

  // Map-assisted dead reckoning ([8]) for contrast.
  MapAssistedDeadReckoning dead_reckoning({}, exp.world.walkways);
  dead_reckoning.fit(exp.split.train);
  const auto dr_report = evaluate_imu(dead_reckoning.predict(exp.split.test),
                                      exp.split.test, &exp.world.walkways);
  std::printf("map dead reckoning [8]: mean %.2f m, median %.2f m\n",
              dr_report.errors.mean, dr_report.errors.median);

  // Inspect one path: per-segment displacement estimates from the shared
  // projection module (§V-B notes the module is environment-agnostic).
  const auto segs = tracker.predict_segment_displacements(exp.split.test);
  const auto& path = exp.split.test.paths.front();
  std::printf("\nfirst test path: %zu segments, %.0f s of walking\n",
              path.num_segments, path.duration_s);
  geo::Point2 rebuilt = path.start;
  for (std::size_t s = 0; s < segs[0].size() && s < 5; ++s) {
    rebuilt = rebuilt + segs[0][s];
    std::printf("  segment %zu: est displacement (%+6.2f, %+6.2f) m\n", s,
                segs[0][s].x, segs[0][s].y);
  }
  if (segs[0].size() > 5) {
    for (std::size_t s = 5; s < segs[0].size(); ++s) rebuilt = rebuilt + segs[0][s];
    std::printf("  ... %zu more segments\n", segs[0].size() - 5);
  }
  std::printf("  accumulated end estimate (%.1f, %.1f); decoded class end "
              "(%.1f, %.1f); truth (%.1f, %.1f)\n",
              rebuilt.x, rebuilt.y, preds[0].position.x, preds[0].position.y,
              path.end.x, path.end.y);
  return 0;
}
