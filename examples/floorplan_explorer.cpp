// Floor-plan & quantization explorer — shows the geometry substrate on its
// own: build a campus, query accessibility, project off-map points (the
// Regression Projection primitive), and inspect how space quantization
// prunes inaccessible areas (the core §III-B mechanism).
//
// Run: ./example_floorplan_explorer
#include <cstdio>

#include "common/rng.h"
#include "core/quantize.h"
#include "geo/campus.h"

int main() {
  using namespace noble;
  using namespace noble::geo;

  std::printf("NObLe geometry substrate tour\n\n");

  const IndoorWorld world = make_uji_like_campus();
  const Aabb bounds = world.plan.bounds();
  std::printf("campus bounds: %.0f m x %.0f m, %zu buildings\n", bounds.width(),
              bounds.height(), world.plan.building_count());
  for (const auto& b : world.plan.buildings()) {
    std::printf("  building %d '%s': footprint %.0f m^2, %d floors, %zu "
                "courtyard hole(s)\n",
                b.id(), b.name().c_str(), b.footprint().area(), b.num_floors(),
                b.holes().size());
  }

  // Accessibility queries.
  const Point2 corridor_point{40.0, 165.0};
  const Point2 courtyard_point{95.0, 200.0};
  const Point2 outside_point{0.0, 0.0};
  std::printf("\naccessible(%.0f, %.0f) = %s (corridor)\n", corridor_point.x,
              corridor_point.y, world.plan.accessible(corridor_point) ? "yes" : "no");
  std::printf("accessible(%.0f, %.0f) = %s (courtyard of Fig. 1's top-left "
              "building)\n",
              courtyard_point.x, courtyard_point.y,
              world.plan.accessible(courtyard_point) ? "yes" : "no");
  std::printf("accessible(%.0f, %.0f) = %s (outside campus)\n", outside_point.x,
              outside_point.y, world.plan.accessible(outside_point) ? "yes" : "no");

  // Map projection (the Regression Projection primitive).
  const Point2 projected = world.plan.project_to_accessible(courtyard_point);
  std::printf("project_to_accessible(courtyard) -> (%.1f, %.1f), accessible=%s\n",
              projected.x, projected.y,
              world.plan.accessible(projected) ? "yes" : "no");

  // Space quantization prunes unoccupied space (§III-B).
  Rng rng(7);
  std::vector<Point2> samples;
  for (const auto& corridor : world.corridors) {
    for (const auto& p : corridor.graph.sample_along_edges(2.0)) samples.push_back(p);
  }
  core::SpaceQuantizer quantizer;
  core::QuantizeConfig qcfg;
  qcfg.tau = 3.0;
  qcfg.coarse_l = 15.0;
  quantizer.fit(samples, qcfg);

  const double campus_cells = (bounds.width() / qcfg.tau) * (bounds.height() / qcfg.tau);
  std::printf("\nquantization at tau=%.0f m: %zu occupied classes out of ~%.0f "
              "cells covering the bounding box (%.1f %% kept)\n",
              qcfg.tau, quantizer.num_fine_classes(), campus_cells,
              100.0 * static_cast<double>(quantizer.num_fine_classes()) / campus_cells);
  std::printf("the courtyard cell of (%.0f, %.0f) holds no data -> class %d\n",
              courtyard_point.x, courtyard_point.y,
              quantizer.fine().class_of(courtyard_point));
  std::printf("(class -1 means 'discarded': inaccessible space never enters the "
              "output manifold — the heart of §III-B)\n");
  return 0;
}
