// Kernel-layer parity suites: the bit-identity contract of noble::kernels.
//
// Scalar is the reference. Every other way of computing the same op — AVX2
// dispatch, pre-packed weight layouts, fused epilogues, whole optimized
// plans — must reproduce the reference *bitwise*, across ragged K/N tails,
// batch sizes 1..17, zero-row inputs and every epilogue combination. The
// suites compare raw storage with memcmp, so a single flipped bit anywhere
// fails loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/fpmath.h"
#include "common/rng.h"
#include "core/quantize.h"
#include "kernels/kernels.h"
#include "linalg/matrix.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "serve/optimized.h"

namespace noble::kernels {
namespace {

using linalg::Mat;

// Restores startup dispatch resolution however a test exits.
struct IsaGuard {
  ~IsaGuard() { force_isa(std::nullopt); }
};

::testing::AssertionResult bitwise_equal(const Mat& a, const Mat& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::memcmp(&a.row(i)[j], &b.row(i)[j], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at (" << i << "," << j
               << "): " << a(i, j) << " vs " << b(i, j);
      }
    }
  }
  return ::testing::AssertionFailure() << "memcmp differs but elements match?";
}

/// Random matrix with controllable sparsity; row `zero_row` (if in range) is
/// all zeros to exercise the zero-skip and zero-quantization paths.
Mat random_mat(std::size_t rows, std::size_t cols, Rng& rng,
               double sparsity = 0.0, std::size_t zero_row = SIZE_MAX) {
  Mat m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (i == zero_row) continue;
      if (sparsity > 0.0 && rng.bernoulli(sparsity)) continue;
      m(i, j) = static_cast<float>(rng.uniform(-1.5, 1.5));
    }
  }
  return m;
}

BnFold random_bn_fold(std::size_t n, Rng& rng) {
  BnFold bn;
  bn.gamma.resize(n);
  bn.mean.resize(n);
  bn.inv_std.resize(n);
  bn.beta.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    bn.gamma[j] = static_cast<float>(rng.uniform(0.5, 1.5));
    bn.mean[j] = static_cast<float>(rng.uniform(-0.5, 0.5));
    bn.inv_std[j] =
        1.0f / std::sqrt(static_cast<float>(rng.uniform(0.1, 2.0)) + 1e-5f);
    bn.beta[j] = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  return bn;
}

constexpr Activation kActivations[] = {Activation::kNone, Activation::kTanh,
                                       Activation::kRelu, Activation::kSigmoid};

const std::size_t kShapesK[] = {1, 3, 8, 31, 33, 128};
const std::size_t kShapesN[] = {1, 5, 8, 16, 17, 127};
const std::size_t kBatches[] = {1, 2, 3, 5, 8, 13, 16, 17};

// ---------------------------------------------------------------------------
// Dispatch control.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ParseIsaMapsKnobValues) {
  EXPECT_EQ(parse_isa("scalar"), std::optional<Isa>(Isa::kScalar));
  EXPECT_EQ(parse_isa("avx2"), std::optional<Isa>(Isa::kAvx2));
  EXPECT_EQ(parse_isa("auto"), std::nullopt);
  EXPECT_EQ(parse_isa(""), std::nullopt);
  EXPECT_EQ(parse_isa("sse9"), std::nullopt);  // unrecognized behaves as auto
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
}

TEST(KernelDispatch, ForceIsaOverridesAndRestores) {
  IsaGuard guard;
  force_isa(Isa::kScalar);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  if (avx2_supported()) {
    force_isa(Isa::kAvx2);
    EXPECT_EQ(active_isa(), Isa::kAvx2);
  } else {
    // Requests for unavailable ISAs clamp to scalar instead of faulting.
    force_isa(Isa::kAvx2);
    EXPECT_EQ(active_isa(), Isa::kScalar);
  }
}

TEST(KernelDispatch, Avx2SupportImpliesAvx2Compiled) {
  if (avx2_supported()) {
    EXPECT_TRUE(avx2_compiled());
  }
}

// ---------------------------------------------------------------------------
// Packing is a pure storage permutation.
// ---------------------------------------------------------------------------

TEST(KernelPacking, PackedDenseLayoutRoundTrips) {
  Rng rng(42);
  for (const std::size_t n : kShapesN) {
    const Mat w = random_mat(33, n, rng);
    const std::uint64_t before = pack_operations();
    const PackedDense packed = pack_dense(w);
    EXPECT_EQ(pack_operations(), before + 1);
    EXPECT_EQ(packed.in_dim(), w.rows());
    EXPECT_EQ(packed.out_dim(), w.cols());
    EXPECT_EQ(packed.padded_out() % PackedDense::kTile, 0u);
    for (std::size_t t = 0; t < packed.num_panels(); ++t) {
      const float* panel = packed.panel(t);
      for (std::size_t k = 0; k < w.rows(); ++k) {
        for (std::size_t c = 0; c < PackedDense::kTile; ++c) {
          const std::size_t j = t * PackedDense::kTile + c;
          const float expected = j < n ? w(k, j) : 0.0f;  // zero-padded tail
          EXPECT_EQ(panel[k * PackedDense::kTile + c], expected);
        }
      }
    }
  }
}

TEST(KernelPacking, PackedQuantizedLayoutRoundTrips) {
  Rng rng(43);
  const std::size_t in_dim = 31, out_dim = 17;
  std::vector<std::int8_t> weights(in_dim * out_dim);
  std::vector<float> scales(out_dim);
  for (auto& v : weights) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& s : scales) s = static_cast<float>(rng.uniform(0.001, 0.1));
  QuantizedView view{weights.data(), scales.data(), in_dim, out_dim};
  const PackedQuantized packed = pack_quantized(view);
  EXPECT_EQ(packed.padded_in() % PackedQuantized::kKAlign, 0u);
  EXPECT_GE(packed.padded_in(), in_dim);
  for (std::size_t j = 0; j < out_dim; ++j) {
    const std::int8_t* col = packed.column(j);
    for (std::size_t k = 0; k < packed.padded_in(); ++k) {
      const std::int8_t expected = k < in_dim ? weights[j * in_dim + k] : 0;
      EXPECT_EQ(col[k], expected) << "col " << j << " lane " << k;
    }
    EXPECT_EQ(packed.scales()[j], scales[j]);
  }
}

// ---------------------------------------------------------------------------
// fp32 parity: scalar vs dispatched, packed vs unpacked, odd shapes,
// all epilogues, zero rows.
// ---------------------------------------------------------------------------

TEST(KernelParityFp32, ScalarVsAvx2BitIdenticalAcrossShapesAndEpilogues) {
  if (!avx2_supported()) GTEST_SKIP() << "AVX2 unavailable on this host";
  IsaGuard guard;
  Rng rng(7);
  std::size_t combo = 0;
  for (const std::size_t k : kShapesK) {
    for (const std::size_t n : kShapesN) {
      const Mat w = random_mat(k, n, rng);
      std::vector<float> bias(n);
      for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
      const BnFold bn = random_bn_fold(n, rng);
      for (const std::size_t m : kBatches) {
        // Cycle epilogue shape with the combo index to bound runtime while
        // still covering every (activation x bn x bias) form many times.
        Epilogue ep;
        ep.act = kActivations[combo % 4];
        ep.bias = combo % 2 == 0 ? bias.data() : nullptr;
        ep.bn = combo % 3 == 0 ? &bn : nullptr;
        ++combo;
        const Mat x = random_mat(m, k, rng, /*sparsity=*/0.3,
                                 /*zero_row=*/m >= 2 ? 1 : SIZE_MAX);
        Mat y_scalar, y_avx2, yp_scalar, yp_avx2;
        const PackedDense packed = pack_dense(w);
        force_isa(Isa::kScalar);
        dense_forward(x, w.data(), k, n, ep, y_scalar);
        dense_forward(x, packed, ep, yp_scalar);
        force_isa(Isa::kAvx2);
        dense_forward(x, w.data(), k, n, ep, y_avx2);
        dense_forward(x, packed, ep, yp_avx2);
        EXPECT_TRUE(bitwise_equal(y_scalar, y_avx2))
            << "unpacked m=" << m << " k=" << k << " n=" << n;
        EXPECT_TRUE(bitwise_equal(yp_scalar, yp_avx2))
            << "packed m=" << m << " k=" << k << " n=" << n;
        EXPECT_TRUE(bitwise_equal(y_scalar, yp_scalar))
            << "packed-vs-unpacked m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(KernelParityFp32, ScalarKernelMatchesNaiveReferenceLoop) {
  IsaGuard guard;
  force_isa(Isa::kScalar);
  Rng rng(11);
  const std::size_t m = 5, k = 33, n = 17;
  const Mat w = random_mat(k, n, rng);
  const Mat x = random_mat(m, k, rng, 0.3, /*zero_row=*/2);
  std::vector<float> bias(n);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
  Epilogue ep;
  ep.bias = bias.data();
  Mat y;
  dense_forward(x, w.data(), k, n, ep, y);
  // The historical Dense::infer computation: i-k-j zero-skip GEMM, then a
  // bias add — written out longhand.
  Mat ref(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float a = x(i, p);
      if (a == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) ref(i, j) += a * w(p, j);
    }
    for (std::size_t j = 0; j < n; ++j) ref(i, j) += bias[j];
  }
  EXPECT_TRUE(bitwise_equal(y, ref));
}

TEST(KernelParityFp32, GemmAccumulateMatchesAcrossIsas) {
  if (!avx2_supported()) GTEST_SKIP() << "AVX2 unavailable on this host";
  IsaGuard guard;
  Rng rng(13);
  for (const std::size_t n : {1u, 8u, 17u, 31u}) {
    const Mat a = random_mat(7, 33, rng, 0.3);
    const Mat b = random_mat(33, n, rng);
    const Mat seed = random_mat(7, n, rng);
    Mat c_scalar = seed, c_avx2 = seed;
    force_isa(Isa::kScalar);
    gemm(a, b, c_scalar, /*accumulate=*/true);
    force_isa(Isa::kAvx2);
    gemm(a, b, c_avx2, /*accumulate=*/true);
    EXPECT_TRUE(bitwise_equal(c_scalar, c_avx2)) << "n=" << n;
  }
}

TEST(KernelParityFp32, ZeroRowProducesExactlyTheEpilogueOfZero) {
  IsaGuard guard;
  Rng rng(17);
  const std::size_t k = 31, n = 17;
  const Mat w = random_mat(k, n, rng);
  std::vector<float> bias(n);
  for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
  Epilogue ep;
  ep.bias = bias.data();
  Mat x(3, k);  // all-zero batch
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2}) {
    if (isa == Isa::kAvx2 && !avx2_supported()) continue;
    force_isa(isa);
    Mat y;
    dense_forward(x, w.data(), k, n, ep, y);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(y(i, j), bias[j]);
    }
  }
}

// ---------------------------------------------------------------------------
// int8 parity.
// ---------------------------------------------------------------------------

TEST(KernelParityInt8, ScalarVsAvx2BitIdenticalAcrossShapes) {
  if (!avx2_supported()) GTEST_SKIP() << "AVX2 unavailable on this host";
  IsaGuard guard;
  Rng rng(19);
  std::size_t combo = 0;
  for (const std::size_t k : kShapesK) {
    for (const std::size_t n : kShapesN) {
      std::vector<std::int8_t> weights(k * n);
      std::vector<float> scales(n);
      for (auto& v : weights) {
        v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
      }
      for (auto& s : scales) s = static_cast<float>(rng.uniform(0.001, 0.1));
      if (n > 1) scales[0] = 0.0f;  // an all-zero quantized column
      std::vector<float> bias(n);
      for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
      const QuantizedView view{weights.data(), scales.data(), k, n};
      const PackedQuantized packed = pack_quantized(view);
      const BnFold bn = random_bn_fold(n, rng);
      for (const std::size_t m : kBatches) {
        Epilogue ep;
        ep.bias = bias.data();
        ep.act = kActivations[combo % 4];
        ep.bn = combo % 3 == 0 ? &bn : nullptr;
        ++combo;
        const Mat x = random_mat(m, k, rng, /*sparsity=*/0.3,
                                 /*zero_row=*/m >= 2 ? 0 : SIZE_MAX);
        Mat y_scalar, y_avx2, yp_scalar, yp_avx2;
        force_isa(Isa::kScalar);
        quantized_forward(x, view, ep, y_scalar);
        quantized_forward(x, packed, ep, yp_scalar);
        force_isa(Isa::kAvx2);
        quantized_forward(x, view, ep, y_avx2);
        quantized_forward(x, packed, ep, yp_avx2);
        EXPECT_TRUE(bitwise_equal(y_scalar, y_avx2))
            << "unpacked m=" << m << " k=" << k << " n=" << n;
        EXPECT_TRUE(bitwise_equal(yp_scalar, yp_avx2))
            << "packed m=" << m << " k=" << k << " n=" << n;
        EXPECT_TRUE(bitwise_equal(y_scalar, yp_scalar))
            << "packed-vs-unpacked m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(KernelParityInt8, MatchesLegacyQuantizedDenseInfer) {
  // quantized_dense_infer now routes through the kernels; reproduce its
  // historical loop longhand and require bitwise equality, zero row included.
  IsaGuard guard;
  Rng rng(23);
  const std::size_t k = 33, n = 17, m = 6;
  core::QuantizedDense layer;
  layer.in_dim = k;
  layer.out_dim = n;
  layer.weights.resize(k * n);
  layer.scales.resize(n);
  layer.bias.resize(n);
  for (auto& v : layer.weights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  for (auto& s : layer.scales) s = static_cast<float>(rng.uniform(0.001, 0.1));
  for (auto& b : layer.bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
  const Mat x = random_mat(m, k, rng, 0.3, /*zero_row=*/3);

  Mat ref(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    float max_abs = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      max_abs = std::max(max_abs, std::fabs(x(i, p)));
    }
    if (max_abs == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) ref(i, j) = layer.bias[j];
      continue;
    }
    const float row_scale = max_abs / 127.0f;
    const float inv = 127.0f / max_abs;
    std::vector<std::int8_t> q(k);
    for (std::size_t p = 0; p < k; ++p) {
      const long r = std::lround(x(i, p) * inv);
      q[p] = static_cast<std::int8_t>(r > 127 ? 127 : (r < -127 ? -127 : r));
    }
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(q[p]) *
               static_cast<std::int32_t>(layer.weights[j * k + p]);
      }
      ref(i, j) = static_cast<float>(acc) * (row_scale * layer.scales[j]) +
                  layer.bias[j];
    }
  }

  for (const Isa isa : {Isa::kScalar, Isa::kAvx2}) {
    if (isa == Isa::kAvx2 && !avx2_supported()) continue;
    force_isa(isa);
    Mat y;
    core::quantized_dense_infer(layer, x, y);
    EXPECT_TRUE(bitwise_equal(y, ref)) << isa_name(isa);
  }
}

// ---------------------------------------------------------------------------
// Load-time optimization: BN folding and activation fusion are exact.
// ---------------------------------------------------------------------------

/// Builds the serving-shaped network (Dense -> BN -> Tanh stacks) and runs a
/// few training steps so the batch-norm running statistics are non-trivial.
nn::Sequential trained_bn_network(std::size_t in_dim, std::size_t hidden,
                                  std::size_t out_dim, Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Dense>(in_dim, hidden, rng);
  net.emplace<nn::BatchNorm1d>(hidden);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(hidden, hidden, rng);
  net.emplace<nn::BatchNorm1d>(hidden);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(hidden, out_dim, rng);
  for (int step = 0; step < 4; ++step) {
    const Mat batch = random_mat(16, in_dim, rng, 0.2);
    net.forward(batch, /*training=*/true);  // updates BN running stats
  }
  return net;
}

TEST(OptimizedNetworkSuite, Fp32PlanBitIdenticalToSequentialPredict) {
  IsaGuard guard;
  Rng rng(29);
  nn::Sequential net = trained_bn_network(24, 32, 19, rng);
  const serve::OptimizedNetwork plan(net,
                                     serve::OptimizedNetwork::Precision::kFloat32);
  EXPECT_EQ(plan.stats().fused_dense, 3u);
  EXPECT_EQ(plan.stats().folded_batchnorm, 2u);
  EXPECT_EQ(plan.stats().fused_activations, 2u);
  EXPECT_EQ(plan.stats().passthrough_layers, 0u);
  EXPECT_GT(plan.stats().packed_bytes, 0u);
  for (std::size_t m = 1; m <= 17; ++m) {
    const Mat x = random_mat(m, 24, rng, 0.3, /*zero_row=*/m >= 2 ? 0 : SIZE_MAX);
    for (const Isa isa : {Isa::kScalar, Isa::kAvx2}) {
      if (isa == Isa::kAvx2 && !avx2_supported()) continue;
      force_isa(isa);
      // net.predict and the plan both dispatch to the same ISA; comparing
      // per-ISA isolates exactly the fold/fuse/pack transformations.
      const Mat via_net = net.predict(x);
      const Mat via_plan = plan.predict(x);
      EXPECT_TRUE(bitwise_equal(via_net, via_plan))
          << "m=" << m << " isa=" << isa_name(isa);
    }
  }
}

TEST(OptimizedNetworkSuite, Fp32PlanBitIdenticalAcrossIsas) {
  if (!avx2_supported()) GTEST_SKIP() << "AVX2 unavailable on this host";
  IsaGuard guard;
  Rng rng(31);
  nn::Sequential net = trained_bn_network(24, 32, 19, rng);
  const serve::OptimizedNetwork plan(net,
                                     serve::OptimizedNetwork::Precision::kFloat32);
  for (const std::size_t m : kBatches) {
    const Mat x = random_mat(m, 24, rng, 0.3);
    force_isa(Isa::kScalar);
    const Mat y_scalar = plan.predict(x);
    force_isa(Isa::kAvx2);
    const Mat y_avx2 = plan.predict(x);
    EXPECT_TRUE(bitwise_equal(y_scalar, y_avx2)) << "m=" << m;
  }
}

TEST(OptimizedNetworkSuite, Int8PlanBitIdenticalToQuantizedNetwork) {
  IsaGuard guard;
  Rng rng(37);
  nn::Sequential net = trained_bn_network(24, 32, 19, rng);
  const core::QuantizedNetwork qnet(net);
  const serve::OptimizedNetwork plan(net,
                                     serve::OptimizedNetwork::Precision::kInt8);
  for (std::size_t m = 1; m <= 17; ++m) {
    const Mat x = random_mat(m, 24, rng, 0.3, /*zero_row=*/m >= 2 ? 0 : SIZE_MAX);
    for (const Isa isa : {Isa::kScalar, Isa::kAvx2}) {
      if (isa == Isa::kAvx2 && !avx2_supported()) continue;
      force_isa(isa);
      const Mat expected = qnet.predict(x);
      const Mat actual = plan.predict(x);
      EXPECT_TRUE(bitwise_equal(expected, actual))
          << "m=" << m << " isa=" << isa_name(isa);
    }
  }
}

TEST(OptimizedNetworkSuite, DenseActivationFusionWithoutBnIsExact) {
  IsaGuard guard;
  Rng rng(41);
  nn::Sequential net;
  net.emplace<nn::Dense>(12, 20, rng);
  net.emplace<nn::Sigmoid>();
  net.emplace<nn::Dense>(20, 7, rng);
  net.emplace<nn::Tanh>();
  const serve::OptimizedNetwork plan(net,
                                     serve::OptimizedNetwork::Precision::kFloat32);
  EXPECT_EQ(plan.stats().fused_dense, 2u);
  EXPECT_EQ(plan.stats().fused_activations, 2u);
  EXPECT_EQ(plan.stats().folded_batchnorm, 0u);
  for (const std::size_t m : kBatches) {
    const Mat x = random_mat(m, 12, rng, 0.2);
    EXPECT_TRUE(bitwise_equal(net.predict(x), plan.predict(x))) << "m=" << m;
  }
}

TEST(OptimizedNetworkSuite, UnrecognizedLeadingBatchNormPassesThrough) {
  IsaGuard guard;
  Rng rng(43);
  nn::Sequential net;
  net.emplace<nn::BatchNorm1d>(12);  // no preceding Dense: must pass through
  net.emplace<nn::Dense>(12, 5, rng);
  for (int step = 0; step < 3; ++step) {
    net.forward(random_mat(8, 12, rng), /*training=*/true);
  }
  const serve::OptimizedNetwork plan(net,
                                     serve::OptimizedNetwork::Precision::kFloat32);
  EXPECT_EQ(plan.stats().passthrough_layers, 1u);
  EXPECT_EQ(plan.stats().fused_dense, 1u);
  const Mat x = random_mat(6, 12, rng);
  EXPECT_TRUE(bitwise_equal(net.predict(x), plan.predict(x)));
}

// ---------------------------------------------------------------------------
// stable_round: the named replacement for the volatile-float SLP workaround.
// ---------------------------------------------------------------------------

TEST(StableRound, NarrowsDoubleAccumulatorsToFloatPrecision) {
  // Recreate the paired-accumulator shape from TrackingSession::displacement
  // — exactly the pattern GCC 12's SLP vectorizer miscompiled when the casts
  // were written inline (it deleted the double->float->double round-trip).
  double sum_x = 0.0, sum_y = 0.0;
  for (int i = 0; i < 10; ++i) {
    sum_x += 0.1;
    sum_y += 0.2;
  }
  const double rx = noble::detail::stable_round(sum_x);
  const double ry = noble::detail::stable_round(sum_y);
  // If the narrowing were elided the results would keep full double
  // precision and stay equal to the raw sums.
  EXPECT_NE(rx, sum_x);
  EXPECT_NE(ry, sum_y);
  volatile float fx = static_cast<float>(sum_x);
  volatile float fy = static_cast<float>(sum_y);
  EXPECT_EQ(rx, static_cast<double>(fx));
  EXPECT_EQ(ry, static_cast<double>(fy));
  // Values exactly representable in float round-trip unchanged.
  EXPECT_EQ(noble::detail::stable_round(0.5), 0.5);
  EXPECT_EQ(noble::detail::stable_round(-3.0), -3.0);
  EXPECT_EQ(noble::detail::stable_round(0.0), 0.0);
}

}  // namespace
}  // namespace noble::kernels
