// Tests for descriptive statistics and CSV/config utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <random>

#include "common/config.h"
#include "common/csv.h"
#include "common/stats.h"

namespace noble {
namespace {

TEST(Stats, MeanMedianBasic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MedianUnsortedInput) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 4.0, 1e-12);
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);
}

TEST(Stats, RmsOfConstant) {
  EXPECT_DOUBLE_EQ(rms({3.0, 3.0, 3.0}), 3.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v{1.5, 2.5, -0.5, 4.0, 10.0, -3.0};
  RunningStats rs;
  for (double x : v) rs.push(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  // RunningStats uses the sample (n-1) variance.
  const double sample_var = variance(v) * static_cast<double>(v.size()) /
                            static_cast<double>(v.size() - 1);
  EXPECT_NEAR(rs.variance(), sample_var, 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Histogram, EmptyAndBasicCounts) {
  Histogram h(1.0, 1000.0, 30);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(10.0);
  h.record(0.5);     // below lo -> underflow
  h.record(0.0);     // zero -> underflow (no log of 0)
  h.record(-3.0);    // negative -> underflow
  h.record(2000.0);  // >= hi -> overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow_count(), 3u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_recorded(), -3.0);
  EXPECT_DOUBLE_EQ(h.max_recorded(), 2000.0);
}

TEST(Histogram, BinEdgesAreLogSpaced) {
  Histogram h(1.0, 1000.0, 3);  // decade bins: [1,10), [10,100), [100,1000)
  EXPECT_EQ(h.num_bins(), 3u);
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_lower(1), 10.0, 1e-6);
  EXPECT_NEAR(h.bin_lower(2), 100.0, 1e-6);
  EXPECT_NEAR(h.bin_upper(2), 1000.0, 1e-6);
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);
  h.record(999.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 2u);
}

TEST(Histogram, PercentileTailsAreExact) {
  Histogram h = Histogram::latency_us();
  for (double x : {12.0, 40.0, 90.0, 250.0, 8000.0}) h.record(x);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 12.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 8000.0);
}

TEST(Histogram, AllUnderflowAndAllOverflowKeepExactTails) {
  // Regression: a stream living entirely outside [lo, hi) must still honor
  // the exact-tails contract instead of collapsing every quantile to one
  // recorded extremum.
  Histogram under = Histogram::latency_us();
  under.record(0.2);
  under.record(0.9);
  EXPECT_DOUBLE_EQ(under.percentile(0.0), 0.2);
  EXPECT_DOUBLE_EQ(under.percentile(100.0), 0.9);
  EXPECT_GE(under.percentile(50.0), 0.2);
  EXPECT_LE(under.percentile(50.0), 0.9);

  Histogram over = Histogram::latency_us();
  over.record(2e7);
  over.record(5e7);
  EXPECT_DOUBLE_EQ(over.percentile(0.0), 2e7);
  EXPECT_DOUBLE_EQ(over.percentile(100.0), 5e7);
}

TEST(Histogram, NanIsIgnoredNotRecorded) {
  Histogram h = Histogram::latency_us();
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);  // still the empty histogram
  h.record(40.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);  // no NaN poisoning
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 40.0);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h = Histogram::latency_us();
  std::mt19937 rng(7);
  std::lognormal_distribution<double> dist(4.0, 1.5);
  for (int i = 0; i < 5000; ++i) h.record(dist(rng));
  double prev = h.percentile(0.0);
  for (double q = 5.0; q <= 100.0; q += 5.0) {
    const double cur = h.percentile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(Histogram, PercentileWithinOneBinOfExact) {
  // The documented accuracy contract: for in-range samples the estimate is
  // within one bin's width ratio of the exact sample percentile.
  Histogram h = Histogram::latency_us();
  const double bin_ratio =
      std::pow(h.upper_bound() / h.lower_bound(), 1.0 / static_cast<double>(h.num_bins()));
  std::vector<double> samples;
  std::mt19937 rng(21);
  std::lognormal_distribution<double> dist(5.0, 2.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::clamp(dist(rng), 2.0, 1e6);
    samples.push_back(x);
    h.record(x);
  }
  for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = percentile(samples, q);
    const double est = h.percentile(q);
    EXPECT_LE(est, exact * bin_ratio * (1.0 + 1e-9)) << "q=" << q;
    EXPECT_GE(est, exact / bin_ratio * (1.0 - 1e-9)) << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsSingleRecording) {
  Histogram a = Histogram::latency_us();
  Histogram b = Histogram::latency_us();
  Histogram all = Histogram::latency_us();
  std::mt19937 rng(33);
  std::lognormal_distribution<double> dist(3.0, 1.0);
  for (int i = 0; i < 4000; ++i) {
    const double x = dist(rng);
    ((i % 2 == 0) ? a : b).record(x);
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min_recorded(), all.min_recorded());
  EXPECT_DOUBLE_EQ(a.max_recorded(), all.max_recorded());
  for (double q : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, CrossChecksRunningStatsOnSameStream) {
  // Histogram, RunningStats and the exact percentile() must tell one
  // consistent story about the same sample stream.
  Histogram h = Histogram::latency_us();
  RunningStats rs;
  std::vector<double> samples;
  std::mt19937 rng(55);
  std::lognormal_distribution<double> dist(4.5, 0.8);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist(rng);
    h.record(x);
    rs.push(x);
    samples.push_back(x);
  }
  EXPECT_EQ(h.count(), rs.count());
  // Histogram tracks the exact sum, so its mean matches Welford's exactly
  // (up to accumulation-order rounding).
  EXPECT_NEAR(h.mean(), rs.mean(), 1e-9 * rs.mean());
  EXPECT_NEAR(h.mean(), mean(samples), 1e-9 * rs.mean());
  // Median estimate agrees with the exact percentile within bin resolution.
  const double bin_ratio =
      std::pow(h.upper_bound() / h.lower_bound(), 1.0 / static_cast<double>(h.num_bins()));
  const double exact_median = percentile(samples, 50.0);
  EXPECT_LE(h.percentile(50.0), exact_median * bin_ratio);
  EXPECT_GE(h.percentile(50.0), exact_median / bin_ratio);
  // And the exact extrema match min_value/max_value on the same samples.
  EXPECT_DOUBLE_EQ(h.min_recorded(), min_value(samples));
  EXPECT_DOUBLE_EQ(h.max_recorded(), max_value(samples));
}

TEST(Csv, RoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "noble_csv_test.csv";
  CsvWriter writer({"x", "y", "label"});
  writer.add_numeric_row({1.5, 2.5, 0.0});
  writer.add_row({"3", "4", "foo"});
  ASSERT_TRUE(writer.save(path));
  EXPECT_EQ(writer.row_count(), 2u);

  CsvTable table;
  ASSERT_TRUE(load_csv(path, /*has_header=*/true, table));
  ASSERT_EQ(table.header.size(), 3u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.column_index("label"), 2);
  EXPECT_EQ(table.column_index("missing"), -1);
  EXPECT_DOUBLE_EQ(table.number(0, "x"), 1.5);
  EXPECT_DOUBLE_EQ(table.number(1, "y"), 4.0);
  EXPECT_EQ(table.rows[1][2], "foo");
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileFails) {
  CsvTable table;
  EXPECT_FALSE(load_csv("/nonexistent/path/file.csv", true, table));
}

TEST(Config, EnvDefaults) {
  EXPECT_DOUBLE_EQ(env_double("NOBLE_UNSET_KNOB_X", 3.5), 3.5);
  EXPECT_EQ(env_int("NOBLE_UNSET_KNOB_Y", 42), 42);
  EXPECT_EQ(env_string("NOBLE_UNSET_KNOB_Z", "abc"), "abc");
}

TEST(Config, ScaledHasFloor) {
  EXPECT_GE(scaled(100, 8), 8u);
}

}  // namespace
}  // namespace noble
