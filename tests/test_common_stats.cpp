// Tests for descriptive statistics and CSV/config utilities.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/config.h"
#include "common/csv.h"
#include "common/stats.h"

namespace noble {
namespace {

TEST(Stats, MeanMedianBasic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MedianUnsortedInput) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 4.0, 1e-12);
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);
}

TEST(Stats, RmsOfConstant) {
  EXPECT_DOUBLE_EQ(rms({3.0, 3.0, 3.0}), 3.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> v{1.5, 2.5, -0.5, 4.0, 10.0, -3.0};
  RunningStats rs;
  for (double x : v) rs.push(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  // RunningStats uses the sample (n-1) variance.
  const double sample_var = variance(v) * static_cast<double>(v.size()) /
                            static_cast<double>(v.size() - 1);
  EXPECT_NEAR(rs.variance(), sample_var, 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Csv, RoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "noble_csv_test.csv";
  CsvWriter writer({"x", "y", "label"});
  writer.add_numeric_row({1.5, 2.5, 0.0});
  writer.add_row({"3", "4", "foo"});
  ASSERT_TRUE(writer.save(path));
  EXPECT_EQ(writer.row_count(), 2u);

  CsvTable table;
  ASSERT_TRUE(load_csv(path, /*has_header=*/true, table));
  ASSERT_EQ(table.header.size(), 3u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.column_index("label"), 2);
  EXPECT_EQ(table.column_index("missing"), -1);
  EXPECT_DOUBLE_EQ(table.number(0, "x"), 1.5);
  EXPECT_DOUBLE_EQ(table.number(1, "y"), 4.0);
  EXPECT_EQ(table.rows[1][2], "foo");
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileFails) {
  CsvTable table;
  EXPECT_FALSE(load_csv("/nonexistent/path/file.csv", true, table));
}

TEST(Config, EnvDefaults) {
  EXPECT_DOUBLE_EQ(env_double("NOBLE_UNSET_KNOB_X", 3.5), 3.5);
  EXPECT_EQ(env_int("NOBLE_UNSET_KNOB_Y", 42), 42);
  EXPECT_EQ(env_string("NOBLE_UNSET_KNOB_Z", "abc"), "abc");
}

TEST(Config, ScaledHasFloor) {
  EXPECT_GE(scaled(100, 8), 8u);
}

}  // namespace
}  // namespace noble
