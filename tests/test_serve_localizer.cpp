// Serve localizer tests: single-query == batched == dataset inference,
// const thread-safe locate(), and streaming TrackingSession equivalence
// with whole-path batch prediction.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "serve/artifact.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::serve {
namespace {

/// Small, fast Wi-Fi experiment + localizer shared by this suite.
struct WifiFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model;
};

const WifiFixture& wifi_fixture() {
  static const WifiFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1200;
    cfg.seed = 101;
    auto* f = new WifiFixture{make_uji_experiment(cfg), core::NobleWifiModel([] {
                                core::NobleWifiConfig mc;
                                mc.quantize.tau = 6.0;
                                mc.quantize.coarse_l = 24.0;
                                mc.epochs = 6;
                                mc.hidden_units = 32;
                                return mc;
                              }())};
    f->model.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

std::vector<RssiVector> test_queries(const WifiFixture& f, std::size_t count) {
  std::vector<RssiVector> queries;
  for (std::size_t i = 0; i < count && i < f.exp.split.test.size(); ++i) {
    queries.push_back(f.exp.split.test.samples[i].rssi);
  }
  return queries;
}

TEST(WifiLocalizer, MatchesDatasetPredictionWithoutDatasets) {
  const auto& f = wifi_fixture();
  const WifiLocalizer localizer = WifiLocalizer::from_model(f.model);
  EXPECT_EQ(localizer.num_aps(), f.model.input_dim());

  const auto expected = f.model.predict(f.exp.split.test);
  const auto queries = test_queries(f, 40);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Fix fix = localizer.locate(queries[i]);
    EXPECT_EQ(fix.building, expected[i].building);
    EXPECT_EQ(fix.floor, expected[i].floor);
    EXPECT_EQ(fix.fine_class, expected[i].fine_class);
    EXPECT_EQ(fix.position, expected[i].position);
    EXPECT_GT(fix.confidence, 0.0);
    EXPECT_LT(fix.confidence, 1.0);
  }
}

TEST(WifiLocalizer, BatchEqualsSingleQuery) {
  const auto& f = wifi_fixture();
  const WifiLocalizer localizer = WifiLocalizer::from_model(f.model);
  const auto queries = test_queries(f, 64);
  const auto batched = localizer.locate_batch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Fix single = localizer.locate(queries[i]);
    EXPECT_EQ(batched[i].fine_class, single.fine_class);
    EXPECT_EQ(batched[i].position, single.position);
    EXPECT_EQ(batched[i].confidence, single.confidence);
  }
  EXPECT_TRUE(localizer.locate_batch({}).empty());
}

TEST(WifiLocalizer, EmptyBatchReturnsEmptyWithoutGemm) {
  // Regression: the empty batch must short-circuit before the feature
  // matrix is built — no zero-row GEMM, no allocation-size edge cases.
  const auto& f = wifi_fixture();
  const WifiLocalizer localizer = WifiLocalizer::from_model(f.model);
  EXPECT_TRUE(localizer.locate_batch({}).empty());
  EXPECT_TRUE(localizer.locate_batch(std::vector<RssiVector>{}).empty());
}

TEST(WifiLocalizer, DuplicatedQueriesInOneBatchReturnIdenticalFixes) {
  // Regression: batching is per-row independent, so the same scan appearing
  // several times in one batch must decode to bit-identical fixes — and to
  // the single-query answer.
  const auto& f = wifi_fixture();
  const WifiLocalizer localizer = WifiLocalizer::from_model(f.model);
  const auto pool = test_queries(f, 8);
  ASSERT_GE(pool.size(), 3u);

  std::vector<RssiVector> batch;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& q : pool) batch.push_back(q);
  }
  batch.push_back(pool[1]);  // one extra straggler duplicate

  const auto fixes = localizer.locate_batch(batch);
  ASSERT_EQ(fixes.size(), batch.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Fix single = localizer.locate(pool[i]);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const Fix& dup = fixes[static_cast<std::size_t>(repeat) * pool.size() + i];
      EXPECT_EQ(dup.building, single.building);
      EXPECT_EQ(dup.floor, single.floor);
      EXPECT_EQ(dup.fine_class, single.fine_class);
      EXPECT_EQ(dup.position, single.position);
      EXPECT_EQ(dup.confidence, single.confidence);
    }
  }
  const Fix& straggler = fixes.back();
  EXPECT_EQ(straggler.position, fixes[1].position);
  EXPECT_EQ(straggler.confidence, fixes[1].confidence);
}

TEST(WifiLocalizer, ConstLocateIsThreadSafe) {
  // The serve contract: one localizer, many threads, no synchronization.
  // Run under -DNOBLE_SANITIZE=address,undefined in CI; any mutation in the
  // const inference path would also show up as cross-thread flakiness here.
  const auto& f = wifi_fixture();
  const WifiLocalizer localizer = WifiLocalizer::from_model(f.model);
  const auto queries = test_queries(f, 48);
  std::vector<Fix> expected;
  for (const auto& q : queries) expected.push_back(localizer.locate(q));

  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const Fix fix = localizer.locate(queries[i]);
          if (fix.fine_class != expected[i].fine_class ||
              fix.position != expected[i].position ||
              fix.confidence != expected[i].confidence) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(WifiLocalizer, LoadedFromArtifactServesIdentically) {
  const auto& f = wifi_fixture();
  const std::string path =
      (std::filesystem::temp_directory_path() / "noble_serve_wifi.bin").string();
  ASSERT_TRUE(save_model(f.model, path));
  const auto loaded = WifiLocalizer::load(path);
  ASSERT_TRUE(loaded.has_value());
  const WifiLocalizer in_memory = WifiLocalizer::from_model(f.model);
  for (const auto& q : test_queries(f, 24)) {
    const Fix a = loaded->locate(q);
    const Fix b = in_memory.locate(q);
    EXPECT_EQ(a.fine_class, b.fine_class);
    EXPECT_EQ(a.position, b.position);
    EXPECT_EQ(a.confidence, b.confidence);
  }
  EXPECT_FALSE(WifiLocalizer::load(path + ".absent").has_value());
  std::filesystem::remove(path);
}

/// Small, fast IMU experiment + tracker shared by this suite.
struct ImuFixture {
  core::ImuExperiment exp;
  core::NobleImuTracker tracker;
};

const ImuFixture& imu_fixture() {
  static const ImuFixture* fixture = [] {
    core::ImuExperimentConfig cfg;
    cfg.num_paths = 500;
    cfg.total_walk_time_s = 1200.0;
    cfg.readings_per_segment = 8;
    cfg.imu.ref_interval_s = 15.0;
    cfg.seed = 102;
    auto* f = new ImuFixture{make_imu_experiment(cfg), core::NobleImuTracker([] {
                               core::NobleImuConfig mc;
                               mc.quantize.tau = 2.0;
                               mc.epochs = 8;
                               mc.projection_dim = 6;
                               return mc;
                             }())};
    f->tracker.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

/// Splits one padded path into its real per-segment windows.
std::vector<ImuSegment> segments_of(const data::ImuPath& path,
                                    std::size_t segment_dim) {
  std::vector<ImuSegment> out;
  out.reserve(path.num_segments);
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    out.emplace_back(path.features.begin() + static_cast<std::ptrdiff_t>(s * segment_dim),
                     path.features.begin() +
                         static_cast<std::ptrdiff_t>((s + 1) * segment_dim));
  }
  return out;
}

TEST(TrackingSession, StreamingEqualsBatchPrediction) {
  // The §V deployment path: segments arrive one at a time, no pre-padded
  // dataset — yet the final fix must be bit-identical to batch inference.
  const auto& f = imu_fixture();
  const ImuLocalizer localizer = ImuLocalizer::from_model(f.tracker);
  const auto expected = f.tracker.predict(f.exp.split.test);

  const std::size_t checked = std::min<std::size_t>(f.exp.split.test.size(), 60);
  for (std::size_t i = 0; i < checked; ++i) {
    const auto& path = f.exp.split.test.paths[i];
    TrackingSession session = localizer.start_session(path.start);
    Fix fix = session.current();
    for (const auto& segment : segments_of(path, f.tracker.segment_dim())) {
      fix = session.update(segment);
    }
    EXPECT_EQ(session.segments_consumed(), path.num_segments);
    EXPECT_EQ(fix.fine_class, expected[i].fine_class) << "path " << i;
    EXPECT_EQ(fix.position, expected[i].position) << "path " << i;
    EXPECT_EQ(session.displacement(), expected[i].displacement) << "path " << i;

    // locate() is the one-shot form of the same session.
    const Fix whole =
        localizer.locate(path.start, segments_of(path, f.tracker.segment_dim()));
    EXPECT_EQ(whole.fine_class, fix.fine_class);
    EXPECT_EQ(whole.position, fix.position);
  }
}

TEST(TrackingSession, EveryIntermediateFixMatchesTruncatedBatch) {
  // Each mid-walk fix must equal batch prediction on the path truncated to
  // the segments seen so far — streaming is not just end-to-end equivalent.
  const auto& f = imu_fixture();
  const ImuLocalizer localizer = ImuLocalizer::from_model(f.tracker);
  const auto& path = f.exp.split.test.paths[0];
  ASSERT_GE(path.num_segments, 2u);

  data::ImuDataset prefixes;
  prefixes.segment_dim = f.exp.split.test.segment_dim;
  prefixes.max_segments = f.exp.split.test.max_segments;
  for (std::size_t s = 1; s <= path.num_segments; ++s) {
    data::ImuPath prefix = path;
    prefix.num_segments = s;
    prefixes.paths.push_back(std::move(prefix));
  }
  const auto expected = f.tracker.predict(prefixes);

  TrackingSession session = localizer.start_session(path.start);
  const auto segments = segments_of(path, f.tracker.segment_dim());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const Fix fix = session.update(segments[s]);
    EXPECT_EQ(fix.fine_class, expected[s].fine_class) << "prefix " << s + 1;
    EXPECT_EQ(fix.position, expected[s].position) << "prefix " << s + 1;
  }
}

TEST(TrackingSession, SegmentDisplacementsMatchBatchReusePath) {
  const auto& f = imu_fixture();
  const ImuLocalizer localizer = ImuLocalizer::from_model(f.tracker);
  data::ImuDataset one;
  one.segment_dim = f.exp.split.test.segment_dim;
  one.max_segments = f.exp.split.test.max_segments;
  one.paths.push_back(f.exp.split.test.paths[1]);
  const auto batch = f.tracker.predict_segment_displacements(one);
  ASSERT_EQ(batch.size(), 1u);

  const auto segments = segments_of(one.paths[0], f.tracker.segment_dim());
  ASSERT_EQ(batch[0].size(), segments.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    EXPECT_EQ(localizer.segment_displacement(segments[s]), batch[0][s]);
  }
}

TEST(TrackingSession, ConcurrentSessionsShareOneLocalizer) {
  const auto& f = imu_fixture();
  const ImuLocalizer localizer = ImuLocalizer::from_model(f.tracker);
  const auto& path = f.exp.split.test.paths[0];
  const auto segments = segments_of(path, f.tracker.segment_dim());
  const Fix expected = localizer.locate(path.start, segments);

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        TrackingSession session = localizer.start_session(path.start);
        Fix fix = session.current();
        for (const auto& segment : segments) fix = session.update(segment);
        if (fix.fine_class != expected.fine_class || fix.position != expected.position) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace noble::serve
