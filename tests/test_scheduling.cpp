// Scheduling tests (PR 9): EDF bulk-lane ordering determinism (ties, mixed
// deadline/no-deadline entries, all-expired pops), cross-session IMU
// coalescing bit-identity against direct TrackingSession inference, and
// per-session FIFO preserved under 8-thread pipelined load.
//
// Carries the `concurrency` CTest label and runs under
// -DNOBLE_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// EDF bulk-lane ordering: deterministic deadline-sorted draining.
// ---------------------------------------------------------------------------

TEST(EdfQueue, BulkDrainsByAscendingDeadline) {
  BoundedQueue<int> queue(8, ClassCaps{}, /*edf_bulk=*/true);
  const auto now = Clock::now();
  const auto at = [&](int ms) { return now + std::chrono::milliseconds(ms); };
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk, at(30000)), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk, at(10000)), PushResult::kOk);
  EXPECT_EQ(queue.try_push(3, RequestClass::kBulk, at(20000)), PushResult::kOk);
  std::vector<int> expired;
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0), &expired);
  EXPECT_TRUE(expired.empty());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 2);  // earliest deadline first, not arrival order
  EXPECT_EQ(batch[1], 3);
  EXPECT_EQ(batch[2], 1);
}

TEST(EdfQueue, TiesBreakByAdmissionSequence) {
  BoundedQueue<int> queue(8, ClassCaps{}, /*edf_bulk=*/true);
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.try_push(i, RequestClass::kBulk, deadline), PushResult::kOk);
  }
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<std::size_t>(i)], i);
}

TEST(EdfQueue, DeadlinelessEntriesSortLastInArrivalOrder) {
  BoundedQueue<int> queue(8, ClassCaps{}, /*edf_bulk=*/true);
  const auto now = Clock::now();
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk, now + std::chrono::seconds(60)),
            PushResult::kOk);
  EXPECT_EQ(queue.try_push(3, RequestClass::kBulk), PushResult::kOk);
  EXPECT_EQ(queue.try_push(4, RequestClass::kBulk, now + std::chrono::seconds(30)),
            PushResult::kOk);
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], 4);  // deadline-carrying entries first, ascending
  EXPECT_EQ(batch[1], 2);
  EXPECT_EQ(batch[2], 1);  // deadline-less tail keeps arrival order
  EXPECT_EQ(batch[3], 3);
}

TEST(EdfQueue, InteractiveLaneStaysFifoAndStillOutranksBulk) {
  BoundedQueue<int> queue(8, ClassCaps{}, /*edf_bulk=*/true);
  const auto now = Clock::now();
  // Interactive pushed with *decreasing* deadlines: EDF would reverse them,
  // FIFO must not.
  EXPECT_EQ(queue.try_push(1, RequestClass::kInteractive, now + std::chrono::seconds(30)),
            PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kInteractive, now + std::chrono::seconds(20)),
            PushResult::kOk);
  EXPECT_EQ(queue.try_push(10, RequestClass::kBulk, now + std::chrono::seconds(1)),
            PushResult::kOk);
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 1);   // arrival order within interactive
  EXPECT_EQ(batch[1], 2);
  EXPECT_EQ(batch[2], 10);  // bulk still fills after interactive
}

TEST(EdfQueue, AllExpiredPopReturnsCorpsesInDeadlineOrderWithoutWaiting) {
  BoundedQueue<int> queue(8, ClassCaps{}, /*edf_bulk=*/true);
  const auto past = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk, past), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk, past - std::chrono::milliseconds(2)),
            PushResult::kOk);
  EXPECT_EQ(queue.try_push(3, RequestClass::kBulk, past - std::chrono::milliseconds(1)),
            PushResult::kOk);
  std::vector<int> expired;
  const auto t0 = Clock::now();
  const auto batch = queue.pop_batch(8, std::chrono::seconds(30), &expired);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));  // corpse short-circuit
  EXPECT_TRUE(batch.empty());
  ASSERT_EQ(expired.size(), 3u);
  EXPECT_EQ(expired[0], 2);  // EDF order holds for the expired list too
  EXPECT_EQ(expired[1], 3);
  EXPECT_EQ(expired[2], 1);
}

TEST(EdfQueue, DefaultConstructionKeepsBulkFifo) {
  BoundedQueue<int> queue(8);  // edf_bulk defaults off at the queue level
  EXPECT_FALSE(queue.edf_bulk());
  const auto now = Clock::now();
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk, now + std::chrono::seconds(30)),
            PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk, now + std::chrono::seconds(10)),
            PushResult::kOk);
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);  // arrival order despite the later deadline
  EXPECT_EQ(batch[1], 2);
}

// ---------------------------------------------------------------------------
// Cross-session IMU coalescing: bit-identity and per-session FIFO.
// ---------------------------------------------------------------------------

struct SchedulingFixture {
  core::WifiExperiment wifi_exp;
  core::NobleWifiModel wifi_model;
  core::ImuExperiment imu_exp;
  core::NobleImuTracker imu_tracker;
};

const SchedulingFixture& scheduling_fixture() {
  static const SchedulingFixture* fixture = [] {
    core::WifiExperimentConfig wcfg;
    wcfg.total_samples = 600;
    wcfg.seed = 905;
    core::ImuExperimentConfig icfg;
    icfg.num_paths = 300;
    icfg.total_walk_time_s = 1000.0;
    icfg.readings_per_segment = 8;
    icfg.imu.ref_interval_s = 15.0;
    icfg.seed = 906;
    auto* f = new SchedulingFixture{core::make_uji_experiment(wcfg),
                                    core::NobleWifiModel([] {
                                      core::NobleWifiConfig mc;
                                      mc.quantize.tau = 6.0;
                                      mc.quantize.coarse_l = 24.0;
                                      mc.epochs = 4;
                                      mc.hidden_units = 32;
                                      return mc;
                                    }()),
                                    core::make_imu_experiment(icfg),
                                    core::NobleImuTracker([] {
                                      core::NobleImuConfig mc;
                                      mc.quantize.tau = 2.0;
                                      mc.epochs = 6;
                                      mc.projection_dim = 6;
                                      return mc;
                                    }())};
    f->wifi_model.fit(f->wifi_exp.split.train);
    f->imu_tracker.fit(f->imu_exp.split.train);
    return f;
  }();
  return *fixture;
}

std::vector<serve::ImuSegment> segments_of(const data::ImuPath& path,
                                           std::size_t segment_dim) {
  std::vector<serve::ImuSegment> out;
  out.reserve(path.num_segments);
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    out.emplace_back(
        path.features.begin() + static_cast<std::ptrdiff_t>(s * segment_dim),
        path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * segment_dim));
  }
  return out;
}

// The serve-layer coalescing contract: one update_sessions pass over K
// different tracks returns exactly the fixes K serial update() calls would —
// every module in the path is row-independent, so the batch dimension never
// leaks between tracks.
TEST(SessionCoalescing, UpdateSessionsBitIdenticalToSerialUpdates) {
  const auto& f = scheduling_fixture();
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(f.imu_tracker);
  const std::size_t num_tracks = std::min<std::size_t>(f.imu_exp.split.test.size(), 8);
  ASSERT_GE(num_tracks, 8u);

  std::vector<serve::TrackingSession> batched;
  std::vector<serve::TrackingSession> serial;
  std::vector<std::vector<serve::ImuSegment>> tracks;
  std::size_t rounds = 0;
  for (std::size_t p = 0; p < num_tracks; ++p) {
    const auto& path = f.imu_exp.split.test.paths[p];
    batched.push_back(imu.start_session(path.start));
    serial.push_back(imu.start_session(path.start));
    tracks.push_back(segments_of(path, f.imu_tracker.segment_dim()));
    rounds = std::max(rounds, tracks.back().size());
  }
  ASSERT_GT(rounds, 0u);

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<serve::TrackingSession*> sessions;
    std::vector<const serve::ImuSegment*> segments;
    std::vector<serve::Fix> expected;
    for (std::size_t p = 0; p < num_tracks; ++p) {
      if (round >= tracks[p].size()) continue;  // ragged: shorter walks drop out
      sessions.push_back(&batched[p]);
      segments.push_back(&tracks[p][round]);
      expected.push_back(serial[p].update(tracks[p][round]));
    }
    if (sessions.empty()) break;
    const std::vector<serve::Fix> fixes = imu.update_sessions(sessions, segments);
    ASSERT_EQ(fixes.size(), expected.size());
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      EXPECT_TRUE(fixes[i] == expected[i]) << "round " << round << " track " << i;
    }
  }
  for (std::size_t p = 0; p < num_tracks; ++p) {
    EXPECT_EQ(batched[p].segments_consumed(), serial[p].segments_consumed());
    EXPECT_EQ(batched[p].displacement().x, serial[p].displacement().x);
    EXPECT_EQ(batched[p].displacement().y, serial[p].displacement().y);
  }
}

// Engine-level: 8 producer threads pipeline updates into 8 sessions with a
// single worker (tokens pile up, so pops carry several sessions and the
// coalesced drain actually batches across tracks). Every fix must match a
// direct TrackingSession replay — which simultaneously proves per-session
// FIFO: any reordering within a track would change its running sum and the
// fixes after it.
TEST(SessionCoalescing, PipelinedEngineMatchesDirectTrackingAcross8Threads) {
  const auto& f = scheduling_fixture();
  const serve::WifiLocalizer wifi = serve::WifiLocalizer::from_model(f.wifi_model);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(f.imu_tracker);

  EngineConfig cfg;
  cfg.workers = 1;  // force token pile-up => cross-session batches
  cfg.max_batch = 16;
  cfg.queue_cap = 1024;
  cfg.session_backlog = 256;
  ASSERT_TRUE(cfg.coalesce_sessions);  // the PR default under test
  Engine engine(wifi, imu, cfg);
  ASSERT_TRUE(engine.has_imu());

  const std::size_t num_tracks = std::min<std::size_t>(f.imu_exp.split.test.size(), 8);
  ASSERT_GE(num_tracks, 8u);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  producers.reserve(num_tracks);
  for (std::size_t p = 0; p < num_tracks; ++p) {
    producers.emplace_back([&, p] {
      const auto& path = f.imu_exp.split.test.paths[p];
      const auto segments = segments_of(path, f.imu_tracker.segment_dim());
      serve::TrackingSession direct = imu.start_session(path.start);
      std::vector<serve::Fix> expected;
      expected.reserve(segments.size());
      for (const auto& segment : segments) expected.push_back(direct.update(segment));

      const auto session = engine.open_session(path.start);
      ASSERT_TRUE(session.has_value());
      std::vector<std::future<serve::Fix>> fixes;
      fixes.reserve(segments.size());
      for (const auto& segment : segments) {
        Submission s = engine.track(*session, segment);
        while (s.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = engine.track(*session, segment);
        }
        ASSERT_TRUE(s.accepted());
        fixes.push_back(std::move(s.result));
      }
      for (std::size_t i = 0; i < fixes.size(); ++i) {
        if (!(fixes[i].get() == expected[i])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      EXPECT_TRUE(engine.close_session(*session));
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // The coalesced path really ran: imu_batches counts only cross-session
  // drains (a lone token takes the serialized path).
  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.imu_batches, 0u);
}

// Scheduling modes agree: the same pipelined workload through a coalescing
// engine and a serialized-per-track engine yields identical fix streams.
TEST(SessionCoalescing, CoalescedAndSerializedEnginesProduceIdenticalFixes) {
  const auto& f = scheduling_fixture();
  const serve::WifiLocalizer wifi = serve::WifiLocalizer::from_model(f.wifi_model);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(f.imu_tracker);

  const std::size_t num_tracks = std::min<std::size_t>(f.imu_exp.split.test.size(), 8);
  ASSERT_GE(num_tracks, 2u);

  const auto run_engine = [&](bool coalesce) {
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 16;
    cfg.queue_cap = 1024;
    cfg.session_backlog = 256;
    cfg.coalesce_sessions = coalesce;
    Engine engine(wifi, imu, cfg);
    std::vector<std::vector<std::future<serve::Fix>>> futures(num_tracks);
    std::vector<std::optional<SessionId>> ids(num_tracks);
    for (std::size_t p = 0; p < num_tracks; ++p) {
      ids[p] = engine.open_session(f.imu_exp.split.test.paths[p].start);
    }
    // Round-robin pipelined submission: interleaves tracks so both modes
    // see multi-session batches in flight.
    for (std::size_t round = 0;; ++round) {
      bool any = false;
      for (std::size_t p = 0; p < num_tracks; ++p) {
        const auto segments =
            segments_of(f.imu_exp.split.test.paths[p], f.imu_tracker.segment_dim());
        if (round >= segments.size()) continue;
        any = true;
        Submission s = engine.track(*ids[p], segments[round]);
        while (s.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = engine.track(*ids[p], segments[round]);
        }
        futures[p].push_back(std::move(s.result));
      }
      if (!any) break;
    }
    std::vector<std::vector<serve::Fix>> fixes(num_tracks);
    for (std::size_t p = 0; p < num_tracks; ++p) {
      for (auto& future : futures[p]) fixes[p].push_back(future.get());
    }
    return fixes;
  };

  const auto coalesced = run_engine(true);
  const auto serialized = run_engine(false);
  ASSERT_EQ(coalesced.size(), serialized.size());
  for (std::size_t p = 0; p < num_tracks; ++p) {
    ASSERT_EQ(coalesced[p].size(), serialized[p].size());
    for (std::size_t i = 0; i < coalesced[p].size(); ++i) {
      EXPECT_TRUE(coalesced[p][i] == serialized[p][i]) << "track " << p << " fix " << i;
    }
  }
}

}  // namespace
}  // namespace noble::engine
