// Fleet router tests: shard-keyed routing equivalence (dense and quantized
// backends, cache on and off), consistent kQueueFull fallback inside a
// shard, merged EngineStats/Histogram fleet views against pooled-sample
// ground truth, and hot-swap semantics (fresh caches, invalidated
// sessions — a stale model's fix never outlives its model).
//
// The concurrency tests here carry the `concurrency` CTest label and run
// under -DNOBLE_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <map>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/backend.h"
#include "fleet/router.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::fleet {
namespace {

bool fixes_identical(const serve::Fix& a, const serve::Fix& b) { return a == b; }

// Two fitted models over the same campus: B uses a different quantization
// grid, so the two disagree on (at least some) fixes — the property the
// hot-swap staleness test needs.
struct FleetFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model_a;
  core::NobleWifiModel model_b;
};

const FleetFixture& fleet_fixture() {
  static const FleetFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1200;
    cfg.seed = 515;
    auto make_config = [](double tau, std::uint64_t seed) {
      core::NobleWifiConfig mc;
      mc.quantize.tau = tau;
      mc.quantize.coarse_l = tau * 4.0;
      mc.epochs = 6;
      mc.hidden_units = 32;
      mc.seed = seed;
      return mc;
    };
    auto* f = new FleetFixture{core::make_uji_experiment(cfg),
                               core::NobleWifiModel(make_config(6.0, 42)),
                               core::NobleWifiModel(make_config(8.0, 99))};
    f->model_a.fit(f->exp.split.train);
    f->model_b.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

const serve::WifiLocalizer& localizer_a() {
  static const serve::WifiLocalizer* l =
      new serve::WifiLocalizer(serve::WifiLocalizer::from_model(fleet_fixture().model_a));
  return *l;
}

const serve::WifiLocalizer& localizer_b() {
  static const serve::WifiLocalizer* l =
      new serve::WifiLocalizer(serve::WifiLocalizer::from_model(fleet_fixture().model_b));
  return *l;
}

std::vector<serve::RssiVector> query_pool(std::size_t count) {
  const auto& f = fleet_fixture();
  std::vector<serve::RssiVector> queries;
  for (std::size_t i = 0; i < count && i < f.exp.split.test.size(); ++i) {
    queries.push_back(f.exp.split.test.samples[i].rssi);
  }
  return queries;
}

ShardConfig shard_config(std::string key, std::size_t engines = 1) {
  ShardConfig cfg;
  cfg.key = std::move(key);
  cfg.engines = engines;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 8;
  cfg.engine.max_wait_us = 100;
  cfg.engine.queue_cap = 1024;
  return cfg;
}

// The fleet-level equivalence contract: through any shard, with the cache
// on or off, every routed fix is bit-identical to direct inference on that
// shard's model — under concurrent traffic to all shards at once.
TEST(Router, RoutedFixesBitIdenticalToDirectPerShard) {
  const auto queries = query_pool(48);
  ASSERT_FALSE(queries.empty());
  std::vector<serve::Fix> expected_a, expected_b;
  for (const auto& q : queries) {
    expected_a.push_back(localizer_a().locate(q));
    expected_b.push_back(localizer_b().locate(q));
  }

  Router router;
  ShardConfig a = shard_config("bldg-A", 2);
  ShardConfig b = shard_config("bldg-B");
  b.engine.cache_capacity = 256;  // one shard exercises the cached path
  ASSERT_TRUE(router.add_shard(a, localizer_a()));
  ASSERT_TRUE(router.add_shard(b, localizer_b()));
  ASSERT_TRUE(router.has_shard("bldg-A"));
  EXPECT_EQ(router.num_shards(), 2u);

  constexpr int kClients = 4;
  constexpr int kPerClient = 150;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(4000 + c));
      std::uniform_int_distribution<std::size_t> pick(0, queries.size() - 1);
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t q = pick(rng);
        const bool to_a = (r + c) % 2 == 0;
        engine::Submission s = router.submit(to_a ? "bldg-A" : "bldg-B", queries[q]);
        while (s.status == engine::SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = router.submit(to_a ? "bldg-A" : "bldg-B", queries[q]);
        }
        ASSERT_TRUE(s.accepted());
        const serve::Fix fix = s.result.get();
        if (!fixes_identical(fix, to_a ? expected_a[q] : expected_b[q])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Two sequential repeats of one scan make at least one cache hit certain
  // (the concurrent phase above already repeats scans, but racing identical
  // submissions may all miss).
  for (int i = 0; i < 2; ++i) {
    engine::Submission s = router.submit("bldg-B", queries[0]);
    ASSERT_TRUE(s.accepted());
    EXPECT_TRUE(fixes_identical(s.result.get(), expected_b[0]));
  }

  const FleetStats stats = router.stats();
  EXPECT_EQ(stats.num_shards, 2u);
  EXPECT_EQ(stats.num_engines, 3u);
  ASSERT_EQ(stats.shards.size(), 2u);
  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(kClients) * kPerClient + 2;
  EXPECT_EQ(stats.total.completed, total_requests);
  EXPECT_EQ(stats.shards.at("bldg-A").completed + stats.shards.at("bldg-B").completed,
            total_requests);
  EXPECT_EQ(stats.total.latency_us.count(), stats.total.completed);
  // The cached shard saw repeated scans (48 distinct queries, ~300 requests).
  EXPECT_GT(stats.shards.at("bldg-B").cache_hits, 0u);
  EXPECT_EQ(stats.shards.at("bldg-A").cache_hits, 0u);
}

TEST(Router, QuantizedShardMatchesDirectQuantizedInference) {
  const auto queries = query_pool(32);
  ASSERT_FALSE(queries.empty());
  const engine::QuantizedBackend reference(localizer_a());
  std::vector<serve::Fix> expected;
  for (const auto& q : queries) {
    expected.push_back(reference.locate_batch(std::span(&q, 1)).front());
  }

  Router router;
  ShardConfig cfg = shard_config("bldg-Q");
  cfg.engine.backend = engine::BackendKind::kQuantized;
  ASSERT_TRUE(router.add_shard(cfg, localizer_a()));

  for (std::size_t i = 0; i < queries.size(); ++i) {
    engine::Submission s = router.submit("bldg-Q", queries[i]);
    ASSERT_TRUE(s.accepted());
    EXPECT_TRUE(fixes_identical(s.result.get(), expected[i])) << "query " << i;
  }
}

TEST(Router, UnknownShardIsAnExplicitVerdict) {
  Router router;
  ASSERT_TRUE(router.add_shard(shard_config("known"), localizer_a()));
  const auto queries = query_pool(1);
  ASSERT_FALSE(queries.empty());
  EXPECT_EQ(router.submit("unknown", queries[0]).status, engine::SubmitStatus::kNoShard);
  EXPECT_FALSE(router.open_session("unknown", geo::Point2{0.0, 0.0}).has_value());
  EXPECT_FALSE(router.hot_swap("unknown", localizer_a()));
  EXPECT_FALSE(router.has_shard("unknown"));
  // Duplicate keys and empty keys are rejected, not overwritten.
  EXPECT_FALSE(router.add_shard(shard_config("known"), localizer_b()));
  EXPECT_FALSE(router.add_shard(shard_config(""), localizer_a()));
  EXPECT_EQ(router.num_shards(), 1u);
}

TEST(Router, FallbackIsConsistentAndSpillsOnlyWhenFull) {
  const auto queries = query_pool(8);
  ASSERT_FALSE(queries.empty());

  // Unloaded: the same scan must land on the same engine every time (the
  // affinity that keeps per-engine caches hot).
  {
    Router router;
    ASSERT_TRUE(router.add_shard(shard_config("S", 2), localizer_a()));
    for (int r = 0; r < 6; ++r) {
      engine::Submission s = router.submit("S", queries[0]);
      ASSERT_TRUE(s.accepted());
      (void)s.result.get();
    }
    const auto engines = router.shard_engine_stats("S");
    ASSERT_EQ(engines.size(), 2u);
    const auto served = std::max(engines[0].completed, engines[1].completed);
    EXPECT_EQ(served, 6u);  // all six on one engine, none spilled
  }

  // Overloaded: tiny queues + tight-loop flood forces kQueueFull on the
  // primary; the router must spill to the sibling replica and every
  // accepted future must still be bit-identical to direct inference.
  {
    Router router;
    ShardConfig cfg = shard_config("S", 2);
    cfg.engine.workers = 1;
    cfg.engine.max_batch = 2;
    cfg.engine.max_wait_us = 0;
    cfg.engine.queue_cap = 2;
    ASSERT_TRUE(router.add_shard(cfg, localizer_a()));
    const serve::Fix expected = localizer_a().locate(queries[0]);

    constexpr int kClients = 3;
    constexpr int kPerClient = 400;
    std::atomic<int> mismatches{0};
    std::atomic<std::uint64_t> accepted{0}, rejected{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        std::vector<std::future<serve::Fix>> inflight;
        for (int r = 0; r < kPerClient; ++r) {
          engine::Submission s = router.submit("S", queries[0]);
          if (s.accepted()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            inflight.push_back(std::move(s.result));
          } else {
            ASSERT_EQ(s.status, engine::SubmitStatus::kQueueFull);
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
          if (inflight.size() >= 32) {
            for (auto& f : inflight) {
              if (!fixes_identical(f.get(), expected)) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
            inflight.clear();
          }
        }
        for (auto& f : inflight) {
          if (!fixes_identical(f.get(), expected)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& client : clients) client.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(accepted.load() + rejected.load(),
              static_cast<std::uint64_t>(kClients) * kPerClient);
    const auto engines = router.shard_engine_stats("S");
    ASSERT_EQ(engines.size(), 2u);
    // A single scan keys a single primary, so any work on the *other*
    // engine is fallback spill — and a 2-slot queue under a 3-thread
    // tight-loop flood overflows with certainty.
    EXPECT_GT(std::min(engines[0].completed, engines[1].completed), 0u);
    EXPECT_GT(rejected.load(), 0u);
  }
}

// Merged fleet percentiles vs pooled-sample ground truth: merging per-engine
// histograms must agree with percentiles of the pooled raw samples to
// within one log-bin's width ratio (the Histogram accuracy contract).
TEST(FleetStats, MergedPercentilesMatchPooledSamples) {
  std::mt19937 rng(77);
  std::lognormal_distribution<double> fast(std::log(180.0), 0.35);   // "engine 0"
  std::lognormal_distribution<double> slow(std::log(2400.0), 0.55);  // "engine 1"

  engine::EngineStats a, b;
  std::vector<double> pooled;
  for (int i = 0; i < 4000; ++i) {
    const double ua = fast(rng);
    a.latency_us.record(ua);
    pooled.push_back(ua);
  }
  a.completed = 4000;
  for (int i = 0; i < 1000; ++i) {
    const double ub = slow(rng);
    b.latency_us.record(ub);
    pooled.push_back(ub);
  }
  b.completed = 1000;

  engine::EngineStats merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.completed, 5000u);
  EXPECT_EQ(merged.latency_us.count(), 5000u);
  EXPECT_EQ(merged.latency_us.min_recorded(),
            std::min(a.latency_us.min_recorded(), b.latency_us.min_recorded()));
  EXPECT_EQ(merged.latency_us.max_recorded(),
            std::max(a.latency_us.max_recorded(), b.latency_us.max_recorded()));

  // One latency bin spans a factor of (1e7/1)^(1/140) ~= 1.122.
  const double bin_ratio = std::pow(1e7, 1.0 / 140.0);
  for (const double q : {50.0, 95.0, 99.0}) {
    const double exact = percentile(pooled, q);
    const double approx = merged.latency_us.percentile(q);
    EXPECT_LE(approx, exact * bin_ratio) << "q=" << q;
    EXPECT_GE(approx, exact / bin_ratio) << "q=" << q;
  }
  // The convenience fields were recomputed from the merged histogram.
  EXPECT_EQ(merged.latency_p50_us, merged.latency_us.percentile(50.0));
  EXPECT_EQ(merged.latency_p99_us, merged.latency_us.percentile(99.0));
}

TEST(FleetStats, LiveRouterTotalsAreTheSumOfShards) {
  const auto queries = query_pool(16);
  ASSERT_FALSE(queries.empty());
  Router router;
  ASSERT_TRUE(router.add_shard(shard_config("A", 2), localizer_a()));
  ASSERT_TRUE(router.add_shard(shard_config("B"), localizer_b()));
  for (int r = 0; r < 40; ++r) {
    engine::Submission s =
        router.submit(r % 2 == 0 ? "A" : "B", queries[static_cast<std::size_t>(r) % queries.size()]);
    ASSERT_TRUE(s.accepted());
    (void)s.result.get();
  }
  const FleetStats stats = router.stats();
  std::uint64_t shard_completed = 0, shard_batches = 0;
  std::uint64_t shard_latency_count = 0;
  for (const auto& [key, s] : stats.shards) {
    shard_completed += s.completed;
    shard_batches += s.batches;
    shard_latency_count += s.latency_us.count();
  }
  EXPECT_EQ(stats.total.completed, 40u);
  EXPECT_EQ(shard_completed, 40u);
  EXPECT_EQ(stats.total.batches, shard_batches);
  EXPECT_EQ(stats.total.latency_us.count(), shard_latency_count);
  EXPECT_GE(stats.total.latency_p50_us, stats.total.latency_us.min_recorded());
  EXPECT_LE(stats.total.latency_p50_us, stats.total.latency_us.max_recorded());
}

// Artifact identity: the digest two cluster nodes compare before a spilled
// request may land, surfaced through every telemetry view of the router.
TEST(RouterArtifacts, DigestsIdentifyModelsAcrossShardsSwapsAndStats) {
  Router router;
  ASSERT_TRUE(router.add_shard(shard_config("A"), localizer_a()));
  ASSERT_TRUE(router.add_shard(shard_config("A2"), localizer_a()));
  ASSERT_TRUE(router.add_shard(shard_config("B"), localizer_b()));

  // Same model => same digest (content identity, not per-shard identity);
  // different model => different digest; no digest is the zero sentinel.
  std::map<std::string, ShardArtifact> by_key;
  for (ShardArtifact& artifact : router.shard_artifacts()) {
    by_key.emplace(artifact.shard, std::move(artifact));
  }
  ASSERT_EQ(by_key.size(), 3u);
  EXPECT_NE(by_key.at("A").digest, 0u);
  EXPECT_EQ(by_key.at("A").digest, localizer_a().artifact_digest());
  EXPECT_EQ(by_key.at("A").digest, by_key.at("A2").digest);
  EXPECT_NE(by_key.at("A").digest, by_key.at("B").digest);
  EXPECT_EQ(by_key.at("B").digest, localizer_b().artifact_digest());

  // FleetStats carries the same identity plus the live generation.
  const FleetStats before = router.stats();
  ASSERT_EQ(before.artifacts.size(), 3u);
  EXPECT_EQ(before.artifacts.at("A").digest, localizer_a().artifact_digest());
  EXPECT_EQ(before.artifacts.at("B").digest, localizer_b().artifact_digest());

  // hot_swap changes the digest and bumps the generation in both views.
  ASSERT_TRUE(router.hot_swap("A", localizer_b()));
  const FleetStats after = router.stats();
  EXPECT_EQ(after.artifacts.at("A").digest, localizer_b().artifact_digest());
  EXPECT_GT(after.artifacts.at("A").generation, before.artifacts.at("A").generation);
  for (const ShardArtifact& artifact : router.shard_artifacts()) {
    if (artifact.shard == "A") {
      EXPECT_EQ(artifact.digest, localizer_b().artifact_digest());
      EXPECT_EQ(artifact.generation, after.artifacts.at("A").generation);
    }
    if (artifact.shard == "A2") {
      EXPECT_EQ(artifact.digest, localizer_a().artifact_digest());
    }
  }

  // The depth snapshot names every shard with one bulk lane per engine —
  // the other half of the heartbeat payload.
  const auto depths = router.queue_depths();
  ASSERT_EQ(depths.size(), 3u);
  for (const ShardDepths& depth : depths) {
    EXPECT_EQ(depth.engines.size(), depth.bulk.size());
    EXPECT_EQ(depth.engines.size(), 1u);
  }
}

// Hot swap: the replacement generation starts with an empty cache, so a fix
// cached from the old model can never be served once the shard's model
// changed — the cache-staleness half of the acceptance criteria.
TEST(RouterHotSwap, CachedFixNeverOutlivesItsModel) {
  const auto queries = query_pool(48);
  ASSERT_FALSE(queries.empty());
  // A scan the two models disagree on makes staleness observable.
  std::size_t probe = queries.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!fixes_identical(localizer_a().locate(queries[i]), localizer_b().locate(queries[i]))) {
      probe = i;
      break;
    }
  }
  ASSERT_LT(probe, queries.size())
      << "fixture models with different grids must disagree somewhere";

  Router router;
  ShardConfig cfg = shard_config("swap");
  cfg.engine.cache_capacity = 256;
  ASSERT_TRUE(router.add_shard(cfg, localizer_a()));

  engine::Submission warm = router.submit("swap", queries[probe]);
  ASSERT_TRUE(warm.accepted());
  EXPECT_TRUE(fixes_identical(warm.result.get(), localizer_a().locate(queries[probe])));
  engine::Submission hit = router.submit("swap", queries[probe]);
  ASSERT_TRUE(hit.accepted());
  (void)hit.result.get();
  EXPECT_EQ(router.shard_engine_stats("swap").front().cache_hits, 1u);

  ASSERT_TRUE(router.hot_swap("swap", localizer_b()));

  engine::Submission after = router.submit("swap", queries[probe]);
  ASSERT_TRUE(after.accepted());
  const serve::Fix fix = after.result.get();
  EXPECT_TRUE(fixes_identical(fix, localizer_b().locate(queries[probe])));
  EXPECT_FALSE(fixes_identical(fix, localizer_a().locate(queries[probe])));
  const auto engines = router.shard_engine_stats("swap");
  ASSERT_EQ(engines.size(), 1u);
  EXPECT_EQ(engines.front().cache_hits, 0u);  // fresh generation, fresh cache
}

TEST(RouterHotSwap, SessionsAreStickyToTheirGeneration) {
  // A small IMU tracker so the shard can host streaming sessions.
  core::ImuExperimentConfig icfg;
  icfg.num_paths = 200;
  icfg.total_walk_time_s = 600.0;
  icfg.readings_per_segment = 8;
  icfg.imu.ref_interval_s = 15.0;
  icfg.seed = 516;
  core::ImuExperiment iexp = core::make_imu_experiment(icfg);
  core::NobleImuConfig imc;
  imc.quantize.tau = 2.0;
  imc.epochs = 4;
  imc.projection_dim = 6;
  core::NobleImuTracker tracker(imc);
  tracker.fit(iexp.split.train);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(tracker);

  Router router;
  ASSERT_TRUE(router.add_shard(shard_config("swap"), localizer_a(), imu));
  const auto& path = iexp.split.test.paths.front();
  const auto session = router.open_session("swap", path.start);
  ASSERT_TRUE(session.has_value());

  const serve::ImuSegment segment(tracker.segment_dim(), 0.0f);
  engine::Submission before = router.track(*session, segment);
  ASSERT_TRUE(before.accepted());
  (void)before.result.get();

  ASSERT_TRUE(router.hot_swap("swap", localizer_a(), imu));
  // The old generation is gone: its sessions do not resolve on the new one.
  EXPECT_EQ(router.track(*session, segment).status, engine::SubmitStatus::kNoSession);
  EXPECT_FALSE(router.close_session(*session));
  // New sessions open against the replacement generation.
  const auto fresh = router.open_session("swap", path.start);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_NE(fresh->generation, session->generation);
  engine::Submission after = router.track(*fresh, segment);
  ASSERT_TRUE(after.accepted());
  (void)after.result.get();
}

}  // namespace
}  // namespace noble::fleet
