// Engine tests: bounded-queue semantics (deterministic backpressure and
// batching), the engine equivalence contract (batched output bit-identical
// to direct locate() under concurrency), session multiplexing, admission
// control under flood, telemetry, and graceful shutdown.
//
// The concurrency tests here carry the `concurrency` CTest label and run
// under -DNOBLE_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/backend.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "kernels/kernels.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue: the deterministic half of admission control.
// ---------------------------------------------------------------------------

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), PushResult::kOk);
  EXPECT_EQ(queue.try_push(3), PushResult::kFull);
  EXPECT_EQ(queue.depth(), 2u);

  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_EQ(queue.try_push(4), PushResult::kOk);  // capacity freed
}

TEST(BoundedQueue, PopBatchHonorsMaxItems) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.try_push(i), PushResult::kOk);
  const auto first = queue.pop_batch(3, std::chrono::microseconds(0));
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[2], 2);
  EXPECT_EQ(queue.depth(), 2u);
  const auto rest = queue.pop_batch(3, std::chrono::microseconds(0));
  EXPECT_EQ(rest.size(), 2u);
}

TEST(BoundedQueue, FullBatchReturnsWithoutWaitingOutTheWindow) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(queue.try_push(i), PushResult::kOk);
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = queue.pop_batch(4, std::chrono::seconds(30));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(elapsed, std::chrono::seconds(5));  // did not sit out the window
}

TEST(BoundedQueue, UnderfullBatchServedAfterWindowExpires) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.try_push(42), PushResult::kOk);
  const auto batch = queue.pop_batch(4, std::chrono::milliseconds(5));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 42);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  queue.close();
  EXPECT_EQ(queue.try_push(2), PushResult::kClosed);
  const auto drained = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(drained.size(), 1u);  // close() does not drop queued work
  EXPECT_TRUE(queue.pop_batch(8, std::chrono::microseconds(0)).empty());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    (void)queue.pop_batch(4, std::chrono::seconds(30));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

// ---------------------------------------------------------------------------
// Engine: shared small fixtures (mirrors test_serve_localizer's sizing).
// ---------------------------------------------------------------------------

struct EngineFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model;
};

const EngineFixture& engine_fixture() {
  static const EngineFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1200;
    cfg.seed = 303;
    auto* f = new EngineFixture{core::make_uji_experiment(cfg), core::NobleWifiModel([] {
                                  core::NobleWifiConfig mc;
                                  mc.quantize.tau = 6.0;
                                  mc.quantize.coarse_l = 24.0;
                                  mc.epochs = 6;
                                  mc.hidden_units = 32;
                                  return mc;
                                }())};
    f->model.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

const serve::WifiLocalizer& reference_localizer() {
  static const serve::WifiLocalizer* localizer =
      new serve::WifiLocalizer(serve::WifiLocalizer::from_model(engine_fixture().model));
  return *localizer;
}

std::vector<serve::RssiVector> query_pool(std::size_t count) {
  const auto& f = engine_fixture();
  std::vector<serve::RssiVector> queries;
  for (std::size_t i = 0; i < count && i < f.exp.split.test.size(); ++i) {
    queries.push_back(f.exp.split.test.samples[i].rssi);
  }
  return queries;
}

bool fixes_identical(const serve::Fix& a, const serve::Fix& b) { return a == b; }

// The tentpole contract: for >= 1000 randomly timed concurrent requests,
// every future is bit-identical to a direct locate() on the same query, no
// matter how the batcher grouped them.
TEST(Engine, ConcurrentResultsBitIdenticalToDirectLocate) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(96);
  ASSERT_FALSE(queries.empty());
  std::vector<serve::Fix> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) expected.push_back(localizer.locate(q));

  EngineConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 16;
  cfg.max_wait_us = 100;
  cfg.queue_cap = 4096;
  Engine engine(localizer, cfg);

  constexpr int kClients = 8;
  constexpr int kPerClient = 160;  // 8 * 160 = 1280 >= 1000 requests
  std::atomic<int> mismatches{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(1000 + c));
      std::uniform_int_distribution<std::size_t> pick(0, queries.size() - 1);
      std::uniform_int_distribution<int> jitter_us(0, 200);
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t q = pick(rng);
        Submission submission = engine.submit(queries[q]);
        while (submission.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          submission = engine.submit(queries[q]);
        }
        ASSERT_TRUE(submission.accepted());
        const serve::Fix fix = submission.result.get();
        if (!fixes_identical(fix, expected[q])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
        // Randomly timed arrivals: sometimes bursty, sometimes spaced, so
        // the batcher sees every micro-batch size.
        if (r % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(accepted.load(), kClients * kPerClient);
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.batch_size.max_recorded(), 1.0);
  EXPECT_LE(stats.batch_size.max_recorded(), static_cast<double>(cfg.max_batch));
}

TEST(Engine, RejectsWrongDimensionWithoutQueueing) {
  Engine engine(reference_localizer());
  const Submission s = engine.submit(serve::RssiVector(3, 0.0f));
  EXPECT_EQ(s.status, SubmitStatus::kBadDimension);
  EXPECT_FALSE(s.result.valid());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Engine, FloodAgainstTinyQueueDegradesPredictably) {
  // Admission control under overload: with a deliberately tiny queue and a
  // slow single worker, tight-loop submitters must see explicit kQueueFull
  // rejections — and every accepted future must still resolve correctly.
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(8);
  std::vector<serve::Fix> expected;
  for (const auto& q : queries) expected.push_back(localizer.locate(q));

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  cfg.max_wait_us = 0;
  cfg.queue_cap = 4;
  Engine engine(localizer, cfg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 500;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<std::size_t, std::future<serve::Fix>>> inflight;
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t q = static_cast<std::size_t>(c + r) % queries.size();
        Submission s = engine.submit(queries[q]);
        if (s.accepted()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          inflight.emplace_back(q, std::move(s.result));
        } else {
          ASSERT_EQ(s.status, SubmitStatus::kQueueFull);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
        if (inflight.size() >= 64) {
          for (auto& [qi, fut] : inflight) {
            if (!fixes_identical(fut.get(), expected[qi])) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
          inflight.clear();
        }
      }
      for (auto& [qi, fut] : inflight) {
        if (!fixes_identical(fut.get(), expected[qi])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  // 4 tight-loop submitters against a 4-slot queue: overload is certain.
  EXPECT_GT(rejected.load(), 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed, accepted.load());
}

TEST(Engine, ShutdownDrainsEveryAcceptedRequest) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(32);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 8;
  cfg.queue_cap = 1024;
  Engine engine(localizer, cfg);

  std::vector<std::pair<std::size_t, std::future<serve::Fix>>> inflight;
  for (int r = 0; r < 128; ++r) {
    const std::size_t q = static_cast<std::size_t>(r) % queries.size();
    Submission s = engine.submit(queries[q]);
    if (s.accepted()) inflight.emplace_back(q, std::move(s.result));
  }
  engine.shutdown();

  // Every accepted future is fulfilled by the drain, none abandoned.
  for (auto& [q, fut] : inflight) {
    const serve::Fix fix = fut.get();
    EXPECT_TRUE(fixes_identical(fix, localizer.locate(queries[q])));
  }
  const Submission late = engine.submit(queries[0]);
  EXPECT_EQ(late.status, SubmitStatus::kStopped);
  EXPECT_EQ(engine.stats().queue_depth, 0u);
}

TEST(Engine, StatsTelemetryIsCoherent) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(16);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_us = 500;
  Engine engine(localizer, cfg);

  std::vector<std::future<serve::Fix>> futures;
  for (int r = 0; r < 40; ++r) {
    Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()]);
    ASSERT_TRUE(s.accepted());
    futures.push_back(std::move(s.result));
  }
  for (auto& f : futures) (void)f.get();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.batch_size.count(), stats.batches);
  EXPECT_EQ(stats.latency_us.count(), stats.completed);
  EXPECT_GT(stats.latency_p50_us, 0.0);
  EXPECT_LE(stats.latency_p50_us, stats.latency_p95_us);
  EXPECT_LE(stats.latency_p95_us, stats.latency_p99_us);
  // Batches never exceed the configured cap.
  EXPECT_LE(stats.batch_size.max_recorded(), static_cast<double>(cfg.max_batch));
}

// ---------------------------------------------------------------------------
// IMU session registry.
// ---------------------------------------------------------------------------

struct ImuEngineFixture {
  core::ImuExperiment exp;
  core::NobleImuTracker tracker;
};

const ImuEngineFixture& imu_engine_fixture() {
  static const ImuEngineFixture* fixture = [] {
    core::ImuExperimentConfig cfg;
    cfg.num_paths = 400;
    cfg.total_walk_time_s = 1000.0;
    cfg.readings_per_segment = 8;
    cfg.imu.ref_interval_s = 15.0;
    cfg.seed = 304;
    auto* f = new ImuEngineFixture{core::make_imu_experiment(cfg), core::NobleImuTracker([] {
                                     core::NobleImuConfig mc;
                                     mc.quantize.tau = 2.0;
                                     mc.epochs = 6;
                                     mc.projection_dim = 6;
                                     return mc;
                                   }())};
    f->tracker.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

std::vector<serve::ImuSegment> segments_of(const data::ImuPath& path,
                                           std::size_t segment_dim) {
  std::vector<serve::ImuSegment> out;
  out.reserve(path.num_segments);
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    out.emplace_back(
        path.features.begin() + static_cast<std::ptrdiff_t>(s * segment_dim),
        path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * segment_dim));
  }
  return out;
}

TEST(EngineSessions, ConcurrentSessionsMatchDirectTrackingSessions) {
  const auto& wf = engine_fixture();
  const auto& imf = imu_engine_fixture();
  const serve::WifiLocalizer wifi = serve::WifiLocalizer::from_model(wf.model);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(imf.tracker);

  EngineConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 8;
  cfg.queue_cap = 1024;
  Engine engine(wifi, imu, cfg);
  ASSERT_TRUE(engine.has_imu());

  const std::size_t num_tracks = std::min<std::size_t>(imf.exp.split.test.size(), 8);
  ASSERT_GE(num_tracks, 2u);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> tracks;
  for (std::size_t p = 0; p < num_tracks; ++p) {
    tracks.emplace_back([&, p] {
      const auto& path = imf.exp.split.test.paths[p];
      const auto segments = segments_of(path, imf.tracker.segment_dim());
      // Reference: a direct session on the same localizer replica family.
      serve::TrackingSession direct = imu.start_session(path.start);
      std::vector<serve::Fix> expected;
      expected.reserve(segments.size());
      for (const auto& segment : segments) expected.push_back(direct.update(segment));

      const auto session = engine.open_session(path.start);
      ASSERT_TRUE(session.has_value());
      // Pipelined submission: all segments in flight at once; the
      // per-session FIFO must still apply them strictly in order.
      std::vector<std::future<serve::Fix>> fixes;
      fixes.reserve(segments.size());
      for (const auto& segment : segments) {
        Submission s = engine.track(*session, segment);
        while (s.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = engine.track(*session, segment);
        }
        ASSERT_TRUE(s.accepted());
        fixes.push_back(std::move(s.result));
      }
      for (std::size_t i = 0; i < fixes.size(); ++i) {
        if (!fixes_identical(fixes[i].get(), expected[i])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      EXPECT_TRUE(engine.close_session(*session));
    });
  }
  for (auto& t : tracks) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Backends: replicas behind the WifiBackend seam.
// ---------------------------------------------------------------------------

TEST(EngineBackends, CloneAnswersBitIdenticallyToOriginal) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(16);
  ASSERT_FALSE(queries.empty());
  for (const BackendKind kind : {BackendKind::kDense, BackendKind::kQuantized}) {
    const std::unique_ptr<WifiBackend> original = make_backend(kind, localizer);
    const std::unique_ptr<WifiBackend> clone = original->clone();
    EXPECT_EQ(original->input_dim(), localizer.num_aps());
    EXPECT_EQ(clone->name(), original->name());
    const auto a = original->locate_batch(queries);
    const auto b = clone->locate_batch(queries);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(fixes_identical(a[i], b[i])) << backend_kind_name(kind) << " query " << i;
    }
  }
}

// Satellite of the PR 6 kernel refactor: clone() must share one immutable
// pre-packed plan — two shared_ptr copies, never a re-pack or
// re-quantization. Checked two ways: the kernels::pack_operations() counter
// stays flat across clones, and clone/original plan pointers compare equal.
TEST(EngineBackends, ClonesShareOnePackedPlanWithoutRequantizing) {
  const auto& localizer = reference_localizer();
  const DenseBackend dense(localizer);
  const QuantizedBackend quantized(localizer);

  const std::uint64_t packs_before = kernels::pack_operations();
  const std::unique_ptr<WifiBackend> dense_clone = dense.clone();
  const std::unique_ptr<WifiBackend> quant_clone = quantized.clone();
  EXPECT_EQ(kernels::pack_operations(), packs_before)
      << "clone() packed or re-quantized weights";

  const auto* dense_clone_typed = dynamic_cast<const DenseBackend*>(dense_clone.get());
  ASSERT_NE(dense_clone_typed, nullptr);
  EXPECT_EQ(dense_clone_typed->plan().get(), dense.plan().get());

  const auto* quant_clone_typed =
      dynamic_cast<const QuantizedBackend*>(quant_clone.get());
  ASSERT_NE(quant_clone_typed, nullptr);
  EXPECT_EQ(quant_clone_typed->plan().get(), quantized.plan().get());
  EXPECT_EQ(quant_clone_typed->quantized_parameter_bytes(),
            quantized.quantized_parameter_bytes());
}

// The quantized replica under the same harness as the dense one: engine
// output must be bit-identical to *direct* quantized inference, however the
// batcher grouped the requests (per-row activation scales make the int8
// forward batch-invariant).
TEST(EngineBackends, QuantizedEngineBitIdenticalToDirectQuantized) {
  const auto& localizer = reference_localizer();
  const QuantizedBackend reference(localizer);
  const auto queries = query_pool(64);
  ASSERT_FALSE(queries.empty());
  std::vector<serve::Fix> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(reference.locate_batch(std::span(&q, 1)).front());
  }

  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 16;
  cfg.max_wait_us = 100;
  cfg.queue_cap = 4096;
  cfg.backend = BackendKind::kQuantized;
  Engine engine(localizer, cfg);
  EXPECT_EQ(engine.backend_name(), "quantized");

  constexpr int kClients = 4;
  constexpr int kPerClient = 120;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(7000 + c));
      std::uniform_int_distribution<std::size_t> pick(0, queries.size() - 1);
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t q = pick(rng);
        Submission s = engine.submit(queries[q]);
        while (s.status == SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = engine.submit(queries[q]);
        }
        ASSERT_TRUE(s.accepted());
        if (!fixes_identical(s.result.get(), expected[q])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EngineBackends, QuantizedDecodesTrackTheDenseModel) {
  // Not bit-identity (int8 is lossy vs float32) but sanity: the quantized
  // path must still be the same model, so decoded classes should mostly
  // agree and confidences stay valid probabilities.
  const auto& localizer = reference_localizer();
  const QuantizedBackend quantized(localizer);
  EXPECT_GT(quantized.quantized_parameter_bytes(), 0u);
  EXPECT_LT(quantized.quantized_parameter_bytes(),
            localizer.model().parameter_bytes());
  const auto queries = query_pool(64);
  ASSERT_FALSE(queries.empty());
  const auto dense_fixes = localizer.locate_batch(queries);
  const auto quant_fixes = quantized.locate_batch(queries);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_GT(quant_fixes[i].confidence, 0.0);
    EXPECT_LT(quant_fixes[i].confidence, 1.0);
    if (quant_fixes[i].fine_class == dense_fixes[i].fine_class) ++agree;
  }
  // int8 with per-channel scales is a mild perturbation of small tanh nets;
  // a majority-agreement floor keeps the test robust to substrate noise.
  EXPECT_GE(agree * 2, queries.size());
}

// ---------------------------------------------------------------------------
// Fingerprint cache at admission control.
// ---------------------------------------------------------------------------

TEST(EngineCache, HitIsBitIdenticalAndSkipsTheQueue) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(4);
  ASSERT_FALSE(queries.empty());
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  cfg.cache_capacity = 64;
  Engine engine(localizer, cfg);

  Submission first = engine.submit(queries[0]);
  ASSERT_TRUE(first.accepted());
  const serve::Fix computed = first.result.get();

  Submission second = engine.submit(queries[0]);
  ASSERT_TRUE(second.accepted());
  const serve::Fix cached = second.result.get();
  EXPECT_TRUE(fixes_identical(cached, computed));
  EXPECT_TRUE(fixes_identical(cached, localizer.locate(queries[0])));

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.latency_us.count(), 2u);
  // The hit never entered the queue: only the miss formed a micro-batch.
  EXPECT_EQ(stats.batches, 1u);
}

TEST(EngineCache, QuantizedKeyCollisionsNeverAlias) {
  // Two scans that share a quantized hash key (every reading rounds to the
  // same dB step) but differ in exact floats must never cross-hit: equality
  // is exact, so the second scan misses and computes its own fix. This is
  // the collision guard that keeps bit-identity true with the cache on.
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(1);
  ASSERT_FALSE(queries.empty());
  serve::RssiVector scan_a = queries[0];
  serve::RssiVector scan_b = scan_a;
  scan_b[0] += 0.25f;  // same llround(v * 1.0) bucket, different scan
  ASSERT_NE(scan_a, scan_b);

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_wait_us = 0;
  cfg.cache_capacity = 64;
  cfg.cache_key_step_db = 1.0;
  Engine engine(localizer, cfg);

  Submission a = engine.submit(scan_a);
  ASSERT_TRUE(a.accepted());
  const serve::Fix fix_a = a.result.get();
  Submission b = engine.submit(scan_b);
  ASSERT_TRUE(b.accepted());
  const serve::Fix fix_b = b.result.get();

  EXPECT_TRUE(fixes_identical(fix_a, localizer.locate(scan_a)));
  EXPECT_TRUE(fixes_identical(fix_b, localizer.locate(scan_b)));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 0u);  // the collision was not a hit
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_entries, 2u);
}

TEST(EngineCache, EvictionBoundsResidencyAndKeepsCorrectness) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(16);
  ASSERT_GE(queries.size(), 16u);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_wait_us = 0;
  cfg.cache_capacity = 4;
  cfg.cache_shards = 1;  // single shard makes the LRU order deterministic
  Engine engine(localizer, cfg);

  for (const auto& q : queries) {
    Submission s = engine.submit(q);
    ASSERT_TRUE(s.accepted());
    (void)s.result.get();
  }
  EngineStats stats = engine.stats();
  EXPECT_LE(stats.cache_entries, 4u);
  EXPECT_EQ(stats.cache_evictions, queries.size() - 4);

  // The most recent scan is resident; the first was evicted — both still
  // answer bit-identically to direct locate().
  Submission resident = engine.submit(queries.back());
  ASSERT_TRUE(resident.accepted());
  EXPECT_TRUE(fixes_identical(resident.result.get(), localizer.locate(queries.back())));
  Submission evicted = engine.submit(queries.front());
  ASSERT_TRUE(evicted.accepted());
  EXPECT_TRUE(fixes_identical(evicted.result.get(), localizer.locate(queries.front())));
  stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);  // only the resident re-submission hit
}

// ---------------------------------------------------------------------------
// Adaptive batching window.
// ---------------------------------------------------------------------------

TEST(EngineAdaptive, WindowShrinksUnderBacklogAndGrowsBackWhenIdle) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(16);
  ASSERT_FALSE(queries.empty());
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_us = 2000;
  cfg.queue_cap = 8192;
  cfg.adaptive_wait = true;
  Engine engine(localizer, cfg);
  EXPECT_EQ(engine.stats().batch_wait_us, cfg.max_wait_us);

  // Backlog phase: flood far past max_batch; workers must observe the deep
  // queue and halve the window. Retried because a fast worker on a loaded
  // host could in principle keep the queue shallow for one round.
  bool shrank = false;
  for (int round = 0; round < 5 && !shrank; ++round) {
    std::vector<std::future<serve::Fix>> inflight;
    inflight.reserve(512);
    for (int r = 0; r < 512; ++r) {
      Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()]);
      if (s.accepted()) inflight.push_back(std::move(s.result));
    }
    for (auto& f : inflight) (void)f.get();
    shrank = engine.stats().batch_wait_us < cfg.max_wait_us;
  }
  EXPECT_TRUE(shrank);

  // Idle phase: one request at a time leaves the queue empty after every
  // pop, so the window doubles back up to (and never past) the ceiling.
  for (int r = 0; r < 64 && engine.stats().batch_wait_us < cfg.max_wait_us; ++r) {
    Submission s = engine.submit(queries[0]);
    ASSERT_TRUE(s.accepted());
    (void)s.result.get();
  }
  EXPECT_EQ(engine.stats().batch_wait_us, cfg.max_wait_us);
}

TEST(EngineSessions, RegistryRejectsBadHandlesAndDimensions) {
  const auto& wf = engine_fixture();
  const auto& imf = imu_engine_fixture();
  const serve::WifiLocalizer wifi = serve::WifiLocalizer::from_model(wf.model);
  const serve::ImuLocalizer imu = serve::ImuLocalizer::from_model(imf.tracker);
  Engine engine(wifi, imu);

  // Unknown session id.
  EXPECT_EQ(engine.track(9999, serve::ImuSegment(imu.segment_dim(), 0.0f)).status,
            SubmitStatus::kNoSession);
  EXPECT_FALSE(engine.close_session(9999));

  const auto session = engine.open_session(imf.exp.split.test.paths[0].start);
  ASSERT_TRUE(session.has_value());
  // Wrong segment width.
  EXPECT_EQ(engine.track(*session, serve::ImuSegment(3, 0.0f)).status,
            SubmitStatus::kBadDimension);
  // Close, then the handle is dead.
  EXPECT_TRUE(engine.close_session(*session));
  EXPECT_EQ(engine.track(*session, serve::ImuSegment(imu.segment_dim(), 0.0f)).status,
            SubmitStatus::kNoSession);

  // Wi-Fi-only engines have no session registry.
  Engine wifi_only(wifi);
  EXPECT_FALSE(wifi_only.has_imu());
  EXPECT_FALSE(wifi_only.open_session(geo::Point2{0.0, 0.0}).has_value());
}

}  // namespace
}  // namespace noble::engine
