// Parameterized property tests of the IMU walk simulator and path builder.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/campus.h"
#include "sim/imu.h"
#include "sim/imu_dataset.h"

namespace noble::sim {
namespace {

// ---------------------------------------------------------------------------
// Sweep over walking speeds: covered distance scales with speed; the walker
// never leaves the walkway network.
// ---------------------------------------------------------------------------

class WalkSpeedProperty : public ::testing::TestWithParam<double> {};

TEST_P(WalkSpeedProperty, DistanceScalesWithSpeed) {
  const double speed = GetParam();
  const auto world = geo::make_outdoor_track();
  ImuConfig cfg;
  cfg.walk_speed_mps = speed;
  cfg.speed_jitter = 0.0;
  Rng rng(41);
  const auto rec = simulate_walk(world, cfg, 150.0, rng);
  double dist = 0.0;
  for (std::size_t i = 1; i < rec.positions.size(); ++i) {
    dist += geo::distance(rec.positions[i - 1], rec.positions[i]);
  }
  EXPECT_NEAR(dist, speed * 150.0, 0.2 * speed * 150.0);
}

TEST_P(WalkSpeedProperty, WalkerStaysOnWalkways) {
  const double speed = GetParam();
  const auto world = geo::make_outdoor_track();
  ImuConfig cfg;
  cfg.walk_speed_mps = speed;
  Rng rng(43);
  const auto rec = simulate_walk(world, cfg, 100.0, rng);
  for (std::size_t i = 0; i < rec.positions.size(); i += 25) {
    EXPECT_LT(world.walkways.distance_to_path(rec.positions[i]), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, WalkSpeedProperty,
                         ::testing::Values(0.8, 1.2, 1.6, 2.0));

// ---------------------------------------------------------------------------
// Sweep over resampling widths: block averaging preserves channel means
// exactly when the raw window divides evenly.
// ---------------------------------------------------------------------------

class ResampleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResampleProperty, BlockMeansPreserveChannelMean) {
  const std::size_t readings = GetParam();
  ImuRecording rec;
  Rng rng(47);
  const std::size_t raw = readings * 8;  // even division
  double channel_sum[6] = {0};
  for (std::size_t i = 0; i < raw; ++i) {
    std::array<float, 6> s;
    for (int c = 0; c < 6; ++c) {
      s[static_cast<std::size_t>(c)] = static_cast<float>(rng.normal());
      channel_sum[c] += s[static_cast<std::size_t>(c)];
    }
    rec.samples.push_back(s);
    rec.positions.push_back({0, 0});
  }
  const auto window = resample_window(rec, 0, raw, readings);
  ASSERT_EQ(window.size(), readings * 6);
  for (int c = 0; c < 6; ++c) {
    double resampled_mean = 0.0;
    for (std::size_t r = 0; r < readings; ++r) {
      resampled_mean += window[r * 6 + static_cast<std::size_t>(c)];
    }
    resampled_mean /= static_cast<double>(readings);
    EXPECT_NEAR(resampled_mean, channel_sum[c] / static_cast<double>(raw), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ResampleProperty,
                         ::testing::Values(std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{32}));

// ---------------------------------------------------------------------------
// Sweep over maximum path lengths: the §V-A protocol invariants hold for any
// cap.
// ---------------------------------------------------------------------------

class PathLengthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathLengthProperty, ProtocolInvariants) {
  const std::size_t max_segments = GetParam();
  const auto world = geo::make_outdoor_track();
  ImuConfig icfg;
  icfg.ref_interval_s = 8.0;
  Rng rng(53);
  std::vector<ImuRecording> recs{simulate_walk(world, icfg, 400.0, rng)};
  PathConfig pc;
  pc.readings_per_segment = 8;
  pc.max_segments = max_segments;
  pc.num_paths = 80;
  Rng prng(59);
  const auto ds = build_imu_paths(recs, pc, prng);
  EXPECT_EQ(ds.max_segments, max_segments);
  for (const auto& p : ds.paths) {
    EXPECT_GE(p.num_segments, 1u);
    EXPECT_LE(p.num_segments, max_segments);
    EXPECT_EQ(p.features.size(), ds.feature_dim());
    EXPECT_EQ(p.segment_endpoints.back(), p.end);
    // Duration equals segments x ref interval.
    EXPECT_NEAR(p.duration_s, static_cast<double>(p.num_segments) * icfg.ref_interval_s,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, PathLengthProperty,
                         ::testing::Values(std::size_t{1}, std::size_t{5},
                                           std::size_t{20}, std::size_t{50}));

// ---------------------------------------------------------------------------
// Gravity-leak observability: the world-frame accelerometer means point
// along the heading — the property that makes displacement learnable.
// ---------------------------------------------------------------------------

TEST(ImuSignal, AccelMeansTrackHeading) {
  const auto world = geo::make_outdoor_track();
  ImuConfig cfg;
  cfg.accel_noise = 0.05;  // quiet sensor to isolate the leak term
  Rng rng(61);
  const auto rec = simulate_walk(world, cfg, 300.0, rng);
  // Over windows between references, mean (ax, ay) should align with the
  // actual displacement direction.
  std::size_t checked = 0, aligned = 0;
  for (std::size_t r = 1; r < rec.num_refs(); ++r) {
    const std::size_t lo = rec.ref_sample_idx[r - 1];
    const std::size_t hi = rec.ref_sample_idx[r];
    double ax = 0, ay = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      ax += rec.samples[i][0];
      ay += rec.samples[i][1];
    }
    const geo::Point2 disp = rec.positions[hi] - rec.positions[lo];
    if (disp.norm() < 3.0) continue;  // skip near-stationary windows
    const double cosine =
        (ax * disp.x + ay * disp.y) /
        (std::hypot(ax, ay) * disp.norm() + 1e-12);
    ++checked;
    aligned += (cosine > 0.7);
  }
  ASSERT_GT(checked, 5u);
  EXPECT_GT(static_cast<double>(aligned) / static_cast<double>(checked), 0.8);
}

}  // namespace
}  // namespace noble::sim
