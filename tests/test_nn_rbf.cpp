// Tests for the distance-based output layer (RbfOutput) — gradient check,
// nearest-prototype semantics, serialization with batch-norm state.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/rbf_output.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace noble::nn {
namespace {

using linalg::Mat;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

TEST(RbfOutput, LogitsAreNegativeHalfSquaredDistance) {
  Rng rng(701);
  RbfOutput layer(2, 3, rng);
  // Overwrite prototypes with known values.
  layer.prototypes() = Mat{{0.0f, 0.0f}, {3.0f, 4.0f}, {1.0f, 0.0f}};
  Mat y;
  const Mat x{{0.0f, 0.0f}};
  layer.forward(x, y, false);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), -12.5f);  // -0.5 * 25
  EXPECT_FLOAT_EQ(y(0, 2), -0.5f);
}

TEST(RbfOutput, ArgmaxIsNearestPrototype) {
  Rng rng(703);
  RbfOutput layer(2, 4, rng);
  layer.prototypes() = Mat{{0.0f, 0.0f}, {10.0f, 0.0f}, {0.0f, 10.0f}, {10.0f, 10.0f}};
  Mat y;
  layer.forward(Mat{{9.0f, 9.5f}}, y, false);
  std::size_t best = 0;
  for (std::size_t c = 1; c < 4; ++c) {
    if (y(0, c) > y(0, best)) best = c;
  }
  EXPECT_EQ(best, 3u);
}

TEST(RbfOutput, GradientCheck) {
  Rng rng(705);
  RbfOutput layer(3, 4, rng);
  Mat x = random_mat(5, 3, rng);
  const Mat weights = random_mat(5, 4, rng);

  // Analytic.
  Mat y;
  layer.forward(x, y, true);
  layer.zero_grads();
  Mat dx;
  layer.backward(x, weights, dx);
  const Mat dw = *layer.grads()[0];

  auto objective = [&]() {
    Mat out;
    layer.forward(x, out, true);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      s += static_cast<double>(out.data()[i]) * weights.data()[i];
    return s;
  };
  const double eps = 1e-3;
  // Input gradient.
  for (std::size_t i = 0; i < x.size(); i += 2) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(eps);
    const double up = objective();
    x.data()[i] = orig - static_cast<float>(eps);
    const double down = objective();
    x.data()[i] = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
  // Prototype gradient.
  Mat& w = layer.prototypes();
  for (std::size_t i = 0; i < w.size(); i += 3) {
    const float orig = w.data()[i];
    w.data()[i] = orig + static_cast<float>(eps);
    const double up = objective();
    w.data()[i] = orig - static_cast<float>(eps);
    const double down = objective();
    w.data()[i] = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(dw.data()[i], numeric, 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(RbfOutput, RefinesInitializedPrototypesTowardCentroids) {
  // 2-D points in 3 clusters. Following the library's usage pattern
  // (physics-informed initialization, as in the IMU location network),
  // prototypes start at coarse guesses of the class centers and training
  // pulls them onto the true cluster centroids.
  Rng rng(707);
  const float centers[3][2] = {{0.0f, 0.0f}, {6.0f, 0.0f}, {0.0f, 6.0f}};
  Mat x(150, 2), t(150, 3);
  for (std::size_t i = 0; i < 150; ++i) {
    const std::size_t c = i % 3;
    x(i, 0) = centers[c][0] + static_cast<float>(rng.normal(0.0, 0.3));
    x(i, 1) = centers[c][1] + static_cast<float>(rng.normal(0.0, 0.3));
    t(i, c) = 1.0f;
  }
  Sequential net;
  auto& rbf = net.emplace<RbfOutput>(2, 3, rng, 0.01f);
  // Coarse initial guesses, each ~2 m off its true center.
  rbf.prototypes()(0, 0) += 1.5f;
  rbf.prototypes()(0, 1) += 1.0f;
  rbf.prototypes()(1, 0) += 6.0f - 1.5f;
  rbf.prototypes()(1, 1) += 1.0f;
  rbf.prototypes()(2, 0) += 1.0f;
  rbf.prototypes()(2, 1) += 6.0f + 1.5f;

  Adam opt(0.05);
  const SoftmaxCrossEntropyLoss loss;
  TrainConfig tc;
  tc.epochs = 80;
  tc.batch_size = 32;
  Trainer trainer(opt, loss, tc);
  trainer.fit(net, x, t);

  // Training must tighten every prototype onto its cluster center.
  for (std::size_t c = 0; c < 3; ++c) {
    const double d = std::hypot(rbf.prototypes()(c, 0) - centers[c][0],
                                rbf.prototypes()(c, 1) - centers[c][1]);
    EXPECT_LT(d, 1.0) << "prototype " << c << " not refined toward its cluster";
  }
  // And classification on the training data is essentially perfect.
  const Mat logits = net.predict(x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < 3; ++c) {
      if (logits(i, c) > logits(i, best)) best = c;
    }
    hits += (t(i, best) == 1.0f);
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(x.rows()), 0.97);
}

TEST(Serialize, BatchNormRunningStatsSurviveRoundTrip) {
  Rng rng(709);
  Sequential net;
  net.emplace<Dense>(4, 6, rng);
  net.emplace<BatchNorm1d>(6);
  net.emplace<Tanh>();
  net.emplace<Dense>(6, 2, rng);
  // Train-mode passes to move the running statistics away from defaults.
  for (int i = 0; i < 50; ++i) {
    Mat x = random_mat(32, 4, rng);
    for (std::size_t j = 0; j < x.size(); ++j) x.data()[j] += 3.0f;
    net.forward(x, /*training=*/true);
  }
  const Mat probe = random_mat(5, 4, rng);
  const Mat before = net.predict(probe);

  const std::string path =
      (std::filesystem::temp_directory_path() / "noble_bn_state.bin").string();
  ASSERT_TRUE(save_weights(net, path));

  Rng rng2(999);
  Sequential fresh;
  fresh.emplace<Dense>(4, 6, rng2);
  fresh.emplace<BatchNorm1d>(6);
  fresh.emplace<Tanh>();
  fresh.emplace<Dense>(6, 2, rng2);
  ASSERT_TRUE(load_weights(fresh, path));
  const Mat after = fresh.predict(probe);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i])
        << "inference differs after reload (running stats lost?)";
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace noble::nn
