// Tests for the evaluation harness and experiment builders.
#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/experiment.h"

namespace noble::core {
namespace {

TEST(Evaluate, WifiReportPerfectPredictions) {
  // Build a tiny dataset and quantizer, then evaluate the ground truth
  // decoded through the quantizer: class/building/floor accuracies are 100%
  // and the position error is bounded by the cell half-diagonal.
  data::WifiDataset ds;
  ds.num_aps = 1;
  Rng rng(801);
  std::vector<geo::Point2> positions;
  for (int i = 0; i < 50; ++i) {
    data::WifiSample s;
    s.building = i % 2;
    s.floor = i % 3;
    s.position = {rng.uniform(0, 30), rng.uniform(0, 30)};
    s.rssi = {-50.0f};
    positions.push_back(s.position);
    ds.samples.push_back(std::move(s));
  }
  SpaceQuantizer q;
  QuantizeConfig qc;
  qc.tau = 2.0;
  qc.use_coarse = false;
  q.fit(positions, qc);

  std::vector<WifiPrediction> preds;
  for (const auto& s : ds.samples) {
    WifiPrediction p;
    p.building = s.building;
    p.floor = s.floor;
    p.fine_class = q.fine_class_of(s.position);
    p.position = q.fine().center(p.fine_class);
    preds.push_back(p);
  }
  const auto report = evaluate_wifi(preds, ds, q, nullptr);
  EXPECT_DOUBLE_EQ(report.building_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.floor_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.class_accuracy, 1.0);
  EXPECT_LE(report.errors.max, 2.0 * std::sqrt(2.0) / 2.0 + 1e-9);
}

TEST(Evaluate, ImuReportMatchesManualComputation) {
  data::ImuDataset ds;
  ds.segment_dim = 6;
  ds.max_segments = 1;
  for (int i = 0; i < 3; ++i) {
    data::ImuPath p;
    p.features.assign(6, 0.0f);
    p.num_segments = 1;
    p.end = {static_cast<double>(i), 0.0};
    p.segment_endpoints = {p.end};
    ds.paths.push_back(std::move(p));
  }
  const std::vector<geo::Point2> preds{{0, 0}, {1, 1}, {2, 2}};
  const auto report = evaluate_imu(preds, ds, nullptr);
  EXPECT_DOUBLE_EQ(report.errors.mean, (0.0 + 1.0 + 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(report.errors.median, 1.0);
}

TEST(Evaluate, PositionsOfExtractors) {
  std::vector<WifiPrediction> wp(2);
  wp[0].position = {1, 2};
  wp[1].position = {3, 4};
  const auto pts = positions_of(wp);
  EXPECT_EQ(pts[1], (geo::Point2{3, 4}));

  std::vector<ImuPrediction> ip(1);
  ip[0].position = {5, 6};
  EXPECT_EQ(positions_of(ip)[0], (geo::Point2{5, 6}));
}

TEST(Experiment, UjiBuilderProducesConsistentWorld) {
  WifiExperimentConfig cfg;
  cfg.total_samples = 400;
  const auto exp = make_uji_experiment(cfg);
  EXPECT_EQ(exp.world.plan.building_count(), 3u);
  EXPECT_EQ(exp.split.train.num_aps, exp.wifi->num_aps());
  EXPECT_EQ(exp.split.train.size() + exp.split.val.size() + exp.split.test.size(),
            400u);
  // All sampled positions are on accessible space of their building.
  for (const auto& s : exp.split.train.samples) {
    EXPECT_TRUE(
        exp.world.plan.building(static_cast<std::size_t>(s.building)).accessible(s.position));
  }
}

TEST(Experiment, DeterministicAcrossCalls) {
  WifiExperimentConfig cfg;
  cfg.total_samples = 200;
  const auto a = make_uji_experiment(cfg);
  const auto b = make_uji_experiment(cfg);
  ASSERT_EQ(a.split.train.size(), b.split.train.size());
  for (std::size_t i = 0; i < a.split.train.size(); ++i) {
    EXPECT_EQ(a.split.train.samples[i].position.x, b.split.train.samples[i].position.x);
    EXPECT_EQ(a.split.train.samples[i].rssi, b.split.train.samples[i].rssi);
  }
}

TEST(Experiment, SeedChangesData) {
  WifiExperimentConfig cfg;
  cfg.total_samples = 200;
  const auto a = make_uji_experiment(cfg);
  cfg.seed += 1;
  const auto b = make_uji_experiment(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.split.train.size() && i < b.split.train.size(); ++i) {
    if (a.split.train.samples[i].rssi != b.split.train.samples[i].rssi) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Experiment, IpinBuilderSingleBuilding) {
  WifiExperimentConfig cfg;
  cfg.total_samples = 300;
  const auto exp = make_ipin_experiment(cfg);
  EXPECT_EQ(exp.world.plan.building_count(), 1u);
  for (const auto& s : exp.split.train.samples) {
    EXPECT_EQ(s.building, 0);
  }
}

TEST(Experiment, ImuBuilderRespectsPathProtocol) {
  ImuExperimentConfig cfg;
  cfg.num_paths = 150;
  cfg.total_walk_time_s = 600.0;
  const auto exp = make_imu_experiment(cfg);
  EXPECT_EQ(exp.split.train.size() + exp.split.val.size() + exp.split.test.size(), 150u);
  for (const auto& p : exp.split.train.paths) {
    EXPECT_GE(p.num_segments, 1u);
    EXPECT_LE(p.num_segments, cfg.max_segments);
    EXPECT_EQ(p.segment_endpoints.size(), p.num_segments);
  }
}

}  // namespace
}  // namespace noble::core
