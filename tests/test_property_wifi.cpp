// Parameterized property tests of the Wi-Fi propagation world: invariants
// that must hold for every radio configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "data/dataset.h"
#include "geo/campus.h"
#include "sim/wifi.h"

namespace noble::sim {
namespace {

// ---------------------------------------------------------------------------
// Sweep over path-loss exponents: signal strength must decay monotonically
// with distance for any exponent, and steeper exponents decay faster.
// ---------------------------------------------------------------------------

class PathLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(PathLossProperty, MonotoneDecayWithDistance) {
  const double exponent = GetParam();
  const auto world = geo::make_ipin_like_building();
  WifiConfig cfg;
  cfg.path_loss_exponent = exponent;
  cfg.shadowing_sigma_db = 0.0;
  const WifiWorld wifi(world, cfg, 5);
  const auto& ap = wifi.aps()[0];
  double prev = 1e9;
  for (double d = 2.0; d <= 30.0; d += 4.0) {
    const double rssi =
        wifi.mean_rssi(0, {ap.position.x + d, ap.position.y}, ap.building, ap.floor);
    EXPECT_LT(rssi, prev) << "no decay at distance " << d << " exponent " << exponent;
    prev = rssi;
  }
}

TEST_P(PathLossProperty, TenXDistanceCostsTenNdB) {
  const double exponent = GetParam();
  const auto world = geo::make_uji_like_campus();
  WifiConfig cfg;
  cfg.path_loss_exponent = exponent;
  cfg.shadowing_sigma_db = 0.0;
  const WifiWorld wifi(world, cfg, 5);
  const auto& ap = wifi.aps()[0];
  const double near = wifi.mean_rssi(0, {ap.position.x + 3.0, ap.position.y},
                                     ap.building, ap.floor);
  const double far = wifi.mean_rssi(0, {ap.position.x + 30.0, ap.position.y},
                                    ap.building, ap.floor);
  EXPECT_NEAR(near - far, 10.0 * exponent, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PathLossProperty,
                         ::testing::Values(2.0, 2.5, 3.0, 3.5, 4.0));

// ---------------------------------------------------------------------------
// Sweep over shadowing strengths: the field stays deterministic and its
// spatial variance tracks the configured sigma.
// ---------------------------------------------------------------------------

class ShadowingProperty : public ::testing::TestWithParam<double> {};

TEST_P(ShadowingProperty, DeterministicField) {
  const double sigma = GetParam();
  const auto world = geo::make_ipin_like_building();
  WifiConfig cfg;
  cfg.shadowing_sigma_db = sigma;
  const WifiWorld a(world, cfg, 99);
  const WifiWorld b(world, cfg, 99);
  for (double x = 5.0; x < 60.0; x += 7.0) {
    EXPECT_DOUBLE_EQ(a.mean_rssi(0, {x, 15.0}, 0, 0), b.mean_rssi(0, {x, 15.0}, 0, 0));
  }
}

TEST_P(ShadowingProperty, SpatialStdTracksSigma) {
  const double sigma = GetParam();
  const auto world = geo::make_uji_like_campus();
  WifiConfig cfg;
  cfg.shadowing_sigma_db = sigma;
  cfg.path_loss_exponent = 3.0;
  const WifiWorld with(world, cfg, 31);
  cfg.shadowing_sigma_db = 0.0;
  const WifiWorld without(world, cfg, 31);
  // Shadowing residual = field with shadowing minus pure path loss.
  RunningStats residuals;
  Rng rng(33);
  for (int i = 0; i < 400; ++i) {
    const geo::Point2 p{rng.uniform(20, 175), rng.uniform(150, 253)};
    residuals.push(with.mean_rssi(0, p, 0, 0) - without.mean_rssi(0, p, 0, 0));
  }
  if (sigma == 0.0) {
    EXPECT_NEAR(residuals.stddev(), 0.0, 1e-9);
  } else {
    // Bilinear interpolation shrinks per-point variance a bit; allow 40%.
    EXPECT_NEAR(residuals.stddev(), sigma, 0.4 * sigma);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ShadowingProperty,
                         ::testing::Values(0.0, 2.0, 4.0, 8.0));

// ---------------------------------------------------------------------------
// Sweep over detection thresholds: weaker thresholds must detect at least as
// many APs per measurement.
// ---------------------------------------------------------------------------

class DetectionProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetectionProperty, ThresholdControlsVisibility) {
  const double threshold = GetParam();
  const auto world = geo::make_uji_like_campus();
  WifiConfig strict;
  strict.detect_threshold_dbm = threshold;
  strict.detect_dropout = 0.0;
  WifiConfig loose = strict;
  loose.detect_threshold_dbm = threshold - 15.0;
  const WifiWorld wifi_strict(world, strict, 11);
  const WifiWorld wifi_loose(world, loose, 11);

  Rng rng_a(13), rng_b(13);
  const geo::Point2 p{60.0, 200.0};
  const auto v_strict = wifi_strict.measure(p, 0, 1, rng_a);
  const auto v_loose = wifi_loose.measure(p, 0, 1, rng_b);
  std::size_t n_strict = 0, n_loose = 0;
  for (float r : v_strict) n_strict += (r != data::kNotDetectedRssi);
  for (float r : v_loose) n_loose += (r != data::kNotDetectedRssi);
  EXPECT_LE(n_strict, n_loose);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DetectionProperty,
                         ::testing::Values(-80.0, -90.0, -100.0));

}  // namespace
}  // namespace noble::sim
