// Tests for matrices, GEMM kernels, solvers and distances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/distance.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "linalg/solve.h"

namespace noble::linalg {
namespace {

Mat random_mat(std::size_t r, std::size_t c, Rng& rng) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

TEST(Matrix, InitializerListAndAccess) {
  Mat m{{1.0f, 2.0f}, {3.0f, 4.0f}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  m(1, 0) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 7.0f);
}

TEST(Matrix, TransposedIsInvolutive) {
  Rng rng(3);
  const Mat m = random_mat(4, 7, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, IdentityDiagonal) {
  const Mat i3 = Mat::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_FLOAT_EQ(i3(r, c), r == c ? 1.0f : 0.0f);
}

TEST(Ops, GemmSmallKnown) {
  const Mat a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const Mat b{{5.0f, 6.0f}, {7.0f, 8.0f}};
  Mat c;
  gemm(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, GemmIdentityIsNoop) {
  Rng rng(5);
  const Mat a = random_mat(6, 6, rng);
  Mat c;
  gemm(a, Mat::identity(6), c);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(c.data()[i], a.data()[i], 1e-5f);
}

TEST(Ops, GemmTnMatchesExplicitTranspose) {
  Rng rng(7);
  const Mat a = random_mat(5, 3, rng);
  const Mat b = random_mat(5, 4, rng);
  Mat expect, got;
  gemm(a.transposed(), b, expect);
  gemm_tn(a, b, got);
  ASSERT_EQ(got.rows(), expect.rows());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], expect.data()[i], 1e-4f);
}

TEST(Ops, GemmNtMatchesExplicitTranspose) {
  Rng rng(9);
  const Mat a = random_mat(5, 3, rng);
  const Mat b = random_mat(4, 3, rng);
  Mat expect, got;
  gemm(a, b.transposed(), expect);
  gemm_nt(a, b, got);
  ASSERT_EQ(got.cols(), expect.cols());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], expect.data()[i], 1e-4f);
}

TEST(Ops, GemvMatchesGemm) {
  Rng rng(11);
  const Mat a = random_mat(6, 4, rng);
  const Mat x_col = random_mat(4, 1, rng);
  std::vector<float> x(4);
  for (std::size_t i = 0; i < 4; ++i) x[i] = x_col(i, 0);
  Mat expect;
  gemm(a, x_col, expect);
  std::vector<float> y;
  gemv(a, x, y);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], expect(i, 0), 1e-5f);
}

TEST(Ops, ColMeanVar) {
  Mat m{{1.0f, 10.0f}, {3.0f, 10.0f}};
  const auto mu = col_mean(m);
  const auto var = col_var(m);
  EXPECT_FLOAT_EQ(mu[0], 2.0f);
  EXPECT_FLOAT_EQ(mu[1], 10.0f);
  EXPECT_FLOAT_EQ(var[0], 1.0f);
  EXPECT_FLOAT_EQ(var[1], 0.0f);
}

TEST(Ops, TakeRows) {
  Mat m{{0.0f, 1.0f}, {10.0f, 11.0f}, {20.0f, 21.0f}};
  const Mat sub = take_rows(m, {2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_FLOAT_EQ(sub(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(sub(1, 1), 1.0f);
}

TEST(Ops, AxpyAndScale) {
  Mat a{{1.0f, 2.0f}};
  Mat b{{10.0f, 20.0f}};
  axpy(2.0f, a, b);
  EXPECT_FLOAT_EQ(b(0, 0), 12.0f);
  EXPECT_FLOAT_EQ(b(0, 1), 24.0f);
  scale(b, 0.5f);
  EXPECT_FLOAT_EQ(b(0, 0), 6.0f);
}

TEST(Solve, CholeskySpd) {
  // A = [[4,2],[2,3]], b = [8, 7] -> x = [1.3..., 1.4...]; verify A x = b.
  const MatD a{{4.0, 2.0}, {2.0, 3.0}};
  std::vector<double> x;
  ASSERT_TRUE(cholesky_solve(a, {8.0, 7.0}, x));
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-10);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-10);
}

TEST(Solve, CholeskyRejectsIndefinite) {
  const MatD a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  std::vector<double> x;
  EXPECT_FALSE(cholesky_solve(a, {1.0, 1.0}, x));
}

TEST(Solve, LuSolveGeneral) {
  const MatD a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, {-8.0, 0.0, 3.0}, x));
  // Verify residual instead of hard-coding the solution.
  EXPECT_NEAR(0.0 * x[0] + 2.0 * x[1] + 1.0 * x[2], -8.0, 1e-10);
  EXPECT_NEAR(1.0 * x[0] - 2.0 * x[1] - 3.0 * x[2], 0.0, 1e-10);
  EXPECT_NEAR(-1.0 * x[0] + 1.0 * x[1] + 2.0 * x[2], 3.0, 1e-10);
}

TEST(Solve, LuDetectsSingular) {
  const MatD a{{1.0, 2.0}, {2.0, 4.0}};
  std::vector<double> x;
  EXPECT_FALSE(lu_solve(a, {1.0, 2.0}, x));
}

TEST(Solve, RegularizedSolveRecoversFromSemidefinite) {
  const MatD a{{1.0, 1.0}, {1.0, 1.0}};  // singular PSD
  std::vector<double> x;
  ASSERT_TRUE(regularized_spd_solve(a, {1.0, 1.0}, 1e-8, 1.0, x));
  EXPECT_TRUE(std::isfinite(x[0]) && std::isfinite(x[1]));
}

TEST(Solve, LeastSquaresRecoversLine) {
  // Fit y = 2x + 1 exactly through three points.
  const MatD a{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  std::vector<double> coef;
  ASSERT_TRUE(least_squares(a, {1.0, 3.0, 5.0}, 1e-10, coef));
  EXPECT_NEAR(coef[0], 2.0, 1e-5);
  EXPECT_NEAR(coef[1], 1.0, 1e-5);
}

TEST(Distance, PairwiseMatchesDirect) {
  Rng rng(13);
  const Mat x = random_mat(8, 5, rng);
  const Mat y = random_mat(6, 5, rng);
  Mat d;
  pairwise_sq_dist(x, y, d);
  ASSERT_EQ(d.rows(), 8u);
  ASSERT_EQ(d.cols(), 6u);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(d(i, j), sq_dist(x.row(i), y.row(j), 5), 1e-3);
    }
  }
}

TEST(Distance, SelfDistanceIsZero) {
  Rng rng(15);
  const Mat x = random_mat(5, 4, rng);
  Mat d;
  pairwise_sq_dist(x, x, d);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(d(i, i), 0.0f, 1e-4f);
}

}  // namespace
}  // namespace noble::linalg
