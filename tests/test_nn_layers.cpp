// Behavioral tests of layers, optimizers, serialization and the trainer.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace noble::nn {
namespace {

using linalg::Mat;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

TEST(Init, XavierUniformBounds) {
  Rng rng(200);
  Mat w(64, 32);
  xavier_uniform(w, 64, 32, rng);
  const double bound = std::sqrt(6.0 / (64 + 32));
  float min_v = 0.0f, max_v = 0.0f;
  for (std::size_t i = 0; i < w.size(); ++i) {
    min_v = std::min(min_v, w.data()[i]);
    max_v = std::max(max_v, w.data()[i]);
  }
  EXPECT_GE(min_v, -bound - 1e-6);
  EXPECT_LE(max_v, bound + 1e-6);
  EXPECT_LT(min_v, -bound * 0.5);  // actually spreads out
  EXPECT_GT(max_v, bound * 0.5);
}

TEST(Init, XavierNormalVariance) {
  Rng rng(201);
  Mat w(128, 128);
  xavier_normal(w, 128, 128, rng);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w.data()[i];
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double n = static_cast<double>(w.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 2.0 / 256.0, 0.002);
}

TEST(Dense, ForwardAffine) {
  Rng rng(202);
  Dense layer(2, 2, rng);
  // Overwrite weights with a known affine map.
  layer.weights() = Mat{{1.0f, 2.0f}, {3.0f, 4.0f}};
  Mat y;
  const Mat x{{1.0f, 1.0f}};
  layer.forward(x, y, false);
  EXPECT_FLOAT_EQ(y(0, 0), 4.0f);  // 1*1 + 1*3 + bias 0
  EXPECT_FLOAT_EQ(y(0, 1), 6.0f);
}

TEST(TimeDistributedDense, SharesWeightsAcrossSegments) {
  Rng rng(203);
  TimeDistributedDense layer(3, 2, 2, rng);
  // Same sub-vector in each segment must produce the same sub-output.
  Mat x(1, 6);
  x(0, 0) = 0.5f;
  x(0, 1) = -1.0f;
  x(0, 2) = 0.5f;
  x(0, 3) = -1.0f;
  x(0, 4) = 0.5f;
  x(0, 5) = -1.0f;
  Mat y;
  layer.forward(x, y, false);
  ASSERT_EQ(y.cols(), 6u);
  EXPECT_FLOAT_EQ(y(0, 0), y(0, 2));
  EXPECT_FLOAT_EQ(y(0, 0), y(0, 4));
  EXPECT_FLOAT_EQ(y(0, 1), y(0, 3));
  EXPECT_FLOAT_EQ(y(0, 1), y(0, 5));
}

TEST(Activations, TanhRange) {
  Rng rng(204);
  Tanh layer;
  Mat y;
  layer.forward(random_mat(4, 8, rng), y, false);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y.data()[i], -1.0f);
    EXPECT_LT(y.data()[i], 1.0f);
  }
}

TEST(Activations, ReluClamps) {
  Relu layer;
  Mat y;
  layer.forward(Mat{{-1.0f, 0.0f, 2.0f}}, y, false);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
}

TEST(Activations, SigmoidMidpoint) {
  Sigmoid layer;
  Mat y;
  layer.forward(Mat{{0.0f}}, y, false);
  EXPECT_NEAR(y(0, 0), 0.5f, 1e-6f);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  Rng rng(205);
  BatchNorm1d layer(3);
  Mat x = random_mat(64, 3, rng);
  // Shift/scale columns to be far from standard.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = x(i, 0) * 5.0f + 10.0f;
    x(i, 1) = x(i, 1) * 0.1f - 3.0f;
  }
  Mat y;
  layer.forward(x, y, /*training=*/true);
  const auto mu = linalg::col_mean(y);
  const auto var = linalg::col_var(y);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mu[j], 0.0f, 1e-4f);
    EXPECT_NEAR(var[j], 1.0f, 1e-2f);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(206);
  BatchNorm1d layer(2);
  // Train on many batches with mean ~ 4.
  for (int it = 0; it < 200; ++it) {
    Mat x = random_mat(32, 2, rng);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += 4.0f;
    Mat y;
    layer.forward(x, y, true);
  }
  // At inference a batch at the training mean maps near zero.
  Mat x(4, 2, 4.0f);
  Mat y;
  layer.forward(x, y, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y.data()[i], 0.0f, 0.3f);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(207);
  Dropout layer(0.5, 99);
  const Mat x = random_mat(3, 5, rng);
  Mat y;
  layer.forward(x, y, /*training=*/false);
  EXPECT_EQ(x, y);
}

TEST(Dropout, TrainingZeroesApproxRate) {
  Rng rng(208);
  Dropout layer(0.4, 99);
  const Mat x(10, 100, 1.0f);
  Mat y;
  layer.forward(x, y, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.4, 0.05);
}

TEST(Optimizer, SgdReducesQuadratic) {
  // Minimize ||w||^2 with SGD: gradient 2w.
  Mat w{{1.0f, -2.0f, 3.0f}};
  Mat g(1, 3);
  Sgd opt(0.1, 0.0);
  for (int it = 0; it < 100; ++it) {
    for (std::size_t i = 0; i < 3; ++i) g.data()[i] = 2.0f * w.data()[i];
    opt.step({&w}, {&g});
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w.data()[i], 0.0f, 1e-3f);
}

TEST(Optimizer, AdamReducesQuadratic) {
  Mat w{{1.0f, -2.0f, 3.0f}};
  Mat g(1, 3);
  Adam opt(0.05);
  for (int it = 0; it < 400; ++it) {
    for (std::size_t i = 0; i < 3; ++i) g.data()[i] = 2.0f * w.data()[i];
    opt.step({&w}, {&g});
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w.data()[i], 0.0f, 1e-2f);
}

TEST(Optimizer, MomentumAcceleratesAlongConsistentGradient) {
  Mat w1{{10.0f}}, w2{{10.0f}};
  Mat g(1, 1, 1.0f);  // constant gradient
  Sgd plain(0.01, 0.0), momentum(0.01, 0.9);
  for (int it = 0; it < 20; ++it) {
    plain.step({&w1}, {&g});
    momentum.step({&w2}, {&g});
  }
  EXPECT_LT(w2(0, 0), w1(0, 0));  // momentum travelled farther
}

TEST(Network, PredictMatchesForwardInference) {
  Rng rng(209);
  Sequential net;
  net.emplace<Dense>(4, 8, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(8, 2, rng);
  const Mat x = random_mat(5, 4, rng);
  const Mat a = net.predict(x);
  const Mat& b = net.forward(x, /*training=*/false);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(Network, ParameterCount) {
  Rng rng(210);
  Sequential net;
  net.emplace<Dense>(10, 7, rng);  // 70 + 7
  net.emplace<Dense>(7, 3, rng);   // 21 + 3
  EXPECT_EQ(net.parameter_count(), 70u + 7u + 21u + 3u);
}

TEST(Network, MacsPerInference) {
  Rng rng(211);
  Sequential net;
  net.emplace<Dense>(10, 7, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(7, 3, rng);
  EXPECT_EQ(net.macs_per_inference(10), 10u * 7u + 7u * 3u);
}

TEST(Serialize, RoundTripRestoresOutputs) {
  Rng rng(212);
  Sequential net;
  net.emplace<Dense>(6, 5, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(5, 2, rng);
  const Mat x = random_mat(3, 6, rng);
  const Mat before = net.predict(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "noble_weights_test.bin").string();
  ASSERT_TRUE(save_weights(net, path));

  Rng rng2(999);  // different init
  Sequential net2;
  net2.emplace<Dense>(6, 5, rng2);
  net2.emplace<Tanh>();
  net2.emplace<Dense>(5, 2, rng2);
  ASSERT_TRUE(load_weights(net2, path));
  const Mat after = net2.predict(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  std::filesystem::remove(path);
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(213);
  Sequential net;
  net.emplace<Dense>(6, 5, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "noble_weights_test2.bin").string();
  ASSERT_TRUE(save_weights(net, path));
  Sequential other;
  other.emplace<Dense>(7, 5, rng);
  EXPECT_FALSE(load_weights(other, path));
  std::filesystem::remove(path);
}

/// Reads a whole file into a byte string (test helper).
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Writes a byte string to a file (test helper).
void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Serialize, CorruptFilesRejectedCleanly) {
  // The corrupt-file regression: a weights file truncated anywhere — inside
  // the magic, the tensor-count header, a shape header or tensor data —
  // must fail load_weights, as must trailing garbage and a wrong magic.
  Rng rng(215);
  Sequential net;
  net.emplace<Dense>(6, 5, rng);
  net.emplace<BatchNorm1d>(5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "noble_weights_corrupt.bin").string();
  ASSERT_TRUE(save_weights(net, path));
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 30u);

  Rng rng2(216);
  Sequential fresh;
  fresh.emplace<Dense>(6, 5, rng2);
  fresh.emplace<BatchNorm1d>(5);

  // Truncations: mid-magic, mid-count, mid-shape-header, mid-data, one short.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{10}, std::size_t{20},
        good.size() / 2, good.size() - 1}) {
    write_file(path, good.substr(0, cut));
    EXPECT_FALSE(load_weights(fresh, path)) << "cut at " << cut;
  }

  // Trailing bytes after the last tensor are not a valid weights file.
  write_file(path, good + std::string(4, '\0'));
  EXPECT_FALSE(load_weights(fresh, path));

  // Wrong magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  write_file(path, bad_magic);
  EXPECT_FALSE(load_weights(fresh, path));

  // The untouched image still loads.
  write_file(path, good);
  EXPECT_TRUE(load_weights(fresh, path));
  std::filesystem::remove(path);
}

TEST(Trainer, LearnsLinearMap) {
  // y = x A + b is exactly representable: the trainer must drive MSE ~ 0.
  Rng rng(214);
  const Mat a_true{{2.0f, -1.0f}, {0.5f, 1.5f}, {-1.0f, 0.0f}};
  Mat x = random_mat(256, 3, rng);
  Mat y;
  linalg::gemm(x, a_true, y);

  Sequential net;
  net.emplace<Dense>(3, 2, rng);
  Adam opt(0.02);
  const MseLoss loss;
  TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 32;
  Trainer trainer(opt, loss, tc);
  const auto result = trainer.fit(net, x, y);
  EXPECT_LT(result.final_train_loss, 1e-3);
}

TEST(Trainer, EarlyStoppingTriggers) {
  Rng rng(215);
  // Pure-noise target: validation loss cannot improve for long.
  const Mat x = random_mat(128, 4, rng);
  const Mat y = random_mat(128, 2, rng);
  const Mat xv = random_mat(64, 4, rng);
  const Mat yv = random_mat(64, 2, rng);
  Sequential net;
  net.emplace<Dense>(4, 16, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(16, 2, rng);
  Adam opt(0.01);
  const MseLoss loss;
  TrainConfig tc;
  tc.epochs = 200;
  tc.batch_size = 32;
  tc.patience = 3;
  Trainer trainer(opt, loss, tc);
  const auto result = trainer.fit(net, x, y, &xv, &yv);
  EXPECT_LT(result.epochs_run, 200u);
}

TEST(Trainer, EpochCallbackInvoked) {
  Rng rng(216);
  const Mat x = random_mat(32, 2, rng);
  const Mat y = random_mat(32, 1, rng);
  Sequential net;
  net.emplace<Dense>(2, 1, rng);
  Adam opt(0.01);
  const MseLoss loss;
  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 16;
  std::size_t calls = 0;
  tc.on_epoch = [&](std::size_t, double, double) { ++calls; };
  Trainer trainer(opt, loss, tc);
  trainer.fit(net, x, y);
  EXPECT_EQ(calls, 5u);
}

}  // namespace
}  // namespace noble::nn
