// Tests for the symmetric eigensolvers: Jacobi (full) and subspace iteration
// (extremal eigenpairs), including agreement between the two.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"

namespace noble::linalg {
namespace {

/// Builds a random symmetric matrix with known spectrum Q diag(vals) Q^T.
MatD symmetric_with_spectrum(const std::vector<double>& vals, Rng& rng) {
  const std::size_t n = vals.size();
  // Random orthonormal Q via Gram-Schmidt on a Gaussian matrix.
  MatD q(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) q(i, j) = rng.normal();
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t p = 0; p < c; ++p) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += q(i, c) * q(i, p);
      for (std::size_t i = 0; i < n; ++i) q(i, c) -= proj * q(i, p);
    }
    double nrm = 0.0;
    for (std::size_t i = 0; i < n; ++i) nrm += q(i, c) * q(i, c);
    nrm = std::sqrt(nrm);
    for (std::size_t i = 0; i < n; ++i) q(i, c) /= nrm;
  }
  MatD a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += q(i, k) * vals[k] * q(j, k);
      a(i, j) = s;
    }
  return a;
}

Mat to_float(const MatD& a) {
  Mat out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      out(i, j) = static_cast<float>(a(i, j));
  return out;
}

TEST(JacobiEigen, DiagonalMatrix) {
  const MatD a{{3.0, 0.0}, {0.0, 1.0}};
  const auto res = jacobi_eigen(a);
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_NEAR(res.values[0], 3.0, 1e-10);
  EXPECT_NEAR(res.values[1], 1.0, 1e-10);
}

TEST(JacobiEigen, KnownSpectrumRecovered) {
  Rng rng(21);
  const std::vector<double> spectrum{9.0, 4.0, 1.0, 0.5, 0.1};
  const MatD a = symmetric_with_spectrum(spectrum, rng);
  const auto res = jacobi_eigen(a);
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    EXPECT_NEAR(res.values[i], spectrum[i], 1e-8);
}

TEST(JacobiEigen, VectorsSatisfyDefinition) {
  Rng rng(23);
  const MatD a = symmetric_with_spectrum({5.0, 2.0, -1.0}, rng);
  const auto res = jacobi_eigen(a);
  // Check A v = lambda v for each eigenpair.
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < 3; ++j) av += a(i, j) * res.vectors(j, c);
      EXPECT_NEAR(av, res.values[c] * res.vectors(i, c), 1e-7);
    }
  }
}

TEST(TopKEigen, MatchesJacobiOnModerateMatrix) {
  Rng rng(25);
  std::vector<double> spectrum;
  for (int i = 0; i < 30; ++i) spectrum.push_back(30.0 - i);
  const MatD a = symmetric_with_spectrum(spectrum, rng);
  const Mat af = to_float(a);
  const auto res = top_k_eigen_symmetric(af, 4, /*seed=*/3);
  ASSERT_EQ(res.values.size(), 4u);
  EXPECT_NEAR(res.values[0], 30.0, 1e-2);
  EXPECT_NEAR(res.values[1], 29.0, 1e-2);
  EXPECT_NEAR(res.values[2], 28.0, 1e-2);
  EXPECT_NEAR(res.values[3], 27.0, 1e-2);
}

TEST(TopKEigen, VectorsAreOrthonormal) {
  Rng rng(27);
  std::vector<double> spectrum;
  for (int i = 0; i < 20; ++i) spectrum.push_back(std::exp(-0.3 * i) * 10.0);
  const Mat a = to_float(symmetric_with_spectrum(spectrum, rng));
  const auto res = top_k_eigen_symmetric(a, 3, 5);
  for (std::size_t c1 = 0; c1 < 3; ++c1) {
    for (std::size_t c2 = 0; c2 <= c1; ++c2) {
      double d = 0.0;
      for (std::size_t i = 0; i < a.rows(); ++i)
        d += static_cast<double>(res.vectors(i, c1)) * res.vectors(i, c2);
      EXPECT_NEAR(d, c1 == c2 ? 1.0 : 0.0, 1e-4);
    }
  }
}

TEST(BottomKEigen, FindsSmallest) {
  Rng rng(29);
  const std::vector<double> spectrum{10.0, 8.0, 6.0, 4.0, 2.0, 0.5, 0.25};
  const Mat a = to_float(symmetric_with_spectrum(spectrum, rng));
  const auto res = bottom_k_eigen_symmetric(a, 2, 7, 600, 1e-9);
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_NEAR(res.values[0], 0.25, 5e-2);
  EXPECT_NEAR(res.values[1], 0.5, 5e-2);
}

TEST(Gershgorin, BoundsLargestEigenvalue) {
  Rng rng(31);
  const std::vector<double> spectrum{7.0, 3.0, 1.0};
  const Mat a = to_float(symmetric_with_spectrum(spectrum, rng));
  EXPECT_GE(gershgorin_upper_bound(a), 7.0 - 1e-5);
}

}  // namespace
}  // namespace noble::linalg
