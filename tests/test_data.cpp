// Tests for dataset schemas, splits, preprocessing and metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/metrics.h"
#include "data/preprocess.h"
#include "linalg/ops.h"
#include "geo/floorplan.h"

namespace noble::data {
namespace {

WifiDataset make_wifi_dataset(std::size_t n, std::size_t aps, Rng& rng) {
  WifiDataset ds;
  ds.num_aps = aps;
  for (std::size_t i = 0; i < n; ++i) {
    WifiSample s;
    s.building = static_cast<int>(i % 3);
    s.floor = static_cast<int>(i % 4);
    s.position = {rng.uniform(0, 100), rng.uniform(0, 50)};
    for (std::size_t a = 0; a < aps; ++a) {
      s.rssi.push_back(rng.bernoulli(0.3)
                           ? kNotDetectedRssi
                           : static_cast<float>(rng.uniform(-100.0, -30.0)));
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

TEST(WifiSplitting, FractionsRespected) {
  Rng rng(601);
  const auto all = make_wifi_dataset(1000, 4, rng);
  Rng split_rng(602);
  const auto split = split_wifi(all, 0.1, 0.2, split_rng);
  EXPECT_EQ(split.val.size(), 100u);
  EXPECT_EQ(split.test.size(), 200u);
  EXPECT_EQ(split.train.size(), 700u);
  EXPECT_EQ(split.train.num_aps, 4u);
}

TEST(WifiSplitting, PartitionIsExactAndDisjoint) {
  Rng rng(603);
  auto all = make_wifi_dataset(300, 2, rng);
  // Tag each sample uniquely via position.x.
  for (std::size_t i = 0; i < all.size(); ++i) all.samples[i].position.x = double(i);
  Rng split_rng(604);
  const auto split = split_wifi(all, 0.25, 0.25, split_rng);
  std::set<double> seen;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (const auto& s : part->samples) {
      EXPECT_TRUE(seen.insert(s.position.x).second) << "duplicate sample in split";
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(WifiSplitting, DeterministicInSeed) {
  Rng rng(605);
  const auto all = make_wifi_dataset(100, 2, rng);
  Rng a(7), b(7);
  const auto s1 = split_wifi(all, 0.2, 0.2, a);
  const auto s2 = split_wifi(all, 0.2, 0.2, b);
  ASSERT_EQ(s1.train.size(), s2.train.size());
  for (std::size_t i = 0; i < s1.train.size(); ++i) {
    EXPECT_EQ(s1.train.samples[i].position.x, s2.train.samples[i].position.x);
  }
}

TEST(FeatureMatrices, WifiShapesAndValues) {
  Rng rng(607);
  const auto ds = make_wifi_dataset(10, 3, rng);
  const auto x = wifi_feature_matrix(ds);
  const auto y = wifi_position_matrix(ds);
  EXPECT_EQ(x.rows(), 10u);
  EXPECT_EQ(x.cols(), 3u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_FLOAT_EQ(x(4, 1), ds.samples[4].rssi[1]);
  EXPECT_FLOAT_EQ(y(4, 0), static_cast<float>(ds.samples[4].position.x));
}

TEST(NormalizeRssi, NotDetectedMapsToZero) {
  linalg::Mat raw{{kNotDetectedRssi, -104.0f, -30.0f}};
  const auto norm = normalize_rssi(raw, RssiRepresentation::kLinear);
  EXPECT_FLOAT_EQ(norm(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(norm(0, 1), 0.0f);  // weakest observable -> 0
  EXPECT_NEAR(norm(0, 2), (104.0f - 30.0f) / 104.0f, 1e-6f);
}

TEST(NormalizeRssi, StrongerSignalLargerFeature) {
  linalg::Mat raw{{-90.0f, -50.0f}};
  for (auto rep : {RssiRepresentation::kLinear, RssiRepresentation::kPowed}) {
    const auto norm = normalize_rssi(raw, rep);
    EXPECT_GT(norm(0, 1), norm(0, 0));
  }
}

TEST(NormalizeRssi, PowedCompressesWeakSignals) {
  linalg::Mat raw{{-90.0f}};
  const auto lin = normalize_rssi(raw, RssiRepresentation::kLinear);
  const auto pow2 = normalize_rssi(raw, RssiRepresentation::kPowed);
  EXPECT_LT(pow2(0, 0), lin(0, 0));  // x^2 < x for x in (0,1)
}

TEST(NormalizeRssi, OutputInUnitInterval) {
  Rng rng(609);
  linalg::Mat raw(20, 5);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw.data()[i] = rng.bernoulli(0.2) ? kNotDetectedRssi
                                       : static_cast<float>(rng.uniform(-120, -20));
  }
  const auto norm = normalize_rssi(raw);
  for (std::size_t i = 0; i < norm.size(); ++i) {
    EXPECT_GE(norm.data()[i], 0.0f);
    EXPECT_LE(norm.data()[i], 1.0f);
  }
}

TEST(Standardizer, TransformIsZeroMeanUnitVar) {
  Rng rng(611);
  linalg::Mat x(200, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = static_cast<float>(rng.normal(10.0, 5.0));
    x(i, 1) = static_cast<float>(rng.normal(-4.0, 0.5));
    x(i, 2) = 7.0f;  // constant column
  }
  Standardizer sc;
  sc.fit(x);
  const auto z = sc.transform(x);
  const auto mu = linalg::col_mean(z);
  const auto var = linalg::col_var(z);
  EXPECT_NEAR(mu[0], 0.0f, 1e-4f);
  EXPECT_NEAR(var[0], 1.0f, 1e-2f);
  EXPECT_NEAR(mu[2], 0.0f, 1e-4f);  // constant column centered, not exploded
}

TEST(Standardizer, InverseTransformRoundTrips) {
  Rng rng(613);
  linalg::Mat x(50, 2);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.normal(3.0, 2.0));
  Standardizer sc;
  sc.fit(x);
  const auto back = sc.inverse_transform(sc.transform(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back.data()[i], x.data()[i], 1e-3f);
}

TEST(OneHot, EncodesCorrectly) {
  const auto m = one_hot({2, 0, 1}, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(2, 1), 1.0f);
  double sum = 0;
  for (std::size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(Metrics, PositionErrorsEuclidean) {
  const std::vector<geo::Point2> pred{{0, 0}, {3, 4}};
  const std::vector<geo::Point2> truth{{0, 0}, {0, 0}};
  const auto errs = position_errors(pred, truth);
  EXPECT_DOUBLE_EQ(errs[0], 0.0);
  EXPECT_DOUBLE_EQ(errs[1], 5.0);
}

TEST(Metrics, SummaryStats) {
  const auto s = summarize_errors({1.0, 2.0, 3.0, 4.0, 10.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_GT(s.p90, s.median);
}

TEST(Metrics, HitRate) {
  EXPECT_DOUBLE_EQ(hit_rate({1, 2, 3}, {1, 2, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(hit_rate({}, {}), 0.0);
}

TEST(Metrics, StructureScoreFloorPlan) {
  geo::FloorPlan plan;
  plan.add_building(geo::Building(0, "A", geo::Polygon::rectangle(0, 0, 10, 10), 1));
  const std::vector<geo::Point2> pts{{5, 5}, {20, 20}, {1, 1}, {-5, 0}};
  EXPECT_DOUBLE_EQ(structure_score(pts, plan), 0.5);
}

TEST(Metrics, StructureScoreWalkways) {
  geo::PathGraph g;
  g.add_polyline({{0, 0}, {10, 0}});
  const std::vector<geo::Point2> pts{{5, 0.5}, {5, 10}};
  EXPECT_DOUBLE_EQ(structure_score(pts, g, 1.0), 0.5);
}

TEST(ImuSplitting, LayoutMetadataPreserved) {
  ImuDataset all;
  all.segment_dim = 96;
  all.max_segments = 50;
  Rng rng(615);
  for (int i = 0; i < 100; ++i) {
    ImuPath p;
    p.features.assign(all.feature_dim(), 0.0f);
    p.num_segments = 1;
    p.segment_endpoints = {{1.0, 1.0}};
    all.paths.push_back(std::move(p));
  }
  Rng split_rng(616);
  const auto split = split_imu(all, 0.2, 0.3, split_rng);
  EXPECT_EQ(split.train.segment_dim, 96u);
  EXPECT_EQ(split.test.max_segments, 50u);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 100u);
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 30u);
}

}  // namespace
}  // namespace noble::data
