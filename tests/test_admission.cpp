// Admission-control tests: class-aware bounded-queue semantics (priority
// ordering, per-class caps, deadline expiry — all deterministic), the
// engine-level class/deadline contract (kExpired at submit, DeadlineExpired
// in queue via a deliberately slow backend, interactive immunity to a bulk
// flood under reserved headroom), per-class stats coherence across
// EngineStats::merge(), and router spill-vs-affinity equivalence (a bulk
// spill serves bit-identically to the affinity path it bypassed).
//
// The concurrency tests here carry the `concurrency` CTest label and run
// under -DNOBLE_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "engine/backend.h"
#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "fleet/router.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// BoundedQueue: the deterministic half of class/deadline admission.
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, InteractiveDrainsBeforeBulk) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.try_push(10, RequestClass::kBulk), PushResult::kOk);
  EXPECT_EQ(queue.try_push(11, RequestClass::kBulk), PushResult::kOk);
  EXPECT_EQ(queue.try_push(1, RequestClass::kInteractive), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kInteractive), PushResult::kOk);
  // Bulk arrived first, but interactive owns the front of every batch; bulk
  // fills the remainder in its own FIFO order.
  const auto batch = queue.pop_batch(3, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_EQ(batch[2], 10);
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.depth(RequestClass::kBulk), 1u);
}

TEST(AdmissionQueue, BulkCapReservesInteractiveHeadroom) {
  BoundedQueue<int> queue(4, ClassCaps{0, 2});
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk), PushResult::kOk);
  // Bulk holds its 2-slot cap: the flood sheds while half the queue is free.
  EXPECT_EQ(queue.try_push(3, RequestClass::kBulk), PushResult::kFull);
  EXPECT_EQ(queue.try_push(4, RequestClass::kInteractive), PushResult::kOk);
  EXPECT_EQ(queue.try_push(5, RequestClass::kInteractive), PushResult::kOk);
  // Total capacity still binds everyone, interactive included.
  EXPECT_EQ(queue.try_push(6, RequestClass::kInteractive), PushResult::kFull);
  EXPECT_EQ(queue.depth(), 4u);
}

TEST(AdmissionQueue, InteractiveCapBindsToo) {
  BoundedQueue<int> queue(4, ClassCaps{1, 0});
  EXPECT_EQ(queue.try_push(1, RequestClass::kInteractive), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kInteractive), PushResult::kFull);
  EXPECT_EQ(queue.try_push(3, RequestClass::kBulk), PushResult::kOk);
}

TEST(AdmissionQueue, ExpiredEntriesAreHandedBackNotServed) {
  BoundedQueue<int> queue(8);
  const auto past = Clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk, past), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2, RequestClass::kBulk,
                           Clock::now() + std::chrono::seconds(30)),
            PushResult::kOk);
  std::vector<int> expired;
  const auto batch = queue.pop_batch(8, std::chrono::microseconds(0), &expired);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 2);  // the live entry
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueue, AllExpiredPopReturnsWithoutSittingOutTheWindow) {
  BoundedQueue<int> queue(8);
  const auto past = Clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(queue.try_push(1, RequestClass::kInteractive, past), PushResult::kOk);
  std::vector<int> expired;
  const auto t0 = Clock::now();
  const auto batch = queue.pop_batch(4, std::chrono::seconds(30), &expired);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
  EXPECT_TRUE(batch.empty());
  ASSERT_EQ(expired.size(), 1u);
  // Open queue + empty batch + expired corpses != the shutdown signal.
  EXPECT_FALSE(queue.closed());
}

TEST(AdmissionQueue, NullExpiredListIgnoresDeadlines) {
  BoundedQueue<int> queue(8);
  const auto past = Clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(queue.try_push(1, RequestClass::kBulk, past), PushResult::kOk);
  const auto batch = queue.pop_batch(4, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 1u);  // served: caller opted out of expiry
}

// ---------------------------------------------------------------------------
// Engine fixtures (mirrors test_engine's sizing, its own seed).
// ---------------------------------------------------------------------------

struct AdmissionFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model;
};

const AdmissionFixture& admission_fixture() {
  static const AdmissionFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1200;
    cfg.seed = 505;
    auto* f = new AdmissionFixture{core::make_uji_experiment(cfg), core::NobleWifiModel([] {
                                     core::NobleWifiConfig mc;
                                     mc.quantize.tau = 6.0;
                                     mc.quantize.coarse_l = 24.0;
                                     mc.epochs = 6;
                                     mc.hidden_units = 32;
                                     return mc;
                                   }())};
    f->model.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

const serve::WifiLocalizer& reference_localizer() {
  static const serve::WifiLocalizer* localizer = new serve::WifiLocalizer(
      serve::WifiLocalizer::from_model(admission_fixture().model));
  return *localizer;
}

std::vector<serve::RssiVector> query_pool(std::size_t count) {
  const auto& f = admission_fixture();
  std::vector<serve::RssiVector> queries;
  for (std::size_t i = 0; i < count && i < f.exp.split.test.size(); ++i) {
    queries.push_back(f.exp.split.test.samples[i].rssi);
  }
  return queries;
}

bool fixes_identical(const serve::Fix& a, const serve::Fix& b) { return a == b; }

/// Dense backend that sleeps per batch — holds a 1-worker engine busy long
/// enough for a queued deadline to lapse deterministically.
class SlowBackend final : public WifiBackend {
 public:
  SlowBackend(const serve::WifiLocalizer& localizer, std::chrono::milliseconds nap)
      : inner_(localizer), nap_(nap) {}

  std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const override {
    std::this_thread::sleep_for(nap_);
    return inner_.locate_batch(queries);
  }
  std::size_t input_dim() const override { return inner_.input_dim(); }
  std::unique_ptr<WifiBackend> clone() const override {
    return std::make_unique<SlowBackend>(inner_localizer(), nap_);
  }
  std::string name() const override { return "slow-dense"; }

 private:
  const serve::WifiLocalizer& inner_localizer() const { return reference_localizer(); }

  DenseBackend inner_;
  std::chrono::milliseconds nap_;
};

// ---------------------------------------------------------------------------
// Engine: deadline verdicts.
// ---------------------------------------------------------------------------

TEST(AdmissionEngine, PastDeadlineIsRefusedAtSubmit) {
  const auto queries = query_pool(1);
  ASSERT_FALSE(queries.empty());
  Engine engine(reference_localizer());

  SubmitOptions late = SubmitOptions::bulk();
  late.deadline = Clock::now() - std::chrono::milliseconds(1);
  const Submission s = engine.submit(queries[0], late);
  EXPECT_EQ(s.status, SubmitStatus::kExpired);
  EXPECT_FALSE(s.result.valid());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 0u);   // never admitted
  EXPECT_EQ(stats.rejected, 0u);    // expired is its own bucket
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.bulk.expired, 1u);
  EXPECT_EQ(stats.interactive.expired, 0u);
}

TEST(AdmissionEngine, QueuedRequestExpiresBeforeWastingAGemmSlot) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(2);
  ASSERT_GE(queries.size(), 2u);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;  // the sleeper and the doomed request cannot share a batch
  cfg.max_wait_us = 0;
  Engine engine(std::make_unique<SlowBackend>(localizer, std::chrono::milliseconds(50)),
                cfg);

  // A occupies the single worker for ~50 ms; B's 5 ms deadline lapses while
  // it waits behind A and must fail without ever reaching the backend.
  Submission a = engine.submit(queries[0]);
  ASSERT_TRUE(a.accepted());
  Submission b =
      engine.submit(queries[1], SubmitOptions::bulk().expires_in_us(5000));
  ASSERT_TRUE(b.accepted());

  EXPECT_TRUE(fixes_identical(a.result.get(), localizer.locate(queries[0])));
  EXPECT_THROW(b.result.get(), DeadlineExpired);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 1u);  // only A produced a fix
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.bulk.expired, 1u);
  EXPECT_EQ(stats.batches, 1u);  // B never formed a batch
}

TEST(AdmissionEngine, EngineDefaultDeadlineApplies) {
  const auto queries = query_pool(1);
  ASSERT_FALSE(queries.empty());
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.default_deadline_us = 20000;  // requests must start within 20 ms
  Engine engine(std::make_unique<SlowBackend>(reference_localizer(),
                                              std::chrono::milliseconds(150)),
                cfg);
  // The sleeper carries its own generous deadline (explicit beats default),
  // so only the request stuck behind it rides the engine-wide 20 ms default
  // — which its 150 ms wait is guaranteed to blow.
  Submission first =
      engine.submit(queries[0], SubmitOptions::interactive().expires_in_us(10'000'000));
  ASSERT_TRUE(first.accepted());
  Submission second = engine.submit(queries[0]);  // stuck behind the sleeper
  ASSERT_TRUE(second.accepted());
  (void)first.result.get();
  EXPECT_THROW(second.result.get(), DeadlineExpired);
  EXPECT_EQ(engine.stats().interactive.expired, 1u);
}

// ---------------------------------------------------------------------------
// Engine: interactive immunity to a bulk flood (concurrent).
// ---------------------------------------------------------------------------

TEST(AdmissionEngine, ReservedHeadroomKeepsInteractiveCleanUnderBulkFlood) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(16);
  ASSERT_FALSE(queries.empty());
  std::vector<serve::Fix> expected;
  for (const auto& q : queries) expected.push_back(localizer.locate(q));

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.max_wait_us = 0;
  cfg.queue_cap = 64;
  cfg.bulk_cap = 16;  // 48 slots bulk can never touch
  Engine engine(localizer, cfg);

  std::atomic<bool> flooding{true};
  std::atomic<std::uint64_t> bulk_shed{0};
  std::vector<std::thread> flooders;
  for (int f = 0; f < 2; ++f) {
    flooders.emplace_back([&, f] {
      std::vector<std::future<serve::Fix>> inflight;
      std::size_t r = 0;
      while (flooding.load(std::memory_order_relaxed)) {
        Submission s = engine.submit(queries[(f + r++) % queries.size()],
                                     SubmitOptions::bulk());
        if (s.accepted()) {
          inflight.push_back(std::move(s.result));
          if (inflight.size() >= 64) {
            for (auto& fut : inflight) (void)fut.get();
            inflight.clear();
          }
        } else {
          bulk_shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (auto& fut : inflight) (void)fut.get();
    });
  }

  // One interactive fix in flight at a time against 48 reserved slots:
  // admission is guaranteed, whatever the flood does.
  int interactive_rejected = 0, mismatches = 0;
  for (int r = 0; r < 200; ++r) {
    const std::size_t q = static_cast<std::size_t>(r) % queries.size();
    Submission s = engine.submit(queries[q]);
    if (!s.accepted()) {
      ++interactive_rejected;
      continue;
    }
    if (!fixes_identical(s.result.get(), expected[q])) ++mismatches;
  }
  flooding.store(false);
  for (auto& f : flooders) f.join();

  EXPECT_EQ(interactive_rejected, 0);
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(bulk_shed.load(), 0u);  // 2 tight loops vs 16 slots: overload certain
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.interactive.rejected, 0u);
  EXPECT_EQ(stats.bulk.rejected, bulk_shed.load());
  EXPECT_EQ(stats.interactive.accepted, 200u);
}

// ---------------------------------------------------------------------------
// Per-class stats coherence, including across merge().
// ---------------------------------------------------------------------------

TEST(AdmissionStats, ClassCountersPartitionTheTotals) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(8);
  ASSERT_FALSE(queries.empty());
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  Engine engine(localizer, cfg);

  std::vector<std::future<serve::Fix>> futures;
  for (int r = 0; r < 12; ++r) {
    Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()]);
    ASSERT_TRUE(s.accepted());
    futures.push_back(std::move(s.result));
  }
  for (int r = 0; r < 8; ++r) {
    Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()],
                                 SubmitOptions::bulk());
    ASSERT_TRUE(s.accepted());
    futures.push_back(std::move(s.result));
  }
  SubmitOptions dead = SubmitOptions::bulk();
  dead.deadline = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(engine.submit(queries[0], dead).status, SubmitStatus::kExpired);
  for (auto& f : futures) (void)f.get();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.interactive.accepted, 12u);
  EXPECT_EQ(stats.bulk.accepted, 8u);
  EXPECT_EQ(stats.submitted, stats.interactive.accepted + stats.bulk.accepted);
  EXPECT_EQ(stats.bulk.expired, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 20u);
  // Every completion recorded in exactly one class; the total is the merge.
  EXPECT_EQ(stats.interactive.latency_us.count(), 12u);
  EXPECT_EQ(stats.bulk.latency_us.count(), 8u);
  EXPECT_EQ(stats.latency_us.count(), stats.completed);
  EXPECT_GT(stats.interactive.latency.p50_us, 0.0);
  EXPECT_LE(stats.interactive.latency.p50_us, stats.interactive.latency.p99_us);
}

TEST(AdmissionStats, PerClassCountersSurviveMerge) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(4);
  ASSERT_FALSE(queries.empty());
  const auto run = [&](int interactive, int bulk) {
    Engine engine(localizer, EngineConfig{.workers = 1, .max_wait_us = 0});
    std::vector<std::future<serve::Fix>> futures;
    for (int r = 0; r < interactive; ++r) {
      Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()]);
      futures.push_back(std::move(s.result));
    }
    for (int r = 0; r < bulk; ++r) {
      Submission s = engine.submit(queries[static_cast<std::size_t>(r) % queries.size()],
                                   SubmitOptions::bulk());
      futures.push_back(std::move(s.result));
    }
    for (auto& f : futures) (void)f.get();
    return engine.stats();
  };

  const EngineStats a = run(5, 3);
  const EngineStats b = run(2, 7);
  EngineStats merged = a;
  merged.merge(b);

  EXPECT_EQ(merged.interactive.accepted, 7u);
  EXPECT_EQ(merged.bulk.accepted, 10u);
  EXPECT_EQ(merged.interactive.latency_us.count(),
            a.interactive.latency_us.count() + b.interactive.latency_us.count());
  EXPECT_EQ(merged.bulk.latency_us.count(),
            a.bulk.latency_us.count() + b.bulk.latency_us.count());
  EXPECT_EQ(merged.latency_us.count(), merged.completed);
  EXPECT_EQ(merged.completed, a.completed + b.completed);
  // Merged per-class percentiles sit inside the per-snapshot extremes.
  EXPECT_GE(merged.bulk.latency.p99_us,
            std::min(a.bulk.latency.p99_us, b.bulk.latency.p99_us));
  EXPECT_LE(merged.bulk.latency.p99_us,
            std::max(a.bulk.latency.p99_us, b.bulk.latency.p99_us));
}

// ---------------------------------------------------------------------------
// Router: bulk spill vs interactive affinity.
// ---------------------------------------------------------------------------

TEST(AdmissionRouter, BulkSpillServesBitIdenticallyAcrossReplicas) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(12);
  ASSERT_FALSE(queries.empty());
  std::vector<serve::Fix> expected;
  for (const auto& q : queries) expected.push_back(localizer.locate(q));

  fleet::Router router;
  fleet::ShardConfig shard;
  shard.key = "bldg";
  shard.engines = 3;
  shard.engine.workers = 1;
  shard.engine.max_batch = 4;
  shard.engine.max_wait_us = 2000;  // hold batches open so queues stay deep
  shard.engine.queue_cap = 2;
  ASSERT_TRUE(router.add_shard(shard, localizer));

  std::size_t served = 0, shed = 0, mismatches = 0;
  std::vector<std::pair<std::size_t, std::future<serve::Fix>>> inflight;
  for (int r = 0; r < 256; ++r) {
    const std::size_t q = static_cast<std::size_t>(r) % queries.size();
    engine::Submission s =
        router.submit("bldg", queries[q], SubmitOptions::bulk());
    if (s.accepted()) {
      ++served;
      inflight.emplace_back(q, std::move(s.result));
    } else {
      EXPECT_EQ(s.status, SubmitStatus::kQueueFull);  // whole shard full
      ++shed;
    }
    if (inflight.size() >= 32) {
      for (auto& [qi, fut] : inflight) {
        if (!fixes_identical(fut.get(), expected[qi])) ++mismatches;
      }
      inflight.clear();
    }
  }
  for (auto& [qi, fut] : inflight) {
    if (!fixes_identical(fut.get(), expected[qi])) ++mismatches;
  }

  EXPECT_EQ(mismatches, 0u);  // the spill path answers exactly like affinity
  EXPECT_GT(served, 0u);
  EXPECT_GT(shed, 0u);  // 6 total slots vs a 256-request tight loop
  // The flood spilled beyond fingerprint affinity: with 12 distinct scans
  // against 2-slot queues, no single replica can have served everything.
  const auto engines = router.shard_engine_stats("bldg");
  ASSERT_EQ(engines.size(), 3u);
  std::size_t engines_used = 0;
  for (const auto& e : engines) engines_used += e.bulk.accepted > 0 ? 1 : 0;
  EXPECT_GE(engines_used, 2u);
}

TEST(AdmissionRouter, ClassCountersFlowIntoFleetStats) {
  const auto& localizer = reference_localizer();
  const auto queries = query_pool(4);
  ASSERT_FALSE(queries.empty());

  fleet::Router router;
  for (const char* key : {"A", "B"}) {
    fleet::ShardConfig shard;
    shard.key = key;
    shard.engine.workers = 1;
    shard.engine.max_wait_us = 0;
    ASSERT_TRUE(router.add_shard(shard, localizer));
  }

  std::vector<std::future<serve::Fix>> futures;
  for (int r = 0; r < 6; ++r) {
    engine::Submission s = router.submit(r % 2 == 0 ? "A" : "B", queries[0]);
    ASSERT_TRUE(s.accepted());
    futures.push_back(std::move(s.result));
  }
  for (int r = 0; r < 4; ++r) {
    engine::Submission s =
        router.submit("A", queries[1], SubmitOptions::bulk());
    ASSERT_TRUE(s.accepted());
    futures.push_back(std::move(s.result));
  }
  SubmitOptions dead = SubmitOptions::bulk();
  dead.deadline = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(router.submit("B", queries[2], dead).status, SubmitStatus::kExpired);
  for (auto& f : futures) (void)f.get();

  const fleet::FleetStats stats = router.stats();
  EXPECT_EQ(stats.total.interactive.accepted, 6u);
  EXPECT_EQ(stats.total.bulk.accepted, 4u);
  EXPECT_EQ(stats.total.bulk.expired, 1u);
  EXPECT_EQ(stats.shards.at("A").bulk.accepted, 4u);
  EXPECT_EQ(stats.shards.at("B").bulk.expired, 1u);
  EXPECT_EQ(stats.total.interactive.accepted + stats.total.bulk.accepted,
            stats.total.submitted);
  EXPECT_EQ(stats.total.latency_us.count(), stats.total.completed);
}

}  // namespace
}  // namespace noble::engine
