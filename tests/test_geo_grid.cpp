// Grid quantizer tests, including the parameterized property sweep over tau:
// decode error of an in-distribution point is bounded by the cell
// half-diagonal (tau * sqrt(2) / 2) — the core invariant behind NObLe's
// median error being tiny when the class is predicted correctly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "geo/grid.h"

namespace noble::geo {
namespace {

std::vector<Point2> random_cloud(std::size_t n, double extent, Rng& rng) {
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pts;
}

TEST(GridQuantizer, ClassesCoverAllTrainingPoints) {
  Rng rng(301);
  const auto pts = random_cloud(500, 50.0, rng);
  GridQuantizer q;
  q.fit(pts, 2.0);
  EXPECT_GT(q.num_classes(), 0u);
  for (const auto& p : pts) {
    EXPECT_GE(q.class_of(p), 0);
  }
}

TEST(GridQuantizer, EmptyCellsAreDiscarded) {
  // Two clusters far apart: the space between them holds no classes.
  std::vector<Point2> pts;
  Rng rng(302);
  for (int i = 0; i < 50; ++i) pts.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
  for (int i = 0; i < 50; ++i)
    pts.push_back({rng.uniform(100, 105), rng.uniform(0, 5)});
  GridQuantizer q;
  q.fit(pts, 1.0);
  EXPECT_EQ(q.class_of({50.0, 2.5}), -1);  // midpoint cell is empty
  // There are at most ceil(5)^2 * 2 + margin occupied cells, far fewer than
  // the full 105x5 grid.
  EXPECT_LT(q.num_classes(), 120u);
}

TEST(GridQuantizer, CenterIsInsideCell) {
  Rng rng(303);
  const auto pts = random_cloud(100, 20.0, rng);
  GridQuantizer q;
  q.fit(pts, 3.0);
  for (const auto& p : pts) {
    const int c = q.class_of(p);
    const Point2 center = q.center(c);
    // p and its cell center differ by at most the half-diagonal.
    EXPECT_LE(distance(p, center), 3.0 * std::sqrt(2.0) / 2.0 + 1e-9);
  }
}

TEST(GridQuantizer, DataCentroidTighterOrEqualOnAverage) {
  Rng rng(304);
  const auto pts = random_cloud(400, 30.0, rng);
  GridQuantizer q;
  q.fit(pts, 4.0);
  double center_err = 0.0, centroid_err = 0.0;
  for (const auto& p : pts) {
    const int c = q.class_of(p);
    center_err += distance(p, q.center(c));
    centroid_err += distance(p, q.data_centroid(c));
  }
  EXPECT_LE(centroid_err, center_err + 1e-9);
}

TEST(GridQuantizer, NearestClassForOutOfDistribution) {
  std::vector<Point2> pts{{0, 0}, {0.1, 0.1}, {10, 10}};
  GridQuantizer q;
  q.fit(pts, 1.0);
  // A far query still decodes to some valid class (the closest).
  const int c = q.nearest_class({10.4, 10.4});
  EXPECT_GE(c, 0);
  EXPECT_LT(distance(q.center(c), {10.5, 10.5}), 1.5);
}

TEST(GridQuantizer, NeighborClassesAreAdjacent) {
  std::vector<Point2> pts;
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 5; ++y) pts.push_back({x + 0.5, y + 0.5});
  GridQuantizer q;
  q.fit(pts, 1.0);
  ASSERT_EQ(q.num_classes(), 25u);
  const auto nbs = q.neighbor_classes({2.5, 2.5}, 1);
  EXPECT_EQ(nbs.size(), 8u);  // full 8-neighborhood occupied
  const int own = q.class_of({2.5, 2.5});
  for (int nb : nbs) {
    EXPECT_NE(nb, own);
    EXPECT_LE(distance(q.center(nb), q.center(own)), std::sqrt(2.0) + 1e-9);
  }
}

TEST(GridQuantizer, ResidualBounded) {
  Rng rng(305);
  const auto pts = random_cloud(200, 25.0, rng);
  GridQuantizer q;
  q.fit(pts, 2.5);
  for (const auto& p : pts) {
    EXPECT_LE(q.residual(p), 2.5 * std::sqrt(2.0) / 2.0 + 1e-9);
  }
}

TEST(MultiResolution, CoarseHasFewerClasses) {
  Rng rng(306);
  const auto pts = random_cloud(800, 60.0, rng);
  MultiResolutionQuantizer mr;
  mr.fit(pts, 2.0, 10.0);
  EXPECT_GT(mr.fine().num_classes(), mr.coarse().num_classes());
}

TEST(MultiResolution, FineCellMapsIntoSingleCoarseCellMostly) {
  // With aligned origins a fine cell is contained in one coarse cell when
  // l is a multiple of tau; here we just verify centers map consistently.
  Rng rng(307);
  const auto pts = random_cloud(500, 40.0, rng);
  MultiResolutionQuantizer mr;
  mr.fit(pts, 2.0, 8.0);
  for (const auto& p : pts) {
    const int fine = mr.fine().class_of(p);
    const int coarse = mr.coarse().class_of(p);
    ASSERT_GE(fine, 0);
    ASSERT_GE(coarse, 0);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: decode error <= tau * sqrt(2)/2 for every tau.
// ---------------------------------------------------------------------------

class GridTauProperty : public ::testing::TestWithParam<double> {};

TEST_P(GridTauProperty, DecodeErrorBoundedByHalfDiagonal) {
  const double tau = GetParam();
  Rng rng(static_cast<std::uint64_t>(tau * 1000) + 7);
  const auto pts = random_cloud(300, 80.0, rng);
  GridQuantizer q;
  q.fit(pts, tau);
  const double bound = tau * std::sqrt(2.0) / 2.0 + 1e-9;
  for (const auto& p : pts) {
    const int c = q.class_of(p);
    ASSERT_GE(c, 0);
    EXPECT_LE(distance(p, q.center(c)), bound);
  }
}

TEST_P(GridTauProperty, ClassCountShrinksWithTau) {
  const double tau = GetParam();
  Rng rng(99);
  const auto pts = random_cloud(500, 80.0, rng);
  GridQuantizer fine_q, coarse_q;
  fine_q.fit(pts, tau);
  coarse_q.fit(pts, tau * 2.0);
  EXPECT_GE(fine_q.num_classes(), coarse_q.num_classes());
}

INSTANTIATE_TEST_SUITE_P(TauSweep, GridTauProperty,
                         ::testing::Values(0.2, 0.4, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace noble::geo
