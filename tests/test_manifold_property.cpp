// Parameterized property tests for the manifold substrate: invariants that
// must hold across neighborhood sizes and embedding dimensions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "linalg/distance.h"
#include "manifold/geodesic.h"
#include "manifold/isomap.h"
#include "manifold/lle.h"
#include "manifold/mds.h"

namespace noble::manifold {
namespace {

using linalg::Mat;

Mat make_arc(std::size_t n, double turns) {
  Mat x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = turns * std::numbers::pi * static_cast<double>(i) / (n - 1);
    x(i, 0) = static_cast<float>(std::cos(t));
    x(i, 1) = static_cast<float>(std::sin(t));
  }
  return x;
}

// ---------------------------------------------------------------------------
// kNN-graph sweep: geodesics are symmetric, satisfy the triangle inequality
// on samples, and dominate Euclidean distances for every k.
// ---------------------------------------------------------------------------

class GeodesicProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeodesicProperty, SymmetricAndDominatesEuclidean) {
  const std::size_t k = GetParam();
  const Mat x = make_arc(60, 1.0);
  const auto graph = build_knn_graph(x, k);
  const Mat geo = geodesic_distance_matrix(graph);
  Mat euclid;
  linalg::pairwise_dist(x, x, euclid);
  for (std::size_t i = 0; i < x.rows(); i += 7) {
    for (std::size_t j = 0; j < x.rows(); j += 5) {
      EXPECT_NEAR(geo(i, j), geo(j, i), 1e-3f);
      // Tolerance covers the float roundoff of the GEMM-expansion distance
      // (||x||^2 + ||y||^2 - 2<x,y> cancels catastrophically near zero).
      EXPECT_GE(geo(i, j) + 2e-3f, euclid(i, j));
    }
  }
}

TEST_P(GeodesicProperty, TriangleInequalityOnSamples) {
  const std::size_t k = GetParam();
  Rng rng(801);
  Mat x(40, 3);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.normal());
  const auto graph = build_knn_graph(x, k);
  const Mat geo = geodesic_distance_matrix(graph);
  for (std::size_t a = 0; a < 40; a += 9) {
    for (std::size_t b = 0; b < 40; b += 7) {
      for (std::size_t c = 0; c < 40; c += 11) {
        EXPECT_LE(geo(a, c), geo(a, b) + geo(b, c) + 1e-3f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NeighborhoodSizes, GeodesicProperty,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{8}));

// ---------------------------------------------------------------------------
// MDS dimension sweep: embedding at dimension d reproduces distances at
// least as well as d-1 (stress is monotone in d).
// ---------------------------------------------------------------------------

class MdsDimProperty : public ::testing::TestWithParam<std::size_t> {};

double mds_stress(const Mat& d_orig, const Mat& embedding) {
  Mat d_emb;
  linalg::pairwise_dist(embedding, embedding, d_emb);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < d_orig.rows(); ++i) {
    for (std::size_t j = 0; j < d_orig.cols(); ++j) {
      const double diff = static_cast<double>(d_orig(i, j)) - d_emb(i, j);
      num += diff * diff;
      den += static_cast<double>(d_orig(i, j)) * d_orig(i, j);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

TEST_P(MdsDimProperty, StressDecreasesWithDimension) {
  const std::size_t dim = GetParam();
  Rng rng(803);
  Mat pts(50, 4);
  for (std::size_t i = 0; i < pts.size(); ++i)
    pts.data()[i] = static_cast<float>(rng.uniform(0.0, 5.0));
  Mat d;
  linalg::pairwise_dist(pts, pts, d);
  const auto lo = classical_mds(d, dim);
  const auto hi = classical_mds(d, dim + 1);
  EXPECT_LE(mds_stress(d, hi.embedding), mds_stress(d, lo.embedding) + 1e-6);
}

TEST_P(MdsDimProperty, EigenvaluesDescending) {
  const std::size_t dim = GetParam();
  Rng rng(805);
  Mat pts(40, 5);
  for (std::size_t i = 0; i < pts.size(); ++i)
    pts.data()[i] = static_cast<float>(rng.normal());
  Mat d;
  linalg::pairwise_dist(pts, pts, d);
  const auto res = classical_mds(d, dim);
  for (std::size_t k = 1; k < res.eigenvalues.size(); ++k) {
    EXPECT_GE(res.eigenvalues[k - 1], res.eigenvalues[k] - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MdsDimProperty,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}));

// ---------------------------------------------------------------------------
// Isomap/LLE k-sweep: the 1-D embedding of a curve stays near-monotone for
// reasonable neighborhood sizes.
// ---------------------------------------------------------------------------

class CurveUnrollProperty : public ::testing::TestWithParam<std::size_t> {};

std::size_t monotonicity_violations(const Mat& e) {
  const double sign = e(1, 0) > e(0, 0) ? 1.0 : -1.0;
  std::size_t violations = 0;
  for (std::size_t i = 1; i < e.rows(); ++i) {
    if (sign * (e(i, 0) - e(i - 1, 0)) <= 0.0) ++violations;
  }
  return violations;
}

TEST_P(CurveUnrollProperty, IsomapNearMonotone) {
  const std::size_t k = GetParam();
  const Mat x = make_arc(90, 1.5);
  Isomap iso(1, k);
  iso.fit(x);
  EXPECT_LT(monotonicity_violations(iso.train_embedding()), 90u / 15u);
}

TEST_P(CurveUnrollProperty, LleNearMonotone) {
  const std::size_t k = GetParam();
  const Mat x = make_arc(90, 1.5);
  Lle lle(1, k);
  lle.fit(x);
  EXPECT_LT(monotonicity_violations(lle.train_embedding()), 90u / 10u);
}

INSTANTIATE_TEST_SUITE_P(NeighborhoodSizes, CurveUnrollProperty,
                         ::testing::Values(std::size_t{3}, std::size_t{4},
                                           std::size_t{6}));

}  // namespace
}  // namespace noble::manifold
