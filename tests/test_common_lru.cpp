// ShardedLruCache unit tests: recency order, bounded eviction, sharded
// counters, and the transparent pointer-keyed index that backs them.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/lru_cache.h"

namespace noble {
namespace {

using IntCache = ShardedLruCache<int, std::string>;

TEST(ShardedLruCache, GetReturnsPutValueAndCountsHitsMisses) {
  IntCache cache(8, 2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardedLruCache, PutRefreshesExistingKeyWithoutGrowth) {
  IntCache cache(4, 1);
  cache.put(1, "one");
  cache.put(1, "uno");
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "uno");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);  // refresh, not an insertion
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedFirst) {
  IntCache cache(3, 1);  // one shard: deterministic LRU order
  cache.put(1, "a");
  cache.put(2, "b");
  cache.put(3, "c");
  ASSERT_TRUE(cache.get(1).has_value());  // refresh 1: now 2 is the LRU
  cache.put(4, "d");                      // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ShardedLruCache, CapacitySplitsAcrossShardsAndStaysBounded) {
  ShardedLruCache<int, int> cache(16, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.capacity(), 16u);
  for (int i = 0; i < 1000; ++i) cache.put(i, i * i);
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.insertions, 1000u);
  EXPECT_EQ(stats.evictions, stats.insertions - stats.entries);
}

TEST(ShardedLruCache, ClearDropsEntriesButKeepsLifetimeCounters) {
  IntCache cache(8, 2);
  cache.put(1, "a");
  cache.put(2, "b");
  (void)cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ShardedLruCache, ConcurrentMixedLoadStaysBoundedAndConsistent) {
  ShardedLruCache<int, int> cache(64, 8);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 37 + i) % 256;
        if (i % 3 == 0) {
          cache.put(key, key * 2);
        } else if (const auto v = cache.get(key)) {
          // A hit must always carry the value every writer stores.
          EXPECT_EQ(*v, key * 2);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * ((kOps * 2) / 3));
}

}  // namespace
}  // namespace noble
