// SpaceQuantizer and multi-label target/decoding tests (§III-B machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/quantize.h"

namespace noble::core {
namespace {

std::vector<geo::Point2> grid_cloud() {
  std::vector<geo::Point2> pts;
  Rng rng(501);
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)});
  }
  return pts;
}

TEST(SpaceQuantizer, LayoutOffsetsArePacked) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 2.0;
  cfg.coarse_l = 8.0;
  q.fit(grid_cloud(), cfg);
  const LabelLayout layout = q.layout(3, 5);
  EXPECT_EQ(layout.building_offset(), 0u);
  EXPECT_EQ(layout.floor_offset(), 3u);
  EXPECT_EQ(layout.fine_offset(), 8u);
  EXPECT_EQ(layout.coarse_offset(), 8u + layout.num_fine);
  EXPECT_EQ(layout.total(),
            3u + 5u + layout.num_fine + layout.num_coarse);
  EXPECT_EQ(layout.num_fine, q.num_fine_classes());
  EXPECT_EQ(layout.num_coarse, q.num_coarse_classes());
}

TEST(SpaceQuantizer, TargetsAreMultiHot) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 2.0;
  cfg.coarse_l = 8.0;
  const auto pts = grid_cloud();
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(2, 4);
  std::vector<int> b(pts.size(), 1), f(pts.size(), 3);
  const auto t = q.build_targets(layout, pts, b, f);
  ASSERT_EQ(t.rows(), pts.size());
  ASSERT_EQ(t.cols(), layout.total());
  for (std::size_t i = 0; i < 20; ++i) {
    // Exactly one building and one floor hot.
    EXPECT_FLOAT_EQ(t(i, 1), 1.0f);
    EXPECT_FLOAT_EQ(t(i, 0), 0.0f);
    EXPECT_FLOAT_EQ(t(i, layout.floor_offset() + 3), 1.0f);
    // Exactly one full-strength fine positive; adjacency at 0.5.
    std::size_t full = 0, half = 0;
    for (std::size_t c = 0; c < layout.num_fine; ++c) {
      const float v = t(i, layout.fine_offset() + c);
      if (v == 1.0f) ++full;
      if (v == 0.5f) ++half;
    }
    EXPECT_EQ(full, 1u);
    EXPECT_GE(half, 1u);  // dense cloud: neighbors exist
    // One coarse positive.
    std::size_t coarse = 0;
    for (std::size_t c = 0; c < layout.num_coarse; ++c) {
      if (t(i, layout.coarse_offset() + c) == 1.0f) ++coarse;
    }
    EXPECT_EQ(coarse, 1u);
  }
}

TEST(SpaceQuantizer, AdjacencyOffRemovesSoftLabels) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 2.0;
  cfg.use_coarse = false;
  cfg.adjacency_labels = false;
  const auto pts = grid_cloud();
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(0, 0);
  const auto t = q.build_targets(layout, pts, {}, {});
  for (std::size_t i = 0; i < 10; ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < layout.total(); ++c) sum += t(i, c);
    EXPECT_DOUBLE_EQ(sum, 1.0);  // single hard label only
  }
}

TEST(SpaceQuantizer, DecodeRoundTripsPerfectLogits) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 2.0;
  cfg.coarse_l = 8.0;
  cfg.adjacency_labels = false;
  const auto pts = grid_cloud();
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(3, 4);
  std::vector<int> b(pts.size()), f(pts.size());
  Rng rng(503);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    b[i] = static_cast<int>(rng.uniform_int(0, 2));
    f[i] = static_cast<int>(rng.uniform_int(0, 3));
  }
  const auto t = q.build_targets(layout, pts, b, f);
  // Feeding the targets back as logits must decode to the truth.
  for (std::size_t i = 0; i < 50; ++i) {
    const DecodedPrediction d = q.decode(layout, t.row(i));
    EXPECT_EQ(d.building, b[i]);
    EXPECT_EQ(d.floor, f[i]);
    EXPECT_EQ(d.fine_class, q.fine_class_of(pts[i]));
    // Decoded position is the cell center: within half diagonal.
    EXPECT_LE(geo::distance(d.position, pts[i]), 2.0 * std::sqrt(2.0) / 2.0 + 1e-9);
  }
}

TEST(SpaceQuantizer, DecodePositionIsCellCenter) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 1.0;
  cfg.use_coarse = false;
  std::vector<geo::Point2> pts{{0.5, 0.5}, {5.5, 5.5}};
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(0, 0);
  linalg::Mat logits(1, layout.total());
  logits(0, layout.fine_offset() + static_cast<std::size_t>(q.fine_class_of({5.5, 5.5}))) =
      5.0f;
  const auto d = q.decode(layout, logits.row(0));
  // The decoded position is the center of the cell containing the point:
  // within the half-diagonal of the 1 m cell.
  EXPECT_LE(geo::distance(d.position, {5.5, 5.5}), std::sqrt(2.0) / 2.0 + 1e-9);
  // And it is exactly the center the quantizer reports for that class.
  const auto center = q.fine().center(q.fine_class_of({5.5, 5.5}));
  EXPECT_NEAR(d.position.x, center.x, 1e-12);
  EXPECT_NEAR(d.position.y, center.y, 1e-12);
}

TEST(SpaceQuantizer, HierarchicalDecodeRestrictsToCoarseCell) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 1.0;
  cfg.coarse_l = 10.0;
  cfg.adjacency_labels = false;
  // Two dense clusters far apart -> two coarse cells.
  std::vector<geo::Point2> pts;
  Rng rng(505);
  for (int i = 0; i < 100; ++i) pts.push_back({rng.uniform(0, 8), rng.uniform(0, 8)});
  for (int i = 0; i < 100; ++i)
    pts.push_back({rng.uniform(50, 58), rng.uniform(0, 8)});
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(0, 0);

  // Craft logits: the globally-highest fine logit sits in cluster A, but the
  // coarse head confidently points at cluster B.
  linalg::Mat logits(1, layout.total());
  const int fine_a = q.fine().nearest_class({4.0, 4.0});
  const int fine_b = q.fine().nearest_class({54.0, 4.0});
  const int coarse_b = q.coarse().nearest_class({54.0, 4.0});
  logits(0, layout.fine_offset() + static_cast<std::size_t>(fine_a)) = 10.0f;
  logits(0, layout.fine_offset() + static_cast<std::size_t>(fine_b)) = 5.0f;
  logits(0, layout.coarse_offset() + static_cast<std::size_t>(coarse_b)) = 10.0f;

  const auto flat = q.decode(layout, logits.row(0));
  EXPECT_EQ(flat.fine_class, fine_a);  // plain decode follows the fine argmax

  const auto hier = q.decode_hierarchical(layout, logits.row(0));
  EXPECT_EQ(hier.coarse_class, coarse_b);
  EXPECT_EQ(hier.fine_class, fine_b);  // restricted to coarse cell B
  EXPECT_GT(hier.position.x, 40.0);
}

TEST(SpaceQuantizer, HierarchicalDecodeAgreesWhenConsistent) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 2.0;
  cfg.coarse_l = 8.0;
  cfg.adjacency_labels = false;
  const auto pts = grid_cloud();
  q.fit(pts, cfg);
  const LabelLayout layout = q.layout(0, 0);
  const auto targets = q.build_targets(layout, pts, {}, {});
  // Perfect logits: hierarchical and flat decode agree everywhere.
  for (std::size_t i = 0; i < 30; ++i) {
    const auto flat = q.decode(layout, targets.row(i));
    const auto hier = q.decode_hierarchical(layout, targets.row(i));
    EXPECT_EQ(flat.fine_class, hier.fine_class);
  }
}

TEST(SpaceQuantizer, CoarseGrainsFewerThanFine) {
  SpaceQuantizer q;
  QuantizeConfig cfg;
  cfg.tau = 1.0;
  cfg.coarse_l = 10.0;
  q.fit(grid_cloud(), cfg);
  EXPECT_GT(q.num_fine_classes(), q.num_coarse_classes());
  EXPECT_GT(q.num_coarse_classes(), 0u);
}

}  // namespace
}  // namespace noble::core
