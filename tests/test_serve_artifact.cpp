// Serve artifact tests: the named-section container, and the guarantee the
// serve API is built on — a model trained once, saved to one artifact file
// and reloaded without any training data predicts bit-identically.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/serialize.h"
#include "serve/artifact.h"

namespace noble::serve {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Sections, RoundTripAndLookup) {
  nn::SectionWriter w;
  w.add("meta", "abc");
  w.add("net", std::string("\x00\x01\x7f", 3));
  w.add("empty", "");
  nn::SectionReader r;
  ASSERT_TRUE(r.parse(w.encode()));
  EXPECT_EQ(r.count(), 3u);
  ASSERT_NE(r.find("meta"), nullptr);
  EXPECT_EQ(*r.find("meta"), "abc");
  ASSERT_NE(r.find("net"), nullptr);
  EXPECT_EQ(r.find("net")->size(), 3u);
  ASSERT_NE(r.find("empty"), nullptr);
  EXPECT_TRUE(r.find("empty")->empty());
  EXPECT_EQ(r.find("absent"), nullptr);
}

TEST(Sections, MalformedContainersRejected) {
  nn::SectionWriter w;
  w.add("a", "payload");
  const std::string good = w.encode();

  nn::SectionReader r;
  EXPECT_FALSE(r.parse(""));
  EXPECT_FALSE(r.parse("NOT_A_CONTAINER"));
  // Truncation anywhere must fail, not crash or mis-parse.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(r.parse(good.substr(0, cut))) << "cut at " << cut;
  }
  // Trailing bytes are rejected too.
  EXPECT_FALSE(r.parse(good + "x"));
  EXPECT_TRUE(r.parse(good));
}

TEST(Sections, NetworkCodecRoundTrip) {
  Rng rng(31);
  nn::Sequential net;
  net.emplace<nn::Dense>(4, 3, rng);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(3, 2, rng);
  const std::string payload = nn::encode_network(net);

  Rng rng2(99);
  nn::Sequential other;
  other.emplace<nn::Dense>(4, 3, rng2);
  other.emplace<nn::Tanh>();
  other.emplace<nn::Dense>(3, 2, rng2);
  ASSERT_TRUE(nn::decode_network(other, payload));

  linalg::Mat x(2, 4);
  Rng rng3(7);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng3.normal());
  EXPECT_EQ(net.predict(x), other.predict(x));

  // Architecture mismatch and truncation fail cleanly.
  nn::Sequential narrow;
  narrow.emplace<nn::Dense>(4, 2, rng2);
  EXPECT_FALSE(nn::decode_network(narrow, payload));
  EXPECT_FALSE(nn::decode_network(other, std::string_view(payload).substr(
                                             0, payload.size() - 2)));
}

/// Small, fast Wi-Fi experiment + fitted model shared by artifact tests.
struct WifiFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model;
};

const WifiFixture& wifi_fixture() {
  static const WifiFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1200;
    cfg.seed = 91;
    auto* f = new WifiFixture{make_uji_experiment(cfg), core::NobleWifiModel([] {
                                core::NobleWifiConfig mc;
                                mc.quantize.tau = 6.0;
                                mc.quantize.coarse_l = 24.0;
                                mc.epochs = 6;
                                mc.hidden_units = 32;
                                return mc;
                              }())};
    f->model.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

TEST(WifiArtifact, RoundTripPredictsBitIdentically) {
  const auto& f = wifi_fixture();
  const std::string path = temp_path("noble_wifi_artifact.bin");
  ASSERT_TRUE(save_model(f.model, path));

  auto reloaded = load_wifi_model(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_TRUE(reloaded->fitted());
  EXPECT_EQ(reloaded->input_dim(), f.model.input_dim());
  EXPECT_EQ(reloaded->quantizer().num_fine_classes(),
            f.model.quantizer().num_fine_classes());

  // Held-out queries: every decoded field must match bit-for-bit.
  const auto expected = f.model.predict(f.exp.split.test);
  const auto actual = reloaded->predict(f.exp.split.test);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].building, expected[i].building);
    EXPECT_EQ(actual[i].floor, expected[i].floor);
    EXPECT_EQ(actual[i].fine_class, expected[i].fine_class);
    EXPECT_EQ(actual[i].position, expected[i].position);
  }
  std::filesystem::remove(path);
}

TEST(WifiArtifact, KindTagAndCrossKindRejection) {
  const auto& f = wifi_fixture();
  const std::string path = temp_path("noble_wifi_artifact_kind.bin");
  ASSERT_TRUE(save_model(f.model, path));
  const auto kind = artifact_kind(path);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, kWifiKind);
  // A wifi artifact is not an imu model.
  EXPECT_FALSE(load_imu_model(path).has_value());
  std::filesystem::remove(path);
}

TEST(WifiArtifact, CorruptFilesRejectedCleanly) {
  const auto& f = wifi_fixture();
  const std::string path = temp_path("noble_wifi_artifact_corrupt.bin");
  ASSERT_TRUE(save_model(f.model, path));
  const std::string good = read_file(path);

  EXPECT_FALSE(load_wifi_model(temp_path("noble_absent_artifact.bin")).has_value());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, good.size() / 3,
                                good.size() / 2, good.size() - 1}) {
    write_file(path, good.substr(0, cut));
    EXPECT_FALSE(load_wifi_model(path).has_value()) << "cut at " << cut;
    EXPECT_FALSE(artifact_kind(path).has_value()) << "cut at " << cut;
  }
  std::string bad_magic = good;
  bad_magic[0] = 'Z';
  write_file(path, bad_magic);
  EXPECT_FALSE(load_wifi_model(path).has_value());

  write_file(path, good);
  EXPECT_TRUE(load_wifi_model(path).has_value());
  std::filesystem::remove(path);
}

TEST(WifiArtifact, AbsurdDimsRejectedBeforeAllocation) {
  // A crafted artifact with gigantic dims must fail soft, not die trying to
  // allocate the network it describes.
  const auto& f = wifi_fixture();
  const std::string good = encode_model(f.model);
  nn::SectionReader r;
  ASSERT_TRUE(r.parse(good));
  nn::SectionWriter w;
  for (const char* name : {"meta", "config", "quantizer"}) {
    ASSERT_NE(r.find(name), nullptr);
    w.add(name, *r.find(name));
  }
  nn::ByteWriter dims;
  dims.u64(std::uint64_t{1} << 62);  // absurd input_dim
  dims.u64(0);
  dims.u64(0);
  w.add("dims", dims.take());
  ASSERT_NE(r.find("net"), nullptr);
  w.add("net", *r.find("net"));
  EXPECT_FALSE(decode_wifi_model(w.encode()).has_value());
}

/// Small, fast IMU experiment + fitted tracker shared by artifact tests.
struct ImuFixture {
  core::ImuExperiment exp;
  core::NobleImuTracker tracker;
};

const ImuFixture& imu_fixture() {
  static const ImuFixture* fixture = [] {
    core::ImuExperimentConfig cfg;
    cfg.num_paths = 500;
    cfg.total_walk_time_s = 1200.0;
    cfg.readings_per_segment = 8;
    cfg.imu.ref_interval_s = 15.0;
    cfg.seed = 92;
    auto* f = new ImuFixture{make_imu_experiment(cfg), core::NobleImuTracker([] {
                               core::NobleImuConfig mc;
                               mc.quantize.tau = 2.0;
                               mc.epochs = 8;
                               mc.projection_dim = 6;
                               return mc;
                             }())};
    f->tracker.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

TEST(ImuArtifact, RoundTripPredictsBitIdentically) {
  const auto& f = imu_fixture();
  const std::string path = temp_path("noble_imu_artifact.bin");
  ASSERT_TRUE(save_model(f.tracker, path));
  const auto kind = artifact_kind(path);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, kImuKind);

  auto reloaded = load_imu_model(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_TRUE(reloaded->fitted());
  EXPECT_EQ(reloaded->segment_dim(), f.tracker.segment_dim());
  EXPECT_EQ(reloaded->max_segments(), f.tracker.max_segments());
  EXPECT_EQ(reloaded->channel_mean(), f.tracker.channel_mean());
  EXPECT_EQ(reloaded->channel_inv_std(), f.tracker.channel_inv_std());

  const auto expected = f.tracker.predict(f.exp.split.test);
  const auto actual = reloaded->predict(f.exp.split.test);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].fine_class, expected[i].fine_class);
    EXPECT_EQ(actual[i].position, expected[i].position);
    EXPECT_EQ(actual[i].displacement, expected[i].displacement);
  }
  // A fitted imu artifact is not a wifi model.
  EXPECT_FALSE(load_wifi_model(path).has_value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace noble::serve
