// Geometry tests: polygons, floor plans, projection, path graphs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/campus.h"
#include "geo/floorplan.h"
#include "geo/pathgraph.h"
#include "geo/polygon.h"

namespace noble::geo {
namespace {

TEST(Polygon, RectangleContainment) {
  const auto rect = Polygon::rectangle(0, 0, 10, 5);
  EXPECT_TRUE(rect.contains({5, 2.5}));
  EXPECT_TRUE(rect.contains({0, 0}));    // boundary counts inside
  EXPECT_TRUE(rect.contains({10, 5}));   // corner
  EXPECT_FALSE(rect.contains({10.1, 2}));
  EXPECT_FALSE(rect.contains({-0.1, 2}));
  EXPECT_FALSE(rect.contains({5, 5.2}));
}

TEST(Polygon, NonConvexContainment) {
  // L-shape.
  const Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(l.contains({1, 3}));
  EXPECT_TRUE(l.contains({3, 1}));
  EXPECT_FALSE(l.contains({3, 3}));  // the notch
}

TEST(Polygon, AreaAndCentroid) {
  const auto rect = Polygon::rectangle(2, 3, 6, 7);
  EXPECT_DOUBLE_EQ(rect.area(), 16.0);
  const Point2 c = rect.centroid();
  EXPECT_NEAR(c.x, 4.0, 1e-12);
  EXPECT_NEAR(c.y, 5.0, 1e-12);
}

TEST(Polygon, NearestBoundaryPoint) {
  const auto rect = Polygon::rectangle(0, 0, 10, 10);
  const Point2 p = rect.nearest_boundary_point({15, 5});
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 5.0, 1e-12);
  EXPECT_NEAR(rect.boundary_distance({15, 5}), 5.0, 1e-12);
}

TEST(Segment, NearestPointClamps) {
  const Point2 a{0, 0}, b{10, 0};
  EXPECT_NEAR(nearest_point_on_segment(a, b, {-5, 3}).x, 0.0, 1e-12);
  EXPECT_NEAR(nearest_point_on_segment(a, b, {15, 3}).x, 10.0, 1e-12);
  EXPECT_NEAR(nearest_point_on_segment(a, b, {4, 3}).x, 4.0, 1e-12);
}

TEST(Building, CourtyardIsInaccessible) {
  Building b(0, "B", Polygon::rectangle(0, 0, 20, 20), 2);
  b.add_hole(Polygon::rectangle(5, 5, 15, 15));
  EXPECT_TRUE(b.accessible({2, 2}));
  EXPECT_FALSE(b.accessible({10, 10}));
  EXPECT_FALSE(b.accessible({25, 2}));
}

TEST(Building, ProjectInsideFromOutside) {
  Building b(0, "B", Polygon::rectangle(0, 0, 20, 20), 1);
  const Point2 p = b.project_inside({30, 10});
  EXPECT_TRUE(b.accessible(p));
  EXPECT_NEAR(p.x, 20.0, 1e-3);
  EXPECT_NEAR(p.y, 10.0, 1e-3);
}

TEST(Building, ProjectInsideFromCourtyard) {
  Building b(0, "B", Polygon::rectangle(0, 0, 20, 20), 1);
  b.add_hole(Polygon::rectangle(8, 8, 12, 12));
  const Point2 p = b.project_inside({10, 10});
  EXPECT_TRUE(b.accessible(p));
  // Must land on the hole boundary, not the outer wall.
  EXPECT_NEAR(distance(p, {10, 10}), 2.0, 0.1);
}

TEST(FloorPlan, BuildingAt) {
  FloorPlan plan;
  plan.add_building(Building(0, "A", Polygon::rectangle(0, 0, 10, 10), 1));
  plan.add_building(Building(1, "B", Polygon::rectangle(20, 0, 30, 10), 1));
  EXPECT_EQ(plan.building_at({5, 5}), 0);
  EXPECT_EQ(plan.building_at({25, 5}), 1);
  EXPECT_EQ(plan.building_at({15, 5}), -1);
}

TEST(FloorPlan, ProjectionPicksNearestBuilding) {
  FloorPlan plan;
  plan.add_building(Building(0, "A", Polygon::rectangle(0, 0, 10, 10), 1));
  plan.add_building(Building(1, "B", Polygon::rectangle(20, 0, 30, 10), 1));
  const Point2 p = plan.project_to_accessible({12, 5});  // nearer to A
  EXPECT_TRUE(plan.building(0).accessible(p));
  const Point2 q = plan.project_to_accessible({18, 5});  // nearer to B
  EXPECT_TRUE(plan.building(1).accessible(q));
}

TEST(FloorPlan, AccessiblePointUnchangedByProjection) {
  FloorPlan plan;
  plan.add_building(Building(0, "A", Polygon::rectangle(0, 0, 10, 10), 1));
  const Point2 p{3, 3};
  const Point2 proj = plan.project_to_accessible(p);
  EXPECT_EQ(proj, p);
}

TEST(PathGraph, SnapAndDistance) {
  PathGraph g;
  const auto a = g.add_node({0, 0});
  const auto b = g.add_node({10, 0});
  g.add_edge(a, b);
  const Point2 s = g.snap_to_path({5, 3});
  EXPECT_NEAR(s.x, 5.0, 1e-12);
  EXPECT_NEAR(s.y, 0.0, 1e-12);
  EXPECT_NEAR(g.distance_to_path({5, 3}), 3.0, 1e-12);
}

TEST(PathGraph, NearestEdgeDirectionIsUnitAndParallel) {
  PathGraph g;
  const auto a = g.add_node({0, 0});
  const auto b = g.add_node({10, 0});
  const auto c = g.add_node({10, 10});
  g.add_edge(a, b);
  g.add_edge(b, c);
  // Near the horizontal edge: direction parallel to x.
  const Point2 dh = g.nearest_edge_direction({5, 1});
  EXPECT_NEAR(dh.norm(), 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(dh.x), 1.0, 1e-12);
  // Near the vertical edge: direction parallel to y.
  const Point2 dv = g.nearest_edge_direction({9.5, 7});
  EXPECT_NEAR(std::fabs(dv.y), 1.0, 1e-12);
}

TEST(PathGraph, RandomWalkStaysOnGraph) {
  PathGraph g;
  const auto ids = g.add_polyline({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  g.add_edge(ids.back(), ids.front());
  Rng rng(77);
  const auto walk = g.random_walk(0, 50, rng);
  EXPECT_EQ(walk.size(), 51u);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    // Consecutive nodes must be adjacent.
    bool adjacent = false;
    for (auto nb : g.neighbors(walk[i - 1])) adjacent |= (nb == walk[i]);
    EXPECT_TRUE(adjacent);
  }
}

TEST(PathGraph, SampleAlongEdgesSpacing) {
  PathGraph g;
  g.add_polyline({{0, 0}, {10, 0}});
  const auto pts = g.sample_along_edges(2.0);
  EXPECT_EQ(pts.size(), 6u);  // 0, 2, 4, 6, 8, 10
  for (const auto& p : pts) EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(Campus, UjiLikeHasThreeBuildingsWithCourtyards) {
  const auto world = make_uji_like_campus();
  ASSERT_EQ(world.plan.building_count(), 3u);
  for (const auto& b : world.plan.buildings()) {
    EXPECT_EQ(b.num_floors(), 4);
    ASSERT_FALSE(b.holes().empty());
    // Courtyard center is inaccessible.
    EXPECT_FALSE(b.accessible(b.holes()[0].centroid()));
  }
  // 3 buildings x 4 floors of corridors.
  EXPECT_EQ(world.corridors.size(), 12u);
}

TEST(Campus, CorridorsLieInAccessibleSpace) {
  const auto world = make_uji_like_campus();
  for (const auto& c : world.corridors) {
    const auto& b = world.plan.building(static_cast<std::size_t>(c.building));
    for (const auto& p : c.graph.sample_along_edges(3.0)) {
      EXPECT_TRUE(b.accessible(p)) << "corridor point off-map in building "
                                   << c.building;
    }
  }
}

TEST(Campus, OutdoorTrackReferencesOnWalkways) {
  const auto world = make_outdoor_track(177);
  EXPECT_EQ(world.reference_points.size(), 177u);
  for (const auto& r : world.reference_points) {
    EXPECT_LT(world.walkways.distance_to_path(r), 1e-6);
  }
}

TEST(Campus, IpinSingleBuilding) {
  const auto world = make_ipin_like_building();
  EXPECT_EQ(world.plan.building_count(), 1u);
  EXPECT_EQ(world.plan.building(0).num_floors(), 3);
}

}  // namespace
}  // namespace noble::geo
