// Tests for noble::obs — metrics registry, exposition codecs, trace ring,
// deterministic sampling, and the stage-clock invariants. Carries the
// `concurrency` CTest label: several tests hammer instruments from real
// threads so the TSan job exercises the striped/sharded/seqlock paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace noble::obs {
namespace {

// --- Counter / Gauge / HistogramMetric primitives ----------------------------

TEST(ObsCounter, StripedIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, SubFromDifferentThreadStaysExact) {
  // The admission-rollback pattern: one thread admits (inc), another rolls
  // back (sub). Individual stripes may wrap below zero; the folded sum is
  // exact mod 2^64, which for a balanced workload means exact, period.
  Counter c;
  constexpr std::uint64_t kOps = 50000;
  std::thread adder([&c] {
    for (std::uint64_t i = 0; i < kOps; ++i) c.inc(2);
  });
  std::thread subber([&c] {
    for (std::uint64_t i = 0; i < kOps; ++i) c.sub(1);
  });
  adder.join();
  subber.join();
  EXPECT_EQ(c.value(), kOps);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(4.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(ObsHistogramMetric, ConcurrentRecordsAllLand) {
  HistogramMetric h(Histogram::latency_us());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(0x700 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) h.record(rng.uniform(10.0, 5000.0));
    });
  }
  for (auto& th : threads) th.join();
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(snap.min_recorded(), 10.0);
  EXPECT_LE(snap.max_recorded(), 5000.0);
}

// --- Histogram from_parts / subtract -----------------------------------------

TEST(ObsHistogram, FromPartsRoundTripsThroughAccessors) {
  Histogram h = Histogram::latency_us();
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(0.5, 2e7));  // spills both tails
  std::vector<std::uint64_t> counts;
  counts.push_back(h.underflow_count());
  for (std::size_t i = 0; i < h.num_bins(); ++i) counts.push_back(h.bin_count(i));
  counts.push_back(h.overflow_count());
  const Histogram rebuilt = Histogram::from_parts(
      h.lower_bound(), h.upper_bound(), h.num_bins(), std::move(counts), h.count(),
      h.sum_recorded(), h.min_recorded(), h.max_recorded());
  EXPECT_TRUE(rebuilt.same_layout(h));
  EXPECT_EQ(rebuilt.count(), h.count());
  EXPECT_DOUBLE_EQ(rebuilt.sum_recorded(), h.sum_recorded());
  EXPECT_DOUBLE_EQ(rebuilt.percentile(50.0), h.percentile(50.0));
  EXPECT_DOUBLE_EQ(rebuilt.percentile(99.0), h.percentile(99.0));
}

TEST(ObsHistogram, SubtractYieldsWindowDelta) {
  // The bench pattern: snapshot a growing histogram twice, subtract, and the
  // delta describes only the observations in between.
  Histogram h = Histogram::latency_us();
  for (int i = 0; i < 100; ++i) h.record(100.0);
  const Histogram before = h;
  for (int i = 0; i < 300; ++i) h.record(4000.0);
  Histogram delta = h;
  delta.subtract(before);
  EXPECT_EQ(delta.count(), 300u);
  EXPECT_DOUBLE_EQ(delta.sum_recorded(), 300 * 4000.0);
  // All delta mass sits near 4000us; p50 must land in that bin's range, far
  // from the 100us mass that was subtracted out.
  EXPECT_GT(delta.percentile(50.0), 1000.0);
}

TEST(ObsHistogram, SubtractToEmptyResets) {
  Histogram h = Histogram::latency_us();
  h.record(50.0);
  h.record(200.0);
  Histogram delta = h;
  delta.subtract(h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_DOUBLE_EQ(delta.sum_recorded(), 0.0);
  EXPECT_DOUBLE_EQ(delta.percentile(50.0), 0.0);
}

// --- Registry ----------------------------------------------------------------

TEST(ObsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("noble_test_total");
  Counter& b = reg.counter("noble_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = reg.counter("noble_test_total", {{"shard", "A"}});
  EXPECT_NE(&a, &labeled);
  a.inc(3);
  labeled.inc(5);
  const MetricsSnapshot snap = reg.collect();
  const MetricSample* bare = snap.find("noble_test_total", {});
  const MetricSample* with = snap.find("noble_test_total", {{"shard", "A"}});
  ASSERT_NE(bare, nullptr);
  ASSERT_NE(with, nullptr);
  EXPECT_EQ(bare->counter_value, 3u);
  EXPECT_EQ(with->counter_value, 5u);
}

TEST(ObsRegistry, CollectorsRunAfterInstruments) {
  Registry reg;
  reg.counter("noble_first").inc();
  const std::uint64_t id = reg.add_collector(
      [](MetricsSnapshot& out) { out.counter("noble_derived", 7); });
  MetricsSnapshot snap = reg.collect();
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_EQ(snap.samples[0].name, "noble_first");
  EXPECT_EQ(snap.samples[1].name, "noble_derived");
  reg.remove_collector(id);
  snap = reg.collect();
  EXPECT_EQ(snap.samples.size(), 1u);
}

TEST(ObsRegistry, CollectDuringConcurrentIncrements) {
  // The scrape path must be safe (and monotone for counters) while worker
  // threads are mid-increment. Collected counter values may lag but never
  // tear or go backwards across successive collects.
  Registry reg;
  Counter& hits = reg.counter("noble_hits");
  HistogramMetric& lat = reg.histogram("noble_lat_us", Histogram::latency_us());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hits, &lat, &stop, t] {
      Rng rng(0x900 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        hits.inc();
        lat.record(rng.uniform(1.0, 1e4));
      }
    });
  }
  std::uint64_t last_hits = 0;
  std::uint64_t last_lat = 0;
  // At least 200 collects, then keep collecting (bounded) until the writers
  // have visibly run — on a loaded machine thread startup can lag behind a
  // tight collect loop.
  for (int i = 0; i < 200 || last_hits == 0; ++i) {
    ASSERT_LT(i, 2000000) << "writer threads never ran";
    const MetricsSnapshot snap = reg.collect();
    const MetricSample* h = snap.find("noble_hits");
    const MetricSample* l = snap.find("noble_lat_us");
    ASSERT_NE(h, nullptr);
    ASSERT_NE(l, nullptr);
    ASSERT_TRUE(l->hist.has_value());
    EXPECT_GE(h->counter_value, last_hits);
    EXPECT_GE(l->hist->count(), last_lat);
    last_hits = h->counter_value;
    last_lat = l->hist->count();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
  EXPECT_GT(last_hits, 0u);
}

// --- Exposition: Prometheus text ---------------------------------------------

TEST(ObsRender, PrometheusLineShapes) {
  MetricsSnapshot snap;
  snap.counter("noble_requests", 42);
  snap.gauge("noble_p50_us", 123.456);
  snap.gauge_int("noble_queue_depth", 7);
  snap.counter("noble_depth", 3, {{"shard", "bldg-A"}, {"engine", "0"}});
  const std::string page = render_prometheus(snap);
  EXPECT_NE(page.find("noble_requests 42\n"), std::string::npos);
  EXPECT_NE(page.find("noble_p50_us 123.5\n"), std::string::npos);  // %.1f
  EXPECT_NE(page.find("noble_queue_depth 7\n"), std::string::npos);  // bare int
  EXPECT_NE(page.find("noble_depth{shard=\"bldg-A\",engine=\"0\"} 3\n"),
            std::string::npos);
}

TEST(ObsRender, PrometheusHistogramQuantiles) {
  Histogram h = Histogram::latency_us();
  for (int i = 0; i < 100; ++i) h.record(200.0);
  MetricsSnapshot snap;
  snap.histogram("noble_stage_latency_us", h, {{"stage", "compute"}});
  const std::string page = render_prometheus(snap);
  EXPECT_NE(page.find("noble_stage_latency_us{stage=\"compute\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(page.find("noble_stage_latency_us{stage=\"compute\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(page.find("noble_stage_latency_us_sum{stage=\"compute\"}"),
            std::string::npos);
  EXPECT_NE(page.find("noble_stage_latency_us_count{stage=\"compute\"} 100\n"),
            std::string::npos);
}

// --- Exposition: binary snapshot codec ---------------------------------------

TEST(ObsCodec, SnapshotRoundTripPreservesEverySample) {
  Histogram h = Histogram::latency_us();
  Rng rng(97);
  for (int i = 0; i < 500; ++i) h.record(rng.uniform(2.0, 1e6));
  MetricsSnapshot snap;
  snap.counter("noble_total", 99, {{"cls", "interactive"}});
  snap.gauge("noble_level", -2.25);
  snap.gauge_int("noble_depth", 11);
  snap.histogram("noble_lat_us", h);
  const std::string bytes = encode_snapshot(snap);
  const std::optional<MetricsSnapshot> decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->samples.size(), snap.samples.size());
  const MetricSample* c = decoded->find("noble_total", {{"cls", "interactive"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter_value, 99u);
  const MetricSample* g = decoded->find("noble_level");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->gauge_value, -2.25);
  EXPECT_FALSE(g->integer_gauge);
  const MetricSample* d = decoded->find("noble_depth");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->integer_gauge);
  const MetricSample* hs = decoded->find("noble_lat_us");
  ASSERT_NE(hs, nullptr);
  ASSERT_TRUE(hs->hist.has_value());
  EXPECT_TRUE(hs->hist->same_layout(h));
  EXPECT_EQ(hs->hist->count(), h.count());
  EXPECT_DOUBLE_EQ(hs->hist->sum_recorded(), h.sum_recorded());
  EXPECT_DOUBLE_EQ(hs->hist->percentile(50.0), h.percentile(50.0));
  EXPECT_DOUBLE_EQ(hs->hist->min_recorded(), h.min_recorded());
  EXPECT_DOUBLE_EQ(hs->hist->max_recorded(), h.max_recorded());
  // Binary and text expositions describe the same snapshot.
  EXPECT_EQ(render_prometheus(*decoded), render_prometheus(snap));
}

TEST(ObsCodec, DecodeRejectsGarbage) {
  MetricsSnapshot snap;
  snap.counter("noble_x", 1);
  const std::string bytes = encode_snapshot(snap);
  EXPECT_FALSE(decode_snapshot("").has_value());
  EXPECT_FALSE(decode_snapshot("not a snapshot").has_value());
  // Every truncation point must fail cleanly, never crash or misparse.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_snapshot(std::string_view(bytes).substr(0, cut)).has_value())
        << "truncation at " << cut << " decoded";
  }
  // Trailing bytes are rejected too (exhausted() contract).
  EXPECT_FALSE(decode_snapshot(bytes + "x").has_value());
  // Corrupt magic.
  std::string bad = bytes;
  bad[0] ^= 0x5a;
  EXPECT_FALSE(decode_snapshot(bad).has_value());
}

// --- TraceRing ---------------------------------------------------------------

TEST(ObsTraceRing, WraparoundKeepsLatestRecords) {
  TraceRing ring(64);
  ASSERT_EQ(ring.capacity(), 64u);
  const std::uint64_t total = 3 * ring.capacity();
  for (std::uint64_t i = 1; i <= total; ++i) {
    TraceRecord rec;
    rec.id = i;
    rec.marks_ns[0] = i * 10;
    ring.push(rec);
  }
  const std::vector<TraceRecord> snap = ring.snapshot();
  EXPECT_EQ(snap.size(), ring.capacity());
  // Single-writer pushes never race a slot claim: the survivors are exactly
  // the last `capacity` ids, payload intact.
  std::set<std::uint64_t> ids;
  for (const TraceRecord& rec : snap) {
    ids.insert(rec.id);
    EXPECT_GT(rec.id, total - ring.capacity());
    EXPECT_EQ(rec.marks_ns[0], rec.id * 10);
  }
  EXPECT_EQ(ids.size(), ring.capacity());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ObsTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(ObsTraceRing, ConcurrentPushersNeverTearRecords) {
  TraceRing ring(32);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceRecord rec;
        rec.id = static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        for (std::size_t m = 0; m < kNumMarks; ++m) {
          rec.marks_ns[m] = rec.id * 100 + m;
        }
        ring.push(rec);
      }
    });
  }
  // A reader snapshots continuously while writers wrap the ring many times
  // over; every observed record must be internally consistent.
  for (int i = 0; i < 300; ++i) {
    for (const TraceRecord& rec : ring.snapshot()) {
      for (std::size_t m = 0; m < kNumMarks; ++m) {
        ASSERT_EQ(rec.marks_ns[m], rec.id * 100 + m) << "torn record observed";
      }
    }
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

// --- Sampling determinism ----------------------------------------------------

TEST(ObsSampler, DecideIsPureAndSeedSensitive) {
  // Same (seed, n, rate) -> same decision, always.
  Rng rng(2026);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t seed = rng.next_u64();
    const std::uint64_t n = rng.next_u64() % 100000;
    const double rate = rng.uniform();
    EXPECT_EQ(TraceSampler::decide(seed, n, rate), TraceSampler::decide(seed, n, rate));
  }
  EXPECT_TRUE(TraceSampler::decide(1, 0, 1.0));
  EXPECT_FALSE(TraceSampler::decide(1, 0, 0.0));
}

TEST(ObsSampler, EmpiricalRateTracksConfiguredRate) {
  Rng rng(7);
  for (const double rate : {0.01, 0.1, 0.5}) {
    const std::uint64_t seed = rng.next_u64();
    std::uint64_t kept = 0;
    constexpr std::uint64_t kN = 100000;
    for (std::uint64_t n = 0; n < kN; ++n) {
      if (TraceSampler::decide(seed, n, rate)) ++kept;
    }
    const double empirical = static_cast<double>(kept) / kN;
    EXPECT_NEAR(empirical, rate, 5.0 * std::sqrt(rate * (1.0 - rate) / kN))
        << "rate " << rate;
  }
}

TEST(ObsSampler, ConfigureReplaysIdenticalSequence) {
  // configure() resets the sequence counter, so the same (seed, rate) must
  // replay bit-identical decisions — the property benches rely on when they
  // reconfigure between sweeps.
  TraceSampler sampler;
  sampler.configure(0xabcdef, 0.25);
  std::vector<bool> first;
  for (int i = 0; i < 1000; ++i) first.push_back(sampler.next());
  sampler.configure(0xabcdef, 0.25);
  std::vector<bool> second;
  for (int i = 0; i < 1000; ++i) second.push_back(sampler.next());
  EXPECT_EQ(first, second);
}

TEST(ObsTracer, SampledCountIsInterleavingIndependent) {
  // The number of sampled traces over N starts depends only on (seed, rate,
  // N) — not on which threads called start(). Run the same workload twice
  // with different thread counts and compare.
  auto run = [](int threads, std::uint64_t per_thread) {
    Registry reg;
    Tracer tracer(reg, 64);
    TraceConfig cfg;
    cfg.sample_rate = 0.2;
    cfg.seed = 12345;
    tracer.configure(cfg);
    std::atomic<std::uint64_t> sampled{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&tracer, &sampled, per_thread] {
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          std::shared_ptr<Trace> trace = tracer.start(i);
          if (trace != nullptr && trace->sampled) {
            sampled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    return sampled.load();
  };
  EXPECT_EQ(run(1, 4000), run(4, 1000));
  EXPECT_EQ(run(2, 2000), run(4, 1000));
}

// --- Trace stage clock -------------------------------------------------------

Trace make_full_trace(Rng& rng, bool with_recv) {
  Trace trace;
  trace.id = rng.next_u64();
  std::uint64_t ns = 1 + rng.next_u64() % 1000000;
  for (std::size_t m = 0; m < kNumMarks; ++m) {
    if (m == static_cast<std::size_t>(Mark::kRecv) && !with_recv) continue;
    trace.stamp(static_cast<Mark>(m), ns);
    ns += 1 + rng.next_u64() % 500000;  // strictly increasing marks
  }
  return trace;
}

TEST(ObsTrace, StageSumTelescopesToEndToEnd) {
  // With every mark present the stage durations telescope: their sum IS the
  // e2e span, exactly. With kRecv absent (in-process submission) the decode
  // stage is undefined and the remaining stages still telescope to e2e.
  Rng rng(314);
  for (int trial = 0; trial < 100; ++trial) {
    for (const bool with_recv : {true, false}) {
      const Trace trace = make_full_trace(rng, with_recv);
      double sum_us = 0.0;
      for (std::size_t s = 0; s < kNumStages; ++s) {
        const double us = trace.stage_us(static_cast<Stage>(s));
        if (s == static_cast<std::size_t>(Stage::kDecode) && !with_recv) {
          EXPECT_LT(us, 0.0);
          continue;
        }
        ASSERT_GE(us, 0.0);
        sum_us += us;
      }
      const double e2e = trace.e2e_us();
      ASSERT_GT(e2e, 0.0);
      EXPECT_NEAR(sum_us, e2e, 1e-6 * e2e + 1e-9);
    }
  }
}

TEST(ObsTrace, UnreachedMarksYieldNegativeStages) {
  Trace trace;
  trace.stamp(Mark::kSubmit, 1000);
  trace.stamp(Mark::kAdmitted, 2000);
  EXPECT_DOUBLE_EQ(trace.stage_us(Stage::kAdmission), 1.0);
  EXPECT_LT(trace.stage_us(Stage::kQueueWait), 0.0);   // no kDequeued
  EXPECT_LT(trace.stage_us(Stage::kCompute), 0.0);
  EXPECT_LT(trace.e2e_us(), 0.0);                      // no kResponded
}

TEST(ObsTracer, FinishFeedsStageHistogramsAndRing) {
  Registry reg;
  Tracer tracer(reg, 64);
  TraceConfig cfg;
  cfg.sample_rate = 1.0;  // every trace rings
  tracer.configure(cfg);
  Rng rng(555);
  constexpr int kTraces = 50;
  for (int i = 0; i < kTraces; ++i) {
    Trace trace = make_full_trace(rng, true);
    trace.sampled = true;
    tracer.finish(trace);
  }
  const MetricsSnapshot snap = reg.collect();
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const MetricSample* sample = snap.find(
        "noble_stage_latency_us", {{"stage", stage_name(static_cast<Stage>(s))}});
    ASSERT_NE(sample, nullptr) << stage_name(static_cast<Stage>(s));
    ASSERT_TRUE(sample->hist.has_value());
    EXPECT_EQ(sample->hist->count(), static_cast<std::uint64_t>(kTraces));
  }
  const MetricSample* e2e = snap.find("noble_trace_e2e_us");
  ASSERT_NE(e2e, nullptr);
  ASSERT_TRUE(e2e->hist.has_value());
  EXPECT_EQ(e2e->hist->count(), static_cast<std::uint64_t>(kTraces));
  const MetricSample* finished = snap.find("noble_traces_finished");
  ASSERT_NE(finished, nullptr);
  EXPECT_EQ(finished->counter_value, static_cast<std::uint64_t>(kTraces));
  EXPECT_EQ(tracer.ring().snapshot().size(), static_cast<std::size_t>(kTraces));
}

TEST(ObsTracer, DisabledTracerAllocatesNothing) {
  Registry reg;
  Tracer tracer(reg);
  TraceConfig cfg;
  cfg.enabled = false;
  tracer.configure(cfg);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.start(1), nullptr);
}

TEST(ObsTracer, StageHistogramsOmitUnreachedStages) {
  // An in-process trace (no kRecv) must not contribute a bogus decode
  // sample; only stages with both endpoints stamped are recorded.
  Registry reg;
  Tracer tracer(reg, 16);
  tracer.configure(TraceConfig{});
  Rng rng(808);
  tracer.finish(make_full_trace(rng, /*with_recv=*/false));
  const MetricsSnapshot snap = reg.collect();
  const MetricSample* decode =
      snap.find("noble_stage_latency_us", {{"stage", "decode"}});
  ASSERT_NE(decode, nullptr);
  ASSERT_TRUE(decode->hist.has_value());
  EXPECT_EQ(decode->hist->count(), 0u);
  const MetricSample* compute =
      snap.find("noble_stage_latency_us", {{"stage", "compute"}});
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->hist->count(), 1u);
}

}  // namespace
}  // namespace noble::obs
