// Gateway tests: wire-codec edge cases (truncated frames, oversized length
// prefixes, unknown message types, version mismatches — each must fail the
// connection cleanly, never crash or leak), listener lifecycle over real
// loopback sockets, per-connection backpressure, session sweeping on
// disconnect, and wire-vs-direct fix bit-identity.
//
// The suite carries the `concurrency` CTest label and runs under
// -DNOBLE_SANITIZE=thread in CI: the listener's handler threads, the
// client's reader thread and the engine's worker pool all interleave here.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <iterator>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "gateway/wire.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::gateway {
namespace {

// ---------------------------------------------------------------------------
// Wire codec: round trips.
// ---------------------------------------------------------------------------

wire::Frame roundtrip(const wire::Frame& in) {
  std::string buffer = wire::encode_frame(in);
  wire::Frame out;
  EXPECT_EQ(wire::decode_frame(buffer, out), wire::DecodeResult::kFrame);
  EXPECT_TRUE(buffer.empty()) << "decode must consume exactly one frame";
  return out;
}

TEST(WireCodec, HeaderRoundTripsEveryField) {
  wire::Frame in;
  in.type = wire::MsgType::kLocate;
  in.request_id = 0xDEADBEEFCAFE1234ull;
  in.cls = engine::RequestClass::kBulk;
  in.deadline_us = 250000;
  in.body = std::string("\x00\x01\x02payload", 10);
  const wire::Frame out = roundtrip(in);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.cls, in.cls);
  EXPECT_EQ(out.deadline_us, in.deadline_us);
  EXPECT_EQ(out.body, in.body);
}

TEST(WireCodec, TwoFramesDecodeInOrderFromOneBuffer) {
  wire::Frame a, b;
  a.type = wire::MsgType::kStats;
  a.request_id = 1;
  b.type = wire::MsgType::kCloseSession;
  b.request_id = 2;
  b.body = wire::encode_close_session_body(77);
  std::string buffer = wire::encode_frame(a) + wire::encode_frame(b);
  wire::Frame out;
  ASSERT_EQ(wire::decode_frame(buffer, out), wire::DecodeResult::kFrame);
  EXPECT_EQ(out.request_id, 1u);
  ASSERT_EQ(wire::decode_frame(buffer, out), wire::DecodeResult::kFrame);
  EXPECT_EQ(out.request_id, 2u);
  std::uint64_t session = 0;
  EXPECT_TRUE(wire::decode_close_session_body(out.body, session));
  EXPECT_EQ(session, 77u);
  EXPECT_EQ(wire::decode_frame(buffer, out), wire::DecodeResult::kNeedMore);
}

TEST(WireCodec, LocateBodyRoundTrip) {
  const serve::RssiVector rssi = {-48.5f, -90.25f, 0.0f, -120.0f};
  const std::string body = wire::encode_locate_body("bldg-7", rssi);
  std::string key;
  serve::RssiVector decoded;
  ASSERT_TRUE(wire::decode_locate_body(body, key, decoded));
  EXPECT_EQ(key, "bldg-7");
  ASSERT_EQ(decoded.size(), rssi.size());
  for (std::size_t i = 0; i < rssi.size(); ++i) {
    // Bitwise, not approximate: the codec moves exact float patterns.
    EXPECT_EQ(std::memcmp(&decoded[i], &rssi[i], sizeof(float)), 0);
  }
}

TEST(WireCodec, FixBodyIsBitExact) {
  serve::Fix fix;
  fix.building = 3;
  fix.floor = -1;
  fix.fine_class = 4096;
  fix.position = {123.4567890123456789, -0.000030517578125};
  fix.confidence = 0.7071067811865476;
  const std::string body = wire::encode_fix_body(wire::Status::kOk, &fix);
  wire::Status status = wire::Status::kStopped;
  serve::Fix out;
  ASSERT_TRUE(wire::decode_fix_body(body, status, out));
  EXPECT_EQ(status, wire::Status::kOk);
  EXPECT_TRUE(out == fix);  // Fix::operator== is exact, field for field
}

TEST(WireCodec, RejectionFixBodyCarriesNoPayload) {
  const std::string body = wire::encode_fix_body(wire::Status::kQueueFull, nullptr);
  wire::Status status = wire::Status::kOk;
  serve::Fix out;
  ASSERT_TRUE(wire::decode_fix_body(body, status, out));
  EXPECT_EQ(status, wire::Status::kQueueFull);
}

TEST(WireCodec, TrackAndSessionBodiesRoundTrip) {
  const serve::ImuSegment segment = {0.5f, -1.5f, 2.25f};
  const std::string track = wire::encode_track_body(31337, segment);
  std::uint64_t session = 0;
  serve::ImuSegment seg_out;
  ASSERT_TRUE(wire::decode_track_body(track, session, seg_out));
  EXPECT_EQ(session, 31337u);
  EXPECT_EQ(seg_out, segment);

  const std::string open = wire::encode_open_session_body("bldg-1", {2.5, -8.75});
  std::string key;
  geo::Point2 start;
  ASSERT_TRUE(wire::decode_open_session_body(open, key, start));
  EXPECT_EQ(key, "bldg-1");
  EXPECT_EQ(start.x, 2.5);
  EXPECT_EQ(start.y, -8.75);

  const std::string opened =
      wire::encode_session_opened_body(wire::Status::kOk, 99);
  wire::Status status = wire::Status::kStopped;
  std::uint64_t id = 0;
  ASSERT_TRUE(wire::decode_session_opened_body(opened, status, id));
  EXPECT_EQ(status, wire::Status::kOk);
  EXPECT_EQ(id, 99u);
}

// ---------------------------------------------------------------------------
// Wire codec: malformed input. Every case must report kMalformed (or reject
// the body) without crashing, allocating absurdly, or consuming the buffer.
// ---------------------------------------------------------------------------

TEST(WireCodec, PartialFrameIsNeedMoreAtEveryPrefixLength) {
  wire::Frame frame;
  frame.type = wire::MsgType::kLocate;
  frame.request_id = 42;
  frame.body = wire::encode_locate_body("k", {-50.0f});
  const std::string full = wire::encode_frame(frame);
  // Truncated frame: every strict prefix must parse as "need more bytes" —
  // framing state, never an error, never a partial frame.
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::string buffer = full.substr(0, len);
    wire::Frame out;
    EXPECT_EQ(wire::decode_frame(buffer, out), wire::DecodeResult::kNeedMore)
        << "at prefix length " << len;
    EXPECT_EQ(buffer.size(), len) << "kNeedMore must not consume bytes";
  }
}

TEST(WireCodec, OversizedLengthPrefixIsMalformedBeforeAllocation) {
  // A hostile length prefix must be rejected against max_frame_bytes before
  // anything is buffered or allocated on its behalf.
  const std::uint32_t huge = 0x7FFFFFFFu;
  std::string buffer(sizeof huge, '\0');
  std::memcpy(buffer.data(), &huge, sizeof huge);
  wire::Frame out;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, out, wire::kDefaultMaxFrameBytes, &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("oversized"), std::string::npos) << error;
}

TEST(WireCodec, LengthPrefixShorterThanHeaderIsMalformed) {
  const std::uint32_t tiny = 4;  // a 4-byte payload cannot hold the header
  std::string buffer(sizeof tiny + tiny, '\0');
  std::memcpy(buffer.data(), &tiny, sizeof tiny);
  wire::Frame out;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, out, wire::kDefaultMaxFrameBytes, &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(WireCodec, BadMagicIsMalformed) {
  wire::Frame frame;
  frame.type = wire::MsgType::kStats;
  std::string buffer = wire::encode_frame(frame);
  buffer[4] ^= 0x40;  // corrupt the protocol tag, not just the version byte
  buffer[5] ^= 0x40;
  wire::Frame out;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, out, wire::kDefaultMaxFrameBytes, &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(WireCodec, VersionMismatchIsDistinguishedFromBadMagic) {
  wire::Frame frame;
  frame.type = wire::MsgType::kStats;
  std::string buffer = wire::encode_frame(frame);
  // The low magic byte is the version (little-endian u32 at payload start).
  buffer[4] = static_cast<char>(wire::kVersion + 1);
  wire::Frame out;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, out, wire::kDefaultMaxFrameBytes, &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(WireCodec, UnknownMessageTypeIsMalformed) {
  wire::Frame frame;
  frame.type = static_cast<wire::MsgType>(999);
  std::string buffer = wire::encode_frame(frame);
  wire::Frame out;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, out, wire::kDefaultMaxFrameBytes, &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("unknown message type"), std::string::npos) << error;
}

TEST(WireCodec, TruncatedBodiesAreRejected) {
  const std::string locate = wire::encode_locate_body("bldg", {-1.0f, -2.0f});
  std::string key;
  serve::RssiVector rssi;
  for (std::size_t len = 0; len < locate.size(); ++len) {
    EXPECT_FALSE(wire::decode_locate_body(locate.substr(0, len), key, rssi))
        << "at body length " << len;
  }
  // Trailing garbage is rejected too: a body must parse exhaustively.
  EXPECT_FALSE(wire::decode_locate_body(locate + "x", key, rssi));
}

TEST(WireCodec, LyingVectorCountIsRejectedWithoutAllocating) {
  // A body claiming 2^61 floats in a 30-byte payload must fail the length
  // check before resize() is attempted (no bad_alloc, no crash).
  std::string body = wire::encode_locate_body("k", {-1.0f});
  const std::uint64_t lie = 1ull << 61;
  // The f32 count sits right after the key (u64 len + bytes).
  std::memcpy(body.data() + sizeof(std::uint64_t) + 1, &lie, sizeof lie);
  std::string key;
  serve::RssiVector rssi;
  EXPECT_FALSE(wire::decode_locate_body(body, key, rssi));
}

// ---------------------------------------------------------------------------
// The status table: engine verdict <-> wire code <-> client exception.
// ---------------------------------------------------------------------------

TEST(WireStatusTable, EngineVerdictsRoundTripThroughTheWire) {
  // Every engine verdict maps to a distinct wire code and back to itself:
  // the engine-native subset of the table is a true inverse.
  const engine::SubmitStatus verdicts[] = {
      engine::SubmitStatus::kAccepted,     engine::SubmitStatus::kQueueFull,
      engine::SubmitStatus::kBadDimension, engine::SubmitStatus::kNoSession,
      engine::SubmitStatus::kNoShard,      engine::SubmitStatus::kExpired,
      engine::SubmitStatus::kStopped};
  for (const engine::SubmitStatus verdict : verdicts) {
    EXPECT_EQ(wire::to_submit_status(wire::from_submit_status(verdict)), verdict);
  }
  EXPECT_EQ(wire::from_submit_status(engine::SubmitStatus::kAccepted),
            wire::Status::kOk);
}

TEST(WireStatusTable, WireOnlyCodesFoldOntoNearestEngineVerdict) {
  EXPECT_EQ(wire::to_submit_status(wire::Status::kDeadlineExpired),
            engine::SubmitStatus::kExpired);
  EXPECT_EQ(wire::to_submit_status(wire::Status::kWindowFull),
            engine::SubmitStatus::kQueueFull);
  EXPECT_EQ(wire::to_submit_status(wire::Status::kWrongArtifact),
            engine::SubmitStatus::kNoShard);
}

TEST(WireStatusTable, EveryStatusHasADistinctName) {
  const wire::Status all[] = {
      wire::Status::kOk,        wire::Status::kQueueFull,
      wire::Status::kBadDimension, wire::Status::kNoSession,
      wire::Status::kNoShard,   wire::Status::kExpired,
      wire::Status::kStopped,   wire::Status::kDeadlineExpired,
      wire::Status::kWindowFull, wire::Status::kWrongArtifact};
  std::set<std::string> names;
  for (const wire::Status status : all) {
    names.insert(wire::status_name(status));
  }
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_STREQ(wire::status_name(wire::Status::kWrongArtifact), "wrong_artifact");
}

TEST(WireStatusTable, RejectionExceptionMapsDeadlineToEngineType) {
  // kDeadlineExpired must throw the engine's own exception type so wire and
  // in-process targets fail identically; every other non-kOk status becomes
  // a WireRejected carrying the status.
  EXPECT_THROW(
      std::rethrow_exception(
          wire::rejection_exception(wire::Status::kDeadlineExpired)),
      engine::DeadlineExpired);
  const wire::Status rejected[] = {
      wire::Status::kQueueFull,  wire::Status::kBadDimension,
      wire::Status::kNoSession,  wire::Status::kNoShard,
      wire::Status::kExpired,    wire::Status::kStopped,
      wire::Status::kWindowFull, wire::Status::kWrongArtifact};
  for (const wire::Status status : rejected) {
    try {
      std::rethrow_exception(wire::rejection_exception(status));
      FAIL() << "status " << wire::status_name(status) << " must throw";
    } catch (const wire::WireRejected& e) {
      EXPECT_EQ(e.status, status);
      EXPECT_NE(std::string(e.what()).find(wire::status_name(status)),
                std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Listener integration over real loopback sockets.
// ---------------------------------------------------------------------------

struct GatewayFixture {
  core::WifiExperiment wifi_exp;
  core::NobleWifiModel wifi_model;
  core::ImuExperiment imu_exp;
  core::NobleImuTracker tracker;
};

const GatewayFixture& gateway_fixture() {
  static const GatewayFixture* fixture = [] {
    core::WifiExperimentConfig wifi_cfg;
    wifi_cfg.total_samples = 1200;
    wifi_cfg.seed = 515;
    core::NobleWifiConfig wifi_model_cfg;
    wifi_model_cfg.quantize.tau = 6.0;
    wifi_model_cfg.quantize.coarse_l = 24.0;
    wifi_model_cfg.epochs = 6;
    wifi_model_cfg.hidden_units = 32;
    core::ImuExperimentConfig imu_cfg;
    imu_cfg.num_paths = 400;
    imu_cfg.total_walk_time_s = 1000.0;
    imu_cfg.readings_per_segment = 8;
    imu_cfg.imu.ref_interval_s = 15.0;
    imu_cfg.seed = 304;
    core::NobleImuConfig imu_model_cfg;
    imu_model_cfg.quantize.tau = 2.0;
    imu_model_cfg.epochs = 6;
    imu_model_cfg.projection_dim = 6;
    auto* f = new GatewayFixture{core::make_uji_experiment(wifi_cfg),
                                 core::NobleWifiModel(wifi_model_cfg),
                                 core::make_imu_experiment(imu_cfg),
                                 core::NobleImuTracker(imu_model_cfg)};
    f->wifi_model.fit(f->wifi_exp.split.train);
    f->tracker.fit(f->imu_exp.split.train);
    return f;
  }();
  return *fixture;
}

const serve::WifiLocalizer& wifi_localizer() {
  static const serve::WifiLocalizer* l = new serve::WifiLocalizer(
      serve::WifiLocalizer::from_model(gateway_fixture().wifi_model));
  return *l;
}

const serve::ImuLocalizer& imu_localizer() {
  static const serve::ImuLocalizer* l = new serve::ImuLocalizer(
      serve::ImuLocalizer::from_model(gateway_fixture().tracker));
  return *l;
}

/// One-shard router + started listener on an ephemeral loopback port.
struct LiveGateway {
  explicit LiveGateway(GatewayConfig config = {}) : listener(router, std::move(config)) {
    fleet::ShardConfig shard;
    shard.key = "bldg-A";
    shard.engine.workers = 2;
    shard.engine.max_batch = 8;
    router.add_shard(shard, wifi_localizer(), imu_localizer());
    EXPECT_TRUE(listener.start());
  }
  fleet::Router router;
  Listener listener;
};

std::vector<serve::RssiVector> test_queries(std::size_t max_count) {
  std::vector<serve::RssiVector> queries;
  const auto& samples = gateway_fixture().wifi_exp.split.test.samples;
  for (std::size_t i = 0; i < std::min(max_count, samples.size()); ++i) {
    queries.push_back(samples[i].rssi);
  }
  return queries;
}

TEST(GatewayListener, StartsOnEphemeralPortAndStopsIdempotently) {
  LiveGateway gw;
  EXPECT_TRUE(gw.listener.running());
  EXPECT_GT(gw.listener.port(), 0);
  gw.listener.stop();
  EXPECT_FALSE(gw.listener.running());
  gw.listener.stop();  // idempotent
}

TEST(GatewayListener, WireFixesAreBitIdenticalToDirectLocate) {
  LiveGateway gw;
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  for (const auto& q : test_queries(24)) {
    const serve::Fix expected = wifi_localizer().locate(q);
    const WireResult interactive = client->locate("bldg-A", q);
    ASSERT_TRUE(interactive.ok());
    EXPECT_TRUE(interactive.fix == expected);
    const WireResult bulk = client->locate("bldg-A", q, engine::RequestClass::kBulk,
                                           /*deadline_us=*/10'000'000);
    ASSERT_TRUE(bulk.ok());
    EXPECT_TRUE(bulk.fix == expected);
  }
}

TEST(GatewayListener, SessionStreamOverWireMatchesDirectSession) {
  LiveGateway gw;
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto& fx = gateway_fixture();
  const auto& path = fx.imu_exp.split.test.paths.front();
  const std::size_t dim = fx.tracker.segment_dim();
  serve::TrackingSession direct = imu_localizer().start_session(path.start);
  const std::optional<std::uint64_t> session =
      client->open_session("bldg-A", path.start);
  ASSERT_TRUE(session.has_value());
  for (std::size_t s = 0; s < path.num_segments; ++s) {
    const serve::ImuSegment segment(
        path.features.begin() + static_cast<std::ptrdiff_t>(s * dim),
        path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * dim));
    const serve::Fix expected = direct.update(segment);
    const WireResult wired = client->track(*session, segment);
    ASSERT_TRUE(wired.ok());
    EXPECT_TRUE(wired.fix == expected);
  }
  EXPECT_TRUE(client->close_session(*session));
  EXPECT_FALSE(client->close_session(*session)) << "double close must refuse";
}

TEST(GatewayListener, UnknownShardAndSessionAnswerExplicitStatuses) {
  LiveGateway gw;
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto queries = test_queries(1);
  ASSERT_FALSE(queries.empty());
  const WireResult no_shard = client->locate("no-such-bldg", queries.front());
  EXPECT_EQ(no_shard.status, wire::Status::kNoShard);
  const WireResult no_session = client->track(424242, {0.0f});
  EXPECT_EQ(no_session.status, wire::Status::kNoSession);
  // The connection survived both refusals.
  const WireResult ok = client->locate("bldg-A", queries.front());
  EXPECT_TRUE(ok.ok());
}

// --- malformed traffic over a real socket ------------------------------------

/// Raw TCP connect (no framing) for hostile-bytes tests.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// Reads until EOF (with a poll timeout) and returns everything received.
std::string read_to_eof(int fd, int timeout_ms = 5000) {
  std::string received;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      ADD_FAILURE() << "server neither answered nor closed within the timeout";
      return received;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return received;  // EOF: the server closed, as it must
    received.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Sends hostile bytes, expects exactly one kError frame followed by EOF.
void expect_error_then_close(std::uint16_t port, const std::string& bytes) {
  const int fd = raw_connect(port);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  std::string response = read_to_eof(fd);
  ::close(fd);
  wire::Frame frame;
  ASSERT_EQ(wire::decode_frame(response, frame), wire::DecodeResult::kFrame)
      << "the server must answer with a well-formed error frame before closing";
  EXPECT_EQ(frame.type, wire::MsgType::kError);
  std::string reason;
  EXPECT_TRUE(wire::decode_text_body(frame.body, reason));
  EXPECT_FALSE(reason.empty());
  EXPECT_TRUE(response.empty()) << "nothing may follow the error frame";
}

TEST(GatewayListener, MalformedTrafficGetsOneErrorFrameThenClose) {
  LiveGateway gw;

  // Bad magic.
  {
    wire::Frame frame;
    frame.type = wire::MsgType::kStats;
    std::string bytes = wire::encode_frame(frame);
    bytes[4] ^= 0x40;
    bytes[5] ^= 0x40;
    expect_error_then_close(gw.listener.port(), bytes);
  }
  // Version from the future.
  {
    wire::Frame frame;
    frame.type = wire::MsgType::kStats;
    std::string bytes = wire::encode_frame(frame);
    bytes[4] = static_cast<char>(wire::kVersion + 9);
    expect_error_then_close(gw.listener.port(), bytes);
  }
  // Unknown message type.
  {
    wire::Frame frame;
    frame.type = static_cast<wire::MsgType>(999);
    expect_error_then_close(gw.listener.port(), wire::encode_frame(frame));
  }
  // Oversized length prefix.
  {
    const std::uint32_t huge = 0x7FFFFFFFu;
    std::string bytes(sizeof huge, '\0');
    std::memcpy(bytes.data(), &huge, sizeof huge);
    expect_error_then_close(gw.listener.port(), bytes);
  }
  // Length prefix too short to hold the header.
  {
    const std::uint32_t tiny = 4;
    std::string bytes(sizeof tiny + tiny, '\0');
    std::memcpy(bytes.data(), &tiny, sizeof tiny);
    expect_error_then_close(gw.listener.port(), bytes);
  }
  // A response type sent by a client is a protocol violation too.
  {
    wire::Frame frame;
    frame.type = wire::MsgType::kFix;
    frame.body = wire::encode_fix_body(wire::Status::kOk, nullptr);
    expect_error_then_close(gw.listener.port(), wire::encode_frame(frame));
  }

  EXPECT_EQ(gw.listener.counters().malformed_frames, 6u);

  // The gateway survived every hostile connection: a fresh client still gets
  // bit-identical service, and nothing leaked into the fleet's admission
  // counters (malformed frames die before reaching the router).
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto queries = test_queries(1);
  ASSERT_FALSE(queries.empty());
  const WireResult result = client->locate("bldg-A", queries.front());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.fix == wifi_localizer().locate(queries.front()));
  const fleet::FleetStats stats = gw.router.stats();
  EXPECT_EQ(stats.total.submitted, 1u)
      << "only the one good locate may have reached the router";
}

TEST(GatewayListener, WindowFullBackpressureAnswersWithoutTouchingRouter) {
  GatewayConfig config;
  config.inflight_window = 0;  // degenerate: every data request over-window
  LiveGateway gw(std::move(config));
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto queries = test_queries(1);
  ASSERT_FALSE(queries.empty());
  const WireResult result = client->locate("bldg-A", queries.front());
  EXPECT_EQ(result.status, wire::Status::kWindowFull);
  // kWindowFull is backpressure, not a protocol error: the connection stays
  // open and control frames still work.
  EXPECT_TRUE(client->stats_text().has_value());
  EXPECT_GE(gw.listener.counters().backpressure_rejects, 1u);
  EXPECT_EQ(gw.router.stats().total.submitted, 0u)
      << "over-window requests must be refused before the router";
}

TEST(GatewayListener, DroppedConnectionSweepsItsSessions) {
  LiveGateway gw;
  {
    std::optional<GatewayClient> client =
        GatewayClient::connect("127.0.0.1", gw.listener.port());
    ASSERT_TRUE(client.has_value());
    const auto& path = gateway_fixture().imu_exp.split.test.paths.front();
    ASSERT_TRUE(client->open_session("bldg-A", path.start).has_value());
    ASSERT_TRUE(client->open_session("bldg-A", path.start).has_value());
    EXPECT_EQ(gw.listener.counters().sessions_opened, 2u);
    EXPECT_EQ(gw.listener.counters().sessions_closed, 0u);
  }  // client destroyed: the socket closes with both sessions still open

  // The handler notices the hangup and sweeps the sticky sessions.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (gw.listener.counters().sessions_closed < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(gw.listener.counters().sessions_closed, 2u);
}

TEST(GatewayListener, StatsTextExposesGatewayAndFleetTelemetry) {
  LiveGateway gw;
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto queries = test_queries(4);
  for (const auto& q : queries) ASSERT_TRUE(client->locate("bldg-A", q).ok());
  const std::optional<std::string> text = client->stats_text();
  ASSERT_TRUE(text.has_value());
  for (const char* needle :
       {"noble_gateway_connections_accepted 1", "noble_gateway_malformed_frames 0",
        "noble_fleet_submitted 4", "noble_fleet_queue_depth ",
        "noble_fleet_queue_depth{shard=\"bldg-A\",engine=\"0\"}",
        "noble_fleet_interactive_p99_us "}) {
    EXPECT_NE(text->find(needle), std::string::npos) << "missing: " << needle;
  }
}

TEST(GatewayListener, BinaryScrapeDecodesToTheSameTelemetry) {
  LiveGateway gw;
  std::optional<GatewayClient> client =
      GatewayClient::connect("127.0.0.1", gw.listener.port());
  ASSERT_TRUE(client.has_value());
  const auto queries = test_queries(4);
  for (const auto& q : queries) ASSERT_TRUE(client->locate("bldg-A", q).ok());
  const std::optional<std::string> bytes = client->stats_snapshot_bytes();
  ASSERT_TRUE(bytes.has_value());
  const std::optional<obs::MetricsSnapshot> snap = obs::decode_snapshot(*bytes);
  ASSERT_TRUE(snap.has_value());
  const obs::MetricSample* submitted = snap->find("noble_fleet_submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->counter_value, 4u);
  const obs::MetricSample* depth = snap->find(
      "noble_fleet_queue_depth", {{"shard", "bldg-A"}, {"engine", "0"}});
  ASSERT_NE(depth, nullptr);
  EXPECT_TRUE(depth->integer_gauge);
  // The binary image carries full bins, not just quantiles: the global
  // stage histograms decode as real Histograms a scraper could delta.
  const obs::MetricSample* e2e = snap->find("noble_trace_e2e_us");
  ASSERT_NE(e2e, nullptr);
  ASSERT_TRUE(e2e->hist.has_value());
  EXPECT_TRUE(e2e->hist->same_layout(Histogram::latency_us()));
}

// ---------------------------------------------------------------------------
// Router::queue_depths() — the per-shard/per-engine snapshot behind the
// stats page's depth gauges (new in this PR alongside the gateway).
// ---------------------------------------------------------------------------

TEST(RouterQueueDepths, SnapshotMatchesTopologyAndFleetGauge) {
  fleet::Router router;
  for (const char* key : {"bldg-A", "bldg-B"}) {
    fleet::ShardConfig shard;
    shard.key = key;
    shard.engines = 2;
    shard.engine.workers = 1;
    router.add_shard(shard, wifi_localizer());
  }
  const std::vector<fleet::ShardDepths> depths = router.queue_depths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths[0].shard, "bldg-A");  // registry order
  EXPECT_EQ(depths[1].shard, "bldg-B");
  std::size_t total = 0;
  for (const auto& shard : depths) {
    EXPECT_EQ(shard.engines.size(), 2u);
    for (std::size_t depth : shard.engines) total += depth;
  }
  EXPECT_EQ(total, 0u) << "idle fleet must snapshot empty queues";
  EXPECT_EQ(router.stats().total.queue_depth, 0u)
      << "the FleetStats gauge is the same quantity, summed";
}

}  // namespace
}  // namespace noble::gateway
