// Manifold learning tests: kNN exactness, geodesics, MDS recovery of
// isometric configurations, Isomap unrolling a curved manifold, LLE weight
// reconstruction and embedding locality.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "linalg/distance.h"
#include "manifold/geodesic.h"
#include "manifold/isomap.h"
#include "manifold/knn.h"
#include "manifold/lle.h"
#include "manifold/mds.h"

namespace noble::manifold {
namespace {

using linalg::Mat;

TEST(Knn, FindsExactNeighborsOnGrid) {
  // 1-D lattice embedded in 2-D: neighbors of x=5 are 4 and 6.
  Mat x(11, 2);
  for (std::size_t i = 0; i < 11; ++i) x(i, 0) = static_cast<float>(i);
  const auto nbs = knn_search(x, x, 2, /*exclude_self=*/true);
  EXPECT_EQ(nbs[5][0].index % 2, 0u);  // 4 or 6
  const std::set<std::size_t> found{nbs[5][0].index, nbs[5][1].index};
  EXPECT_TRUE(found.count(4) == 1 && found.count(6) == 1);
  EXPECT_NEAR(nbs[5][0].distance, 1.0, 1e-6);
}

TEST(Knn, QueryMatchesBatchSearch) {
  Rng rng(401);
  Mat refs(50, 4);
  for (std::size_t i = 0; i < refs.size(); ++i)
    refs.data()[i] = static_cast<float>(rng.normal());
  Mat q(1, 4);
  for (std::size_t i = 0; i < 4; ++i) q(0, i) = static_cast<float>(rng.normal());
  const auto batch = knn_search(refs, q, 5);
  const auto single = knn_query(refs, q.row(0), 5);
  ASSERT_EQ(batch[0].size(), single.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(batch[0][i].index, single[i].index);
    EXPECT_NEAR(batch[0][i].distance, single[i].distance, 1e-5);
  }
}

TEST(Knn, ExcludeSelfWorks) {
  Mat x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = static_cast<float>(i);
  const auto with_self = knn_search(x, x, 1, false);
  const auto without = knn_search(x, x, 1, true);
  EXPECT_EQ(with_self[2][0].index, 2u);
  EXPECT_NE(without[2][0].index, 2u);
}

TEST(Geodesic, LineGraphDistancesAreCumulative) {
  // Points on a line, k=2: geodesic between ends = straight distance.
  Mat x(10, 1);
  for (std::size_t i = 0; i < 10; ++i) x(i, 0) = static_cast<float>(i);
  const auto g = build_knn_graph(x, 2);
  const auto d = dijkstra(g, 0);
  EXPECT_NEAR(d[9], 9.0, 1e-5);
  EXPECT_NEAR(d[5], 5.0, 1e-5);
}

TEST(Geodesic, CurvedManifoldGeodesicExceedsEuclidean) {
  // Points on a semicircle: geodesic (arc) > chord.
  const std::size_t n = 60;
  Mat x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = std::numbers::pi * static_cast<double>(i) / (n - 1);
    x(i, 0) = static_cast<float>(std::cos(t));
    x(i, 1) = static_cast<float>(std::sin(t));
  }
  const auto g = build_knn_graph(x, 3);
  const auto d = dijkstra(g, 0);
  const double chord = 2.0;               // diameter
  const double arc = std::numbers::pi;    // half circumference
  EXPECT_GT(d[n - 1], chord + 0.5);
  EXPECT_NEAR(d[n - 1], arc, 0.15);
}

TEST(Geodesic, DisconnectedComponentsArePatched) {
  // Two distant clusters with k=1: disconnected graph.
  Mat x(6, 1);
  for (std::size_t i = 0; i < 3; ++i) x(i, 0) = static_cast<float>(i) * 0.1f;
  for (std::size_t i = 3; i < 6; ++i) x(i, 0) = 100.0f + static_cast<float>(i) * 0.1f;
  const auto g = build_knn_graph(x, 1);
  const auto d = geodesic_distance_matrix(g, 1.5);
  // All entries finite and the cross-cluster entries are the patched max.
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_TRUE(std::isfinite(d(i, j)));
  EXPECT_GT(d(0, 5), d(0, 2));
}

TEST(Mds, RecoversPlanarConfigurationDistances) {
  // Distances from a known 2-D configuration must be reproduced by a 2-D
  // classical MDS embedding (up to rigid motion — compare distances).
  Rng rng(403);
  const std::size_t n = 40;
  Mat pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i)
    pts.data()[i] = static_cast<float>(rng.uniform(0.0, 10.0));
  Mat d;
  linalg::pairwise_dist(pts, pts, d);
  const auto res = classical_mds(d, 2);
  Mat d2;
  linalg::pairwise_dist(res.embedding, res.embedding, d2);
  for (std::size_t i = 0; i < n; i += 5) {
    for (std::size_t j = 0; j < n; j += 7) {
      EXPECT_NEAR(d2(i, j), d(i, j), 0.05 * (1.0 + d(i, j)));
    }
  }
}

TEST(Mds, EigenvaluesOfPlanarDataAreTwoDominant) {
  Rng rng(405);
  const std::size_t n = 30;
  Mat pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i)
    pts.data()[i] = static_cast<float>(rng.uniform(0.0, 10.0));
  Mat d;
  linalg::pairwise_dist(pts, pts, d);
  const auto res = classical_mds(d, 4);
  // 3rd/4th eigenvalues are ~0 for truly planar data.
  EXPECT_LT(std::fabs(res.eigenvalues[2]), 0.02 * res.eigenvalues[0]);
}

TEST(Mds, OutOfSampleEmbedsTrainingPointConsistently) {
  Rng rng(407);
  const std::size_t n = 35;
  Mat pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i)
    pts.data()[i] = static_cast<float>(rng.uniform(0.0, 5.0));
  Mat d;
  linalg::pairwise_dist(pts, pts, d);
  const auto res = classical_mds(d, 2);
  // Re-embed training point 3 via the Nystrom formula: must match row 3.
  std::vector<double> sq(n);
  for (std::size_t i = 0; i < n; ++i)
    sq[i] = static_cast<double>(d(3, i)) * d(3, i);
  const auto y = mds_out_of_sample(res, sq);
  EXPECT_NEAR(y[0], res.embedding(3, 0), 0.05);
  EXPECT_NEAR(y[1], res.embedding(3, 1), 0.05);
}

/// S-curve sampled along arclength: 1-D manifold in 2-D.
Mat make_s_curve(std::size_t n) {
  Mat x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 3.0 * std::numbers::pi * static_cast<double>(i) / (n - 1);
    x(i, 0) = static_cast<float>(std::sin(t));
    x(i, 1) = static_cast<float>(t * 0.3);
  }
  return x;
}

TEST(Isomap, UnrollsCurveMonotonically) {
  const std::size_t n = 120;
  const Mat x = make_s_curve(n);
  Isomap iso(1, 4);
  iso.fit(x);
  const Mat& e = iso.train_embedding();
  // The 1-D embedding must be monotone along the curve (up to global sign).
  double sign = e(1, 0) > e(0, 0) ? 1.0 : -1.0;
  std::size_t violations = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (sign * (e(i, 0) - e(i - 1, 0)) <= 0.0) ++violations;
  }
  EXPECT_LT(violations, n / 20);
}

TEST(Isomap, TransformPlacesQueriesNearTrainNeighbors) {
  const Mat x = make_s_curve(100);
  Isomap iso(1, 4);
  iso.fit(x);
  // Query = midpoint of points 40 and 41: embedding must land between their
  // embeddings (within slack).
  Mat q(1, 2);
  q(0, 0) = 0.5f * (x(40, 0) + x(41, 0));
  q(0, 1) = 0.5f * (x(40, 1) + x(41, 1));
  const Mat e = iso.transform(q);
  const float lo = std::min(iso.train_embedding()(40, 0), iso.train_embedding()(41, 0));
  const float hi = std::max(iso.train_embedding()(40, 0), iso.train_embedding()(41, 0));
  const float slack = 2.0f * (hi - lo) + 0.5f;
  EXPECT_GT(e(0, 0), lo - slack);
  EXPECT_LT(e(0, 0), hi + slack);
}

TEST(Lle, WeightsReconstructInteriorPoints) {
  // On a dense line, each interior point is the average of its two
  // neighbors: weights must reconstruct it (near) exactly.
  const std::size_t n = 50;
  Mat x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<float>(i);
    x(i, 1) = static_cast<float>(2.0 * i);
  }
  Lle lle(1, 2);
  lle.fit(x);
  const Mat& e = lle.train_embedding();
  // Embedding must order points along the line (monotone up to sign).
  double sign = e(1, 0) > e(0, 0) ? 1.0 : -1.0;
  std::size_t violations = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (sign * (e(i, 0) - e(i - 1, 0)) <= 0.0) ++violations;
  }
  EXPECT_LT(violations, n / 10);
}

TEST(Lle, OutOfSampleNearTrainingNeighbors) {
  const std::size_t n = 60;
  Mat x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<float>(i);
    x(i, 1) = 0.0f;
  }
  Lle lle(1, 3);
  lle.fit(x);
  Mat q(1, 2);
  q(0, 0) = 30.5f;
  q(0, 1) = 0.0f;
  const Mat e = lle.transform(q);
  const float a = lle.train_embedding()(30, 0);
  const float b = lle.train_embedding()(31, 0);
  const float lo = std::min(a, b), hi = std::max(a, b);
  EXPECT_GT(e(0, 0), lo - 0.5f * (hi - lo) - 1e-3f);
  EXPECT_LT(e(0, 0), hi + 0.5f * (hi - lo) + 1e-3f);
}

TEST(Lle, EmbeddingIsCentered) {
  Rng rng(409);
  Mat x(80, 3);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.normal());
  Lle lle(2, 6);
  lle.fit(x);
  const Mat& e = lle.train_embedding();
  // Bottom eigenvectors are orthogonal to the constant vector -> near-zero
  // column means.
  double m0 = 0.0, m1 = 0.0;
  for (std::size_t i = 0; i < e.rows(); ++i) {
    m0 += e(i, 0);
    m1 += e(i, 1);
  }
  EXPECT_NEAR(m0 / static_cast<double>(e.rows()), 0.0, 0.05);
  EXPECT_NEAR(m1 / static_cast<double>(e.rows()), 0.0, 0.05);
}

}  // namespace
}  // namespace noble::manifold
