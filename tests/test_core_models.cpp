// End-to-end integration tests on small synthetic experiments: the models
// must train, beat chance decisively, and NObLe must out-structure Deep
// Regression — the paper's central claim, verified at test scale.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"

namespace noble::core {
namespace {

/// Small, fast Wi-Fi experiment shared by the tests in this file.
const WifiExperiment& small_uji() {
  static const WifiExperiment exp = [] {
    WifiExperimentConfig cfg;
    cfg.total_samples = 1600;
    cfg.seed = 77;
    return make_uji_experiment(cfg);
  }();
  return exp;
}

NobleWifiConfig small_noble_config() {
  NobleWifiConfig cfg;
  cfg.quantize.tau = 6.0;
  cfg.quantize.coarse_l = 24.0;
  cfg.epochs = 10;
  cfg.hidden_units = 64;
  return cfg;
}

TEST(NobleWifi, TrainsAndPredictsReasonably) {
  const auto& exp = small_uji();
  NobleWifiModel model(small_noble_config());
  const auto result = model.fit(exp.split.train, &exp.split.val);
  EXPECT_GT(result.epochs_run, 0u);
  // Training loss must decrease.
  EXPECT_LT(result.train_loss_history.back(), result.train_loss_history.front());

  auto preds = model.predict(exp.split.test);
  ASSERT_EQ(preds.size(), exp.split.test.size());
  const auto report = evaluate_wifi(preds, exp.split.test, model.quantizer(),
                                    &exp.world.plan);
  // Building classification is nearly free with distinct APs per building.
  EXPECT_GT(report.building_accuracy, 0.9);
  // Mean error far below the campus diagonal (~480 m) and below random
  // guessing within a building (~50 m).
  EXPECT_LT(report.errors.mean, 30.0);
  // Structure: cell centers of occupied cells are near corridors.
  EXPECT_GT(report.structure_score, 0.8);
}

TEST(NobleWifi, PredictionsLandOnOccupiedCells) {
  const auto& exp = small_uji();
  NobleWifiModel model(small_noble_config());
  model.fit(exp.split.train);
  const auto preds = model.predict(exp.split.test);
  for (const auto& p : preds) {
    EXPECT_GE(p.fine_class, 0);
    EXPECT_LT(p.fine_class, static_cast<int>(model.quantizer().num_fine_classes()));
  }
}

TEST(NobleWifi, BeatsDeepRegressionOnStructure) {
  const auto& exp = small_uji();
  NobleWifiModel noble(small_noble_config());
  noble.fit(exp.split.train, &exp.split.val);
  const auto noble_report = evaluate_wifi(noble.predict(exp.split.test), exp.split.test,
                                          noble.quantizer(), &exp.world.plan);

  RegressionConfig rcfg;
  rcfg.epochs = 10;
  rcfg.hidden_units = 64;
  DeepRegressionWifi reg(rcfg);
  reg.fit(exp.split.train, &exp.split.val);
  const auto reg_report =
      evaluate_positions(reg.predict(exp.split.test), exp.split.test, &exp.world.plan);

  // The paper's Fig. 4 claim, quantified: NObLe predictions respect the
  // map structure far more often than unconstrained regression.
  EXPECT_GT(noble_report.structure_score, reg_report.structure_score + 0.1);
  // And the headline: lower error (generous slack at this tiny scale).
  EXPECT_LT(noble_report.errors.median, reg_report.errors.median * 1.2);
}

TEST(RegressionProjection, OutputsAreAlwaysAccessible) {
  const auto& exp = small_uji();
  RegressionConfig rcfg;
  rcfg.epochs = 6;
  rcfg.hidden_units = 32;
  RegressionProjectionWifi proj(rcfg, exp.world.plan);
  proj.fit(exp.split.train);
  const auto points = proj.predict(exp.split.test);
  std::size_t accessible = 0;
  for (const auto& p : points) {
    if (exp.world.plan.accessible(p)) ++accessible;
  }
  // Projection lands on the boundary; allow a sliver of numeric misses.
  EXPECT_GT(static_cast<double>(accessible) / static_cast<double>(points.size()), 0.95);
}

TEST(KnnFingerprint, CompetitiveAndPredictsBuildings) {
  const auto& exp = small_uji();
  KnnFingerprintWifi knn(5);
  knn.fit(exp.split.train);
  std::vector<int> b, f;
  const auto points = knn.predict(exp.split.test, &b, &f);
  const auto report = evaluate_positions(points, exp.split.test, &exp.world.plan);
  EXPECT_LT(report.errors.mean, 25.0);
  std::vector<int> tb;
  for (const auto& s : exp.split.test.samples) tb.push_back(s.building);
  EXPECT_GT(data::hit_rate(b, tb), 0.9);
}

TEST(ManifoldRegression, IsomapVariantTrains) {
  const auto& exp = small_uji();
  ManifoldRegressionConfig mcfg;
  mcfg.method = ManifoldMethod::kIsomap;
  mcfg.embedding_dim = 16;
  mcfg.fit_subsample = 400;
  mcfg.regression.epochs = 8;
  mcfg.regression.hidden_units = 32;
  ManifoldRegressionWifi model(mcfg);
  model.fit(exp.split.train);
  const auto report =
      evaluate_positions(model.predict(exp.split.test), exp.split.test, &exp.world.plan);
  EXPECT_LT(report.errors.mean, 60.0);  // sane, not degenerate
}

TEST(ManifoldRegression, LleVariantTrains) {
  const auto& exp = small_uji();
  ManifoldRegressionConfig mcfg;
  mcfg.method = ManifoldMethod::kLle;
  mcfg.embedding_dim = 16;
  mcfg.fit_subsample = 400;
  mcfg.regression.epochs = 8;
  mcfg.regression.hidden_units = 32;
  ManifoldRegressionWifi model(mcfg);
  model.fit(exp.split.train);
  const auto report =
      evaluate_positions(model.predict(exp.split.test), exp.split.test, &exp.world.plan);
  EXPECT_LT(report.errors.mean, 60.0);
}

/// Small, fast IMU experiment.
const ImuExperiment& small_imu() {
  static const ImuExperiment exp = [] {
    ImuExperimentConfig cfg;
    cfg.num_paths = 700;
    cfg.total_walk_time_s = 1500.0;
    cfg.readings_per_segment = 16;
    cfg.imu.ref_interval_s = 15.0;
    cfg.seed = 88;
    return make_imu_experiment(cfg);
  }();
  return exp;
}

TEST(NobleImu, TrainsAndBeatsChance) {
  const auto& exp = small_imu();
  NobleImuConfig cfg;
  cfg.quantize.tau = 2.0;
  cfg.epochs = 15;
  cfg.projection_dim = 8;
  NobleImuTracker tracker(cfg);
  const auto result = tracker.fit(exp.split.train);
  EXPECT_LT(result.class_loss_history.back(), result.class_loss_history.front());
  EXPECT_LT(result.displacement_loss_history.back(),
            result.displacement_loss_history.front());

  const auto preds = tracker.predict(exp.split.test);
  const auto report = evaluate_imu(positions_of(preds), exp.split.test,
                                   &exp.world.walkways);
  // Track is 160 x 60; guessing the far side of the loop costs ~100 m and a
  // start-anchored guess ~40-60 m at these path lengths. The full-scale
  // margin is exercised in bench/table3_imu; this is a smoke bound.
  EXPECT_LT(report.errors.mean, 35.0);
  EXPECT_GT(report.structure_score, 0.8);
}

TEST(NobleImu, DisplacementHeadLearnsDirection) {
  const auto& exp = small_imu();
  NobleImuConfig cfg;
  cfg.quantize.tau = 2.0;
  cfg.epochs = 8;
  cfg.projection_dim = 8;
  NobleImuTracker tracker(cfg);
  tracker.fit(exp.split.train);
  const auto preds = tracker.predict(exp.split.test);
  // Predicted displacement should correlate with the true displacement.
  double dot_sum = 0.0, norm_pred = 0.0, norm_true = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const geo::Point2 t = exp.split.test.paths[i].end - exp.split.test.paths[i].start;
    dot_sum += preds[i].displacement.dot(t);
    norm_pred += preds[i].displacement.dot(preds[i].displacement);
    norm_true += t.dot(t);
  }
  const double cosine = dot_sum / (std::sqrt(norm_pred) * std::sqrt(norm_true) + 1e-12);
  EXPECT_GT(cosine, 0.5);
}

TEST(MapDeadReckoning, BetterThanNothingAndOnMap) {
  const auto& exp = small_imu();
  MapAssistedDeadReckoning::Config cfg;
  MapAssistedDeadReckoning dr(cfg, exp.world.walkways);
  dr.fit(exp.split.train);
  const auto points = dr.predict(exp.split.test);
  const auto report = evaluate_imu(points, exp.split.test, &exp.world.walkways);
  // Snapping guarantees on-map predictions.
  EXPECT_GT(report.structure_score, 0.99);
  EXPECT_LT(report.errors.mean, 40.0);
}

TEST(DeepRegressionImu, TrainsSane) {
  const auto& exp = small_imu();
  RegressionConfig rcfg;
  rcfg.epochs = 8;
  rcfg.hidden_units = 64;
  DeepRegressionImu reg(rcfg);
  reg.fit(exp.split.train);
  const auto report = evaluate_imu(reg.predict(exp.split.test), exp.split.test,
                                   &exp.world.walkways);
  EXPECT_LT(report.errors.mean, 40.0);
}

}  // namespace
}  // namespace noble::core
