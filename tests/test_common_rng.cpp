// Tests for the deterministic RNG: reproducibility, stream independence,
// distribution sanity, and shuffle/sampling invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/stats.h"

namespace noble {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.push(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaling) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.push(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentOfParentDraws) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.split(5);
  // Drawing from parent2 before splitting must not change the child stream.
  Rng child2 = parent2.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitDifferentTagsDiffer) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace noble
