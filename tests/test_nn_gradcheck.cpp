// Central-difference gradient checks for every layer and loss: the backbone
// guarantee that the from-scratch backprop is correct.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"

namespace noble::nn {
namespace {

using linalg::Mat;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal() * scale);
  return m;
}

/// Scalar objective: sum of elementwise-weighted layer output, so that
/// dL/dy is a fixed weight matrix.
double layer_objective(Layer& layer, const Mat& x, const Mat& weights) {
  Mat y;
  layer.forward(x, y, /*training=*/true);
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    s += static_cast<double>(y.data()[i]) * weights.data()[i];
  return s;
}

/// Checks analytic input and parameter gradients of a layer against central
/// differences. `weights` defines the objective; `eps` is the probe step.
void check_layer_gradients(Layer& layer, Mat x, const Mat& weights, double eps = 1e-3,
                           double tol = 2e-2) {
  // Analytic gradients.
  Mat y;
  layer.forward(x, y, /*training=*/true);
  ASSERT_EQ(y.rows(), weights.rows());
  ASSERT_EQ(y.cols(), weights.cols());
  layer.zero_grads();
  Mat dx;
  layer.backward(x, weights, dx);

  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 23)) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(eps);
    const double up = layer_objective(layer, x, weights);
    x.data()[i] = orig - static_cast<float>(eps);
    const double down = layer_objective(layer, x, weights);
    x.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input grad mismatch at flat index " << i;
  }

  // Parameter gradient check (restore forward cache first).
  layer.forward(x, y, /*training=*/true);
  layer.zero_grads();
  layer.backward(x, weights, dx);
  auto params = layer.params();
  auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Mat& w = *params[p];
    const Mat& g = *grads[p];
    for (std::size_t i = 0; i < w.size(); i += std::max<std::size_t>(1, w.size() / 17)) {
      const float orig = w.data()[i];
      w.data()[i] = orig + static_cast<float>(eps);
      const double up = layer_objective(layer, x, weights);
      w.data()[i] = orig - static_cast<float>(eps);
      const double down = layer_objective(layer, x, weights);
      w.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(g.data()[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
          << "param " << p << " grad mismatch at flat index " << i;
    }
  }
}

TEST(GradCheck, Dense) {
  Rng rng(101);
  Dense layer(7, 5, rng);
  check_layer_gradients(layer, random_mat(6, 7, rng), random_mat(6, 5, rng));
}

TEST(GradCheck, TimeDistributedDense) {
  Rng rng(103);
  TimeDistributedDense layer(4, 6, 3, rng);  // 4 segments of dim 6 -> 3
  check_layer_gradients(layer, random_mat(5, 24, rng), random_mat(5, 12, rng));
}

TEST(GradCheck, Tanh) {
  Rng rng(105);
  Tanh layer;
  check_layer_gradients(layer, random_mat(4, 9, rng), random_mat(4, 9, rng));
}

TEST(GradCheck, Relu) {
  Rng rng(107);
  Relu layer;
  // Keep activations away from the kink at 0 for finite differences.
  Mat x = random_mat(4, 9, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.3f;
  }
  check_layer_gradients(layer, x, random_mat(4, 9, rng));
}

TEST(GradCheck, Sigmoid) {
  Rng rng(109);
  Sigmoid layer;
  check_layer_gradients(layer, random_mat(4, 9, rng), random_mat(4, 9, rng));
}

TEST(GradCheck, BatchNorm) {
  Rng rng(111);
  BatchNorm1d layer(6, /*momentum=*/0.9f);
  check_layer_gradients(layer, random_mat(8, 6, rng, 2.0), random_mat(8, 6, rng));
}

/// Loss gradient check against central differences.
void check_loss_gradients(const Loss& loss, Mat pred, const Mat& target,
                          double eps = 1e-3, double tol = 2e-2) {
  Mat grad;
  loss.compute(pred, target, grad);
  for (std::size_t i = 0; i < pred.size();
       i += std::max<std::size_t>(1, pred.size() / 29)) {
    const float orig = pred.data()[i];
    Mat tmp;
    pred.data()[i] = orig + static_cast<float>(eps);
    const double up = loss.compute(pred, target, tmp);
    pred.data()[i] = orig - static_cast<float>(eps);
    const double down = loss.compute(pred, target, tmp);
    pred.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, tol * std::max(0.05, std::fabs(numeric)))
        << "loss grad mismatch at flat index " << i;
  }
}

TEST(GradCheck, MseLoss) {
  Rng rng(113);
  check_loss_gradients(MseLoss{}, random_mat(5, 3, rng), random_mat(5, 3, rng));
}

TEST(GradCheck, BceWithLogits) {
  Rng rng(115);
  Mat target(5, 7);
  for (std::size_t i = 0; i < target.size(); ++i)
    target.data()[i] = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  check_loss_gradients(BceWithLogitsLoss{}, random_mat(5, 7, rng), target);
}

TEST(GradCheck, BceWithLogitsPositiveWeight) {
  Rng rng(117);
  Mat target(4, 6);
  for (std::size_t i = 0; i < target.size(); ++i)
    target.data()[i] = rng.bernoulli(0.25) ? 1.0f : 0.0f;
  check_loss_gradients(BceWithLogitsLoss{5.0}, random_mat(4, 6, rng), target);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(119);
  Mat target(5, 4);
  for (std::size_t i = 0; i < 5; ++i)
    target(i, static_cast<std::size_t>(rng.uniform_int(0, 3))) = 1.0f;
  check_loss_gradients(SoftmaxCrossEntropyLoss{}, random_mat(5, 4, rng), target);
}

TEST(GradCheck, TwoLayerNetworkEndToEnd) {
  // Full end-to-end: d(loss)/d(first-layer weights) via the Sequential.
  Rng rng(121);
  Sequential net;
  auto& d1 = net.emplace<Dense>(5, 4, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(4, 3, rng);
  const Mat x = random_mat(6, 5, rng);
  Mat target = random_mat(6, 3, rng);
  const MseLoss loss;

  const Mat& pred = net.forward(x, true);
  Mat grad, dx;
  loss.compute(pred, target, grad);
  net.zero_grads();
  net.backward(grad, dx);
  const Mat analytic = *d1.grads()[0];

  const double eps = 1e-3;
  Mat& w = d1.weights();
  for (std::size_t i = 0; i < w.size(); i += 3) {
    const float orig = w.data()[i];
    Mat tmp;
    w.data()[i] = orig + static_cast<float>(eps);
    const double up = loss.compute(net.forward(x, true), target, tmp);
    w.data()[i] = orig - static_cast<float>(eps);
    const double down = loss.compute(net.forward(x, true), target, tmp);
    w.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, 2e-2 * std::max(0.05, std::fabs(numeric)));
  }
}

}  // namespace
}  // namespace noble::nn
