// Simulator tests: Wi-Fi propagation physics, dataset collection, IMU walk
// synthesis, path construction, and the energy model's calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/dataset.h"
#include "geo/campus.h"
#include "sim/energy.h"
#include "sim/imu.h"
#include "sim/imu_dataset.h"
#include "sim/wifi.h"
#include "sim/wifi_dataset.h"

namespace noble::sim {
namespace {

TEST(WifiWorld, DeploysExpectedApCount) {
  const auto world = geo::make_uji_like_campus();
  WifiConfig cfg;
  cfg.aps_per_floor = 5;
  const WifiWorld wifi(world, cfg, 7);
  // 3 buildings x 4 floors x 5 APs.
  EXPECT_EQ(wifi.num_aps(), 60u);
  for (const auto& ap : wifi.aps()) {
    const auto& b = world.plan.building(static_cast<std::size_t>(ap.building));
    EXPECT_TRUE(b.accessible(ap.position));
  }
}

TEST(WifiWorld, SignalDecaysWithDistance) {
  const auto world = geo::make_ipin_like_building();
  WifiConfig cfg;
  cfg.shadowing_sigma_db = 0.0;  // isolate path loss
  const WifiWorld wifi(world, cfg, 7);
  const auto& ap = wifi.aps()[0];
  const double near = wifi.mean_rssi(0, {ap.position.x + 2.0, ap.position.y},
                                     ap.building, ap.floor);
  const double far = wifi.mean_rssi(0, {ap.position.x + 20.0, ap.position.y},
                                    ap.building, ap.floor);
  EXPECT_GT(near, far);
}

TEST(WifiWorld, FloorSeparationAttenuates) {
  const auto world = geo::make_ipin_like_building();
  WifiConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  const WifiWorld wifi(world, cfg, 7);
  const auto& ap = wifi.aps()[0];
  const geo::Point2 p{ap.position.x + 3.0, ap.position.y};
  const double same = wifi.mean_rssi(0, p, ap.building, ap.floor);
  const double other = wifi.mean_rssi(0, p, ap.building, ap.floor + 1);
  EXPECT_GT(same, other + cfg.floor_attenuation_db - 1.0);
}

TEST(WifiWorld, OtherBuildingAttenuates) {
  const auto world = geo::make_uji_like_campus();
  WifiConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  const WifiWorld wifi(world, cfg, 7);
  const auto& ap = wifi.aps()[0];
  const geo::Point2 p{ap.position.x + 5.0, ap.position.y};
  const double same = wifi.mean_rssi(0, p, ap.building, ap.floor);
  const double cross = wifi.mean_rssi(0, p, ap.building + 1, ap.floor);
  EXPECT_NEAR(same - cross, cfg.wall_attenuation_db, 1e-9);
}

TEST(WifiWorld, ShadowingIsStaticAcrossMeasurements) {
  const auto world = geo::make_ipin_like_building();
  const WifiWorld wifi(world, WifiConfig{}, 7);
  const geo::Point2 p{20, 15};
  // mean_rssi is deterministic: identical on repeated evaluation.
  EXPECT_DOUBLE_EQ(wifi.mean_rssi(0, p, 0, 0), wifi.mean_rssi(0, p, 0, 0));
}

TEST(WifiWorld, MeasurementUsesNotDetectedSentinel) {
  const auto world = geo::make_uji_like_campus();
  const WifiWorld wifi(world, WifiConfig{}, 7);
  Rng rng(9);
  // A point in building 0 cannot hear most APs in building 2.
  const auto v = wifi.measure({60, 160}, 0, 0, rng);
  std::size_t undetected = 0;
  for (float r : v) {
    if (r == data::kNotDetectedRssi) ++undetected;
  }
  EXPECT_GT(undetected, v.size() / 4);
  EXPECT_LT(undetected, v.size());  // but some APs are audible
}

TEST(WifiDataset, CollectionCoversAllBuildingsAndFloors) {
  const auto world = geo::make_uji_like_campus();
  const WifiWorld wifi(world, WifiConfig{}, 7);
  Rng rng(11);
  CollectionConfig cc;
  cc.max_samples = 1200;
  const auto ds = collect_wifi_dataset(world, wifi, cc, rng);
  EXPECT_EQ(ds.size(), 1200u);
  EXPECT_EQ(ds.num_aps, wifi.num_aps());
  std::set<std::pair<int, int>> seen;
  for (const auto& s : ds.samples) {
    seen.insert({s.building, s.floor});
    const auto& b = world.plan.building(static_cast<std::size_t>(s.building));
    EXPECT_TRUE(b.accessible(s.position));
  }
  EXPECT_EQ(seen.size(), 12u);  // 3 buildings x 4 floors
}

TEST(ImuWalk, StaysOnWalkways) {
  const auto world = geo::make_outdoor_track();
  Rng rng(13);
  const auto rec = simulate_walk(world, ImuConfig{}, 120.0, rng);
  EXPECT_EQ(rec.samples.size(), rec.positions.size());
  for (std::size_t i = 0; i < rec.positions.size(); i += 50) {
    EXPECT_LT(world.walkways.distance_to_path(rec.positions[i]), 0.5);
  }
}

TEST(ImuWalk, ReferenceIntervalRespected) {
  const auto world = geo::make_outdoor_track();
  ImuConfig cfg;
  cfg.ref_interval_s = 10.0;
  Rng rng(15);
  const auto rec = simulate_walk(world, cfg, 100.0, rng);
  // 100 s / 10 s = 10 references (plus the one at t=0).
  EXPECT_NEAR(static_cast<double>(rec.num_refs()), 10.0, 1.5);
  for (std::size_t r = 1; r < rec.num_refs(); ++r) {
    EXPECT_EQ(rec.ref_sample_idx[r] - rec.ref_sample_idx[r - 1],
              static_cast<std::size_t>(10.0 * cfg.sample_rate_hz));
  }
}

TEST(ImuWalk, GravityOnZAxis) {
  const auto world = geo::make_outdoor_track();
  Rng rng(17);
  const auto rec = simulate_walk(world, ImuConfig{}, 60.0, rng);
  double mean_az = 0.0;
  for (const auto& s : rec.samples) mean_az += s[2];
  mean_az /= static_cast<double>(rec.samples.size());
  EXPECT_NEAR(mean_az, 9.81, 1.5);  // gravity + bounce offset
}

TEST(ImuWalk, WalkedDistanceMatchesSpeed) {
  const auto world = geo::make_outdoor_track();
  ImuConfig cfg;
  Rng rng(19);
  const auto rec = simulate_walk(world, cfg, 200.0, rng);
  double dist = 0.0;
  for (std::size_t i = 1; i < rec.positions.size(); ++i) {
    dist += geo::distance(rec.positions[i - 1], rec.positions[i]);
  }
  EXPECT_NEAR(dist, cfg.walk_speed_mps * 200.0, 0.25 * cfg.walk_speed_mps * 200.0);
}

TEST(ImuDataset, ResampleWindowAverages) {
  ImuRecording rec;
  for (int i = 0; i < 8; ++i) {
    std::array<float, 6> s{};
    s[0] = static_cast<float>(i);  // ax ramps 0..7
    rec.samples.push_back(s);
    rec.positions.push_back({0, 0});
  }
  const auto w = resample_window(rec, 0, 8, 2);
  ASSERT_EQ(w.size(), 12u);
  EXPECT_FLOAT_EQ(w[0], 1.5f);  // mean of 0,1,2,3
  EXPECT_FLOAT_EQ(w[6], 5.5f);  // mean of 4,5,6,7
}

TEST(ImuDataset, PathConstructionRespectsProtocol) {
  const auto world = geo::make_outdoor_track();
  ImuConfig icfg;
  icfg.ref_interval_s = 8.0;
  Rng rng(21);
  std::vector<ImuRecording> recs{simulate_walk(world, icfg, 600.0, rng)};
  PathConfig pc;
  pc.readings_per_segment = 16;
  pc.max_segments = 50;
  pc.num_paths = 200;
  Rng prng(23);
  const auto ds = build_imu_paths(recs, pc, prng);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.segment_dim, 16u * 6u);
  for (const auto& p : ds.paths) {
    EXPECT_GE(p.num_segments, 1u);
    EXPECT_LE(p.num_segments, 50u);  // paper: path length < 50
    EXPECT_EQ(p.segment_endpoints.size(), p.num_segments);
    EXPECT_EQ(p.segment_endpoints.back(), p.end);
    // Padding past num_segments is zero.
    for (std::size_t j = p.num_segments * ds.segment_dim; j < p.features.size(); ++j) {
      EXPECT_EQ(p.features[j], 0.0f);
    }
  }
}

TEST(ImuDataset, SegmentDisplacementsSumToTotal) {
  const auto world = geo::make_outdoor_track();
  Rng rng(25);
  std::vector<ImuRecording> recs{simulate_walk(world, ImuConfig{}, 400.0, rng)};
  PathConfig pc;
  pc.num_paths = 50;
  Rng prng(27);
  const auto ds = build_imu_paths(recs, pc, prng);
  for (const auto& p : ds.paths) {
    geo::Point2 acc = p.start;
    geo::Point2 prev = p.start;
    for (const auto& ep : p.segment_endpoints) {
      acc = acc + (ep - prev);
      prev = ep;
    }
    EXPECT_NEAR(acc.x, p.end.x, 1e-9);
    EXPECT_NEAR(acc.y, p.end.y, 1e-9);
  }
}

TEST(Energy, JetsonCalibrationMatchesPaperWifiPoint) {
  // §IV-C: UJI inference = 0.00518 J, 2 ms. Model sized like the paper's:
  // 520 inputs, 2x128 hidden, ~2000 output labels.
  const EnergyModel model(jetson_tx2_profile());
  const std::size_t macs = 520 * 128 + 128 * 128 + 128 * 2000;
  const std::size_t bytes = macs * 4;  // weights dominate
  const auto cost = model.inference(macs, bytes);
  EXPECT_NEAR(cost.energy_j, 0.00518, 0.0018);
  EXPECT_NEAR(cost.latency_s, 0.002, 0.0008);
}

TEST(Energy, ImuSensingMatchesPaper) {
  // §V-D: inertial sensors cost 0.1356 J over 8 s.
  const EnergyModel model(jetson_tx2_profile());
  EXPECT_NEAR(model.imu_sensing(8.0), 0.1356, 1e-9);
}

TEST(Energy, GpsRatioAbout27x) {
  // §V-D headline: IMU tracking total ~0.22159 J vs GPS 5.925 J = ~27x.
  const EnergyModel model(jetson_tx2_profile());
  const double total = model.imu_sensing(8.0) + 0.08599;  // paper's inference J
  EXPECT_NEAR(model.gps_fix() / total, 26.7, 1.0);
}

TEST(Energy, ScalesLinearlyInMacs) {
  const EnergyModel model(jetson_tx2_profile());
  const auto c1 = model.inference(1000000, 0);
  const auto c2 = model.inference(2000000, 0);
  const double overhead = jetson_tx2_profile().joules_overhead;
  EXPECT_NEAR((c2.energy_j - overhead) / (c1.energy_j - overhead), 2.0, 1e-9);
}

}  // namespace
}  // namespace noble::sim
