// Cluster tests: proto body codecs (round trips, hostile bytes per frame
// type — one kError frame, peer state untouched), coordinator membership
// and heartbeat-loss death verdicts, cross-node bulk spill (bit-identical
// fixes, digest guard), and the staged canary -> probe -> commit rollout.
//
// The suite carries the `concurrency` CTest label: coordinator and node
// FrameServers, heartbeat threads, spill reader threads and engine workers
// all interleave here.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "gateway/wire.h"
#include "net/socket.h"
#include "serve/artifact.h"
#include "serve/wifi_localizer.h"

namespace noble::cluster {
namespace {

namespace wire = gateway::wire;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Fixture: one campus, two fitted models (v1 deployed, v2 the retrained
// artifact a rollout converges the fleet onto).
// ---------------------------------------------------------------------------

struct ClusterFixture {
  core::WifiExperiment exp;
  core::NobleWifiModel model_v1;
  core::NobleWifiModel model_v2;
};

const ClusterFixture& cluster_fixture() {
  static const ClusterFixture* fixture = [] {
    core::WifiExperimentConfig cfg;
    cfg.total_samples = 1000;
    cfg.seed = 611;
    auto make_config = [](std::uint64_t seed) {
      core::NobleWifiConfig mc;
      mc.quantize.tau = 6.0;
      mc.quantize.coarse_l = 24.0;
      mc.epochs = 5;
      mc.hidden_units = 24;
      mc.seed = seed;
      return mc;
    };
    auto* f = new ClusterFixture{core::make_uji_experiment(cfg),
                                 core::NobleWifiModel(make_config(7)),
                                 core::NobleWifiModel(make_config(8))};
    f->model_v1.fit(f->exp.split.train);
    f->model_v2.fit(f->exp.split.train);
    return f;
  }();
  return *fixture;
}

const serve::WifiLocalizer& localizer_v1() {
  static const serve::WifiLocalizer* l = new serve::WifiLocalizer(
      serve::WifiLocalizer::from_model(cluster_fixture().model_v1));
  return *l;
}

const serve::WifiLocalizer& localizer_v2() {
  static const serve::WifiLocalizer* l = new serve::WifiLocalizer(
      serve::WifiLocalizer::from_model(cluster_fixture().model_v2));
  return *l;
}

std::vector<serve::RssiVector> test_queries(std::size_t count) {
  const auto& samples = cluster_fixture().exp.split.test.samples;
  std::vector<serve::RssiVector> queries;
  for (std::size_t i = 0; i < count && i < samples.size(); ++i) {
    queries.push_back(samples[i].rssi);
  }
  return queries;
}

template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 10'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Proto codecs: round trips.
// ---------------------------------------------------------------------------

proto::NodeInfo sample_node_info() {
  proto::NodeInfo info;
  info.name = "node-a";
  info.host = "127.0.0.1";
  info.port = 40123;
  info.alive = true;
  proto::ShardState shard;
  shard.key = "bldg-A";
  shard.digest = 0xDEADBEEFCAFEF00Dull;
  shard.generation = 7;
  shard.bulk_depth = 3;
  shard.total_depth = 11;
  info.shards.push_back(shard);
  shard.key = "bldg-B";
  shard.digest = 1;
  info.shards.push_back(shard);
  return info;
}

TEST(ClusterProto, NodeInfoBodyRoundTripsEveryField) {
  const proto::NodeInfo in = sample_node_info();
  proto::NodeInfo out;
  ASSERT_TRUE(proto::decode_node_info_body(proto::encode_node_info_body(in), out));
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.host, in.host);
  EXPECT_EQ(out.port, in.port);
  EXPECT_EQ(out.alive, in.alive);
  ASSERT_EQ(out.shards.size(), in.shards.size());
  for (std::size_t i = 0; i < in.shards.size(); ++i) {
    EXPECT_EQ(out.shards[i].key, in.shards[i].key);
    EXPECT_EQ(out.shards[i].digest, in.shards[i].digest);
    EXPECT_EQ(out.shards[i].generation, in.shards[i].generation);
    EXPECT_EQ(out.shards[i].bulk_depth, in.shards[i].bulk_depth);
    EXPECT_EQ(out.shards[i].total_depth, in.shards[i].total_depth);
  }
}

TEST(ClusterProto, MembershipBodyRoundTripsAliveFlags) {
  proto::NodeInfo a = sample_node_info();
  proto::NodeInfo b = sample_node_info();
  b.name = "node-b";
  b.alive = false;
  b.shards.clear();
  const std::string body = proto::encode_membership_body({a, b});
  std::vector<proto::NodeInfo> out;
  ASSERT_TRUE(proto::decode_membership_body(body, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "node-a");
  EXPECT_TRUE(out[0].alive);
  EXPECT_EQ(out[1].name, "node-b");
  EXPECT_FALSE(out[1].alive);
  EXPECT_TRUE(out[1].shards.empty());
}

TEST(ClusterProto, SpillSubmitBodyIsBitExact) {
  const serve::RssiVector rssi = {-48.5f, -90.25f, 0.0f, -120.0f};
  const std::string body =
      proto::encode_spill_submit_body("bldg-A", 0x1234ull, rssi);
  std::string key;
  std::uint64_t digest = 0;
  serve::RssiVector out;
  ASSERT_TRUE(proto::decode_spill_submit_body(body, key, digest, out));
  EXPECT_EQ(key, "bldg-A");
  EXPECT_EQ(digest, 0x1234ull);
  ASSERT_EQ(out.size(), rssi.size());
  for (std::size_t i = 0; i < rssi.size(); ++i) {
    EXPECT_EQ(std::memcmp(&out[i], &rssi[i], sizeof(float)), 0);
  }
}

TEST(ClusterProto, RolloutBodiesRoundTrip) {
  proto::RolloutCommand cmd;
  cmd.shard = "bldg-A";
  cmd.artifact_path = "/tmp/models/bldg-A.noble";
  cmd.digest = 0xABCDull;
  cmd.stage = proto::RolloutStage::kCommit;
  proto::RolloutCommand cmd_out;
  ASSERT_TRUE(proto::decode_rollout_command_body(
      proto::encode_rollout_command_body(cmd), cmd_out));
  EXPECT_EQ(cmd_out.shard, cmd.shard);
  EXPECT_EQ(cmd_out.artifact_path, cmd.artifact_path);
  EXPECT_EQ(cmd_out.digest, cmd.digest);
  EXPECT_EQ(cmd_out.stage, cmd.stage);

  proto::RolloutReport report;
  report.shard = "bldg-A";
  report.digest = 0xABCDull;
  report.stage = proto::RolloutStage::kCanary;
  report.status = static_cast<std::uint32_t>(wire::Status::kWrongArtifact);
  report.message = "digest mismatch";
  proto::RolloutReport report_out;
  ASSERT_TRUE(proto::decode_rollout_report_body(
      proto::encode_rollout_report_body(report), report_out));
  EXPECT_EQ(report_out.shard, report.shard);
  EXPECT_EQ(report_out.digest, report.digest);
  EXPECT_EQ(report_out.stage, report.stage);
  EXPECT_EQ(report_out.status, report.status);
  EXPECT_EQ(report_out.message, report.message);
}

// ---------------------------------------------------------------------------
// Proto codecs: hostile bytes. Truncations, trailing garbage, lying counts
// and out-of-range enums must all be rejected without crashing.
// ---------------------------------------------------------------------------

TEST(ClusterProto, TruncatedBodiesAreRejectedAtEveryPrefixLength) {
  const std::string node_info = proto::encode_node_info_body(sample_node_info());
  const std::string membership =
      proto::encode_membership_body({sample_node_info()});
  const std::string spill =
      proto::encode_spill_submit_body("bldg-A", 7, {-1.0f, -2.0f});
  proto::RolloutCommand cmd;
  cmd.shard = "s";
  cmd.artifact_path = "p";
  const std::string rollout = proto::encode_rollout_command_body(cmd);
  for (std::size_t len = 0; len < node_info.size(); ++len) {
    proto::NodeInfo out;
    EXPECT_FALSE(proto::decode_node_info_body(node_info.substr(0, len), out))
        << "node_info prefix " << len;
  }
  for (std::size_t len = 0; len < membership.size(); ++len) {
    std::vector<proto::NodeInfo> out;
    EXPECT_FALSE(proto::decode_membership_body(membership.substr(0, len), out))
        << "membership prefix " << len;
  }
  for (std::size_t len = 0; len < spill.size(); ++len) {
    std::string key;
    std::uint64_t digest = 0;
    serve::RssiVector rssi;
    EXPECT_FALSE(
        proto::decode_spill_submit_body(spill.substr(0, len), key, digest, rssi))
        << "spill prefix " << len;
  }
  for (std::size_t len = 0; len < rollout.size(); ++len) {
    proto::RolloutCommand out;
    EXPECT_FALSE(proto::decode_rollout_command_body(rollout.substr(0, len), out))
        << "rollout prefix " << len;
  }
}

TEST(ClusterProto, TrailingGarbageIsRejected) {
  proto::NodeInfo info_out;
  EXPECT_FALSE(proto::decode_node_info_body(
      proto::encode_node_info_body(sample_node_info()) + "x", info_out));
  std::vector<proto::NodeInfo> members_out;
  EXPECT_FALSE(proto::decode_membership_body(
      proto::encode_membership_body({sample_node_info()}) + "x", members_out));
}

TEST(ClusterProto, LyingShardCountIsRejectedWithoutAllocating) {
  proto::NodeInfo info = sample_node_info();
  info.shards.clear();
  std::string body = proto::encode_node_info_body(info);
  // The shard count is the trailing u64; claim 2^61 entries.
  const std::uint64_t lie = 1ull << 61;
  std::memcpy(body.data() + body.size() - sizeof lie, &lie, sizeof lie);
  proto::NodeInfo out;
  EXPECT_FALSE(proto::decode_node_info_body(body, out));
}

TEST(ClusterProto, OutOfRangeStageAndPortAreRejected) {
  proto::RolloutCommand cmd;
  cmd.shard = "s";
  cmd.artifact_path = "p";
  std::string body = proto::encode_rollout_command_body(cmd);
  const std::uint32_t bad_stage = 99;
  std::memcpy(body.data() + body.size() - sizeof bad_stage, &bad_stage,
              sizeof bad_stage);
  proto::RolloutCommand out;
  EXPECT_FALSE(proto::decode_rollout_command_body(body, out));

  proto::NodeInfo info = sample_node_info();
  info.shards.clear();
  std::string node_body = proto::encode_node_info_body(info);
  // The port u32 sits after name and host (u64 len + bytes each).
  const std::size_t port_off = sizeof(std::uint64_t) + info.name.size() +
                               sizeof(std::uint64_t) + info.host.size();
  const std::uint32_t bad_port = 0x10000u;
  std::memcpy(node_body.data() + port_off, &bad_port, sizeof bad_port);
  proto::NodeInfo node_out;
  EXPECT_FALSE(proto::decode_node_info_body(node_body, node_out));
}

// ---------------------------------------------------------------------------
// Live cluster helpers.
// ---------------------------------------------------------------------------

fleet::ShardConfig shard_config(std::size_t queue_cap, std::size_t bulk_cap) {
  fleet::ShardConfig cfg;
  cfg.key = "bldg-A";
  cfg.engines = 1;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 8;
  cfg.engine.max_wait_us = 100;
  cfg.engine.queue_cap = queue_cap;
  cfg.engine.bulk_cap = bulk_cap;
  return cfg;
}

struct LiveNode {
  LiveNode(std::string name, std::uint16_t coordinator_port,
           const fleet::ShardConfig& shard, const serve::WifiLocalizer& wifi,
           std::uint64_t heartbeat_ms = 50) {
    router.add_shard(shard, wifi);
    NodeConfig cfg;
    cfg.name = std::move(name);
    cfg.coordinator_port = coordinator_port;
    cfg.heartbeat_ms = heartbeat_ms;
    agent = std::make_unique<NodeAgent>(router, cfg);
    EXPECT_TRUE(agent->start());
  }
  fleet::Router router;
  std::unique_ptr<NodeAgent> agent;
};

/// True once `agent` sees `peer_name` alive with at least one shard — the
/// state cross-node spill routes on.
bool sees_alive_peer(const NodeAgent& agent, const std::string& peer_name) {
  for (const proto::NodeInfo& peer : agent.peers()) {
    if (peer.name == peer_name && peer.alive && !peer.shards.empty()) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Membership and heartbeat-loss death.
// ---------------------------------------------------------------------------

TEST(ClusterMembership, NodesRegisterAndSeeEachOther) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  LiveNode a("node-a", coordinator.port(), shard_config(64, 0), localizer_v1());
  LiveNode b("node-b", coordinator.port(), shard_config(64, 0), localizer_v1());
  ASSERT_TRUE(wait_until([&] {
    return sees_alive_peer(*a.agent, "node-b") && sees_alive_peer(*b.agent, "node-a");
  }));
  EXPECT_EQ(coordinator.counters().members_joined, 2u);
  // Heartbeats carry the shard's artifact identity.
  bool digest_seen = false;
  for (const proto::NodeInfo& member : coordinator.members()) {
    for (const proto::ShardState& shard : member.shards) {
      if (shard.key == "bldg-A" && shard.digest == localizer_v1().artifact_digest()) {
        digest_seen = true;
      }
    }
  }
  EXPECT_TRUE(digest_seen);
}

TEST(ClusterMembership, HeartbeatLossMarksANodeDeadAndSpillStopsTargetingIt) {
  CoordinatorConfig cc;
  cc.dead_after_ms = 300;
  Coordinator coordinator(cc);
  ASSERT_TRUE(coordinator.start());
  LiveNode a("node-a", coordinator.port(), shard_config(2, 1), localizer_v1());
  LiveNode b("node-b", coordinator.port(), shard_config(256, 0), localizer_v1());
  ASSERT_TRUE(wait_until([&] { return sees_alive_peer(*a.agent, "node-b"); }));

  // Kill B's heartbeats (and its server). A's next membership updates must
  // mark it dead, after which bulk overflow on A has nowhere to spill.
  b.agent->stop();
  ASSERT_TRUE(wait_until([&] { return !sees_alive_peer(*a.agent, "node-b"); }));
  EXPECT_GE(coordinator.counters().members_died, 1u);

  const std::uint64_t forwarded_before = a.agent->counters().spill_forwarded;
  engine::SubmitOptions bulk;
  bulk.request_class = engine::RequestClass::kBulk;
  const auto queries = test_queries(64);
  ASSERT_FALSE(queries.empty());
  std::vector<std::future<serve::Fix>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    engine::Submission sub =
        a.agent->submit("bldg-A", queries[i % queries.size()], bulk);
    if (sub.accepted()) {
      accepted.push_back(std::move(sub.result));
    } else {
      EXPECT_EQ(sub.status, engine::SubmitStatus::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "the tiny bulk lane must overflow";
  EXPECT_EQ(a.agent->counters().spill_forwarded, forwarded_before)
      << "spill must not target a dead peer";
  for (auto& result : accepted) result.wait();
}

// ---------------------------------------------------------------------------
// Cross-node bulk spill.
// ---------------------------------------------------------------------------

TEST(ClusterSpill, BulkOverflowSpillsToPeerBitIdentically) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  // A: one engine, bulk lane capped at 1 — floods overflow immediately.
  // B: deep queue, same artifact — the spill target.
  LiveNode a("node-a", coordinator.port(), shard_config(2, 1), localizer_v1());
  LiveNode b("node-b", coordinator.port(), shard_config(512, 0), localizer_v1());
  ASSERT_TRUE(wait_until([&] { return sees_alive_peer(*a.agent, "node-b"); }));

  engine::SubmitOptions bulk;
  bulk.request_class = engine::RequestClass::kBulk;
  const auto queries = test_queries(32);
  ASSERT_FALSE(queries.empty());
  std::vector<std::pair<std::size_t, std::future<serve::Fix>>> accepted;
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      engine::Submission sub = a.agent->submit("bldg-A", queries[i], bulk);
      if (sub.accepted()) accepted.emplace_back(i, std::move(sub.result));
    }
  }
  const NodeCounters counters = a.agent->counters();
  EXPECT_GT(counters.spill_forwarded, 0u) << "the flood must overflow A's bulk lane";
  // Every accepted future resolves to the same bits direct inference gives:
  // both nodes serve the same artifact, and the wire fix body is exact.
  std::size_t settled = 0;
  for (auto& [qi, result] : accepted) {
    const serve::Fix expected = localizer_v1().locate(queries[qi]);
    try {
      const serve::Fix fix = result.get();
      EXPECT_TRUE(fix == expected) << "query " << qi;
      ++settled;
    } catch (const wire::WireRejected&) {
      // A spilled submission may still shed on B; that is a clean verdict,
      // not a correctness failure.
    }
  }
  EXPECT_GT(settled, 0u);
  EXPECT_GT(b.agent->counters().spill_served, 0u);
}

TEST(ClusterSpill, DigestMismatchIsRefusedWithWrongArtifact) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  LiveNode b("node-b", coordinator.port(), shard_config(64, 0), localizer_v1());
  std::optional<net::FrameSocket> sock =
      net::FrameSocket::connect("127.0.0.1", b.agent->port(), proto::message_set());
  ASSERT_TRUE(sock.has_value());
  const auto queries = test_queries(1);
  ASSERT_FALSE(queries.empty());
  net::Frame frame;
  frame.type = proto::MsgType::kSpillSubmit;
  frame.request_id = 9;
  frame.cls = engine::RequestClass::kBulk;
  frame.body = proto::encode_spill_submit_body(
      "bldg-A", localizer_v1().artifact_digest() ^ 1, queries.front());
  ASSERT_TRUE(sock->send_frame(frame));
  std::optional<net::Frame> reply = sock->recv_frame(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, proto::MsgType::kSpillResult);
  EXPECT_EQ(reply->request_id, 9u);
  wire::Status status = wire::Status::kOk;
  serve::Fix fix;
  ASSERT_TRUE(wire::decode_fix_body(reply->body, status, fix));
  EXPECT_EQ(status, wire::Status::kWrongArtifact);
  EXPECT_EQ(b.agent->counters().spill_refused, 1u);

  // Unknown shard is its own verdict.
  frame.request_id = 10;
  frame.body = proto::encode_spill_submit_body("no-such-bldg", 1, queries.front());
  ASSERT_TRUE(sock->send_frame(frame));
  reply = sock->recv_frame(5000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(wire::decode_fix_body(reply->body, status, fix));
  EXPECT_EQ(status, wire::Status::kNoShard);
}

// ---------------------------------------------------------------------------
// Staged rollout.
// ---------------------------------------------------------------------------

TEST(ClusterRollout, StagedRolloutCanariesProbesThenCommitsTheFleet) {
  const std::string model_dir =
      (std::filesystem::path(::testing::TempDir()) / "noble_cluster_rollout")
          .string();
  std::filesystem::create_directories(model_dir);
  const std::string artifact = model_dir + "/bldg-A.noble";

  CoordinatorConfig cc;
  cc.model_dir = model_dir;
  cc.poll_ms = 0;  // manual scans: the test drives each pass deterministically
  Coordinator coordinator(cc);
  const auto probes = test_queries(4);
  ASSERT_EQ(probes.size(), 4u);
  coordinator.set_probe_queries("bldg-A", probes);
  ASSERT_TRUE(coordinator.start());

  LiveNode a("node-a", coordinator.port(), shard_config(64, 0), localizer_v1());
  LiveNode b("node-b", coordinator.port(), shard_config(64, 0), localizer_v1());
  ASSERT_TRUE(wait_until([&] {
    return sees_alive_peer(*a.agent, "node-b") && sees_alive_peer(*b.agent, "node-a");
  }));

  // Scan with no artifact on disk: nothing to roll.
  coordinator.scan_model_dir();
  EXPECT_EQ(coordinator.counters().rollouts_started, 0u);

  // Drop the retrained artifact and scan: staged rollout, synchronously.
  ASSERT_TRUE(serve::save_model(cluster_fixture().model_v2, artifact));
  const std::uint64_t v2_digest = localizer_v2().artifact_digest();
  ASSERT_NE(v2_digest, localizer_v1().artifact_digest());
  coordinator.scan_model_dir();

  const CoordinatorCounters counters = coordinator.counters();
  EXPECT_EQ(counters.rollouts_started, 1u);
  EXPECT_EQ(counters.rollouts_committed, 1u);
  EXPECT_EQ(counters.rollouts_failed, 0u);
  EXPECT_EQ(counters.probes_matched, probes.size());
  EXPECT_EQ(counters.probes_mismatched, 0u);

  // Both routers now serve v2.
  for (fleet::Router* router : {&a.router, &b.router}) {
    const auto artifacts = router->shard_artifacts();
    ASSERT_EQ(artifacts.size(), 1u);
    EXPECT_EQ(artifacts.front().digest, v2_digest);
  }
  // Exactly one node was the canary; the other was committed.
  EXPECT_EQ(a.agent->counters().rollouts_applied + b.agent->counters().rollouts_applied,
            2u);

  // The log records the stages in order: started, canary verified, commit.
  const std::vector<std::string> log = coordinator.rollout_log();
  std::size_t started = log.size(), canary = log.size(), committed = log.size();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].find("started") != std::string::npos && started == log.size())
      started = i;
    if (log[i].find("canary node-a ok") != std::string::npos) canary = i;
    if (log[i].find("committed") != std::string::npos) committed = i;
  }
  ASSERT_LT(started, log.size());
  ASSERT_LT(canary, log.size()) << "node-a sorts first, so it must be the canary";
  ASSERT_LT(committed, log.size());
  EXPECT_LT(started, canary);
  EXPECT_LT(canary, committed);

  // Wait for heartbeats to report v2, then re-scan: the fleet is converged,
  // so no new rollout starts.
  ASSERT_TRUE(wait_until([&] {
    std::size_t on_v2 = 0;
    for (const proto::NodeInfo& member : coordinator.members()) {
      for (const proto::ShardState& shard : member.shards) {
        if (shard.digest == v2_digest) ++on_v2;
      }
    }
    return on_v2 == 2;
  }));
  coordinator.scan_model_dir();
  EXPECT_EQ(coordinator.counters().rollouts_started, 1u);

  // Post-rollout serving is bit-identical to the new artifact, end to end.
  engine::SubmitOptions opts;
  for (const auto& q : probes) {
    engine::Submission sub = b.agent->submit("bldg-A", q, opts);
    ASSERT_TRUE(sub.accepted());
    EXPECT_TRUE(sub.result.get() == localizer_v2().locate(q));
  }
  std::filesystem::remove_all(model_dir);
}

TEST(ClusterRollout, WrongDigestCommandIsRefusedByTheNode) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  LiveNode a("node-a", coordinator.port(), shard_config(64, 0), localizer_v1());

  const std::string model_dir =
      (std::filesystem::path(::testing::TempDir()) / "noble_cluster_refuse")
          .string();
  std::filesystem::create_directories(model_dir);
  const std::string artifact = model_dir + "/bldg-A.noble";
  ASSERT_TRUE(serve::save_model(cluster_fixture().model_v2, artifact));

  std::optional<net::FrameSocket> sock =
      net::FrameSocket::connect("127.0.0.1", a.agent->port(), proto::message_set());
  ASSERT_TRUE(sock.has_value());
  proto::RolloutCommand cmd;
  cmd.shard = "bldg-A";
  cmd.artifact_path = artifact;
  cmd.digest = 0xBAD0BAD0ull;  // not what the artifact hashes to
  cmd.stage = proto::RolloutStage::kCanary;
  net::Frame frame;
  frame.type = proto::MsgType::kRolloutCommand;
  frame.request_id = 1;
  frame.body = proto::encode_rollout_command_body(cmd);
  ASSERT_TRUE(sock->send_frame(frame));
  std::optional<net::Frame> reply = sock->recv_frame(10'000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, proto::MsgType::kRolloutStatus);
  proto::RolloutReport report;
  ASSERT_TRUE(proto::decode_rollout_report_body(reply->body, report));
  EXPECT_EQ(report.status, static_cast<std::uint32_t>(wire::Status::kWrongArtifact));
  // The shard still serves v1.
  EXPECT_EQ(a.router.shard_artifacts().front().digest,
            localizer_v1().artifact_digest());
  EXPECT_EQ(a.agent->counters().rollouts_refused, 1u);
  EXPECT_EQ(a.agent->counters().rollouts_applied, 0u);
  std::filesystem::remove_all(model_dir);
}

// ---------------------------------------------------------------------------
// Hostile bytes against live cluster servers: every violation answers one
// kError frame, the connection closes, and the server keeps serving.
// ---------------------------------------------------------------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

std::string read_to_eof(int fd, int timeout_ms = 5000) {
  std::string received;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      ADD_FAILURE() << "server neither answered nor closed within the timeout";
      return received;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return received;
    received.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Sends hostile bytes, expects exactly one kError frame followed by EOF.
void expect_error_then_close(std::uint16_t port, const std::string& bytes) {
  const int fd = raw_connect(port);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  std::string response = read_to_eof(fd);
  ::close(fd);
  net::Frame frame;
  ASSERT_EQ(net::decode_frame(proto::message_set(), response, frame),
            net::DecodeResult::kFrame)
      << "the server must answer with a well-formed error frame before closing";
  EXPECT_EQ(frame.type.raw(), net::kErrorType);
  std::string reason;
  EXPECT_TRUE(net::decode_text_body(frame.body, reason));
  EXPECT_FALSE(reason.empty());
  EXPECT_TRUE(response.empty()) << "nothing may follow the error frame";
}

std::string frame_with_garbage_body(proto::MsgType type) {
  net::Frame frame;
  frame.type = type;
  frame.request_id = 5;
  frame.body = "\xff\xfe\xfd";
  return net::encode_frame(frame);
}

TEST(ClusterHostileBytes, NodeAnswersOneErrorFrameForEveryViolation) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  LiveNode a("node-a", coordinator.port(), shard_config(64, 0), localizer_v1());
  const std::uint16_t port = a.agent->port();

  // Framing-level: bad magic.
  {
    net::Frame frame;
    frame.type = proto::MsgType::kHeartbeat;
    std::string bytes = net::encode_frame(frame);
    bytes[4] ^= 0x40;
    bytes[5] ^= 0x40;
    expect_error_then_close(port, bytes);
  }
  // Framing-level: lying (oversized) length prefix.
  {
    const std::uint32_t huge = 0x7FFFFFFFu;
    std::string bytes(sizeof huge, '\0');
    std::memcpy(bytes.data(), &huge, sizeof huge);
    expect_error_then_close(port, bytes);
  }
  // Framing-level: unknown message type for the cluster vocabulary (a
  // gateway kLocate is not cluster traffic).
  {
    net::Frame frame;
    frame.type = net::TypeId(1u);
    expect_error_then_close(port, net::encode_frame(frame));
  }
  // Body-level: garbage bodies for both frame types a node serves.
  expect_error_then_close(port, frame_with_garbage_body(proto::MsgType::kSpillSubmit));
  expect_error_then_close(port,
                          frame_with_garbage_body(proto::MsgType::kRolloutCommand));
  // Direction-level: a node never accepts membership frames.
  {
    net::Frame frame;
    frame.type = proto::MsgType::kMembership;
    frame.body = proto::encode_membership_body({});
    expect_error_then_close(port, net::encode_frame(frame));
  }
  EXPECT_GE(a.agent->counters().protocol_errors, 3u);

  // Peer state untouched: the same server still serves a valid spill.
  std::optional<net::FrameSocket> sock =
      net::FrameSocket::connect("127.0.0.1", port, proto::message_set());
  ASSERT_TRUE(sock.has_value());
  const auto queries = test_queries(1);
  net::Frame frame;
  frame.type = proto::MsgType::kSpillSubmit;
  frame.request_id = 77;
  frame.cls = engine::RequestClass::kBulk;
  frame.body = proto::encode_spill_submit_body(
      "bldg-A", localizer_v1().artifact_digest(), queries.front());
  ASSERT_TRUE(sock->send_frame(frame));
  std::optional<net::Frame> reply = sock->recv_frame(10'000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, proto::MsgType::kSpillResult);
  wire::Status status = wire::Status::kStopped;
  serve::Fix fix;
  ASSERT_TRUE(wire::decode_fix_body(reply->body, status, fix));
  EXPECT_EQ(status, wire::Status::kOk);
  EXPECT_TRUE(fix == localizer_v1().locate(queries.front()));
}

TEST(ClusterHostileBytes, CoordinatorAnswersOneErrorFrameForEveryViolation) {
  Coordinator coordinator(CoordinatorConfig{});
  ASSERT_TRUE(coordinator.start());
  const std::uint16_t port = coordinator.port();

  // Body-level: garbage hello/heartbeat bodies.
  expect_error_then_close(port, frame_with_garbage_body(proto::MsgType::kHello));
  expect_error_then_close(port, frame_with_garbage_body(proto::MsgType::kHeartbeat));
  // A hello naming nobody is a violation too.
  {
    proto::NodeInfo anonymous;
    net::Frame frame;
    frame.type = proto::MsgType::kHello;
    frame.body = proto::encode_node_info_body(anonymous);
    expect_error_then_close(port, net::encode_frame(frame));
  }
  // Direction-level: spill traffic never lands on the coordinator.
  expect_error_then_close(port, frame_with_garbage_body(proto::MsgType::kSpillSubmit));

  // Peer state untouched: a real node still registers afterwards.
  LiveNode a("node-a", port, shard_config(64, 0), localizer_v1());
  ASSERT_TRUE(wait_until([&] { return coordinator.counters().members_joined == 1; }));
}

}  // namespace
}  // namespace noble::cluster
