// Cluster smoke: a real two-process fleet on loopback — coordinator plus an
// in-process node A in this driver, and a second node B forked+exec'd as a
// child process — exercising every cluster contract end to end:
//
//   1. membership   both nodes join over kHello/kHeartbeat; each sees the
//                   other alive with the same artifact digest
//   2. spill        a bulk flood overflows node A's one-slot bulk lane and
//                   spills cross-process to node B; every spilled fix must
//                   be bit-identical to direct inference on the artifact
//   3. rollout      a retrained artifact dropped into the watched model dir
//                   drives the staged canary -> probe -> commit sequence;
//                   the fleet must converge onto the new digest and keep
//                   serving bit-identically
//   4. death        closing the child's stdin stops its heartbeats; the
//                   coordinator must mark it dead and node A's spill must
//                   stop targeting it (overflow degrades to kQueueFull)
//
// Each phase is a gate; any violation exits non-zero (the CI smoke
// contract). Phase counters land in cluster_smoke.csv under NOBLE_BENCH_OUT.
//
// Modes:
//  - default: the driver described above.
//  - --node <coordinator_port>: the child process. Training is
//    deterministic from the seeds, so both processes hold bit-identical
//    models without shipping weights.
//
// Knobs: NOBLE_CLUSTER_* (via bench::EnvConfig — the same reader every
// bench banner uses), NOBLE_EPOCHS, and the usual NOBLE_KERNEL override.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "common/config.h"
#include "core/experiment.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "serve/artifact.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"
#include "support/env_config.h"

namespace {

using namespace std::chrono_literals;

struct Workload {
  std::vector<noble::serve::RssiVector> queries;
  noble::serve::WifiLocalizer wifi_v1;
  noble::serve::WifiLocalizer wifi_v2;
  noble::core::NobleWifiModel model_v2;  ///< the artifact the rollout ships
};

/// Deterministic from the seeds: the driver and the --node child rebuild
/// the same v1 model (and the driver alone retrains v2 for the rollout).
Workload build_workload() {
  using namespace noble;
  core::WifiExperimentConfig exp_cfg;
  exp_cfg.total_samples = 1200;
  exp_cfg.seed = 917;
  core::WifiExperiment exp = core::make_uji_experiment(exp_cfg);
  auto model_config = [](std::uint64_t seed) {
    core::NobleWifiConfig cfg;
    cfg.quantize.tau = 6.0;
    cfg.quantize.coarse_l = 24.0;
    cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 5));
    cfg.hidden_units = 24;
    cfg.seed = seed;
    return cfg;
  };
  core::NobleWifiModel v1(model_config(31));
  v1.fit(exp.split.train);
  core::NobleWifiModel v2(model_config(32));
  v2.fit(exp.split.train);

  Workload load{{},
                serve::WifiLocalizer::from_model(v1),
                serve::WifiLocalizer::from_model(v2),
                std::move(v2)};
  for (const auto& sample : exp.split.test.samples) load.queries.push_back(sample.rssi);
  return load;
}

noble::fleet::ShardConfig shard_config(std::size_t queue_cap, std::size_t bulk_cap) {
  noble::fleet::ShardConfig cfg;
  cfg.key = "bldg-A";
  cfg.engines = 1;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 8;
  cfg.engine.max_wait_us = 100;
  cfg.engine.queue_cap = queue_cap;
  cfg.engine.bulk_cap = bulk_cap;
  return cfg;
}

template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 15'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(20ms);
  }
  return pred();
}

bool sees_alive_peer(const noble::cluster::NodeAgent& agent, const std::string& name) {
  for (const auto& peer : agent.peers()) {
    if (peer.name == name && peer.alive && !peer.shards.empty()) return true;
  }
  return false;
}

/// Floods `count` bulk scans through the agent; settles every accepted
/// future against direct inference on `reference`.
struct FloodReport {
  std::uint64_t rejected = 0;    ///< kQueueFull verdicts (no spill target)
  std::uint64_t identical = 0;   ///< futures that matched `reference` exactly
  std::uint64_t mismatched = 0;  ///< futures with a *different* fix (gate: 0)
  std::uint64_t shed = 0;        ///< futures that failed with a clean verdict
};

FloodReport flood_bulk(noble::cluster::NodeAgent& agent, const Workload& load,
                       const noble::serve::WifiLocalizer& reference,
                       std::size_t count) {
  using namespace noble;
  FloodReport report;
  engine::SubmitOptions bulk;
  bulk.request_class = engine::RequestClass::kBulk;
  std::vector<std::pair<std::size_t, std::future<serve::Fix>>> accepted;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t qi = i % load.queries.size();
    engine::Submission sub = agent.submit("bldg-A", load.queries[qi], bulk);
    if (sub.accepted()) {
      accepted.emplace_back(qi, std::move(sub.result));
    } else {
      ++report.rejected;
    }
  }
  for (auto& [qi, result] : accepted) {
    try {
      const serve::Fix fix = result.get();
      if (fix == reference.locate(load.queries[qi])) {
        ++report.identical;
      } else {
        ++report.mismatched;
      }
    } catch (const std::exception&) {
      ++report.shed;  // peer-side kQueueFull etc. — a verdict, not a wrong fix
    }
  }
  return report;
}

// --- the --node child --------------------------------------------------------

int run_node_mode(std::uint16_t coordinator_port) {
  using namespace noble;
  const Workload load = build_workload();
  fleet::Router router;
  router.add_shard(shard_config(/*queue_cap=*/512, /*bulk_cap=*/0), load.wifi_v1);

  bench::EnvConfig env;
  cluster::NodeConfig defaults;
  defaults.name = "node-b";
  defaults.heartbeat_ms = 50;
  cluster::NodeConfig cfg = env.cluster_node(defaults);
  cfg.coordinator_port = coordinator_port;  // handed over by the driver
  cluster::NodeAgent agent(router, cfg);
  if (!agent.start()) {
    std::printf("node-b: cannot start the cluster server\n");
    return 1;
  }
  std::printf("node-b serving on port %u (stdin EOF stops it)\n", agent.port());
  std::fflush(stdout);
  // Park until the driver closes our stdin; heartbeats run in the agent.
  while (std::getchar() != EOF) {
  }
  agent.stop();
  return 0;
}

// --- CSV ---------------------------------------------------------------------

void csv_row(std::FILE* out, const char* phase, const char* metric,
             unsigned long long value) {
  std::fprintf(out, "%s,%s,%llu\n", phase, metric, value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noble;

  if (argc > 2 && std::strcmp(argv[1], "--node") == 0) {
    return run_node_mode(
        static_cast<std::uint16_t>(std::strtoul(argv[2], nullptr, 10)));
  }

  bench::print_banner("cluster",
                      "noble::cluster two-process smoke (spill, rollout, death)");

  const std::string model_dir = bench::artifact_path("cluster_models");
  std::filesystem::create_directories(model_dir);

  bench::EnvConfig env;
  cluster::CoordinatorConfig coord_defaults;
  coord_defaults.dead_after_ms = 500;
  coord_defaults.poll_ms = 0;  // scans driven manually: deterministic phases
  coord_defaults.model_dir = model_dir;
  cluster::CoordinatorConfig coord_cfg = env.cluster_coordinator(coord_defaults);
  cluster::NodeConfig node_defaults;
  node_defaults.name = "node-a";
  node_defaults.heartbeat_ms = 50;
  cluster::NodeConfig node_cfg = env.cluster_node(node_defaults);
  std::printf("knobs:\n%s\n", env.describe().c_str());

  std::printf("training (deterministic: the child rebuilds the same models)...\n");
  const Workload load = build_workload();
  if (load.queries.size() < 8) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }
  std::printf("workload: %zu scans, v1 digest %016llx, v2 digest %016llx\n\n",
              load.queries.size(),
              static_cast<unsigned long long>(load.wifi_v1.artifact_digest()),
              static_cast<unsigned long long>(load.wifi_v2.artifact_digest()));

  // Coordinator + in-process node A. A's one-slot bulk lane makes any real
  // flood overflow, which is exactly what the spill phase needs.
  cluster::Coordinator coordinator(coord_cfg);
  std::vector<serve::RssiVector> probes(load.queries.begin(), load.queries.begin() + 4);
  coordinator.set_probe_queries("bldg-A", probes);
  if (!coordinator.start()) {
    std::printf("FAIL: cannot start the coordinator\n");
    return 1;
  }
  fleet::Router router_a;
  router_a.add_shard(shard_config(/*queue_cap=*/4, /*bulk_cap=*/1), load.wifi_v1);
  node_cfg.coordinator_port = coordinator.port();
  cluster::NodeAgent node_a(router_a, node_cfg);
  if (!node_a.start()) {
    std::printf("FAIL: cannot start node-a\n");
    return 1;
  }

  // Node B: fork + exec this binary in --node mode, stdin on a pipe (close
  // the write end to stop it — also how the death phase kills heartbeats).
  int child_stdin[2] = {-1, -1};
  if (::pipe(child_stdin) != 0) {
    std::printf("FAIL: pipe()\n");
    return 1;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::printf("FAIL: fork()\n");
    return 1;
  }
  if (child == 0) {
    ::dup2(child_stdin[0], STDIN_FILENO);
    ::close(child_stdin[0]);
    ::close(child_stdin[1]);
    const std::string port = std::to_string(coordinator.port());
    ::execl(argv[0], argv[0], "--node", port.c_str(), nullptr);
    std::perror("execl");
    std::_Exit(127);
  }
  ::close(child_stdin[0]);

  // --- phase 1: membership ---------------------------------------------------
  const bool joined = wait_until([&] {
    return coordinator.counters().members_joined == 2 &&
           sees_alive_peer(node_a, "node-b");
  });
  std::uint64_t peer_digest = 0;
  for (const auto& peer : node_a.peers()) {
    if (peer.name == "node-b" && !peer.shards.empty()) peer_digest = peer.shards[0].digest;
  }
  const bool membership_ok = joined && peer_digest == load.wifi_v1.artifact_digest();
  std::printf("membership: both nodes joined %s (peer digest %016llx)\n",
              membership_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(peer_digest));

  // --- phase 2: cross-process bulk spill -------------------------------------
  const FloodReport spill = flood_bulk(node_a, load, load.wifi_v1, 256);
  const cluster::NodeCounters spill_counters = node_a.counters();
  const bool spill_ok = membership_ok && spill_counters.spill_forwarded > 0 &&
                        spill_counters.spill_completed > 0 &&
                        spill.mismatched == 0 && spill.identical > 0;
  std::printf("spill: forwarded %llu, completed %llu, fixes identical %llu, "
              "mismatched %llu, shed %llu, local rejects %llu %s\n",
              static_cast<unsigned long long>(spill_counters.spill_forwarded),
              static_cast<unsigned long long>(spill_counters.spill_completed),
              static_cast<unsigned long long>(spill.identical),
              static_cast<unsigned long long>(spill.mismatched),
              static_cast<unsigned long long>(spill.shed),
              static_cast<unsigned long long>(spill.rejected),
              spill_ok ? "ok" : "FAIL");

  // --- phase 3: staged rollout ----------------------------------------------
  const std::string artifact = model_dir + "/bldg-A.noble";
  bool rollout_ok = serve::save_model(load.model_v2, artifact);
  coordinator.scan_model_dir();
  const cluster::CoordinatorCounters roll = coordinator.counters();
  rollout_ok = rollout_ok && roll.rollouts_started == 1 &&
               roll.rollouts_committed == 1 && roll.rollouts_failed == 0 &&
               roll.probes_matched == probes.size() && roll.probes_mismatched == 0;
  // The log must show the stages in order: started -> canary ok -> committed.
  {
    const std::vector<std::string> log = coordinator.rollout_log();
    std::size_t started = log.size(), canary = log.size(), committed = log.size();
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].find("started") != std::string::npos && started == log.size())
        started = i;
      if (log[i].find("canary") != std::string::npos &&
          log[i].find(" ok") != std::string::npos)
        canary = i;
      if (log[i].find("committed") != std::string::npos) committed = i;
    }
    rollout_ok = rollout_ok && started < canary && canary < committed &&
                 committed < log.size();
    for (const std::string& line : log) std::printf("  rollout log: %s\n", line.c_str());
  }
  // Fleet convergence: both members heartbeat the new digest, and node A
  // serves the new model bit-identically.
  rollout_ok = rollout_ok && wait_until([&] {
                 std::size_t on_v2 = 0;
                 for (const auto& member : coordinator.members()) {
                   for (const auto& shard : member.shards) {
                     if (shard.digest == load.wifi_v2.artifact_digest()) ++on_v2;
                   }
                 }
                 return on_v2 == 2;
               });
  {
    engine::SubmitOptions opts;
    for (const auto& q : probes) {
      engine::Submission sub = node_a.submit("bldg-A", q, opts);
      rollout_ok = rollout_ok && sub.accepted() &&
                   sub.result.get() == load.wifi_v2.locate(q);
    }
  }
  std::printf("rollout: started %llu, committed %llu, probes matched %llu/%zu %s\n",
              static_cast<unsigned long long>(roll.rollouts_started),
              static_cast<unsigned long long>(roll.rollouts_committed),
              static_cast<unsigned long long>(roll.probes_matched), probes.size(),
              rollout_ok ? "ok" : "FAIL");

  // --- phase 4: heartbeat-loss death ----------------------------------------
  ::close(child_stdin[1]);  // child sees stdin EOF and exits
  int child_status = -1;
  ::waitpid(child, &child_status, 0);
  const bool child_clean =
      WIFEXITED(child_status) && WEXITSTATUS(child_status) == 0;
  bool death_ok = child_clean && wait_until([&] {
                    if (sees_alive_peer(node_a, "node-b")) return false;
                    for (const auto& member : coordinator.members()) {
                      if (member.name == "node-b") return !member.alive;
                    }
                    return false;
                  });
  const std::uint64_t forwarded_before = node_a.counters().spill_forwarded;
  const FloodReport dead_flood = flood_bulk(node_a, load, load.wifi_v2, 128);
  const std::uint64_t forwarded_after = node_a.counters().spill_forwarded;
  death_ok = death_ok && forwarded_after == forwarded_before &&
             dead_flood.rejected > 0 && dead_flood.mismatched == 0;
  std::printf("death: child exit %s, marked dead %s, post-death spill delta %llu, "
              "local rejects %llu %s\n",
              child_clean ? "clean" : "DIRTY",
              death_ok ? "yes" : "no",
              static_cast<unsigned long long>(forwarded_after - forwarded_before),
              static_cast<unsigned long long>(dead_flood.rejected),
              death_ok ? "ok" : "FAIL");

  node_a.stop();
  coordinator.stop();

  // --- artifact --------------------------------------------------------------
  const std::string csv = bench::artifact_path("cluster_smoke.csv");
  if (std::FILE* out = std::fopen(csv.c_str(), "w")) {
    std::fprintf(out, "phase,metric,value\n");
    csv_row(out, "membership", "members_joined", coordinator.counters().members_joined);
    csv_row(out, "spill", "forwarded", spill_counters.spill_forwarded);
    csv_row(out, "spill", "completed", spill_counters.spill_completed);
    csv_row(out, "spill", "identical", spill.identical);
    csv_row(out, "spill", "mismatched", spill.mismatched);
    csv_row(out, "rollout", "committed", roll.rollouts_committed);
    csv_row(out, "rollout", "probes_matched", roll.probes_matched);
    csv_row(out, "death", "members_died", coordinator.counters().members_died);
    csv_row(out, "death", "post_death_spill", forwarded_after - forwarded_before);
    std::fclose(out);
    std::printf("\nwrote %s\n", csv.c_str());
  }
  std::filesystem::remove_all(model_dir);

  std::printf("\ngates: membership %s, spill %s, rollout %s, death %s\n",
              membership_ok ? "ok" : "FAIL", spill_ok ? "ok" : "FAIL",
              rollout_ok ? "ok" : "FAIL", death_ok ? "ok" : "FAIL");
  if (!(membership_ok && spill_ok && rollout_ok && death_ok)) {
    std::printf("FAIL: cluster smoke gates violated\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
