#include "support/env_config.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "engine/backend.h"
#include "kernels/kernels.h"
#include "support/bench_util.h"

namespace noble::bench {

void EnvConfig::record(const char* name, std::string value, bool from_env) {
  for (EnvKnob& knob : knobs_) {
    if (knob.name == name) {
      knob.value = std::move(value);
      knob.from_env = from_env;
      return;
    }
  }
  knobs_.push_back(EnvKnob{name, std::move(value), from_env});
}

long EnvConfig::integer(const char* name, long fallback) {
  long value = fallback;
  bool from_env = false;
  if (const char* raw = std::getenv(name); raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end != raw && *end == '\0') {
      value = parsed;
      from_env = true;
    }
  }
  record(name, std::to_string(value), from_env);
  return value;
}

double EnvConfig::real(const char* name, double fallback) {
  double value = fallback;
  bool from_env = false;
  if (const char* raw = std::getenv(name); raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(raw, &end);
    if (end != raw && *end == '\0') {
      value = parsed;
      from_env = true;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  record(name, buf, from_env);
  return value;
}

bool EnvConfig::flag(const char* name, bool fallback) {
  const bool value = integer(name, fallback ? 1 : 0) != 0;
  // integer() already recorded the numeric form; normalize to 0/1.
  record(name, value ? "1" : "0", knobs_.back().from_env);
  return value;
}

std::string EnvConfig::text(const char* name, std::string fallback) {
  std::string value = std::move(fallback);
  bool from_env = false;
  if (const char* raw = std::getenv(name); raw != nullptr && *raw != '\0') {
    value = raw;
    from_env = true;
  }
  record(name, value, from_env);
  return value;
}

std::string EnvConfig::describe() const {
  std::string out;
  for (const EnvKnob& knob : knobs_) {
    out += "  " + knob.name + "=" + knob.value;
    if (!knob.from_env) out += " (default)";
    out += "\n";
  }
  return out;
}

engine::EngineConfig EnvConfig::engine(engine::EngineConfig defaults) {
  // NOBLE_KERNEL=scalar|avx2|auto selects the kernel ISA for the whole
  // process (every backend serves through noble::kernels); re-applied here
  // so benches pick the knob up no matter when they build their config.
  kernels::apply_env_override();
  text("NOBLE_KERNEL", kernels::isa_name(kernels::active_isa()));
  engine::EngineConfig cfg = defaults;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t worker_default =
      defaults.workers == 0 ? std::clamp<std::size_t>(hw, 2, 8) : defaults.workers;
  cfg.workers = static_cast<std::size_t>(
      integer("NOBLE_ENGINE_WORKERS", static_cast<long>(worker_default)));
  cfg.max_batch = static_cast<std::size_t>(
      integer("NOBLE_ENGINE_MAX_BATCH", static_cast<long>(defaults.max_batch)));
  cfg.max_wait_us = static_cast<std::uint64_t>(
      integer("NOBLE_ENGINE_MAX_WAIT_US", static_cast<long>(defaults.max_wait_us)));
  cfg.queue_cap = static_cast<std::size_t>(
      integer("NOBLE_ENGINE_QUEUE_CAP", static_cast<long>(defaults.queue_cap)));
  cfg.adaptive_wait = flag("NOBLE_ENGINE_ADAPTIVE", defaults.adaptive_wait);
  cfg.backend = text("NOBLE_ENGINE_BACKEND",
                     engine::backend_kind_name(defaults.backend)) == "quantized"
                    ? engine::BackendKind::kQuantized
                    : engine::BackendKind::kDense;
  cfg.cache_capacity = static_cast<std::size_t>(
      integer("NOBLE_ENGINE_CACHE_CAP", static_cast<long>(defaults.cache_capacity)));
  cfg.cache_key_step_db =
      real("NOBLE_ENGINE_CACHE_STEP_DB", defaults.cache_key_step_db);
  // "interactive:bulk" queue-slot caps; malformed input keeps the defaults.
  const std::string caps = text("NOBLE_ENGINE_CLASS_CAPS", "");
  if (const std::size_t colon = caps.find(':'); colon != std::string::npos) {
    char* end = nullptr;
    const unsigned long interactive = std::strtoul(caps.c_str(), &end, 10);
    if (end == caps.c_str() + colon) {
      const char* bulk_begin = caps.c_str() + colon + 1;
      const unsigned long bulk = std::strtoul(bulk_begin, &end, 10);
      if (end != bulk_begin && *end == '\0') {
        cfg.interactive_cap = static_cast<std::size_t>(interactive);
        cfg.bulk_cap = static_cast<std::size_t>(bulk);
      }
    }
  }
  cfg.default_deadline_us = static_cast<std::uint64_t>(integer(
      "NOBLE_ENGINE_DEADLINE_US", static_cast<long>(defaults.default_deadline_us)));
  cfg.edf_bulk = flag("NOBLE_ENGINE_EDF", defaults.edf_bulk);
  cfg.coalesce_sessions = flag("NOBLE_ENGINE_COALESCE", defaults.coalesce_sessions);
  return cfg;
}

gateway::GatewayConfig EnvConfig::gateway(gateway::GatewayConfig defaults) {
  gateway::GatewayConfig cfg = std::move(defaults);
  cfg.port =
      static_cast<std::uint16_t>(integer("NOBLE_GATEWAY_PORT", cfg.port));
  cfg.threads = static_cast<std::size_t>(
      integer("NOBLE_GATEWAY_THREADS", static_cast<long>(cfg.threads)));
  return cfg;
}

OpenLoopConfig EnvConfig::open_loop(OpenLoopConfig defaults) {
  OpenLoopConfig cfg = defaults;
  cfg.offered_qps = real("NOBLE_LOAD_QPS", defaults.offered_qps);
  cfg.seconds = real("NOBLE_LOAD_SECONDS", defaults.seconds);
  return cfg;
}

cluster::NodeConfig EnvConfig::cluster_node(cluster::NodeConfig defaults) {
  cluster::NodeConfig cfg = std::move(defaults);
  cfg.name = text("NOBLE_CLUSTER_NODE", cfg.name);
  cfg.server.port = static_cast<std::uint16_t>(
      integer("NOBLE_CLUSTER_SERVE_PORT", cfg.server.port));
  cfg.coordinator_host = text("NOBLE_CLUSTER_COORD_HOST", cfg.coordinator_host);
  cfg.coordinator_port = static_cast<std::uint16_t>(
      integer("NOBLE_CLUSTER_COORD_PORT", cfg.coordinator_port));
  cfg.heartbeat_ms = static_cast<std::uint64_t>(
      integer("NOBLE_CLUSTER_HEARTBEAT_MS", static_cast<long>(cfg.heartbeat_ms)));
  cfg.spill_enabled = flag("NOBLE_CLUSTER_SPILL", cfg.spill_enabled);
  return cfg;
}

cluster::CoordinatorConfig EnvConfig::cluster_coordinator(
    cluster::CoordinatorConfig defaults) {
  cluster::CoordinatorConfig cfg = std::move(defaults);
  cfg.server.port =
      static_cast<std::uint16_t>(integer("NOBLE_CLUSTER_PORT", cfg.server.port));
  cfg.dead_after_ms = static_cast<std::uint64_t>(
      integer("NOBLE_CLUSTER_DEAD_AFTER_MS", static_cast<long>(cfg.dead_after_ms)));
  cfg.model_dir = text("NOBLE_CLUSTER_MODEL_DIR", cfg.model_dir);
  cfg.poll_ms = static_cast<std::uint64_t>(
      integer("NOBLE_CLUSTER_POLL_MS", static_cast<long>(cfg.poll_ms)));
  return cfg;
}

}  // namespace noble::bench
