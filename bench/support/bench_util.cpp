#include "support/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/config.h"

namespace noble::bench {

core::WifiExperimentConfig uji_config() {
  core::WifiExperimentConfig cfg;
  cfg.total_samples = 9000;  // scaled by NOBLE_SCALE inside the builder
  cfg.radio.aps_per_floor = 8;
  cfg.radio.shadowing_sigma_db = 6.5;
  cfg.radio.measurement_noise_db = 3.5;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::WifiExperimentConfig ipin_config() {
  core::WifiExperimentConfig cfg = uji_config();
  cfg.total_samples = 3000;
  cfg.radio.aps_per_floor = 12;
  return cfg;
}

core::ImuExperimentConfig imu_config() {
  core::ImuExperimentConfig cfg;
  cfg.num_paths = 6857;  // paper's path count; scaled by NOBLE_SCALE
  cfg.readings_per_segment = 16;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::NobleWifiConfig noble_wifi_config() {
  core::NobleWifiConfig cfg;
  cfg.quantize.tau = env_double("NOBLE_TAU", 2.0);
  cfg.quantize.coarse_l = cfg.quantize.tau * 5.0;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::RegressionConfig regression_config() {
  core::RegressionConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::NobleImuConfig noble_imu_config() {
  core::NobleImuConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_IMU_EPOCHS", 60));
  return cfg;
}

engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults) {
  engine::EngineConfig cfg = defaults;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t worker_default =
      defaults.workers == 0 ? std::clamp<std::size_t>(hw, 2, 8) : defaults.workers;
  cfg.workers = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_WORKERS", static_cast<long>(worker_default)));
  cfg.max_batch = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_MAX_BATCH", static_cast<long>(defaults.max_batch)));
  cfg.max_wait_us = static_cast<std::uint64_t>(
      env_int("NOBLE_ENGINE_MAX_WAIT_US", static_cast<long>(defaults.max_wait_us)));
  cfg.queue_cap = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_QUEUE_CAP", static_cast<long>(defaults.queue_cap)));
  cfg.adaptive_wait = env_int("NOBLE_ENGINE_ADAPTIVE", defaults.adaptive_wait ? 1 : 0) != 0;
  cfg.backend = env_string("NOBLE_ENGINE_BACKEND",
                           engine::backend_kind_name(defaults.backend)) == "quantized"
                    ? engine::BackendKind::kQuantized
                    : engine::BackendKind::kDense;
  cfg.cache_capacity = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_CACHE_CAP", static_cast<long>(defaults.cache_capacity)));
  cfg.cache_key_step_db =
      env_double("NOBLE_ENGINE_CACHE_STEP_DB", defaults.cache_key_step_db);
  return cfg;
}

std::string describe_engine_config(const engine::EngineConfig& cfg) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%zu workers, max_batch %zu, max_wait %llu us%s, queue_cap %zu, "
                "backend %s, cache %zu",
                cfg.workers, cfg.max_batch,
                static_cast<unsigned long long>(cfg.max_wait_us),
                cfg.adaptive_wait ? " (adaptive)" : "", cfg.queue_cap,
                engine::backend_kind_name(cfg.backend), cfg.cache_capacity);
  return buffer;
}

void print_banner(const std::string& bench_name, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("NObLe reproduction bench: %s\n", bench_name.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("NOBLE_SCALE=%.2f (synthetic substrate; see DESIGN.md for the\n",
              global_scale());
  std::printf("substitution table — shapes, not absolute numbers, are the target)\n");
  std::printf("==============================================================\n");
}

void print_wifi_report(const std::string& model, const core::WifiReport& report) {
  std::printf("%-28s building=%6.2f%% floor=%6.2f%% class=%6.2f%% | "
              "mean=%6.2f m median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), 100.0 * report.building_accuracy,
              100.0 * report.floor_accuracy, 100.0 * report.class_accuracy,
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median) {
  std::printf("%-28s paper(mean/med)=%7s/%-7s measured: mean=%6.2f m "
              "median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), paper_mean.c_str(), paper_median.c_str(),
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

Histogram latency_histogram() { return Histogram::latency_us(); }

void print_latency_row(const std::string& mode, std::size_t batch,
                       const Histogram& latencies_us) {
  std::printf("  %-14s batch %4zu   p50 %8.1f us   p95 %8.1f us   "
              "p99 %8.1f us   (%llu samples)\n",
              mode.c_str(), batch, latencies_us.percentile(50.0),
              latencies_us.percentile(95.0), latencies_us.percentile(99.0),
              static_cast<unsigned long long>(latencies_us.count()));
}

std::string artifact_path(const std::string& filename) {
  return env_string("NOBLE_BENCH_OUT", ".") + "/" + filename;
}

}  // namespace noble::bench
