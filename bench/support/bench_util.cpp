#include "support/bench_util.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <utility>

#include "common/config.h"
#include "kernels/kernels.h"

namespace noble::bench {

core::WifiExperimentConfig uji_config() {
  core::WifiExperimentConfig cfg;
  cfg.total_samples = 9000;  // scaled by NOBLE_SCALE inside the builder
  cfg.radio.aps_per_floor = 8;
  cfg.radio.shadowing_sigma_db = 6.5;
  cfg.radio.measurement_noise_db = 3.5;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::WifiExperimentConfig ipin_config() {
  core::WifiExperimentConfig cfg = uji_config();
  cfg.total_samples = 3000;
  cfg.radio.aps_per_floor = 12;
  return cfg;
}

core::ImuExperimentConfig imu_config() {
  core::ImuExperimentConfig cfg;
  cfg.num_paths = 6857;  // paper's path count; scaled by NOBLE_SCALE
  cfg.readings_per_segment = 16;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::NobleWifiConfig noble_wifi_config() {
  core::NobleWifiConfig cfg;
  cfg.quantize.tau = env_double("NOBLE_TAU", 2.0);
  cfg.quantize.coarse_l = cfg.quantize.tau * 5.0;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::RegressionConfig regression_config() {
  core::RegressionConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::NobleImuConfig noble_imu_config() {
  core::NobleImuConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_IMU_EPOCHS", 60));
  return cfg;
}

engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults) {
  // NOBLE_KERNEL=scalar|avx2|auto selects the kernel ISA for the whole
  // process (every backend serves through noble::kernels); re-applied here so
  // benches pick the knob up no matter when they build their config.
  kernels::apply_env_override();
  engine::EngineConfig cfg = defaults;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t worker_default =
      defaults.workers == 0 ? std::clamp<std::size_t>(hw, 2, 8) : defaults.workers;
  cfg.workers = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_WORKERS", static_cast<long>(worker_default)));
  cfg.max_batch = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_MAX_BATCH", static_cast<long>(defaults.max_batch)));
  cfg.max_wait_us = static_cast<std::uint64_t>(
      env_int("NOBLE_ENGINE_MAX_WAIT_US", static_cast<long>(defaults.max_wait_us)));
  cfg.queue_cap = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_QUEUE_CAP", static_cast<long>(defaults.queue_cap)));
  cfg.adaptive_wait = env_int("NOBLE_ENGINE_ADAPTIVE", defaults.adaptive_wait ? 1 : 0) != 0;
  cfg.backend = env_string("NOBLE_ENGINE_BACKEND",
                           engine::backend_kind_name(defaults.backend)) == "quantized"
                    ? engine::BackendKind::kQuantized
                    : engine::BackendKind::kDense;
  cfg.cache_capacity = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_CACHE_CAP", static_cast<long>(defaults.cache_capacity)));
  cfg.cache_key_step_db =
      env_double("NOBLE_ENGINE_CACHE_STEP_DB", defaults.cache_key_step_db);
  // "interactive:bulk" queue-slot caps; malformed input keeps the defaults.
  const std::string caps = env_string("NOBLE_ENGINE_CLASS_CAPS", "");
  if (const std::size_t colon = caps.find(':'); colon != std::string::npos) {
    char* end = nullptr;
    const unsigned long interactive = std::strtoul(caps.c_str(), &end, 10);
    if (end == caps.c_str() + colon) {
      const char* bulk_begin = caps.c_str() + colon + 1;
      const unsigned long bulk = std::strtoul(bulk_begin, &end, 10);
      if (end != bulk_begin && *end == '\0') {
        cfg.interactive_cap = static_cast<std::size_t>(interactive);
        cfg.bulk_cap = static_cast<std::size_t>(bulk);
      }
    }
  }
  cfg.default_deadline_us = static_cast<std::uint64_t>(env_int(
      "NOBLE_ENGINE_DEADLINE_US", static_cast<long>(defaults.default_deadline_us)));
  return cfg;
}

std::string describe_engine_config(const engine::EngineConfig& cfg) {
  char buffer[384];
  std::snprintf(buffer, sizeof(buffer),
                "%zu workers, max_batch %zu, max_wait %llu us%s, queue_cap %zu "
                "(class caps %zu:%zu), deadline %llu us, backend %s, cache %zu, "
                "kernel %s",
                cfg.workers, cfg.max_batch,
                static_cast<unsigned long long>(cfg.max_wait_us),
                cfg.adaptive_wait ? " (adaptive)" : "", cfg.queue_cap,
                cfg.interactive_cap, cfg.bulk_cap,
                static_cast<unsigned long long>(cfg.default_deadline_us),
                engine::backend_kind_name(cfg.backend), cfg.cache_capacity,
                kernels::isa_name(kernels::active_isa()));
  return buffer;
}

void print_banner(const std::string& bench_name, const std::string& paper_ref) {
  kernels::apply_env_override();  // honor NOBLE_KERNEL before reporting it
  std::printf("==============================================================\n");
  std::printf("NObLe reproduction bench: %s\n", bench_name.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Kernel ISA: %s (avx2 %s; override with NOBLE_KERNEL=scalar|avx2|auto)\n",
              kernels::isa_name(kernels::active_isa()),
              kernels::avx2_supported() ? "available" : "unavailable");
  std::printf("NOBLE_SCALE=%.2f (synthetic substrate; see DESIGN.md for the\n",
              global_scale());
  std::printf("substitution table — shapes, not absolute numbers, are the target)\n");
  std::printf("==============================================================\n");
}

void print_wifi_report(const std::string& model, const core::WifiReport& report) {
  std::printf("%-28s building=%6.2f%% floor=%6.2f%% class=%6.2f%% | "
              "mean=%6.2f m median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), 100.0 * report.building_accuracy,
              100.0 * report.floor_accuracy, 100.0 * report.class_accuracy,
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median) {
  std::printf("%-28s paper(mean/med)=%7s/%-7s measured: mean=%6.2f m "
              "median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), paper_mean.c_str(), paper_median.c_str(),
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

Histogram latency_histogram() { return Histogram::latency_us(); }

void print_latency_row(const std::string& mode, std::size_t batch,
                       const Histogram& latencies_us) {
  std::printf("  %-14s batch %4zu   p50 %8.1f us   p95 %8.1f us   "
              "p99 %8.1f us   (%llu samples)\n",
              mode.c_str(), batch, latencies_us.percentile(50.0),
              latencies_us.percentile(95.0), latencies_us.percentile(99.0),
              static_cast<unsigned long long>(latencies_us.count()));
}

namespace {

using LoadClock = std::chrono::steady_clock;

double load_us_since(const LoadClock::time_point& t0) {
  return std::chrono::duration<double, std::micro>(LoadClock::now() - t0).count();
}

void merge_class_report(ClassLoadReport& into, const ClassLoadReport& from) {
  into.attempted += from.attempted;
  into.accepted += from.accepted;
  into.rejected += from.rejected;
  into.expired += from.expired;
  into.completed += from.completed;
  into.latency_us.merge(from.latency_us);
}

/// Resolves one accepted future into the report (fix, or DeadlineExpired).
void settle(ClassLoadReport& report, const LoadClock::time_point& submitted_at,
            std::future<noble::serve::Fix>& result) {
  try {
    (void)result.get();
    ++report.completed;
    report.latency_us.record(load_us_since(submitted_at));
  } catch (const engine::DeadlineExpired&) {
    ++report.expired;
  }
}

}  // namespace

MixedLoadReport run_mixed_load(fleet::Router& router,
                               const std::vector<std::string>& shard_keys,
                               const std::vector<serve::RssiVector>& queries,
                               const MixedLoadConfig& cfg) {
  MixedLoadReport report;
  if (shard_keys.empty() || queries.empty()) return report;
  std::vector<ClassLoadReport> interactive(cfg.interactive_clients);
  std::vector<ClassLoadReport> bulk(cfg.bulk_clients);
  std::vector<std::thread> clients;
  clients.reserve(cfg.interactive_clients + cfg.bulk_clients);
  std::atomic<std::size_t> interactive_live{cfg.interactive_clients};
  const auto t0 = LoadClock::now();

  for (std::size_t c = 0; c < cfg.interactive_clients; ++c) {
    clients.emplace_back([&, c] {
      ClassLoadReport& mine = interactive[c];
      std::vector<std::pair<LoadClock::time_point, std::future<noble::serve::Fix>>>
          inflight;
      inflight.reserve(cfg.interactive_inflight_window);
      const auto flush = [&] {
        for (auto& [at, result] : inflight) settle(mine, at, result);
        inflight.clear();
      };
      for (std::size_t r = 0; r < cfg.interactive_requests; ++r) {
        const auto& q = queries[(c * 7919 + r) % queries.size()];
        const std::string& key = shard_keys[(c + r) % shard_keys.size()];
        ++mine.attempted;
        const auto submitted_at = LoadClock::now();
        engine::Submission s = router.submit(key, q);
        while (cfg.retry_interactive_full &&
               s.status == engine::SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = router.submit(key, q);
        }
        if (s.accepted()) {
          ++mine.accepted;
          inflight.emplace_back(submitted_at, std::move(s.result));
          if (inflight.size() >= cfg.interactive_inflight_window) flush();
        } else if (s.status == engine::SubmitStatus::kExpired) {
          ++mine.expired;
        } else {
          ++mine.rejected;
        }
        if (cfg.interactive_pace_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(cfg.interactive_pace_us));
        }
      }
      flush();
      interactive_live.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  for (std::size_t c = 0; c < cfg.bulk_clients; ++c) {
    clients.emplace_back([&, c] {
      ClassLoadReport& mine = bulk[c];
      std::vector<std::pair<LoadClock::time_point, std::future<noble::serve::Fix>>>
          inflight;
      inflight.reserve(cfg.bulk_inflight_window);
      const auto flush = [&] {
        for (auto& [at, result] : inflight) settle(mine, at, result);
        inflight.clear();
      };
      for (std::size_t r = 0;
           r < cfg.bulk_requests ||
           (cfg.bulk_sustain &&
            interactive_live.load(std::memory_order_relaxed) > 0);
           ++r) {
        const auto& q = queries[((c + 1) * 104729 + r) % queries.size()];
        const std::string& key = shard_keys[(c + r) % shard_keys.size()];
        engine::SubmitOptions options;  // baseline: default class, no deadline
        if (cfg.classed) {
          options = engine::SubmitOptions::bulk();
          if (cfg.bulk_deadline_us > 0) options.expires_in_us(cfg.bulk_deadline_us);
        }
        ++mine.attempted;
        const auto submitted_at = LoadClock::now();
        engine::Submission s = router.submit(key, q, options);
        if (s.accepted()) {
          ++mine.accepted;
          inflight.emplace_back(submitted_at, std::move(s.result));
          if (inflight.size() >= cfg.bulk_inflight_window) flush();
        } else if (s.status == engine::SubmitStatus::kExpired) {
          ++mine.expired;
        } else {
          // Shed, not retried: bulk under overload is load the fleet chose
          // to drop, and the counter is the measurement.
          ++mine.rejected;
        }
      }
      flush();
    });
  }

  for (std::thread& client : clients) client.join();
  report.wall_seconds =
      std::chrono::duration<double>(LoadClock::now() - t0).count();
  for (const ClassLoadReport& r : interactive) merge_class_report(report.interactive, r);
  for (const ClassLoadReport& r : bulk) merge_class_report(report.bulk, r);
  if (report.wall_seconds > 0.0) {
    report.qps = static_cast<double>(report.interactive.completed +
                                     report.bulk.completed) /
                 report.wall_seconds;
  }
  return report;
}

void print_class_load_row(const std::string& label, const ClassLoadReport& report) {
  const LatencySummary latency = summarize_latency_us(report.latency_us);
  std::printf("  %-14s %8llu attempted  %8llu ok  %7llu shed  %7llu expired   "
              "p50 %8.1f us   p95 %8.1f us   p99 %8.1f us\n",
              label.c_str(), static_cast<unsigned long long>(report.attempted),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.expired),
              latency.p50_us, latency.p95_us, latency.p99_us);
}

std::string artifact_path(const std::string& filename) {
  return env_string("NOBLE_BENCH_OUT", ".") + "/" + filename;
}

}  // namespace noble::bench
