#include "support/bench_util.h"

#include "support/env_config.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <thread>
#include <utility>

#include "common/config.h"
#include "common/rng.h"
#include "gateway/client.h"
#include "kernels/kernels.h"
#include "obs/trace.h"

namespace noble::bench {

core::WifiExperimentConfig uji_config() {
  core::WifiExperimentConfig cfg;
  cfg.total_samples = 9000;  // scaled by NOBLE_SCALE inside the builder
  cfg.radio.aps_per_floor = 8;
  cfg.radio.shadowing_sigma_db = 6.5;
  cfg.radio.measurement_noise_db = 3.5;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::WifiExperimentConfig ipin_config() {
  core::WifiExperimentConfig cfg = uji_config();
  cfg.total_samples = 3000;
  cfg.radio.aps_per_floor = 12;
  return cfg;
}

core::ImuExperimentConfig imu_config() {
  core::ImuExperimentConfig cfg;
  cfg.num_paths = 6857;  // paper's path count; scaled by NOBLE_SCALE
  cfg.readings_per_segment = 16;
  cfg.seed = static_cast<std::uint64_t>(env_int("NOBLE_SEED", 2021));
  return cfg;
}

core::NobleWifiConfig noble_wifi_config() {
  core::NobleWifiConfig cfg;
  cfg.quantize.tau = env_double("NOBLE_TAU", 2.0);
  cfg.quantize.coarse_l = cfg.quantize.tau * 5.0;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::RegressionConfig regression_config() {
  core::RegressionConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 30));
  return cfg;
}

core::NobleImuConfig noble_imu_config() {
  core::NobleImuConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_int("NOBLE_IMU_EPOCHS", 60));
  return cfg;
}

engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults) {
  EnvConfig env;
  return env.engine(std::move(defaults));
}

std::string describe_engine_config(const engine::EngineConfig& cfg) {
  char buffer[384];
  std::snprintf(buffer, sizeof(buffer),
                "%zu workers, max_batch %zu, max_wait %llu us%s, queue_cap %zu "
                "(class caps %zu:%zu), bulk %s, sessions %s, deadline %llu us, "
                "backend %s, cache %zu, kernel %s",
                cfg.workers, cfg.max_batch,
                static_cast<unsigned long long>(cfg.max_wait_us),
                cfg.adaptive_wait ? " (adaptive)" : "", cfg.queue_cap,
                cfg.interactive_cap, cfg.bulk_cap,
                cfg.edf_bulk ? "edf" : "fifo",
                cfg.coalesce_sessions ? "coalesced" : "serialized",
                static_cast<unsigned long long>(cfg.default_deadline_us),
                engine::backend_kind_name(cfg.backend), cfg.cache_capacity,
                kernels::isa_name(kernels::active_isa()));
  return buffer;
}

void print_banner(const std::string& bench_name, const std::string& paper_ref) {
  kernels::apply_env_override();  // honor NOBLE_KERNEL before reporting it
  std::printf("==============================================================\n");
  std::printf("NObLe reproduction bench: %s\n", bench_name.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Kernel ISA: %s (avx2 %s; override with NOBLE_KERNEL=scalar|avx2|auto)\n",
              kernels::isa_name(kernels::active_isa()),
              kernels::avx2_supported() ? "available" : "unavailable");
  std::printf("NOBLE_SCALE=%.2f (synthetic substrate; see DESIGN.md for the\n",
              global_scale());
  std::printf("substitution table — shapes, not absolute numbers, are the target)\n");
  std::printf("==============================================================\n");
}

void print_wifi_report(const std::string& model, const core::WifiReport& report) {
  std::printf("%-28s building=%6.2f%% floor=%6.2f%% class=%6.2f%% | "
              "mean=%6.2f m median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), 100.0 * report.building_accuracy,
              100.0 * report.floor_accuracy, 100.0 * report.class_accuracy,
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median) {
  std::printf("%-28s paper(mean/med)=%7s/%-7s measured: mean=%6.2f m "
              "median=%6.2f m p90=%6.2f m | on-map=%5.1f%%\n",
              model.c_str(), paper_mean.c_str(), paper_median.c_str(),
              report.errors.mean, report.errors.median, report.errors.p90,
              100.0 * report.structure_score);
}

Histogram latency_histogram() { return Histogram::latency_us(); }

void print_latency_row(const std::string& mode, std::size_t batch,
                       const Histogram& latencies_us) {
  std::printf("  %-14s batch %4zu   p50 %8.1f us   p95 %8.1f us   "
              "p99 %8.1f us   (%llu samples)\n",
              mode.c_str(), batch, latencies_us.percentile(50.0),
              latencies_us.percentile(95.0), latencies_us.percentile(99.0),
              static_cast<unsigned long long>(latencies_us.count()));
}

namespace {

using LoadClock = std::chrono::steady_clock;

double load_us_since(const LoadClock::time_point& t0) {
  return std::chrono::duration<double, std::micro>(LoadClock::now() - t0).count();
}

void merge_class_report(ClassLoadReport& into, const ClassLoadReport& from) {
  into.attempted += from.attempted;
  into.accepted += from.accepted;
  into.rejected += from.rejected;
  into.expired += from.expired;
  into.completed += from.completed;
  into.latency_us.merge(from.latency_us);
}

/// Resolves one accepted future into the report: a fix, a deadline lapse, or
/// (socket targets only — their submits are optimistic) a late rejection
/// that arrived as a response frame instead of an admission verdict.
void settle(ClassLoadReport& report, const LoadClock::time_point& submitted_at,
            std::future<noble::serve::Fix>& result) {
  try {
    (void)result.get();
    ++report.completed;
    report.latency_us.record(load_us_since(submitted_at));
  } catch (const engine::DeadlineExpired&) {
    ++report.expired;
  } catch (const WireRejected& rejected) {
    if (rejected.status == gateway::wire::Status::kDeadlineExpired ||
        rejected.status == gateway::wire::Status::kExpired) {
      ++report.expired;
    } else {
      ++report.rejected;
    }
  }
}

}  // namespace

MixedLoadReport run_mixed_load(LoadTarget& target,
                               const std::vector<std::string>& shard_keys,
                               const std::vector<serve::RssiVector>& queries,
                               const MixedLoadConfig& cfg) {
  MixedLoadReport report;
  if (shard_keys.empty() || queries.empty()) return report;
  std::vector<ClassLoadReport> interactive(cfg.interactive_clients);
  std::vector<ClassLoadReport> bulk(cfg.bulk_clients);
  std::vector<std::thread> clients;
  clients.reserve(cfg.interactive_clients + cfg.bulk_clients);
  std::atomic<std::size_t> interactive_live{cfg.interactive_clients};
  const auto t0 = LoadClock::now();

  for (std::size_t c = 0; c < cfg.interactive_clients; ++c) {
    clients.emplace_back([&, c] {
      ClassLoadReport& mine = interactive[c];
      std::vector<std::pair<LoadClock::time_point, std::future<noble::serve::Fix>>>
          inflight;
      inflight.reserve(cfg.interactive_inflight_window);
      const auto flush = [&] {
        for (auto& [at, result] : inflight) settle(mine, at, result);
        inflight.clear();
      };
      for (std::size_t r = 0; r < cfg.interactive_requests; ++r) {
        const auto& q = queries[(c * 7919 + r) % queries.size()];
        const std::string& key = shard_keys[(c + r) % shard_keys.size()];
        ++mine.attempted;
        const auto submitted_at = LoadClock::now();
        engine::Submission s = target.submit(key, q, {});
        while (cfg.retry_interactive_full &&
               s.status == engine::SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = target.submit(key, q, {});
        }
        if (s.accepted()) {
          ++mine.accepted;
          inflight.emplace_back(submitted_at, std::move(s.result));
          if (inflight.size() >= cfg.interactive_inflight_window) flush();
        } else if (s.status == engine::SubmitStatus::kExpired) {
          ++mine.expired;
        } else {
          ++mine.rejected;
        }
        if (cfg.interactive_pace_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(cfg.interactive_pace_us));
        }
      }
      flush();
      interactive_live.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  for (std::size_t c = 0; c < cfg.bulk_clients; ++c) {
    clients.emplace_back([&, c] {
      ClassLoadReport& mine = bulk[c];
      std::vector<std::pair<LoadClock::time_point, std::future<noble::serve::Fix>>>
          inflight;
      inflight.reserve(cfg.bulk_inflight_window);
      const auto flush = [&] {
        for (auto& [at, result] : inflight) settle(mine, at, result);
        inflight.clear();
      };
      for (std::size_t r = 0;
           r < cfg.bulk_requests ||
           (cfg.bulk_sustain &&
            interactive_live.load(std::memory_order_relaxed) > 0);
           ++r) {
        const auto& q = queries[((c + 1) * 104729 + r) % queries.size()];
        const std::string& key = shard_keys[(c + r) % shard_keys.size()];
        engine::SubmitOptions options;  // baseline: default class, no deadline
        if (cfg.classed) {
          options = engine::SubmitOptions::bulk();
          if (cfg.bulk_deadline_us > 0) options.expires_in_us(cfg.bulk_deadline_us);
        }
        ++mine.attempted;
        const auto submitted_at = LoadClock::now();
        engine::Submission s = target.submit(key, q, options);
        if (s.accepted()) {
          ++mine.accepted;
          inflight.emplace_back(submitted_at, std::move(s.result));
          if (inflight.size() >= cfg.bulk_inflight_window) flush();
        } else if (s.status == engine::SubmitStatus::kExpired) {
          ++mine.expired;
        } else {
          // Shed, not retried: bulk under overload is load the fleet chose
          // to drop, and the counter is the measurement.
          ++mine.rejected;
        }
      }
      flush();
    });
  }

  for (std::thread& client : clients) client.join();
  report.wall_seconds =
      std::chrono::duration<double>(LoadClock::now() - t0).count();
  for (const ClassLoadReport& r : interactive) merge_class_report(report.interactive, r);
  for (const ClassLoadReport& r : bulk) merge_class_report(report.bulk, r);
  if (report.wall_seconds > 0.0) {
    report.qps = static_cast<double>(report.interactive.completed +
                                     report.bulk.completed) /
                 report.wall_seconds;
  }
  return report;
}

// --- load targets ------------------------------------------------------------

engine::Submission RouterTarget::submit(const std::string& shard_key,
                                        const serve::RssiVector& rssi,
                                        const engine::SubmitOptions& options) {
  return router_.submit(shard_key, rssi, options);
}

std::optional<std::uint64_t> RouterTarget::open_session(const std::string& shard_key,
                                                        const geo::Point2& start) {
  std::optional<fleet::FleetSession> session = router_.open_session(shard_key, start);
  if (!session.has_value()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t handle = next_session_++;
  sessions_.emplace(handle, std::move(*session));
  return handle;
}

engine::Submission RouterTarget::track(std::uint64_t session, serve::ImuSegment segment,
                                       const engine::SubmitOptions& options) {
  fleet::FleetSession sticky;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      engine::Submission out;
      out.status = engine::SubmitStatus::kNoSession;
      return out;
    }
    sticky = it->second;  // copy: track() runs outside the handle lock
  }
  return router_.track(sticky, std::move(segment), options);
}

bool RouterTarget::close_session(std::uint64_t session) {
  fleet::FleetSession sticky;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    sticky = it->second;
    sessions_.erase(it);
  }
  return router_.close_session(sticky);
}

/// One gateway connection of a SocketTarget: a full-duplex FrameSocket, the
/// per-request promise table, and the reader thread that resolves it from
/// response frames (which arrive in completion order, not submission order).
struct SocketTarget::Conn {
  explicit Conn(gateway::FrameSocket socket) : sock(std::move(socket)) {}

  gateway::FrameSocket sock;
  std::mutex send_mu;  ///< whole frames only: senders serialize here
  std::atomic<std::uint64_t> next_request_id{1};

  std::mutex pending_mu;  ///< guards the three waiter tables
  std::unordered_map<std::uint64_t, std::promise<serve::Fix>> fix_waiters;
  std::unordered_map<std::uint64_t,
                     std::promise<std::pair<gateway::wire::Status, std::uint64_t>>>
      open_waiters;
  std::unordered_map<std::uint64_t, std::promise<gateway::wire::Status>> close_waiters;

  std::atomic<bool> dead{false};
  std::thread reader;

  void start_reader() {
    reader = std::thread([this] { read_loop(); });
  }

  void read_loop() {
    using gateway::wire::MsgType;
    using gateway::wire::Status;
    while (std::optional<gateway::wire::Frame> frame = sock.recv_frame(-1)) {
      switch (frame->type.as<MsgType>()) {
        case MsgType::kFix: {
          Status status = Status::kStopped;
          serve::Fix fix;
          const bool decoded =
              gateway::wire::decode_fix_body(frame->body, status, fix);
          std::promise<serve::Fix> waiter;
          {
            std::lock_guard<std::mutex> lock(pending_mu);
            const auto it = fix_waiters.find(frame->request_id);
            if (it == fix_waiters.end()) break;  // sync caller gave up; drop
            waiter = std::move(it->second);
            fix_waiters.erase(it);
          }
          if (decoded && status == Status::kOk) {
            waiter.set_value(fix);
          } else {
            // The shared status table maps every non-kOk wire status to the
            // exception the report counters expect (kDeadlineExpired ->
            // engine::DeadlineExpired, the rest -> WireRejected).
            waiter.set_exception(gateway::wire::rejection_exception(
                decoded ? status : Status::kStopped));
          }
          break;
        }
        case MsgType::kSessionOpened: {
          Status status = Status::kStopped;
          std::uint64_t wire_id = 0;
          if (!gateway::wire::decode_session_opened_body(frame->body, status, wire_id)) {
            status = Status::kStopped;
            wire_id = 0;
          }
          std::lock_guard<std::mutex> lock(pending_mu);
          const auto it = open_waiters.find(frame->request_id);
          if (it != open_waiters.end()) {
            it->second.set_value({status, wire_id});
            open_waiters.erase(it);
          }
          break;
        }
        case MsgType::kSessionClosed: {
          Status status = Status::kStopped;
          (void)gateway::wire::decode_status_body(frame->body, status);
          std::lock_guard<std::mutex> lock(pending_mu);
          const auto it = close_waiters.find(frame->request_id);
          if (it != close_waiters.end()) {
            it->second.set_value(status);
            close_waiters.erase(it);
          }
          break;
        }
        default:
          // kError (the server is about to hang up) or a type this harness
          // never requests: nothing sane can follow.
          fail_all();
          return;
      }
    }
    fail_all();  // EOF / hard error: every outstanding request is lost
  }

  /// Fails every outstanding promise — connection is gone.
  void fail_all() {
    dead.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(pending_mu);
    const auto lost =
        std::make_exception_ptr(WireRejected(gateway::wire::Status::kStopped));
    for (auto& [id, waiter] : fix_waiters) waiter.set_exception(lost);
    for (auto& [id, waiter] : open_waiters) {
      waiter.set_value({gateway::wire::Status::kStopped, 0});
    }
    for (auto& [id, waiter] : close_waiters) {
      waiter.set_value(gateway::wire::Status::kStopped);
    }
    fix_waiters.clear();
    open_waiters.clear();
    close_waiters.clear();
  }

  ~Conn() {
    sock.shutdown_both();  // unparks the reader (it observes EOF)
    if (reader.joinable()) reader.join();
  }
};

std::unique_ptr<SocketTarget> SocketTarget::connect(const std::string& host,
                                                    std::uint16_t port,
                                                    std::size_t connections) {
  auto target = std::unique_ptr<SocketTarget>(new SocketTarget());
  for (std::size_t i = 0; i < std::max<std::size_t>(1, connections); ++i) {
    std::optional<gateway::FrameSocket> sock = gateway::connect_socket(host, port);
    if (!sock.has_value()) return nullptr;
    target->conns_.push_back(std::make_unique<Conn>(std::move(*sock)));
    target->conns_.back()->start_reader();
  }
  return target;
}

SocketTarget::~SocketTarget() = default;

SocketTarget::Conn& SocketTarget::pick_conn() {
  const std::uint64_t n = next_conn_.fetch_add(1, std::memory_order_relaxed);
  return *conns_[n % conns_.size()];
}

namespace {

/// Header deadline for SubmitOptions: relative budget in us, 0 = none. An
/// already-lapsed absolute deadline becomes the minimum budget (1 us) so the
/// server still expires it — the client clock never decides.
std::uint64_t wire_deadline_us(const engine::SubmitOptions& options) {
  if (!options.deadline.has_value()) return 0;
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
      *options.deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<std::uint64_t>(left.count()) : 1;
}

}  // namespace

engine::Submission SocketTarget::submit(const std::string& shard_key,
                                        const serve::RssiVector& rssi,
                                        const engine::SubmitOptions& options) {
  Conn& conn = pick_conn();
  engine::Submission out;
  if (conn.dead.load(std::memory_order_relaxed)) return out;  // kStopped
  gateway::wire::Frame frame;
  frame.type = gateway::wire::MsgType::kLocate;
  frame.request_id = conn.next_request_id.fetch_add(1, std::memory_order_relaxed);
  frame.cls = options.request_class;
  frame.deadline_us = wire_deadline_us(options);
  frame.body = gateway::wire::encode_locate_body(shard_key, rssi);
  std::promise<serve::Fix> promise;
  out.result = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.fix_waiters.emplace(frame.request_id, std::move(promise));
  }
  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn.send_mu);
    sent = conn.sock.send_frame(frame);
  }
  if (!sent) {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.fix_waiters.erase(frame.request_id);
    out.result = std::future<serve::Fix>();
    return out;  // kStopped
  }
  // Optimistic: the frame is on the wire. A server-side rejection comes
  // back through the future as WireRejected — there is no admission
  // verdict a pipelined client could wait for without serializing.
  out.status = engine::SubmitStatus::kAccepted;
  return out;
}

std::optional<std::uint64_t> SocketTarget::open_session(const std::string& shard_key,
                                                        const geo::Point2& start) {
  const std::size_t conn_index =
      next_conn_.fetch_add(1, std::memory_order_relaxed) % conns_.size();
  Conn& conn = *conns_[conn_index];
  if (conn.dead.load(std::memory_order_relaxed)) return std::nullopt;
  gateway::wire::Frame frame;
  frame.type = gateway::wire::MsgType::kOpenSession;
  frame.request_id = conn.next_request_id.fetch_add(1, std::memory_order_relaxed);
  frame.body = gateway::wire::encode_open_session_body(shard_key, start);
  std::promise<std::pair<gateway::wire::Status, std::uint64_t>> promise;
  std::future<std::pair<gateway::wire::Status, std::uint64_t>> reply =
      promise.get_future();
  {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.open_waiters.emplace(frame.request_id, std::move(promise));
  }
  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn.send_mu);
    sent = conn.sock.send_frame(frame);
  }
  if (!sent) {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.open_waiters.erase(frame.request_id);
    return std::nullopt;
  }
  const auto [status, wire_id] = reply.get();
  if (status != gateway::wire::Status::kOk) return std::nullopt;
  std::lock_guard<std::mutex> lock(session_mu_);
  const std::uint64_t handle = next_session_key_++;
  sessions_.emplace(handle, SessionRef{conn_index, wire_id});
  return handle;
}

engine::Submission SocketTarget::track(std::uint64_t session, serve::ImuSegment segment,
                                       const engine::SubmitOptions& options) {
  SessionRef ref;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      engine::Submission out;
      out.status = engine::SubmitStatus::kNoSession;
      return out;
    }
    ref = it->second;
  }
  Conn& conn = *conns_[ref.conn];  // sticky: session FIFO rides one socket
  engine::Submission out;
  if (conn.dead.load(std::memory_order_relaxed)) return out;  // kStopped
  gateway::wire::Frame frame;
  frame.type = gateway::wire::MsgType::kTrackUpdate;
  frame.request_id = conn.next_request_id.fetch_add(1, std::memory_order_relaxed);
  frame.cls = options.request_class;
  frame.deadline_us = wire_deadline_us(options);
  frame.body = gateway::wire::encode_track_body(ref.wire_id, segment);
  std::promise<serve::Fix> promise;
  out.result = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.fix_waiters.emplace(frame.request_id, std::move(promise));
  }
  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn.send_mu);
    sent = conn.sock.send_frame(frame);
  }
  if (!sent) {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.fix_waiters.erase(frame.request_id);
    out.result = std::future<serve::Fix>();
    return out;  // kStopped
  }
  out.status = engine::SubmitStatus::kAccepted;
  return out;
}

bool SocketTarget::close_session(std::uint64_t session) {
  SessionRef ref;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    ref = it->second;
    sessions_.erase(it);
  }
  Conn& conn = *conns_[ref.conn];
  if (conn.dead.load(std::memory_order_relaxed)) return false;
  gateway::wire::Frame frame;
  frame.type = gateway::wire::MsgType::kCloseSession;
  frame.request_id = conn.next_request_id.fetch_add(1, std::memory_order_relaxed);
  frame.body = gateway::wire::encode_close_session_body(ref.wire_id);
  std::promise<gateway::wire::Status> promise;
  std::future<gateway::wire::Status> reply = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.close_waiters.emplace(frame.request_id, std::move(promise));
  }
  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn.send_mu);
    sent = conn.sock.send_frame(frame);
  }
  if (!sent) {
    std::lock_guard<std::mutex> lock(conn.pending_mu);
    conn.close_waiters.erase(frame.request_id);
    return false;
  }
  return reply.get() == gateway::wire::Status::kOk;
}

gateway::GatewayConfig gateway_config_from_env(gateway::GatewayConfig defaults) {
  EnvConfig env;
  return env.gateway(std::move(defaults));
}

std::string describe_gateway_config(const gateway::GatewayConfig& cfg) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "bind %s:%u (0 = ephemeral), %zu handler threads, "
                "inflight window %zu, max frame %zu B",
                cfg.bind_address.c_str(), static_cast<unsigned>(cfg.port),
                cfg.threads, cfg.inflight_window, cfg.max_frame_bytes);
  return buffer;
}

// --- open-loop load ----------------------------------------------------------

namespace {

/// One submitted-and-unsettled request traveling from the dispatcher to the
/// settler pool.
struct OpenLoopInflight {
  std::size_t traffic = 0;  ///< 0 interactive, 1 bulk, 2 session
  LoadClock::time_point submitted_at;
  std::future<noble::serve::Fix> result;
};

}  // namespace

OpenLoopReport run_open_loop(LoadTarget& target,
                             const std::vector<std::string>& shard_keys,
                             const std::vector<serve::RssiVector>& queries,
                             const std::vector<serve::ImuSegment>& segments,
                             const std::vector<geo::Point2>& session_starts,
                             const OpenLoopConfig& cfg) {
  OpenLoopReport report;
  report.offered_qps = cfg.offered_qps;
  if (shard_keys.empty() || queries.empty() || cfg.offered_qps <= 0.0 ||
      cfg.seconds <= 0.0) {
    return report;
  }

  // Sticky session pool, opened before the clock starts. Session traffic is
  // silently disabled when there is nothing to stream or opens are refused
  // (shard without an IMU model) — the scan mix still runs.
  std::vector<std::uint64_t> session_pool;
  if (cfg.session_fraction > 0.0 && !segments.empty() && !session_starts.empty()) {
    for (std::size_t s = 0; s < cfg.sessions; ++s) {
      const std::optional<std::uint64_t> handle =
          target.open_session(shard_keys[s % shard_keys.size()],
                              session_starts[s % session_starts.size()]);
      if (handle.has_value()) session_pool.push_back(*handle);
    }
  }
  const double session_fraction = session_pool.empty() ? 0.0 : cfg.session_fraction;

  // Dispatcher -> settler queue. Settling is decoupled from dispatch so a
  // slow fix never delays the Poisson schedule (the whole point of open
  // loop); outstanding counts in-queue plus in-settle requests.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<OpenLoopInflight> queue;
  bool done = false;
  std::atomic<std::size_t> outstanding{0};

  std::vector<std::vector<ClassLoadReport>> settled(
      std::max<std::size_t>(1, cfg.settlers));
  for (auto& per_thread : settled) per_thread.resize(3);

  std::vector<std::thread> settlers;
  settlers.reserve(settled.size());
  for (std::size_t t = 0; t < settled.size(); ++t) {
    settlers.emplace_back([&, t] {
      for (;;) {
        OpenLoopInflight item;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock, [&] { return done || !queue.empty(); });
          if (queue.empty()) return;  // done && drained
          item = std::move(queue.front());
          queue.pop_front();
        }
        settle(settled[t][item.traffic], item.submitted_at, item.result);
        outstanding.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }

  // The dispatcher: exponential inter-arrival gaps at offered_qps. Arrivals
  // fire on the schedule whether or not earlier requests finished — lag
  // between the schedule and the actual send is tracked as max_send_lag_us
  // (a large value indicts the generator, not the target).
  const bool propagate_traces = target.propagates_trace();
  Rng rng(cfg.seed);
  const auto t0 = LoadClock::now();
  const auto horizon = t0 + std::chrono::duration_cast<LoadClock::duration>(
                                std::chrono::duration<double>(cfg.seconds));
  std::chrono::duration<double> schedule{0.0};
  std::uint64_t arrival = 0;
  ClassLoadReport drop_counts[3];

  for (;;) {
    schedule += std::chrono::duration<double>(
        -std::log(std::max(1e-12, rng.uniform())) / cfg.offered_qps);
    const auto due = t0 + std::chrono::duration_cast<LoadClock::duration>(schedule);
    if (due >= horizon) break;
    std::this_thread::sleep_until(due);
    const auto now = LoadClock::now();
    report.max_send_lag_us = std::max(
        report.max_send_lag_us,
        std::chrono::duration<double, std::micro>(now - due).count());
    ++report.arrivals;

    // Draw the traffic type: [0, bulk) bulk, [bulk, bulk+session) session,
    // rest interactive.
    const double draw = rng.uniform();
    std::size_t traffic = 0;
    if (draw < cfg.bulk_fraction) {
      traffic = 1;
    } else if (draw < cfg.bulk_fraction + session_fraction) {
      traffic = 2;
    }

    if (outstanding.load(std::memory_order_relaxed) >= cfg.max_outstanding) {
      ++report.dropped;
      ++drop_counts[traffic].attempted;  // offered, never submitted
      continue;
    }

    OpenLoopInflight item;
    item.traffic = traffic;
    ++drop_counts[traffic].attempted;
    item.submitted_at = LoadClock::now();
    // In-process targets get their stage clock here (over the wire the
    // gateway starts it at frame decode). The engine finishes the trace —
    // external_respond stays false — so the dispatcher never blocks on it.
    const bool trace_here = propagate_traces && obs::Tracer::global().enabled();
    engine::Submission s;
    if (traffic == 2) {
      engine::SubmitOptions options;
      if (trace_here && (options.trace = obs::Tracer::global().start(arrival))) {
        options.trace->stamp(obs::Mark::kSubmit);
      }
      const std::uint64_t session = session_pool[arrival % session_pool.size()];
      s = target.track(session, segments[arrival % segments.size()], options);
    } else {
      engine::SubmitOptions options;
      if (traffic == 1) {
        options = engine::SubmitOptions::bulk();
        if (cfg.bulk_deadline_us > 0) options.expires_in_us(cfg.bulk_deadline_us);
      }
      if (trace_here && (options.trace = obs::Tracer::global().start(arrival))) {
        options.trace->stamp(obs::Mark::kSubmit);
      }
      s = target.submit(shard_keys[arrival % shard_keys.size()],
                        queries[arrival % queries.size()], options);
    }
    ++arrival;
    if (s.accepted()) {
      ++drop_counts[traffic].accepted;
      item.result = std::move(s.result);
      outstanding.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(item));
      }
      queue_cv.notify_one();
    } else if (s.status == engine::SubmitStatus::kExpired) {
      ++drop_counts[traffic].expired;
    } else {
      ++drop_counts[traffic].rejected;
    }
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    done = true;
  }
  queue_cv.notify_all();
  for (std::thread& settler : settlers) settler.join();
  report.wall_seconds = std::chrono::duration<double>(LoadClock::now() - t0).count();

  for (std::uint64_t session : session_pool) target.close_session(session);

  ClassLoadReport* const classes[3] = {&report.interactive, &report.bulk,
                                       &report.session};
  for (std::size_t traffic = 0; traffic < 3; ++traffic) {
    merge_class_report(*classes[traffic], drop_counts[traffic]);
    for (const auto& per_thread : settled) {
      merge_class_report(*classes[traffic], per_thread[traffic]);
    }
  }
  if (report.wall_seconds > 0.0) {
    report.achieved_qps =
        static_cast<double>(report.interactive.completed + report.bulk.completed +
                            report.session.completed) /
        report.wall_seconds;
  }
  return report;
}

OpenLoopConfig open_loop_config_from_env(OpenLoopConfig defaults) {
  EnvConfig env;
  return env.open_loop(defaults);
}

std::string describe_open_loop_config(const OpenLoopConfig& cfg) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "offered %.0f qps (NOBLE_LOAD_QPS) for %.1f s "
                "(NOBLE_LOAD_SECONDS), mix %.0f%% bulk / %.0f%% session, "
                "%zu sessions, bulk deadline %llu us, %zu settlers",
                cfg.offered_qps, cfg.seconds, 100.0 * cfg.bulk_fraction,
                100.0 * cfg.session_fraction, cfg.sessions,
                static_cast<unsigned long long>(cfg.bulk_deadline_us),
                cfg.settlers);
  return buffer;
}

void print_open_loop_row(const OpenLoopReport& report) {
  const LatencySummary interactive = summarize_latency_us(report.interactive.latency_us);
  const LatencySummary bulk = summarize_latency_us(report.bulk.latency_us);
  const LatencySummary session = summarize_latency_us(report.session.latency_us);
  const std::uint64_t shed = report.interactive.rejected + report.bulk.rejected +
                             report.session.rejected + report.dropped;
  const std::uint64_t expired =
      report.interactive.expired + report.bulk.expired + report.session.expired;
  std::printf("  %8.0f %9.1f   %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f   "
              "%7llu %7llu   %8.0f\n",
              report.offered_qps, report.achieved_qps, interactive.p50_us,
              interactive.p99_us, bulk.p50_us, bulk.p99_us, session.p50_us,
              session.p99_us, static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(expired), report.max_send_lag_us);
}

void print_class_load_row(const std::string& label, const ClassLoadReport& report) {
  const LatencySummary latency = summarize_latency_us(report.latency_us);
  std::printf("  %-14s %8llu attempted  %8llu ok  %7llu shed  %7llu expired   "
              "p50 %8.1f us   p95 %8.1f us   p99 %8.1f us\n",
              label.c_str(), static_cast<unsigned long long>(report.attempted),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.expired),
              latency.p50_us, latency.p95_us, latency.p99_us);
}

std::string artifact_path(const std::string& filename) {
  return env_string("NOBLE_BENCH_OUT", ".") + "/" + filename;
}

}  // namespace noble::bench
