// One env-knob reader for every bench and demo binary.
//
// Before this, engine_config_from_env, gateway_config_from_env and
// open_loop_config_from_env each read the environment their own way and
// printed their own banners; adding the NOBLE_CLUSTER_* family would have
// made a fourth copy. EnvConfig is the single path: every read goes through
// integer()/real()/flag()/text(), which apply the environment over the
// caller's default AND record what was read — name, resolved value, and
// whether the environment or the default supplied it. describe() then
// renders the whole record, so a CI log always shows the exact knob set
// that produced a run, including the knobs left at their defaults.
//
// The old *_config_from_env names survive as thin wrappers over the
// composite readers here (engine()/gateway()/open_loop()), so existing
// benches compile unchanged; new code should construct an EnvConfig,
// read every config through it, and print describe() once.
#ifndef NOBLE_BENCH_SUPPORT_ENV_CONFIG_H_
#define NOBLE_BENCH_SUPPORT_ENV_CONFIG_H_

#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "engine/engine.h"
#include "gateway/gateway.h"

namespace noble::bench {

struct OpenLoopConfig;  // bench_util.h (kept there: load-generator territory)

/// One recorded environment read.
struct EnvKnob {
  std::string name;   ///< e.g. "NOBLE_ENGINE_WORKERS"
  std::string value;  ///< resolved value, rendered as text
  bool from_env = false;  ///< true when the environment overrode the default
};

class EnvConfig {
 public:
  // --- primitive recorded reads ----------------------------------------------
  long integer(const char* name, long fallback);
  double real(const char* name, double fallback);
  bool flag(const char* name, bool fallback);  ///< "0" = false, anything else true
  std::string text(const char* name, std::string fallback);

  // --- composite readers (env applied over `defaults`) ------------------------
  /// NOBLE_ENGINE_* family + the process-wide NOBLE_KERNEL override.
  /// `defaults.workers == 0` means auto-size to min(hardware, 8), at least 2.
  engine::EngineConfig engine(engine::EngineConfig defaults = {});
  /// NOBLE_GATEWAY_PORT / NOBLE_GATEWAY_THREADS.
  gateway::GatewayConfig gateway(gateway::GatewayConfig defaults = {});
  /// NOBLE_LOAD_QPS / NOBLE_LOAD_SECONDS.
  OpenLoopConfig open_loop(OpenLoopConfig defaults);
  /// NOBLE_CLUSTER_NODE (name), NOBLE_CLUSTER_SERVE_PORT,
  /// NOBLE_CLUSTER_COORD_HOST / NOBLE_CLUSTER_COORD_PORT,
  /// NOBLE_CLUSTER_HEARTBEAT_MS, NOBLE_CLUSTER_SPILL (0/1).
  cluster::NodeConfig cluster_node(cluster::NodeConfig defaults = {});
  /// NOBLE_CLUSTER_PORT, NOBLE_CLUSTER_DEAD_AFTER_MS,
  /// NOBLE_CLUSTER_MODEL_DIR, NOBLE_CLUSTER_POLL_MS.
  cluster::CoordinatorConfig cluster_coordinator(
      cluster::CoordinatorConfig defaults = {});

  /// Every read so far, in read order (duplicates collapse onto the latest).
  const std::vector<EnvKnob>& knobs() const { return knobs_; }

  /// Multi-line "NOBLE_X=value" / "NOBLE_X=value (default)" record of every
  /// read — the one banner path for env-driven configuration.
  std::string describe() const;

 private:
  void record(const char* name, std::string value, bool from_env);
  std::vector<EnvKnob> knobs_;
};

}  // namespace noble::bench

#endif  // NOBLE_BENCH_SUPPORT_ENV_CONFIG_H_
