// Shared support for the benchmark binaries: the paper-shaped experiment
// configurations every table/figure bench uses, and small printing helpers.
//
// All benches honor NOBLE_SCALE (sample-count multiplier), NOBLE_EPOCHS,
// NOBLE_TAU and NOBLE_MANIFOLD_DIM so the suite can be shrunk for smoke runs
// or grown toward paper scale on faster hardware, plus NOBLE_KERNEL
// (scalar|avx2|auto) to pin the compute-kernel ISA; the dispatched ISA is
// printed in every bench banner.
#ifndef NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
#define NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/engine.h"
#include "fleet/router.h"

namespace noble::bench {

/// UJI-like experiment sizing used by Tables I, II and Fig. 4.
core::WifiExperimentConfig uji_config();

/// IPIN-like experiment sizing (§IV-B text).
core::WifiExperimentConfig ipin_config();

/// IMU experiment sizing used by Table III and Fig. 5.
core::ImuExperimentConfig imu_config();

/// NObLe Wi-Fi hyperparameters matched to the synthetic substrate.
core::NobleWifiConfig noble_wifi_config();

/// Baseline regression hyperparameters (same budget as NObLe, §IV-B).
core::RegressionConfig regression_config();

/// NObLe IMU hyperparameters.
core::NobleImuConfig noble_imu_config();

/// Engine knobs shared by the engine/fleet/cache benches, applied over
/// `defaults` (every field falls back to the passed default):
/// NOBLE_ENGINE_WORKERS, NOBLE_ENGINE_MAX_BATCH, NOBLE_ENGINE_MAX_WAIT_US,
/// NOBLE_ENGINE_QUEUE_CAP, NOBLE_ENGINE_ADAPTIVE (0/1),
/// NOBLE_ENGINE_BACKEND (dense|quantized), NOBLE_ENGINE_CACHE_CAP,
/// NOBLE_ENGINE_CACHE_STEP_DB, NOBLE_ENGINE_CLASS_CAPS
/// ("interactive:bulk" queue-slot caps, 0 = uncapped, e.g. "0:256") and
/// NOBLE_ENGINE_DEADLINE_US (engine-wide default deadline budget, 0 = off).
/// Also applies the process-wide NOBLE_KERNEL override (scalar|avx2|auto).
/// `defaults.workers == 0` means auto: size the pool to min(hardware, 8),
/// at least 2 — what the throughput benches want on any host.
engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults = {});

/// One-line engine-config summary for bench banners.
std::string describe_engine_config(const engine::EngineConfig& cfg);

/// Mixed interactive + bulk closed-loop load against a fleet router — the
/// shared workload generator for bench_fleet_throughput and
/// bench_admission_classes (one copy, two benches).
///
/// Interactive clients are paced (think time between fixes) and wait for
/// each fix; bulk clients flood with a bounded in-flight window and never
/// retry — a shed (kQueueFull) or expiry is counted, not resubmitted.
/// Scans spread across `shard_keys` round-robin and across the query pool
/// per client.
struct MixedLoadConfig {
  std::size_t interactive_clients = 2;
  std::size_t interactive_requests = 1000;  ///< per client
  std::uint64_t interactive_pace_us = 200;  ///< think time between fixes
  /// Spin-retry interactive kQueueFull instead of counting a rejection
  /// (what a pure-throughput bench wants; admission benches count).
  bool retry_interactive_full = false;
  /// Futures each interactive client keeps in flight before settling. 1 =
  /// strict closed loop (submit, await, think) — what a latency bench
  /// wants; throughput benches pipeline deeper to keep batches full.
  std::size_t interactive_inflight_window = 1;
  std::size_t bulk_clients = 2;
  std::size_t bulk_requests = 2000;    ///< per client (a floor when sustaining)
  std::uint64_t bulk_deadline_us = 0;  ///< per-submission budget; 0 = none
  std::size_t bulk_inflight_window = 32;
  /// Keep the bulk flood running until every interactive client finishes
  /// (bulk_requests becomes a floor) — what an overload bench needs: the
  /// interactive stream must be measured *under* the flood, not after it.
  bool bulk_sustain = false;
  /// false = no-priority baseline: the bulk stream submits with default
  /// options (interactive class, no deadline), so both streams share one
  /// undifferentiated queue. Interactive submits default-class either way.
  bool classed = true;
};

/// Per-class outcome counters + client-side latency of one mixed-load run.
struct ClassLoadReport {
  std::uint64_t attempted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   ///< kQueueFull (and any routing verdict)
  std::uint64_t expired = 0;    ///< kExpired at submit + DeadlineExpired futures
  std::uint64_t completed = 0;  ///< futures that resolved with a fix
  Histogram latency_us = Histogram::latency_us();  ///< submit -> fix, client side
};

struct MixedLoadReport {
  ClassLoadReport interactive;
  ClassLoadReport bulk;
  double wall_seconds = 0.0;
  double qps = 0.0;  ///< completed fixes per second, both classes
};

MixedLoadReport run_mixed_load(fleet::Router& router,
                               const std::vector<std::string>& shard_keys,
                               const std::vector<serve::RssiVector>& queries,
                               const MixedLoadConfig& cfg);

/// Prints one ClassLoadReport as a bench row (counters + percentiles).
void print_class_load_row(const std::string& label, const ClassLoadReport& report);

/// Prints the run banner: experiment sizes, seed, scale.
void print_banner(const std::string& bench_name, const std::string& paper_ref);

/// Prints one WifiReport as paper-style rows.
void print_wifi_report(const std::string& model, const core::WifiReport& report);

/// Prints one PositionReport row (mean/median/structure).
void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median);

/// Latency histogram with the shared serving layout (1 us .. 10 s,
/// log-spaced) — record once per request, print with print_latency_row.
/// Same layout as the engine's EngineStats latencies, so bench-side and
/// engine-side histograms can be merge()d.
noble::Histogram latency_histogram();

/// Prints one latency row (p50/p95/p99 per query) from a histogram.
void print_latency_row(const std::string& mode, std::size_t batch,
                       const noble::Histogram& latencies_us);

/// Output path for figure CSV artifacts (honors NOBLE_BENCH_OUT, default ".").
std::string artifact_path(const std::string& filename);

}  // namespace noble::bench

#endif  // NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
