// Shared support for the benchmark binaries: the paper-shaped experiment
// configurations every table/figure bench uses, and small printing helpers.
//
// All benches honor NOBLE_SCALE (sample-count multiplier), NOBLE_EPOCHS,
// NOBLE_TAU and NOBLE_MANIFOLD_DIM so the suite can be shrunk for smoke runs
// or grown toward paper scale on faster hardware.
#ifndef NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
#define NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_

#include <string>

#include "common/stats.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/engine.h"

namespace noble::bench {

/// UJI-like experiment sizing used by Tables I, II and Fig. 4.
core::WifiExperimentConfig uji_config();

/// IPIN-like experiment sizing (§IV-B text).
core::WifiExperimentConfig ipin_config();

/// IMU experiment sizing used by Table III and Fig. 5.
core::ImuExperimentConfig imu_config();

/// NObLe Wi-Fi hyperparameters matched to the synthetic substrate.
core::NobleWifiConfig noble_wifi_config();

/// Baseline regression hyperparameters (same budget as NObLe, §IV-B).
core::RegressionConfig regression_config();

/// NObLe IMU hyperparameters.
core::NobleImuConfig noble_imu_config();

/// Engine knobs shared by the engine/fleet/cache benches, applied over
/// `defaults` (every field falls back to the passed default):
/// NOBLE_ENGINE_WORKERS, NOBLE_ENGINE_MAX_BATCH, NOBLE_ENGINE_MAX_WAIT_US,
/// NOBLE_ENGINE_QUEUE_CAP, NOBLE_ENGINE_ADAPTIVE (0/1),
/// NOBLE_ENGINE_BACKEND (dense|quantized), NOBLE_ENGINE_CACHE_CAP and
/// NOBLE_ENGINE_CACHE_STEP_DB. `defaults.workers == 0` means auto: size
/// the pool to min(hardware, 8), at least 2 — what the throughput benches
/// want on any host.
engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults = {});

/// One-line engine-config summary for bench banners.
std::string describe_engine_config(const engine::EngineConfig& cfg);

/// Prints the run banner: experiment sizes, seed, scale.
void print_banner(const std::string& bench_name, const std::string& paper_ref);

/// Prints one WifiReport as paper-style rows.
void print_wifi_report(const std::string& model, const core::WifiReport& report);

/// Prints one PositionReport row (mean/median/structure).
void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median);

/// Latency histogram with the shared serving layout (1 us .. 10 s,
/// log-spaced) — record once per request, print with print_latency_row.
/// Same layout as the engine's EngineStats latencies, so bench-side and
/// engine-side histograms can be merge()d.
noble::Histogram latency_histogram();

/// Prints one latency row (p50/p95/p99 per query) from a histogram.
void print_latency_row(const std::string& mode, std::size_t batch,
                       const noble::Histogram& latencies_us);

/// Output path for figure CSV artifacts (honors NOBLE_BENCH_OUT, default ".").
std::string artifact_path(const std::string& filename);

}  // namespace noble::bench

#endif  // NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
