// Shared support for the benchmark binaries: the paper-shaped experiment
// configurations every table/figure bench uses, and small printing helpers.
//
// All benches honor NOBLE_SCALE (sample-count multiplier), NOBLE_EPOCHS,
// NOBLE_TAU and NOBLE_MANIFOLD_DIM so the suite can be shrunk for smoke runs
// or grown toward paper scale on faster hardware, plus NOBLE_KERNEL
// (scalar|avx2|auto) to pin the compute-kernel ISA; the dispatched ISA is
// printed in every bench banner.
#ifndef NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
#define NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "core/baselines.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "engine/engine.h"
#include "fleet/router.h"
#include "gateway/gateway.h"
#include "gateway/wire.h"

namespace noble::bench {

/// UJI-like experiment sizing used by Tables I, II and Fig. 4.
core::WifiExperimentConfig uji_config();

/// IPIN-like experiment sizing (§IV-B text).
core::WifiExperimentConfig ipin_config();

/// IMU experiment sizing used by Table III and Fig. 5.
core::ImuExperimentConfig imu_config();

/// NObLe Wi-Fi hyperparameters matched to the synthetic substrate.
core::NobleWifiConfig noble_wifi_config();

/// Baseline regression hyperparameters (same budget as NObLe, §IV-B).
core::RegressionConfig regression_config();

/// NObLe IMU hyperparameters.
core::NobleImuConfig noble_imu_config();

/// Engine knobs shared by the engine/fleet/cache benches, applied over
/// `defaults` (every field falls back to the passed default):
/// NOBLE_ENGINE_WORKERS, NOBLE_ENGINE_MAX_BATCH, NOBLE_ENGINE_MAX_WAIT_US,
/// NOBLE_ENGINE_QUEUE_CAP, NOBLE_ENGINE_ADAPTIVE (0/1),
/// NOBLE_ENGINE_BACKEND (dense|quantized), NOBLE_ENGINE_CACHE_CAP,
/// NOBLE_ENGINE_CACHE_STEP_DB, NOBLE_ENGINE_CLASS_CAPS
/// ("interactive:bulk" queue-slot caps, 0 = uncapped, e.g. "0:256"),
/// NOBLE_ENGINE_DEADLINE_US (engine-wide default deadline budget, 0 = off),
/// NOBLE_ENGINE_EDF (0/1: bulk lane FIFO vs earliest-deadline-first) and
/// NOBLE_ENGINE_COALESCE (0/1: cross-session IMU batching vs
/// serialized-per-track draining).
/// Also applies the process-wide NOBLE_KERNEL override (scalar|avx2|auto).
/// `defaults.workers == 0` means auto: size the pool to min(hardware, 8),
/// at least 2 — what the throughput benches want on any host.
engine::EngineConfig engine_config_from_env(engine::EngineConfig defaults = {});

/// One-line engine-config summary for bench banners.
std::string describe_engine_config(const engine::EngineConfig& cfg);

/// Gateway knobs applied over `defaults`: NOBLE_GATEWAY_PORT (0 =
/// ephemeral) and NOBLE_GATEWAY_THREADS (connection-handler threads) — the
/// two that change what a CI log must record to reproduce a smoke run.
gateway::GatewayConfig gateway_config_from_env(gateway::GatewayConfig defaults = {});

/// One-line gateway-config summary for bench banners.
std::string describe_gateway_config(const gateway::GatewayConfig& cfg);

// --- load targets ------------------------------------------------------------

/// Rejection that reached the client over the wire — now defined next to
/// the status table in wire.h (every client reader shares it); the old name
/// stays for the benches.
using WireRejected = gateway::wire::WireRejected;

/// What the load generators drive: the in-process fleet Router or a live
/// gateway socket, behind one submit/track surface. Futures resolve with a
/// Fix, or fail with engine::DeadlineExpired / WireRejected — exactly the
/// split the per-class reports count. Session handles are target-scoped
/// opaque ids (a sticky FleetSession in-process, a wire session id over a
/// socket).
class LoadTarget {
 public:
  virtual ~LoadTarget() = default;
  virtual engine::Submission submit(const std::string& shard_key,
                                    const serve::RssiVector& rssi,
                                    const engine::SubmitOptions& options) = 0;
  virtual std::optional<std::uint64_t> open_session(const std::string& shard_key,
                                                    const geo::Point2& start) = 0;
  virtual engine::Submission track(std::uint64_t session, serve::ImuSegment segment,
                                   const engine::SubmitOptions& options) = 0;
  virtual bool close_session(std::uint64_t session) = 0;
  virtual std::string name() const = 0;
  /// True when the harness should start an obs::Trace and attach it to
  /// SubmitOptions (in-process targets only — over the wire the gateway
  /// starts the trace itself at frame decode, and a client-side trace could
  /// not cross the socket anyway).
  virtual bool propagates_trace() const { return false; }
};

/// In-process target: forwards straight to a fleet::Routing implementation
/// — a local Router (the zero-overhead baseline the wire numbers are
/// compared against) or a cluster NodeAgent (mixed load with cross-node
/// spill behind it).
class RouterTarget final : public LoadTarget {
 public:
  explicit RouterTarget(fleet::Routing& router) : router_(router) {}
  engine::Submission submit(const std::string& shard_key, const serve::RssiVector& rssi,
                            const engine::SubmitOptions& options) override;
  std::optional<std::uint64_t> open_session(const std::string& shard_key,
                                            const geo::Point2& start) override;
  engine::Submission track(std::uint64_t session, serve::ImuSegment segment,
                           const engine::SubmitOptions& options) override;
  bool close_session(std::uint64_t session) override;
  std::string name() const override { return "router"; }
  bool propagates_trace() const override { return true; }

 private:
  fleet::Routing& router_;
  std::mutex mu_;  ///< guards the session handle map
  std::unordered_map<std::uint64_t, fleet::FleetSession> sessions_;
  std::uint64_t next_session_ = 1;
};

/// Live-socket target: N gateway connections, requests fanned round-robin,
/// one reader thread per connection fulfilling promises as response frames
/// arrive. submit() is optimistic (kAccepted once the frame is on the
/// wire); server-side rejections come back through the future as
/// WireRejected, deadline lapses as engine::DeadlineExpired. One session's
/// updates always ride one connection, preserving the engine's per-session
/// FIFO contract end to end.
class SocketTarget final : public LoadTarget {
 public:
  /// Connects `connections` sockets to a running gateway; nullptr when any
  /// connect fails.
  static std::unique_ptr<SocketTarget> connect(const std::string& host,
                                               std::uint16_t port,
                                               std::size_t connections = 2);
  ~SocketTarget() override;

  engine::Submission submit(const std::string& shard_key, const serve::RssiVector& rssi,
                            const engine::SubmitOptions& options) override;
  std::optional<std::uint64_t> open_session(const std::string& shard_key,
                                            const geo::Point2& start) override;
  engine::Submission track(std::uint64_t session, serve::ImuSegment segment,
                           const engine::SubmitOptions& options) override;
  bool close_session(std::uint64_t session) override;
  std::string name() const override { return "wire"; }

 private:
  struct Conn;
  SocketTarget() = default;
  Conn& pick_conn();

  struct SessionRef {
    std::size_t conn = 0;         ///< the connection the session is sticky to
    std::uint64_t wire_id = 0;    ///< the server's id on that connection
  };

  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> next_conn_{0};
  std::mutex session_mu_;  ///< guards the session handle map
  std::unordered_map<std::uint64_t, SessionRef> sessions_;
  std::uint64_t next_session_key_ = 1;
};

/// Mixed interactive + bulk closed-loop load against a LoadTarget (the
/// in-process Router or a live gateway socket) — the shared workload
/// generator for bench_fleet_throughput, bench_admission_classes and
/// bench_gateway_load (one copy, three benches).
///
/// Interactive clients are paced (think time between fixes) and wait for
/// each fix; bulk clients flood with a bounded in-flight window and never
/// retry — a shed (kQueueFull) or expiry is counted, not resubmitted.
/// Scans spread across `shard_keys` round-robin and across the query pool
/// per client.
struct MixedLoadConfig {
  std::size_t interactive_clients = 2;
  std::size_t interactive_requests = 1000;  ///< per client
  std::uint64_t interactive_pace_us = 200;  ///< think time between fixes
  /// Spin-retry interactive kQueueFull instead of counting a rejection
  /// (what a pure-throughput bench wants; admission benches count).
  bool retry_interactive_full = false;
  /// Futures each interactive client keeps in flight before settling. 1 =
  /// strict closed loop (submit, await, think) — what a latency bench
  /// wants; throughput benches pipeline deeper to keep batches full.
  std::size_t interactive_inflight_window = 1;
  std::size_t bulk_clients = 2;
  std::size_t bulk_requests = 2000;    ///< per client (a floor when sustaining)
  std::uint64_t bulk_deadline_us = 0;  ///< per-submission budget; 0 = none
  std::size_t bulk_inflight_window = 32;
  /// Keep the bulk flood running until every interactive client finishes
  /// (bulk_requests becomes a floor) — what an overload bench needs: the
  /// interactive stream must be measured *under* the flood, not after it.
  bool bulk_sustain = false;
  /// false = no-priority baseline: the bulk stream submits with default
  /// options (interactive class, no deadline), so both streams share one
  /// undifferentiated queue. Interactive submits default-class either way.
  bool classed = true;
};

/// Per-class outcome counters + client-side latency of one mixed-load run.
struct ClassLoadReport {
  std::uint64_t attempted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   ///< kQueueFull (and any routing verdict)
  std::uint64_t expired = 0;    ///< kExpired at submit + DeadlineExpired futures
  std::uint64_t completed = 0;  ///< futures that resolved with a fix
  Histogram latency_us = Histogram::latency_us();  ///< submit -> fix, client side
};

struct MixedLoadReport {
  ClassLoadReport interactive;
  ClassLoadReport bulk;
  double wall_seconds = 0.0;
  double qps = 0.0;  ///< completed fixes per second, both classes
};

MixedLoadReport run_mixed_load(LoadTarget& target,
                               const std::vector<std::string>& shard_keys,
                               const std::vector<serve::RssiVector>& queries,
                               const MixedLoadConfig& cfg);

/// Router convenience overload (the pre-gateway call shape).
inline MixedLoadReport run_mixed_load(fleet::Router& router,
                                      const std::vector<std::string>& shard_keys,
                                      const std::vector<serve::RssiVector>& queries,
                                      const MixedLoadConfig& cfg) {
  RouterTarget target(router);
  return run_mixed_load(static_cast<LoadTarget&>(target), shard_keys, queries, cfg);
}

// --- open-loop load ----------------------------------------------------------

/// Open-loop (Poisson-arrival) generator: requests fire on an exponential
/// inter-arrival schedule at `offered_qps` whether or not earlier ones have
/// finished — the generator a saturation measurement needs. (The closed-loop
/// MixedLoadConfig clients self-throttle: they can never offer more load
/// than the target absorbs, so they cannot find the knee.) Traffic mixes
/// interactive scans, bulk scans (deadline-carrying) and streaming IMU
/// session updates over a pool of sticky sessions.
struct OpenLoopConfig {
  double offered_qps = 500.0;
  double seconds = 2.0;
  /// Fraction of arrivals submitted as bulk scans (with bulk_deadline_us).
  double bulk_fraction = 0.2;
  /// Fraction of arrivals that are IMU session updates (interactive class);
  /// ignored when the target has no sessions to offer.
  double session_fraction = 0.2;
  std::size_t sessions = 8;  ///< sticky tracks kept open for session traffic
  std::uint64_t bulk_deadline_us = 50000;
  std::uint64_t seed = 7;
  std::size_t settlers = 4;  ///< threads resolving in-flight futures
  /// In-flight futures beyond this are not submitted (counted as
  /// `dropped`): the generator's own memory guard far past the knee.
  std::size_t max_outstanding = 8192;
};

struct OpenLoopReport {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;   ///< completed fixes / wall
  double wall_seconds = 0.0;
  std::uint64_t arrivals = 0;  ///< scheduled arrivals (incl. dropped)
  std::uint64_t dropped = 0;   ///< skipped by the max_outstanding guard
  /// Worst dispatcher lateness vs the Poisson schedule: large values mean
  /// the *generator* saturated (submission path blocked), not the target.
  double max_send_lag_us = 0.0;
  ClassLoadReport interactive;  ///< interactive scans
  ClassLoadReport bulk;         ///< bulk scans
  ClassLoadReport session;      ///< IMU session updates
};

/// Drives `target` open-loop. `segments` feeds session updates and
/// `session_starts` anchors the session pool (session traffic is disabled
/// when either is empty or the target refuses opens — no IMU model).
OpenLoopReport run_open_loop(LoadTarget& target,
                             const std::vector<std::string>& shard_keys,
                             const std::vector<serve::RssiVector>& queries,
                             const std::vector<serve::ImuSegment>& segments,
                             const std::vector<geo::Point2>& session_starts,
                             const OpenLoopConfig& cfg);

/// Open-loop sweep knobs: NOBLE_LOAD_QPS (first offered-QPS step) and
/// NOBLE_LOAD_SECONDS (measurement window per step), printed by
/// describe_open_loop_config so a CI log reproduces the run.
OpenLoopConfig open_loop_config_from_env(OpenLoopConfig defaults = {});

/// One-line open-loop summary for bench banners.
std::string describe_open_loop_config(const OpenLoopConfig& cfg);

/// Prints one offered-vs-measured open-loop row (all three classes).
void print_open_loop_row(const OpenLoopReport& report);

/// Prints one ClassLoadReport as a bench row (counters + percentiles).
void print_class_load_row(const std::string& label, const ClassLoadReport& report);

/// Prints the run banner: experiment sizes, seed, scale.
void print_banner(const std::string& bench_name, const std::string& paper_ref);

/// Prints one WifiReport as paper-style rows.
void print_wifi_report(const std::string& model, const core::WifiReport& report);

/// Prints one PositionReport row (mean/median/structure).
void print_position_row(const std::string& model, const core::PositionReport& report,
                        const std::string& paper_mean, const std::string& paper_median);

/// Latency histogram with the shared serving layout (1 us .. 10 s,
/// log-spaced) — record once per request, print with print_latency_row.
/// Same layout as the engine's EngineStats latencies, so bench-side and
/// engine-side histograms can be merge()d.
noble::Histogram latency_histogram();

/// Prints one latency row (p50/p95/p99 per query) from a histogram.
void print_latency_row(const std::string& mode, std::size_t batch,
                       const noble::Histogram& latencies_us);

/// Output path for figure CSV artifacts (honors NOBLE_BENCH_OUT, default ".").
std::string artifact_path(const std::string& filename);

}  // namespace noble::bench

#endif  // NOBLE_BENCH_SUPPORT_BENCH_UTIL_H_
