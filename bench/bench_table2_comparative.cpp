// Table II — comparative distance errors on UJIIndoorLoc (synthetic
// substitute): Deep Regression, Deep Regression Projection, Isomap Deep
// Regression, LLE Deep Regression — against NObLe (Table I model).
//
// Paper values (mean/median m): Deep Regression 10.17/7.84, Regression
// Projection 9.76/7.16, Isomap 11.01/7.56, LLE 10.05/7.43; NObLe 4.45/0.23.
#include <cstdio>

#include "common/config.h"
#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("table2_comparative",
                      "Table II: comparative distance errors on UJIIndoorLoc");
  WifiExperiment exp = make_uji_experiment(bench::uji_config());
  std::printf("train/val/test = %zu/%zu/%zu\n\n", exp.split.train.size(),
              exp.split.val.size(), exp.split.test.size());

  print_table_header("TABLE II: comparative distance errors (m)");

  {
    DeepRegressionWifi reg(bench::regression_config());
    reg.fit(exp.split.train, &exp.split.val);
    const auto report =
        evaluate_positions(reg.predict(exp.split.test), exp.split.test, &exp.world.plan);
    bench::print_position_row("DEEP REGRESSION", report, "10.17", "7.84");
  }
  {
    RegressionProjectionWifi proj(bench::regression_config(), exp.world.plan);
    proj.fit(exp.split.train, &exp.split.val);
    const auto report = evaluate_positions(proj.predict(exp.split.test), exp.split.test,
                                           &exp.world.plan);
    bench::print_position_row("REGRESSION PROJECTION", report, "9.76", "7.16");
  }
  const auto manifold_dim =
      static_cast<std::size_t>(env_int("NOBLE_MANIFOLD_DIM", 64));
  {
    ManifoldRegressionConfig mcfg;
    mcfg.method = ManifoldMethod::kIsomap;
    mcfg.embedding_dim = manifold_dim;  // paper: 400 (see DESIGN.md)
    mcfg.regression = bench::regression_config();
    ManifoldRegressionWifi isomap(mcfg);
    isomap.fit(exp.split.train, &exp.split.val);
    const auto report = evaluate_positions(isomap.predict(exp.split.test),
                                           exp.split.test, &exp.world.plan);
    bench::print_position_row("ISOMAP DEEP REGRESSION", report, "11.01", "7.56");
  }
  {
    ManifoldRegressionConfig mcfg;
    mcfg.method = ManifoldMethod::kLle;
    mcfg.embedding_dim = manifold_dim;
    mcfg.regression = bench::regression_config();
    ManifoldRegressionWifi lle(mcfg);
    lle.fit(exp.split.train, &exp.split.val);
    const auto report = evaluate_positions(lle.predict(exp.split.test), exp.split.test,
                                           &exp.world.plan);
    bench::print_position_row("LLE DEEP REGRESSION", report, "10.05", "7.43");
  }
  {
    NobleWifiModel noble(bench::noble_wifi_config());
    noble.fit(exp.split.train, &exp.split.val);
    const auto wreport = evaluate_wifi(noble.predict(exp.split.test), exp.split.test,
                                       noble.quantizer(), &exp.world.plan);
    PositionReport report{wreport.errors, wreport.structure_score};
    bench::print_position_row("NOBLE (Table I model)", report, "4.45", "0.23");
  }
  {
    // Extra context (§II): the classical fingerprint matcher.
    KnnFingerprintWifi knn(5);
    knn.fit(exp.split.train);
    const auto report = evaluate_positions(knn.predict(exp.split.test), exp.split.test,
                                           &exp.world.plan);
    bench::print_position_row("WEIGHTED kNN (RADAR-style)", report, "-", "-");
  }
  std::printf("\nmanifold embedding dim = %zu (paper used 400; override with "
              "NOBLE_MANIFOLD_DIM)\n", manifold_dim);
  return 0;
}
