// Micro-benchmark — single-sample inference latency of the trained models
// (google-benchmark). Context for the §IV-C / §V-D latency claims on this
// host's CPU (the paper measured a Jetson TX2).
#include <benchmark/benchmark.h>

#include "support/bench_util.h"

namespace {

using namespace noble;
using namespace noble::core;

/// Shared state: train once, benchmark inference only.
struct WifiFixtureState {
  WifiExperiment exp;
  NobleWifiModel model;
  data::WifiDataset one;

  WifiFixtureState() : model(bench::noble_wifi_config()) {
    auto cfg = bench::uji_config();
    cfg.total_samples = 2000;
    exp = make_uji_experiment(cfg);
    auto ncfg = bench::noble_wifi_config();
    ncfg.epochs = 5;
    model = NobleWifiModel(ncfg);
    model.fit(exp.split.train);
    one.num_aps = exp.split.test.num_aps;
    one.samples = {exp.split.test.samples.front()};
  }
};

WifiFixtureState& wifi_state() {
  static WifiFixtureState state;
  return state;
}

void BM_NobleWifiInference(benchmark::State& state) {
  auto& s = wifi_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model.predict(s.one));
  }
}
BENCHMARK(BM_NobleWifiInference);

void BM_NobleWifiBatch64(benchmark::State& state) {
  auto& s = wifi_state();
  data::WifiDataset batch;
  batch.num_aps = s.exp.split.test.num_aps;
  for (std::size_t i = 0; i < 64 && i < s.exp.split.test.size(); ++i) {
    batch.samples.push_back(s.exp.split.test.samples[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model.predict(batch));
  }
}
BENCHMARK(BM_NobleWifiBatch64);

struct ImuFixtureState {
  ImuExperiment exp;
  NobleImuTracker model;
  data::ImuDataset one;

  ImuFixtureState() : model(bench::noble_imu_config()) {
    auto cfg = bench::imu_config();
    cfg.num_paths = 800;
    exp = make_imu_experiment(cfg);
    auto icfg = bench::noble_imu_config();
    icfg.epochs = 4;
    model = NobleImuTracker(icfg);
    model.fit(exp.split.train);
    one.segment_dim = exp.split.test.segment_dim;
    one.max_segments = exp.split.test.max_segments;
    one.paths = {exp.split.test.paths.front()};
  }
};

void BM_NobleImuInference(benchmark::State& state) {
  static ImuFixtureState s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model.predict(s.one));
  }
}
BENCHMARK(BM_NobleImuInference);

void BM_GridQuantizerDecode(benchmark::State& state) {
  auto& s = wifi_state();
  const auto& q = s.model.quantizer();
  const auto layout = s.model.layout();
  linalg::Mat logits(1, layout.total());
  logits(0, layout.fine_offset() + 3) = 5.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.decode(layout, logits.row(0)));
  }
}
BENCHMARK(BM_GridQuantizerDecode);

}  // namespace

BENCHMARK_MAIN();
