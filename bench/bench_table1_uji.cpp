// Table I — NObLe performance on UJIIndoorLoc (synthetic substitute).
//
// Paper values: building 99.74 %, floor 94.25 %, quantize class 61.63 %,
// mean position error 4.45 m, median 0.23 m.
#include <cstdio>

#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("table1_uji", "Table I: NObLe on UJIIndoorLoc");
  WifiExperiment exp = make_uji_experiment(bench::uji_config());
  std::printf("world: %zu buildings x 4 floors, %zu APs | train/val/test = "
              "%zu/%zu/%zu\n\n",
              exp.world.plan.building_count(), exp.wifi->num_aps(),
              exp.split.train.size(), exp.split.val.size(), exp.split.test.size());

  NobleWifiModel model(bench::noble_wifi_config());
  const auto train_result = model.fit(exp.split.train, &exp.split.val);
  std::printf("trained %zu epochs, %zu fine classes, %zu coarse classes\n",
              train_result.epochs_run, model.quantizer().num_fine_classes(),
              model.quantizer().num_coarse_classes());

  const auto report = evaluate_wifi(model.predict(exp.split.test), exp.split.test,
                                    model.quantizer(), &exp.world.plan);

  print_table_header("TABLE I: NObLe on UJIIndoorLoc-like campus");
  print_metric_row("BUILDING accuracy (%)", "99.74", 100.0 * report.building_accuracy);
  print_metric_row("FLOOR accuracy (%)", "94.25", 100.0 * report.floor_accuracy);
  print_metric_row("QUANTIZE CLASS accuracy (%)", "61.63", 100.0 * report.class_accuracy);
  print_metric_row("MEAN position error (m)", "4.45", report.errors.mean);
  print_metric_row("MEDIAN position error (m)", "0.23", report.errors.median);
  std::printf("\nauxiliary: p90=%.2f m  rms=%.2f m  on-map=%.1f%%\n", report.errors.p90,
              report.errors.rms, 100.0 * report.structure_score);
  return 0;
}
