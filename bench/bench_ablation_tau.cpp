// Ablation — quantization granularity tau (§III-B / DESIGN.md §5.1).
//
// Sweeps the fine cell side: smaller tau gives more classes (lower class
// accuracy, smaller in-cell decode error); larger tau the reverse. The paper
// fixes tau < 0.2 m on real UJI; this bench shows the trade-off curve on the
// synthetic substrate.
#include <cstdio>

#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("ablation_tau", "design-choice ablation: grid side tau");
  auto cfg = bench::uji_config();
  cfg.total_samples = 5000;  // sweep budget
  WifiExperiment exp = make_uji_experiment(cfg);

  std::printf("%8s %10s %12s %12s %12s %12s\n", "tau (m)", "classes", "class acc(%)",
              "mean (m)", "median (m)", "p90 (m)");
  for (const double tau : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0}) {
    auto ncfg = bench::noble_wifi_config();
    ncfg.quantize.tau = tau;
    ncfg.quantize.coarse_l = tau * 5.0;
    ncfg.epochs = 20;
    NobleWifiModel model(ncfg);
    model.fit(exp.split.train, &exp.split.val);
    const auto report = evaluate_wifi(model.predict(exp.split.test), exp.split.test,
                                      model.quantizer(), &exp.world.plan);
    std::printf("%8.1f %10zu %12.2f %12.2f %12.2f %12.2f\n", tau,
                model.quantizer().num_fine_classes(), 100.0 * report.class_accuracy,
                report.errors.mean, report.errors.median, report.errors.p90);
  }
  std::printf("\nexpected shape: class accuracy rises with tau while the decode "
              "floor (median) grows ~ tau/2; the error minimum sits between.\n");
  return 0;
}
