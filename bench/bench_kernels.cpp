// Kernel-layer bench: bit-identity gates plus scalar-vs-dispatched speedup.
//
// Two tiers of acceptance, both self-gating (non-zero exit on violation):
//
//  1. Identity — at every batch size in {1, 8, 64}, fp32 and int8 outputs of
//     the dispatched kernels (packed and unpacked) must be *bitwise* equal to
//     the scalar reference. This bar never skips: on a host without AVX2 the
//     dispatched path IS the scalar path and the comparison degenerates to a
//     self-check, which still guards the packed-vs-unpacked permutation.
//
//  2. Speedup — when the dispatched ISA is AVX2, the packed int8 forward at
//     batch 8 (the engine's typical micro-batch) must run >= 2x faster than
//     the scalar reference. Skipped with a notice when AVX2 is unavailable;
//     the identity bar above still ran.
//
// Knobs: NOBLE_KERNEL (scalar|avx2|auto) pins the dispatched ISA — forcing
// `scalar` makes the speedup bar trivially skip (dispatched == reference);
// NOBLE_SCALE shrinks the timing iteration counts for smoke runs;
// NOBLE_KERNEL_ITERS overrides the timed iteration count directly.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "linalg/matrix.h"
#include "support/bench_util.h"

namespace {

using noble::Rng;
using noble::linalg::Mat;
namespace kernels = noble::kernels;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatches[] = {1, 8, 64};

Mat random_mat(std::size_t rows, std::size_t cols, Rng& rng) {
  Mat m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      // ~30% exact zeros to exercise the zero-skip path like real RSSI
      // feature rows do.
      if (rng.bernoulli(0.3)) continue;
      m(i, j) = static_cast<float>(rng.uniform(-1.5, 1.5));
    }
  }
  return m;
}

bool bitwise_equal(const Mat& a, const Mat& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Seconds for the best of `repeats` timed runs of `iters` calls to fn.
template <typename Fn>
double best_seconds(int repeats, int iters, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

struct TestMatrices {
  Mat w;                                // k x n fp32 weights
  std::vector<float> bias;              // n
  kernels::PackedDense packed;          // pre-packed fp32
  std::vector<std::int8_t> qweights;    // column-major int8
  std::vector<float> qscales;           // per-output-channel scales
  kernels::PackedQuantized qpacked;     // pre-packed int8
  std::vector<Mat> inputs;              // one per batch size
};

TestMatrices build_matrices(std::size_t k, std::size_t n, Rng& rng) {
  TestMatrices m;
  m.w = random_mat(k, n, rng);
  m.bias.resize(n);
  for (auto& b : m.bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
  m.packed = kernels::pack_dense(m.w);
  m.qweights.resize(k * n);
  m.qscales.resize(n);
  for (auto& v : m.qweights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  for (auto& s : m.qscales) s = static_cast<float>(rng.uniform(0.001, 0.1));
  m.qpacked = kernels::pack_quantized(
      kernels::QuantizedView{m.qweights.data(), m.qscales.data(), k, n});
  for (const std::size_t batch : kBatches) {
    m.inputs.push_back(random_mat(batch, k, rng));
  }
  return m;
}

}  // namespace

int main() {
  noble::bench::print_banner(
      "kernel dispatch & packing",
      "PR 6 kernel layer: scalar<->AVX2 bit-identity + int8 speedup");

  const kernels::Isa dispatched = kernels::active_isa();
  std::printf("dispatched ISA: %s\n\n", kernels::isa_name(dispatched));

  Rng rng(2021);
  // An aligned shape near the serving model's hidden layers and a ragged one
  // that exercises every tail path.
  const struct { std::size_t k, n; } shapes[] = {{256, 512}, {129, 131}};

  // -------------------------------------------------------------------------
  // Tier 1: bitwise identity at every batch size. Never skipped.
  // -------------------------------------------------------------------------
  int failures = 0;
  for (const auto& shape : shapes) {
    TestMatrices m = build_matrices(shape.k, shape.n, rng);
    kernels::Epilogue ep;
    ep.bias = m.bias.data();
    ep.act = kernels::Activation::kTanh;
    for (std::size_t bi = 0; bi < std::size(kBatches); ++bi) {
      const Mat& x = m.inputs[bi];
      Mat ref_dense, ref_quant;
      kernels::force_isa(kernels::Isa::kScalar);
      kernels::dense_forward(x, m.w.data(), shape.k, shape.n, ep, ref_dense);
      kernels::quantized_forward(
          x, kernels::QuantizedView{m.qweights.data(), m.qscales.data(), shape.k, shape.n},
          ep, ref_quant);
      kernels::force_isa(dispatched);
      Mat got_dense, got_packed, got_quant, got_qpacked;
      kernels::dense_forward(x, m.w.data(), shape.k, shape.n, ep, got_dense);
      kernels::dense_forward(x, m.packed, ep, got_packed);
      kernels::quantized_forward(
          x, kernels::QuantizedView{m.qweights.data(), m.qscales.data(), shape.k, shape.n},
          ep, got_quant);
      kernels::quantized_forward(x, m.qpacked, ep, got_qpacked);
      const struct { const char* name; bool ok; } checks[] = {
          {"fp32 unpacked", bitwise_equal(ref_dense, got_dense)},
          {"fp32 packed", bitwise_equal(ref_dense, got_packed)},
          {"int8 unpacked", bitwise_equal(ref_quant, got_quant)},
          {"int8 packed", bitwise_equal(ref_quant, got_qpacked)},
      };
      for (const auto& check : checks) {
        if (!check.ok) {
          std::printf("IDENTITY FAIL %s k=%zu n=%zu batch=%zu (%s vs scalar)\n",
                      check.name, shape.k, shape.n, kBatches[bi],
                      kernels::isa_name(dispatched));
          ++failures;
        }
      }
    }
  }
  if (failures == 0) {
    std::printf("identity: PASS — dispatched (%s) bitwise == scalar for fp32 "
                "and int8, packed and unpacked, batches 1/8/64\n\n",
                kernels::isa_name(dispatched));
  }

  // -------------------------------------------------------------------------
  // Tier 2: timing, scalar vs dispatched. Speedup bar gates int8 @ batch 8.
  // -------------------------------------------------------------------------
  const int iters = static_cast<int>(noble::env_int(
      "NOBLE_KERNEL_ITERS",
      std::max(20L, static_cast<long>(200.0 * noble::global_scale()))));
  const int repeats = 3;
  const std::size_t k = 256, n = 512;
  TestMatrices m = build_matrices(k, n, rng);
  // Bias-only epilogue: the timed rows measure the GEMM kernels themselves.
  // Activation epilogues are deliberately shared scalar code (bit-identity
  // contract) and would dilute the speedup being gated; their parity is
  // covered by the tier-1 identity gates above, which run with tanh fused.
  kernels::Epilogue ep;
  ep.bias = m.bias.data();
  double int8_speedup_b8 = 0.0;
  std::printf("%-22s %8s %14s %14s %9s\n", "kernel (256x512)", "batch",
              "scalar us/it", "dispatch us/it", "speedup");
  for (std::size_t bi = 0; bi < std::size(kBatches); ++bi) {
    const Mat& x = m.inputs[bi];
    Mat y;
    kernels::force_isa(kernels::Isa::kScalar);
    const double dense_scalar = best_seconds(
        repeats, iters, [&] { kernels::dense_forward(x, m.packed, ep, y); });
    const double quant_scalar = best_seconds(
        repeats, iters, [&] { kernels::quantized_forward(x, m.qpacked, ep, y); });
    kernels::force_isa(dispatched);
    const double dense_fast = best_seconds(
        repeats, iters, [&] { kernels::dense_forward(x, m.packed, ep, y); });
    const double quant_fast = best_seconds(
        repeats, iters, [&] { kernels::quantized_forward(x, m.qpacked, ep, y); });
    const double us = 1e6 / iters;
    std::printf("%-22s %8zu %14.1f %14.1f %8.2fx\n", "fp32 packed+bias",
                kBatches[bi], dense_scalar * us, dense_fast * us,
                dense_scalar / dense_fast);
    std::printf("%-22s %8zu %14.1f %14.1f %8.2fx\n", "int8 packed+bias",
                kBatches[bi], quant_scalar * us, quant_fast * us,
                quant_scalar / quant_fast);
    if (kBatches[bi] == 8) int8_speedup_b8 = quant_scalar / quant_fast;
  }
  std::printf("\n");

  if (dispatched == kernels::Isa::kAvx2) {
    std::printf("speedup gate: int8 packed @ batch 8 = %.2fx (bar: >= 2.0x)\n",
                int8_speedup_b8);
    if (int8_speedup_b8 < 2.0) {
      std::printf("SPEEDUP FAIL: AVX2 int8 under 2x scalar\n");
      ++failures;
    }
  } else {
    std::printf("speedup gate: skipped (dispatched ISA is %s, not avx2); "
                "identity gates above still ran\n",
                kernels::isa_name(dispatched));
  }

  kernels::force_isa(std::nullopt);
  if (failures != 0) {
    std::printf("\nbench_kernels: %d FAILURE(S)\n", failures);
    return 1;
  }
  std::printf("\nbench_kernels: all gates passed\n");
  return 0;
}
