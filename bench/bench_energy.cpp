// §IV-C and §V-D — energy measurements.
//
// Paper values (Nvidia Jetson TX2):
//  * Wi-Fi inference: 0.00518 J, 2 ms latency.
//  * IMU inference: 0.08599 J, 5 ms; sensors 0.1356 J per 8 s path;
//    total ~0.22159 J vs GPS 5.925 J per fix -> ~27x less energy.
// The analytic EnergyModel (calibrated TX2 profile) reproduces the
// bookkeeping; real wall-clock latency of this build's inference is also
// measured for context.
#include <chrono>
#include <cstdio>

#include "common/stats.h"
#include "sim/energy.h"
#include "support/bench_util.h"

namespace {

/// Wall-clock seconds per single-row inference, median of `reps`.
template <typename F>
double time_inference(F&& f, int reps = 30) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return noble::median(std::move(times));
}

}  // namespace

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("energy", "§IV-C Wi-Fi energy + §V-D IMU/GPS energy");
  const sim::EnergyModel energy(sim::jetson_tx2_profile());

  // ---- Wi-Fi model (§IV-C) -------------------------------------------------
  auto wifi_cfg = bench::uji_config();
  wifi_cfg.total_samples = 2500;  // energy numbers don't need the full run
  WifiExperiment wexp = make_uji_experiment(wifi_cfg);
  auto ncfg = bench::noble_wifi_config();
  ncfg.epochs = 10;
  NobleWifiModel wifi(ncfg);
  wifi.fit(wexp.split.train);

  // Paper's model footprint: 520 APs, 2x128 hidden, ~2000 output labels.
  const std::size_t paper_wifi_macs = 520 * 128 + 128 * 128 + 128 * 2000;
  const auto paper_wifi = energy.inference(paper_wifi_macs, paper_wifi_macs * 4);
  const auto ours_wifi = energy.inference(wifi.macs_per_inference(),
                                          wifi.parameter_bytes());

  data::WifiDataset one;
  one.num_aps = wexp.split.test.num_aps;
  one.samples = {wexp.split.test.samples.front()};
  const double wifi_wall = time_inference([&] { (void)wifi.predict(one); });

  print_table_header("§IV-C: Wi-Fi inference energy (Jetson TX2 model)");
  print_metric_row("energy per inference (J)", "0.00518", paper_wifi.energy_j);
  print_metric_row("latency per inference (ms)", "2", paper_wifi.latency_s * 1e3);
  std::printf("\nthis build's model: %zu MACs -> %.5f J, %.2f ms (TX2 model); "
              "measured wall clock on this host: %.3f ms\n",
              wifi.macs_per_inference(), ours_wifi.energy_j, ours_wifi.latency_s * 1e3,
              wifi_wall * 1e3);

  // ---- IMU model (§V-D) ----------------------------------------------------
  auto imu_cfg = bench::imu_config();
  imu_cfg.num_paths = 1200;
  ImuExperiment iexp = make_imu_experiment(imu_cfg);
  auto icfg = bench::noble_imu_config();
  icfg.epochs = 8;
  NobleImuTracker imu(icfg);
  imu.fit(iexp.split.train);

  const double path_seconds = 8.0;  // paper's example path
  // Paper's inference figure corresponds to the full projection over 768
  // raw readings x 50 segments. A projection width of 256 reproduces the
  // published 0.086 J / 5 ms operating point on the calibrated profile
  // (the paper does not state the width; ~59 MMAC total is implied).
  const std::size_t paper_imu_macs = 50 * (768 * 6 * 256) + 12800 * 128 + 128 * 128 +
                                     128 * 2 + 179 * 128 + 128 * 177;
  const auto paper_imu = energy.inference(paper_imu_macs, paper_imu_macs * 4);
  const double paper_total = energy.imu_sensing(path_seconds) + 0.08599;

  data::ImuDataset ione;
  ione.segment_dim = iexp.split.test.segment_dim;
  ione.max_segments = iexp.split.test.max_segments;
  ione.paths = {iexp.split.test.paths.front()};
  const double imu_wall = time_inference([&] { (void)imu.predict(ione); });

  print_table_header("§V-D: IMU tracking energy per 8 s path (Jetson TX2 model)");
  print_metric_row("inference energy (J)", "0.08599", paper_imu.energy_j);
  print_metric_row("inference latency (ms)", "5", paper_imu.latency_s * 1e3);
  print_metric_row("IMU sensing energy (J)", "0.1356", energy.imu_sensing(path_seconds));
  print_metric_row("total tracking energy (J)", "0.22159", paper_total);
  print_metric_row("GPS fix energy (J) [8]", "5.925", energy.gps_fix());
  print_metric_row("GPS / NObLe energy ratio (x)", "27", energy.gps_fix() / paper_total);
  std::printf("\nthis build's model: %zu MACs -> %.5f J (TX2 model); measured wall "
              "clock on this host: %.3f ms\n",
              imu.macs_per_inference(),
              energy
                  .imu_tracking_total(path_seconds, imu.macs_per_inference(),
                                      imu.parameter_bytes())
                  ,
              imu_wall * 1e3);
  return 0;
}
