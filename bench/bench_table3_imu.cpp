// Table III — position error for IMU tracking.
//
// Paper values (mean/median m): Deep Regression Model 10.41/10.05,
// [8] (map-assisted heuristic) 4.3/-, NObLe 2.52/0.4.
#include <cstdio>

#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("table3_imu", "Table III: position error for IMU tracking");
  ImuExperiment exp = make_imu_experiment(bench::imu_config());
  std::printf("track 160 m x 60 m, %zu reference points | train/val/test = "
              "%zu/%zu/%zu paths (paper: 4389/1096/1372)\n\n",
              exp.world.reference_points.size(), exp.split.train.size(),
              exp.split.val.size(), exp.split.test.size());

  print_table_header("TABLE III: position error distance (m) for IMU tracking");

  {
    DeepRegressionImu reg(bench::regression_config());
    reg.fit(exp.split.train, &exp.split.val);
    const auto report = evaluate_imu(reg.predict(exp.split.test), exp.split.test,
                                     &exp.world.walkways);
    bench::print_position_row("DEEP REGRESSION MODEL", report, "10.41", "10.05");
  }
  {
    // [8] was measured on its own testbed, not on the paper's walks. A
    // segment-bank matcher evaluated on the random path split would
    // trivially memorize the duplicated inter-reference segments (§V-A
    // construction), so this baseline is evaluated on paths from a fresh,
    // disjoint walk — its honest generalization setting.
    auto held_out_cfg = bench::imu_config();
    held_out_cfg.seed += 7777;
    ImuExperiment held_out = make_imu_experiment(held_out_cfg);
    MapAssistedDeadReckoning dr({}, exp.world.walkways);
    dr.fit(exp.split.train);
    const auto report = evaluate_imu(dr.predict(held_out.split.test),
                                     held_out.split.test, &exp.world.walkways);
    bench::print_position_row("MAP DEAD RECKONING [8]*", report, "4.3", "n/a");
  }
  {
    NobleImuTracker noble(bench::noble_imu_config());
    const auto train_result = noble.fit(exp.split.train);
    const auto preds = noble.predict(exp.split.test);
    const auto report =
        evaluate_imu(positions_of(preds), exp.split.test, &exp.world.walkways);
    bench::print_position_row("NOBLE", report, "2.52", "0.4");
    std::printf("\nNObLe detail: %zu neighborhood classes (tau=%.1f m), "
                "final class loss %.3f, displacement loss %.4f\n",
                noble.num_classes(), noble.config().quantize.tau,
                train_result.class_loss_history.back(),
                train_result.displacement_loss_history.back());
    std::printf("* evaluated on a disjoint walk (see source comment); the paper "
                "quotes [8]'s 4.3 m from its own 163 m x 62 m testbed.\n");
  }
  return 0;
}
