// Serve-path latency: single-query locate() vs batched locate_batch()
// through the noble::serve Wi-Fi localizer, reported as per-query
// p50/p95/p99 from the shared noble::Histogram latency layout.
//
// This is the deployment-facing counterpart of bench_inference_latency:
// instead of timing a bare network forward, it times the full request path
// a device runs — raw RSSI scan in, normalized features, network, decode,
// Fix out — and quantifies how much a batch window amortizes the GEMM.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "serve/artifact.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace noble;

  bench::print_banner("serve_latency", "deployment single-query vs batched serving");

  core::WifiExperiment experiment = core::make_uji_experiment(bench::uji_config());
  core::NobleWifiModel model(bench::noble_wifi_config());
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  std::printf("localizer: %zu APs, %zu output labels, %zu test queries\n\n",
              localizer.num_aps(), model.layout().total(), queries.size());

  // Warm-up pass (page in weights, stabilize allocator).
  for (std::size_t i = 0; i < std::min<std::size_t>(64, queries.size()); ++i) {
    (void)localizer.locate(queries[i]);
  }

  // Single-query serving: one timed locate() per request, recorded into the
  // shared log-binned latency histogram (constant memory, no sample copies).
  Histogram single_us = bench::latency_histogram();
  for (const auto& q : queries) {
    const auto t0 = Clock::now();
    const serve::Fix fix = localizer.locate(q);
    single_us.record(seconds_since(t0) * 1e6);
    (void)fix;
  }
  bench::print_latency_row("single-query", 1, single_us);

  // Batched serving: per-query latency amortized over one locate_batch call
  // per window. Every query in a window observes the whole window's time.
  for (const std::size_t batch : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    Histogram batched_us = bench::latency_histogram();
    for (std::size_t start = 0; start + batch <= queries.size(); start += batch) {
      const std::vector<serve::RssiVector> window(
          queries.begin() + static_cast<std::ptrdiff_t>(start),
          queries.begin() + static_cast<std::ptrdiff_t>(start + batch));
      const auto t0 = Clock::now();
      const auto fixes = localizer.locate_batch(window);
      const double us = seconds_since(t0) * 1e6;
      for (std::size_t i = 0; i < fixes.size(); ++i) {
        batched_us.record(us / static_cast<double>(batch));
      }
    }
    if (batched_us.count() > 0) bench::print_latency_row("batched", batch, batched_us);
  }

  std::printf("\nnote: batched rows divide the window's wall time evenly per "
              "query; queuing delay to fill a window is not modeled.\n");
  return 0;
}
