// §IV-B (text) — IPIN2016 single-building results.
//
// Paper values: NObLe mean 1.13 m / median 0.046 m; Deep Regression mean
// 3.83 m; best IndoorLocPlatform ranking entry 3.71 m.
#include <cstdio>

#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("ipin2016", "§IV-B: IPIN2016 single-building results");
  WifiExperiment exp = make_ipin_experiment(bench::ipin_config());
  std::printf("single building, 3 floors, %zu APs | train/val/test = %zu/%zu/%zu\n\n",
              exp.wifi->num_aps(), exp.split.train.size(), exp.split.val.size(),
              exp.split.test.size());

  // Small space: a finer grid matches the paper's sub-meter medians.
  auto ncfg = bench::noble_wifi_config();
  ncfg.quantize.tau = 1.0;
  ncfg.quantize.coarse_l = 5.0;
  NobleWifiModel noble(ncfg);
  noble.fit(exp.split.train, &exp.split.val);
  const auto noble_report = evaluate_wifi(noble.predict(exp.split.test), exp.split.test,
                                          noble.quantizer(), &exp.world.plan);

  DeepRegressionWifi reg(bench::regression_config());
  reg.fit(exp.split.train, &exp.split.val);
  const auto reg_report =
      evaluate_positions(reg.predict(exp.split.test), exp.split.test, &exp.world.plan);

  print_table_header("IPIN2016-like single building (mean / median m)");
  print_metric_row("NOBLE mean error (m)", "1.13", noble_report.errors.mean);
  print_metric_row("NOBLE median error (m)", "0.046", noble_report.errors.median);
  print_metric_row("NOBLE floor accuracy (%)", "n/a", 100.0 * noble_report.floor_accuracy);
  print_metric_row("DEEP REGRESSION mean error (m)", "3.83", reg_report.errors.mean);
  print_metric_row("DEEP REGRESSION median (m)", "n/a", reg_report.errors.median);
  std::printf("\n(best mean on the IndoorLocPlatform ranking cited by the paper: "
              "3.71 m)\n");
  return 0;
}
