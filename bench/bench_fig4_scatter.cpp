// Fig. 1 + Fig. 4 — predicted-coordinate scatter plots.
//
// Emits one CSV per panel (ground truth = Fig. 1 right; Deep Regression,
// Regression Projection, Isomap Regression, NObLe = Fig. 4 a-d) and prints
// the quantitative structure comparison: fraction of predictions on the
// accessible map and distance-to-corridor percentiles. The paper's visual
// claim is that NObLe's output "has a sharper resemblance to the building
// structures".
#include <cstdio>

#include "common/csv.h"
#include "support/bench_util.h"

namespace {

using noble::geo::Point2;

void dump_csv(const std::string& name, const std::vector<Point2>& pts) {
  noble::CsvWriter writer({"x", "y"});
  for (const auto& p : pts) writer.add_numeric_row({p.x, p.y});
  const std::string path = noble::bench::artifact_path(name);
  if (writer.save(path)) {
    std::printf("wrote %s (%zu points)\n", path.c_str(), pts.size());
  } else {
    std::printf("FAILED to write %s\n", path.c_str());
  }
}

/// Mean distance from predictions to the corridor network of their nearest
/// building — the "resemblance to building structure" number.
double mean_corridor_distance(const std::vector<Point2>& pts,
                              const noble::geo::IndoorWorld& world) {
  double total = 0.0;
  for (const auto& p : pts) {
    double best = 1e300;
    for (const auto& c : world.corridors) {
      best = std::min(best, c.graph.distance_to_path(p));
    }
    total += best;
  }
  return pts.empty() ? 0.0 : total / static_cast<double>(pts.size());
}

}  // namespace

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("fig4_scatter",
                      "Fig. 1 (ground truth) and Fig. 4 (a-d predicted scatter)");
  WifiExperiment exp = make_uji_experiment(bench::uji_config());

  // Fig. 1 (right): offline collected ground-truth coordinates.
  std::vector<geo::Point2> truth;
  for (const auto& s : exp.split.test.samples) truth.push_back(s.position);
  dump_csv("fig1_truth.csv", truth);

  struct Panel {
    std::string name;
    std::string file;
    std::vector<geo::Point2> points;
  };
  std::vector<Panel> panels;

  {
    DeepRegressionWifi reg(bench::regression_config());
    reg.fit(exp.split.train, &exp.split.val);
    panels.push_back({"(a) Deep Regression", "fig4a_deep_regression.csv",
                      reg.predict(exp.split.test)});
  }
  {
    RegressionProjectionWifi proj(bench::regression_config(), exp.world.plan);
    proj.fit(exp.split.train, &exp.split.val);
    panels.push_back({"(b) Regression Projection", "fig4b_projection.csv",
                      proj.predict(exp.split.test)});
  }
  {
    ManifoldRegressionConfig mcfg;
    mcfg.method = ManifoldMethod::kIsomap;
    mcfg.regression = bench::regression_config();
    ManifoldRegressionWifi isomap(mcfg);
    isomap.fit(exp.split.train, &exp.split.val);
    panels.push_back({"(c) Isomap Regression", "fig4c_isomap.csv",
                      isomap.predict(exp.split.test)});
  }
  {
    NobleWifiModel noble(bench::noble_wifi_config());
    noble.fit(exp.split.train, &exp.split.val);
    panels.push_back(
        {"(d) NObLe", "fig4d_noble.csv", positions_of(noble.predict(exp.split.test))});
  }

  std::printf("\n%-28s %14s %22s\n", "PANEL", "on-map (%)", "mean dist-to-corridor (m)");
  const double truth_corridor = mean_corridor_distance(truth, exp.world);
  std::printf("%-28s %14.1f %22.2f   <- ground truth\n", "Fig.1 truth",
              100.0 * data::structure_score(truth, exp.world.plan), truth_corridor);
  for (auto& panel : panels) {
    dump_csv(panel.file, panel.points);
    std::printf("%-28s %14.1f %22.2f\n", panel.name.c_str(),
                100.0 * data::structure_score(panel.points, exp.world.plan),
                mean_corridor_distance(panel.points, exp.world));
  }
  std::printf("\npaper's claim: NObLe's scatter resembles the structure most "
              "(lowest corridor distance, highest on-map fraction).\n");
  return 0;
}
