// Mixed-workload admission bench: a bulk re-localization flood against
// steady interactive traffic, with and without class-aware admission.
//
// Phase "priority": the shard reserves interactive headroom (bulk_cap <
// queue_cap), workers drain interactive entries first, and the bulk stream
// carries a per-submission deadline. Phase "baseline": the same engine
// sizing with no class caps and every submission default-class — the
// uniform-rejection behavior this PR replaces.
//
// The acceptance gates run right here (exit non-zero on violation), so the
// CI smoke run is the proof, not just a trace:
//   1. priority-phase interactive rejections == 0 (reserved headroom held);
//   2. priority-phase bulk shed > 0 (the flood was actually shed);
//   3. priority-phase interactive p99 strictly below the no-priority
//      baseline p99 (priority drain pays off end to end);
//   4. a post-flood interactive spot check stays bit-identical to direct
//      locate() (class and deadline never change a served result).
//
// Knobs: the shared NOBLE_ENGINE_* set (bench::engine_config_from_env —
// NOBLE_ENGINE_CLASS_CAPS and NOBLE_ENGINE_DEADLINE_US included),
// NOBLE_FLEET_ENGINES, NOBLE_ADMISSION_INTERACTIVE_CLIENTS /
// NOBLE_ADMISSION_BULK_CLIENTS / NOBLE_ADMISSION_REQUESTS /
// NOBLE_ADMISSION_PACE_US / NOBLE_ADMISSION_BULK_DEADLINE_US, plus
// NOBLE_SCALE / NOBLE_EPOCHS experiment sizing.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fleet/router.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

int main() {
  using namespace noble;

  bench::print_banner("admission_classes",
                      "class/deadline admission + fleet load shedding");

  core::WifiExperiment experiment = core::make_uji_experiment(bench::uji_config());
  core::NobleWifiModel model(bench::noble_wifi_config());
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  engine::EngineConfig defaults;
  defaults.workers = 0;  // auto: min(hardware, 8)
  defaults.max_batch = 16;
  defaults.max_wait_us = 100;
  defaults.queue_cap = 256;
  defaults.bulk_cap = 64;  // 192 slots reserved for interactive traffic
  const engine::EngineConfig cfg = bench::engine_config_from_env(defaults);
  const auto engines_per_shard =
      static_cast<std::size_t>(env_int("NOBLE_FLEET_ENGINES", 1));

  bench::MixedLoadConfig load;
  load.interactive_clients = static_cast<std::size_t>(
      env_int("NOBLE_ADMISSION_INTERACTIVE_CLIENTS", 2));
  load.bulk_clients =
      static_cast<std::size_t>(env_int("NOBLE_ADMISSION_BULK_CLIENTS", 2));
  // The 384-per-client floor keeps the p99 gate statistically meaningful
  // even at smoke scale: with 2 clients the comparison rests on ~768
  // samples per phase, not a handful a scheduler hiccup could flip.
  load.interactive_requests = static_cast<std::size_t>(
      env_int("NOBLE_ADMISSION_REQUESTS", static_cast<long>(scaled(1000, 384))));
  load.bulk_requests = 4 * load.interactive_requests;
  load.interactive_pace_us =
      static_cast<std::uint64_t>(env_int("NOBLE_ADMISSION_PACE_US", 200));
  load.bulk_deadline_us = static_cast<std::uint64_t>(
      env_int("NOBLE_ADMISSION_BULK_DEADLINE_US", 5000));
  load.bulk_inflight_window = 256;  // flood, do not self-throttle
  load.bulk_sustain = true;  // keep flooding until the interactive run ends

  const std::string key = "campus";
  const std::vector<std::string> keys{key};
  std::printf("fleet: 1 shard x %zu engines | engine: %s\n", engines_per_shard,
              bench::describe_engine_config(cfg).c_str());
  std::printf("load: %zu interactive clients x %zu (pace %llu us) vs "
              "%zu bulk clients x %zu (deadline %llu us)\n\n",
              load.interactive_clients, load.interactive_requests,
              static_cast<unsigned long long>(load.interactive_pace_us),
              load.bulk_clients, load.bulk_requests,
              static_cast<unsigned long long>(load.bulk_deadline_us));

  // Warm-up.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, queries.size()); ++i) {
    (void)localizer.locate(queries[i]);
  }

  const auto run_phase = [&](bool classed, std::size_t* spot_mismatches) {
    fleet::Router router;
    fleet::ShardConfig shard;
    shard.key = key;
    shard.engines = engines_per_shard;
    shard.engine = cfg;
    if (!classed) {
      shard.engine.interactive_cap = 0;  // uniform admission, no reservation
      shard.engine.bulk_cap = 0;
    }
    router.add_shard(shard, localizer);
    bench::MixedLoadConfig phase_load = load;
    phase_load.classed = classed;
    bench::MixedLoadReport report =
        bench::run_mixed_load(router, keys, queries, phase_load);
    if (spot_mismatches != nullptr) {
      // Post-flood correctness: the shard that just shed a bulk flood must
      // still answer interactive scans bit-identically to direct locate().
      *spot_mismatches = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(8, queries.size()); ++i) {
        engine::Submission s = router.submit(key, queries[i]);
        if (!s.accepted()) {
          ++*spot_mismatches;
          continue;
        }
        if (!(s.result.get() == localizer.locate(queries[i]))) {
          ++*spot_mismatches;
        }
      }
    }
    const fleet::FleetStats stats = router.stats();
    std::printf("phase %-9s %9.0f qps aggregate, wall %.2f s\n",
                classed ? "priority:" : "baseline:", report.qps,
                report.wall_seconds);
    bench::print_class_load_row("interactive", report.interactive);
    bench::print_class_load_row("bulk", report.bulk);
    std::printf("  fleet view:    interactive %llu/%llu/%llu ok/shed/expired, "
                "bulk %llu/%llu/%llu (engine-side, merged)\n\n",
                static_cast<unsigned long long>(stats.total.interactive.accepted),
                static_cast<unsigned long long>(stats.total.interactive.rejected),
                static_cast<unsigned long long>(stats.total.interactive.expired),
                static_cast<unsigned long long>(stats.total.bulk.accepted),
                static_cast<unsigned long long>(stats.total.bulk.rejected),
                static_cast<unsigned long long>(stats.total.bulk.expired));
    return report;
  };

  std::size_t spot_mismatches = 0;
  const bench::MixedLoadReport priority = run_phase(true, &spot_mismatches);
  const bench::MixedLoadReport baseline = run_phase(false, nullptr);

  const double priority_p99 = priority.interactive.latency_us.percentile(99.0);
  const double baseline_p99 = baseline.interactive.latency_us.percentile(99.0);
  const std::uint64_t bulk_shed = priority.bulk.rejected + priority.bulk.expired;
  const bool interactive_clean = priority.interactive.rejected == 0;
  const bool p99_improved = priority_p99 < baseline_p99;

  std::printf("verdict: interactive rejections %llu (want 0), bulk shed %llu "
              "(want > 0),\n         interactive p99 %.1f us vs baseline %.1f us "
              "(want strictly below), spot mismatches %zu (want 0)\n",
              static_cast<unsigned long long>(priority.interactive.rejected),
              static_cast<unsigned long long>(bulk_shed), priority_p99,
              baseline_p99, spot_mismatches);
  return interactive_clean && bulk_shed > 0 && p99_improved && spot_mismatches == 0
             ? 0
             : 1;
}
