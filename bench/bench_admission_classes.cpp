// Mixed-workload admission bench: a bulk re-localization flood against
// steady interactive traffic, with and without class-aware admission.
//
// Phase "priority": the shard reserves interactive headroom (bulk_cap <
// queue_cap), workers drain interactive entries first, and the bulk stream
// carries a per-submission deadline. Phase "baseline": the same engine
// sizing with no class caps and every submission default-class — the
// uniform-rejection behavior this PR replaces.
//
// Two more phases measure the PR 9 scheduling work. Phase "goodput": the
// same deadline-diverse bulk backlog is drained twice — bulk lane FIFO vs
// earliest-deadline-first — at equal offered load (identical submission
// order and per-entry deadline budgets, deterministically scrambled), with
// a paced interactive prober running against the reserved headroom the
// whole time. The deadline spread is self-calibrated from a measured
// no-deadline drain of the same backlog, so the phase lands in the
// contended regime on any host. Phase "coalesce": >= 8 concurrent IMU
// tracks each run a closed loop with a small in-flight window (a live
// device pipelining a couple of segments) through a one-worker engine with
// cross-session coalescing off (serialized-per-track) then on, and every
// fix is compared in submission order against a direct TrackingSession
// replay — asserting bit-identity and per-session FIFO at once.
//
// The acceptance gates run right here (exit non-zero on violation), so the
// CI smoke run is the proof, not just a trace:
//   1. priority-phase interactive rejections == 0 (reserved headroom held);
//   2. priority-phase bulk shed > 0 (the flood was actually shed);
//   3. priority-phase interactive p99 strictly below the no-priority
//      baseline p99 (priority drain pays off end to end);
//   4. a post-flood interactive spot check stays bit-identical to direct
//      locate() (class and deadline never change a served result);
//   5. EDF completes strictly more bulk work before its deadline than FIFO
//      at equal offered load (goodput, not just throughput);
//   6. the EDF phase's interactive prober sees zero rejections and zero
//      result mismatches (reordering bulk never regresses interactive);
//   7. coalesced IMU throughput >= 1.5x the serialized drain at >= 8
//      concurrent sessions, with every fix bit-identical to a direct
//      TrackingSession replay and at least one cross-session batch run.
//
// The goodput/coalesce phase rows also land in admission_goodput.csv
// (NOBLE_BENCH_OUT) so CI ships the numbers as an artifact.
//
// Knobs: the shared NOBLE_ENGINE_* set (bench::engine_config_from_env —
// NOBLE_ENGINE_CLASS_CAPS, NOBLE_ENGINE_DEADLINE_US, NOBLE_ENGINE_EDF and
// NOBLE_ENGINE_COALESCE included), NOBLE_FLEET_ENGINES,
// NOBLE_ADMISSION_INTERACTIVE_CLIENTS / NOBLE_ADMISSION_BULK_CLIENTS /
// NOBLE_ADMISSION_REQUESTS / NOBLE_ADMISSION_PACE_US /
// NOBLE_ADMISSION_BULK_DEADLINE_US, NOBLE_GOODPUT_BACKLOG,
// NOBLE_COALESCE_SESSIONS / NOBLE_COALESCE_UPDATES /
// NOBLE_COALESCE_WINDOW, plus NOBLE_SCALE /
// NOBLE_EPOCHS experiment sizing.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/noble_imu.h"
#include "engine/engine.h"
#include "fleet/router.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

int main() {
  using namespace noble;

  bench::print_banner("admission_classes",
                      "class/deadline admission + fleet load shedding");

  core::WifiExperiment experiment = core::make_uji_experiment(bench::uji_config());
  core::NobleWifiModel model(bench::noble_wifi_config());
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  engine::EngineConfig defaults;
  defaults.workers = 0;  // auto: min(hardware, 8)
  defaults.max_batch = 16;
  defaults.max_wait_us = 100;
  defaults.queue_cap = 256;
  defaults.bulk_cap = 64;  // 192 slots reserved for interactive traffic
  const engine::EngineConfig cfg = bench::engine_config_from_env(defaults);
  const auto engines_per_shard =
      static_cast<std::size_t>(env_int("NOBLE_FLEET_ENGINES", 1));

  bench::MixedLoadConfig load;
  load.interactive_clients = static_cast<std::size_t>(
      env_int("NOBLE_ADMISSION_INTERACTIVE_CLIENTS", 2));
  load.bulk_clients =
      static_cast<std::size_t>(env_int("NOBLE_ADMISSION_BULK_CLIENTS", 2));
  // The 384-per-client floor keeps the p99 gate statistically meaningful
  // even at smoke scale: with 2 clients the comparison rests on ~768
  // samples per phase, not a handful a scheduler hiccup could flip.
  load.interactive_requests = static_cast<std::size_t>(
      env_int("NOBLE_ADMISSION_REQUESTS", static_cast<long>(scaled(1000, 384))));
  load.bulk_requests = 4 * load.interactive_requests;
  load.interactive_pace_us =
      static_cast<std::uint64_t>(env_int("NOBLE_ADMISSION_PACE_US", 200));
  load.bulk_deadline_us = static_cast<std::uint64_t>(
      env_int("NOBLE_ADMISSION_BULK_DEADLINE_US", 5000));
  load.bulk_inflight_window = 256;  // flood, do not self-throttle
  load.bulk_sustain = true;  // keep flooding until the interactive run ends

  const std::string key = "campus";
  const std::vector<std::string> keys{key};
  std::printf("fleet: 1 shard x %zu engines | engine: %s\n", engines_per_shard,
              bench::describe_engine_config(cfg).c_str());
  std::printf("load: %zu interactive clients x %zu (pace %llu us) vs "
              "%zu bulk clients x %zu (deadline %llu us)\n\n",
              load.interactive_clients, load.interactive_requests,
              static_cast<unsigned long long>(load.interactive_pace_us),
              load.bulk_clients, load.bulk_requests,
              static_cast<unsigned long long>(load.bulk_deadline_us));

  // Warm-up.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, queries.size()); ++i) {
    (void)localizer.locate(queries[i]);
  }

  const auto run_phase = [&](bool classed, std::size_t* spot_mismatches) {
    fleet::Router router;
    fleet::ShardConfig shard;
    shard.key = key;
    shard.engines = engines_per_shard;
    shard.engine = cfg;
    if (!classed) {
      shard.engine.interactive_cap = 0;  // uniform admission, no reservation
      shard.engine.bulk_cap = 0;
    }
    router.add_shard(shard, localizer);
    bench::MixedLoadConfig phase_load = load;
    phase_load.classed = classed;
    bench::MixedLoadReport report =
        bench::run_mixed_load(router, keys, queries, phase_load);
    if (spot_mismatches != nullptr) {
      // Post-flood correctness: the shard that just shed a bulk flood must
      // still answer interactive scans bit-identically to direct locate().
      *spot_mismatches = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(8, queries.size()); ++i) {
        engine::Submission s = router.submit(key, queries[i]);
        if (!s.accepted()) {
          ++*spot_mismatches;
          continue;
        }
        if (!(s.result.get() == localizer.locate(queries[i]))) {
          ++*spot_mismatches;
        }
      }
    }
    const fleet::FleetStats stats = router.stats();
    std::printf("phase %-9s %9.0f qps aggregate, wall %.2f s\n",
                classed ? "priority:" : "baseline:", report.qps,
                report.wall_seconds);
    bench::print_class_load_row("interactive", report.interactive);
    bench::print_class_load_row("bulk", report.bulk);
    std::printf("  fleet view:    interactive %llu/%llu/%llu ok/shed/expired, "
                "bulk %llu/%llu/%llu (engine-side, merged)\n\n",
                static_cast<unsigned long long>(stats.total.interactive.accepted),
                static_cast<unsigned long long>(stats.total.interactive.rejected),
                static_cast<unsigned long long>(stats.total.interactive.expired),
                static_cast<unsigned long long>(stats.total.bulk.accepted),
                static_cast<unsigned long long>(stats.total.bulk.rejected),
                static_cast<unsigned long long>(stats.total.bulk.expired));
    return report;
  };

  std::size_t spot_mismatches = 0;
  const bench::MixedLoadReport priority = run_phase(true, &spot_mismatches);
  const bench::MixedLoadReport baseline = run_phase(false, nullptr);

  const double priority_p99 = priority.interactive.latency_us.percentile(99.0);
  const double baseline_p99 = baseline.interactive.latency_us.percentile(99.0);
  const std::uint64_t bulk_shed = priority.bulk.rejected + priority.bulk.expired;
  const bool interactive_clean = priority.interactive.rejected == 0;
  const bool p99_improved = priority_p99 < baseline_p99;

  std::printf("verdict: interactive rejections %llu (want 0), bulk shed %llu "
              "(want > 0),\n         interactive p99 %.1f us vs baseline %.1f us "
              "(want strictly below), spot mismatches %zu (want 0)\n\n",
              static_cast<unsigned long long>(priority.interactive.rejected),
              static_cast<unsigned long long>(bulk_shed), priority_p99,
              baseline_p99, spot_mismatches);

  // --- phase 3: EDF bulk goodput at equal offered load ----------------------

  struct GoodputReport {
    std::uint64_t completed = 0;  ///< futures that resolved with a fix
    std::uint64_t expired = 0;    ///< kExpired at submit + DeadlineExpired
    std::uint64_t interactive_rejected = 0;
    std::uint64_t interactive_mismatches = 0;
    double wall_seconds = 0.0;
  };

  const auto backlog = static_cast<std::size_t>(
      env_int("NOBLE_GOODPUT_BACKLOG", static_cast<long>(scaled(4096, 512))));

  // One drain of the whole deadline-diverse backlog through a one-worker
  // engine. `deadlines_us` supplies each submission's budget (empty = no
  // deadlines — the calibration probe). With `probe_interactive`, a paced
  // interactive stream runs against the reserved headroom for the whole
  // drain, counting rejections and bit-identity mismatches.
  const auto run_bulk_drain = [&](bool edf, const std::vector<std::uint64_t>& deadlines_us,
                                  bool probe_interactive) {
    engine::EngineConfig gcfg = cfg;
    gcfg.workers = 1;        // one drain rate, so the two phases are comparable
    gcfg.max_batch = 16;
    gcfg.max_wait_us = 0;
    gcfg.adaptive_wait = false;
    gcfg.queue_cap = backlog + 64;  // the whole backlog queues; none is shed
    gcfg.interactive_cap = 0;
    gcfg.bulk_cap = backlog;        // 64 slots stay interactive-only headroom
    gcfg.cache_capacity = 0;        // every served scan pays compute
    gcfg.edf_bulk = edf;
    engine::Engine eng(localizer, gcfg);

    GoodputReport report;
    std::atomic<bool> draining{true};
    std::thread prober;
    if (probe_interactive) {
      prober = std::thread([&] {
        std::size_t i = 0;
        while (draining.load(std::memory_order_relaxed)) {
          const auto& q = queries[(i++ * 31) % queries.size()];
          engine::Submission s = eng.submit(q);
          if (!s.accepted()) {
            ++report.interactive_rejected;
          } else if (!(s.result.get() == localizer.locate(q))) {
            ++report.interactive_mismatches;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::Fix>> futures;
    futures.reserve(backlog);
    for (std::size_t i = 0; i < backlog; ++i) {
      engine::SubmitOptions options = engine::SubmitOptions::bulk();
      if (!deadlines_us.empty()) options.expires_in_us(deadlines_us[i]);
      engine::Submission s = eng.submit(queries[i % queries.size()], options);
      if (s.accepted()) {
        futures.push_back(std::move(s.result));
      } else {
        ++report.expired;  // kExpired only: the queue is sized for the backlog
      }
    }
    for (auto& f : futures) {
      try {
        (void)f.get();
        ++report.completed;
      } catch (const engine::DeadlineExpired&) {
        ++report.expired;
      }
    }
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    draining.store(false, std::memory_order_relaxed);
    if (prober.joinable()) prober.join();
    return report;
  };

  // Calibration: measure the no-deadline drain time of this backlog on this
  // host, then spread the real budgets over [W/6, 1.5W]. That puts the phase
  // in the contended regime everywhere: too loose and FIFO completes
  // everything (no contrast), too tight and nothing is feasible either way.
  const GoodputReport probe = run_bulk_drain(false, {}, false);
  const auto drain_us = static_cast<std::uint64_t>(probe.wall_seconds * 1e6);
  const std::uint64_t min_budget_us = std::max<std::uint64_t>(drain_us / 6, 1000);
  const std::uint64_t max_budget_us = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(1.5 * static_cast<double>(drain_us)),
      8 * min_budget_us);
  std::vector<std::uint64_t> budgets_us(backlog);
  for (std::size_t i = 0; i < backlog; ++i) {
    // Knuth multiplicative scramble: deadline-diverse, order-uncorrelated,
    // and identical for both phases (equal offered load by construction).
    budgets_us[i] = min_budget_us +
                    (i * 2654435761ULL) % (max_budget_us - min_budget_us + 1);
  }

  const GoodputReport fifo = run_bulk_drain(false, budgets_us, true);
  const GoodputReport edf = run_bulk_drain(true, budgets_us, true);
  std::printf("phase goodput: backlog %zu, budgets %llu..%llu us "
              "(calibrated on a %.1f ms drain)\n",
              backlog, static_cast<unsigned long long>(min_budget_us),
              static_cast<unsigned long long>(max_budget_us),
              1e3 * probe.wall_seconds);
  const auto print_goodput = [](const char* mode, const GoodputReport& r) {
    std::printf("  bulk %-11s %6llu/%llu completed before deadline "
                "(%5.1f%%), wall %.2f s\n",
                mode, static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.completed + r.expired),
                100.0 * static_cast<double>(r.completed) /
                    static_cast<double>(std::max<std::uint64_t>(
                        r.completed + r.expired, 1)),
                r.wall_seconds);
  };
  print_goodput("fifo:", fifo);
  print_goodput("edf:", edf);

  // --- phase 4: cross-session IMU coalescing throughput ---------------------

  struct CoalesceReport {
    double wall_seconds = 0.0;
    double updates_per_second = 0.0;
    std::uint64_t mismatches = 0;
    std::uint64_t imu_batches = 0;
  };

  const auto sessions_n = static_cast<std::size_t>(
      std::max<long>(env_int("NOBLE_COALESCE_SESSIONS", 8), 2));
  const auto updates_per_session = static_cast<std::size_t>(
      env_int("NOBLE_COALESCE_UPDATES", static_cast<long>(scaled(1000, 240))));
  const auto coalesce_window = static_cast<std::size_t>(
      std::max<long>(env_int("NOBLE_COALESCE_WINDOW", 2), 1));

  // Model quality is irrelevant to this phase — every gate is throughput
  // or bit-identity — so a few epochs keep the fit cheap at any scale.
  core::NobleImuConfig imu_model_cfg = bench::noble_imu_config();
  imu_model_cfg.epochs = 4;
  core::ImuExperiment imu_experiment = core::make_imu_experiment(bench::imu_config());
  core::NobleImuTracker imu_tracker(imu_model_cfg);
  imu_tracker.fit(imu_experiment.split.train);
  const serve::ImuLocalizer imu_localizer =
      serve::ImuLocalizer::from_model(imu_tracker);
  const std::size_t segment_dim = imu_tracker.segment_dim();

  const auto run_coalesce = [&](bool coalesce) {
    engine::EngineConfig scfg = cfg;
    scfg.workers = 1;  // same drain capacity; only the scheduling differs
    scfg.max_batch = 16;
    scfg.max_wait_us = 100;
    scfg.adaptive_wait = false;
    scfg.queue_cap = 1024;
    scfg.interactive_cap = 0;
    scfg.bulk_cap = 0;
    scfg.cache_capacity = 0;
    scfg.coalesce_sessions = coalesce;
    engine::Engine eng(localizer, imu_localizer, scfg);

    CoalesceReport report;
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> tracks;
    tracks.reserve(sessions_n);
    for (std::size_t p = 0; p < sessions_n; ++p) {
      tracks.emplace_back([&, p] {
        const auto& path = imu_experiment.split.test
                               .paths[p % imu_experiment.split.test.size()];
        std::vector<serve::ImuSegment> segments;
        segments.reserve(path.num_segments);
        for (std::size_t s = 0; s < path.num_segments; ++s) {
          segments.emplace_back(
              path.features.begin() + static_cast<std::ptrdiff_t>(s * segment_dim),
              path.features.begin() +
                  static_cast<std::ptrdiff_t>((s + 1) * segment_dim));
        }
        // Direct replay first: the bit-identity reference, outside the wall.
        serve::TrackingSession direct = imu_localizer.start_session(path.start);
        std::vector<serve::Fix> expected;
        expected.reserve(updates_per_session);
        for (std::size_t r = 0; r < updates_per_session; ++r) {
          expected.push_back(direct.update(segments[r % segments.size()]));
        }
        const auto session = eng.open_session(path.start);
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Closed-loop, windowed submission: each track keeps a small
        // in-flight window, like a live device pipelining a couple of
        // segments. An open-loop flood would park hundreds of updates in
        // each per-session FIFO, letting the serialized drain amortize its
        // entire token ceremony (queue round-trip, map lookup, per-update
        // stats) over the whole backlog — a workload shape no real tracker
        // produces — and mask exactly the overhead coalescing exists to
        // amortize. Settling front-to-back also asserts per-session FIFO.
        std::deque<std::future<serve::Fix>> inflight;
        std::size_t settled = 0;
        const auto settle_front = [&] {
          if (!(inflight.front().get() == expected[settled])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          inflight.pop_front();
          ++settled;
        };
        for (std::size_t r = 0; r < updates_per_session; ++r) {
          engine::Submission s = eng.track(*session, segments[r % segments.size()]);
          while (s.status == engine::SubmitStatus::kQueueFull) {
            std::this_thread::yield();
            s = eng.track(*session, segments[r % segments.size()]);
          }
          inflight.push_back(std::move(s.result));
          if (inflight.size() >= coalesce_window) settle_front();
        }
        while (!inflight.empty()) settle_front();
      });
    }
    while (ready.load() < sessions_n) std::this_thread::yield();
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : tracks) t.join();
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    report.updates_per_second =
        static_cast<double>(sessions_n * updates_per_session) /
        std::max(report.wall_seconds, 1e-9);
    report.mismatches = mismatches.load();
    report.imu_batches = eng.stats().imu_batches;
    return report;
  };

  // Best-of-alternating-passes: a timing ratio measured once on a loaded
  // host (ctest -j runs this smoke next to everything else) is noise — one
  // descheduled window can erase a 3x difference. Three alternating passes
  // per mode, best wall each, compares the two schedulers at their least-
  // contended; bit-identity is gated across every pass.
  CoalesceReport serialized;
  CoalesceReport coalesced;
  std::uint64_t session_mismatches = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const CoalesceReport s = run_coalesce(false);
    const CoalesceReport c = run_coalesce(true);
    session_mismatches += s.mismatches + c.mismatches;
    if (pass == 0 || s.updates_per_second > serialized.updates_per_second) {
      serialized = s;
    }
    if (pass == 0 || c.updates_per_second > coalesced.updates_per_second) {
      coalesced = c;
    }
  }
  const double speedup =
      coalesced.updates_per_second / std::max(serialized.updates_per_second, 1e-9);
  std::printf("phase coalesce: %zu sessions x %zu updates, window %zu, "
              "1 worker, best of 3 alternating passes\n",
              sessions_n, updates_per_session, coalesce_window);
  std::printf("  sessions serialized: %9.0f updates/s, wall %.3f s, mismatches %llu\n",
              serialized.updates_per_second, serialized.wall_seconds,
              static_cast<unsigned long long>(serialized.mismatches));
  std::printf("  sessions coalesced:  %9.0f updates/s, wall %.3f s, mismatches %llu, "
              "%llu cross-session batches (%.2fx)\n\n",
              coalesced.updates_per_second, coalesced.wall_seconds,
              static_cast<unsigned long long>(coalesced.mismatches),
              static_cast<unsigned long long>(coalesced.imu_batches), speedup);

  // CSV artifact: the goodput/coalesce rows CI ships.
  const std::string csv_path = bench::artifact_path("admission_goodput.csv");
  if (std::FILE* csv = std::fopen(csv_path.c_str(), "w")) {
    std::fprintf(csv, "phase,mode,offered,completed,expired,wall_s,rate_per_s\n");
    const auto goodput_row = [&](const char* mode, const GoodputReport& r) {
      std::fprintf(csv, "bulk_goodput,%s,%zu,%llu,%llu,%.6f,%.1f\n", mode, backlog,
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.expired), r.wall_seconds,
                   static_cast<double>(r.completed) /
                       std::max(r.wall_seconds, 1e-9));
    };
    goodput_row("fifo", fifo);
    goodput_row("edf", edf);
    const auto coalesce_row = [&](const char* mode, const CoalesceReport& r) {
      std::fprintf(csv, "imu_coalesce,%s,%zu,%zu,0,%.6f,%.1f\n", mode,
                   sessions_n * updates_per_session,
                   sessions_n * updates_per_session, r.wall_seconds,
                   r.updates_per_second);
    };
    coalesce_row("serialized", serialized);
    coalesce_row("coalesced", coalesced);
    std::fclose(csv);
    std::printf("wrote %s\n\n", csv_path.c_str());
  }

  const bool edf_goodput_wins = edf.completed > fifo.completed;
  const bool edf_interactive_clean =
      edf.interactive_rejected == 0 && edf.interactive_mismatches == 0;
  const bool coalesce_wins = speedup >= 1.5 && coalesced.imu_batches > 0;
  const bool coalesce_identical = session_mismatches == 0;

  std::printf("verdict: edf goodput %llu vs fifo %llu (want strictly more), "
              "edf-phase interactive %llu rejected / %llu mismatched (want 0/0),\n"
              "         coalesce speedup %.2fx (want >= 1.5x, %llu batches), "
              "session mismatches %llu across all passes (want 0)\n",
              static_cast<unsigned long long>(edf.completed),
              static_cast<unsigned long long>(fifo.completed),
              static_cast<unsigned long long>(edf.interactive_rejected),
              static_cast<unsigned long long>(edf.interactive_mismatches), speedup,
              static_cast<unsigned long long>(coalesced.imu_batches),
              static_cast<unsigned long long>(session_mismatches));
  const bool admission_ok =
      interactive_clean && bulk_shed > 0 && p99_improved && spot_mismatches == 0;
  const bool scheduling_ok = edf_goodput_wins && edf_interactive_clean &&
                             coalesce_wins && coalesce_identical;
  return admission_ok && scheduling_ok ? 0 : 1;
}
