// Fig. 5 (b-d) — IMU test paths and predicted-coordinate scatter.
//
// Emits CSVs: the walkway network and reference points (panel b), Deep
// Regression predictions (panel c), NObLe predictions (panel d); prints the
// structure comparison (distance to walkways). The paper's claim: Deep
// Regression scatters into the space while NObLe's predictions resemble the
// track.
#include <cstdio>

#include "common/csv.h"
#include "support/bench_util.h"

namespace {

void dump_points(const std::string& name, const std::vector<noble::geo::Point2>& pts) {
  noble::CsvWriter writer({"x", "y"});
  for (const auto& p : pts) writer.add_numeric_row({p.x, p.y});
  const std::string path = noble::bench::artifact_path(name);
  std::printf("%s %s (%zu points)\n", writer.save(path) ? "wrote" : "FAILED",
              path.c_str(), pts.size());
}

}  // namespace

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("fig5_imu_scatter", "Fig. 5(b-d): IMU paths and predictions");
  ImuExperiment exp = make_imu_experiment(bench::imu_config());

  // Panel (b): reference sampling positions (color dots in the paper).
  dump_points("fig5b_references.csv", exp.world.reference_points);
  std::vector<geo::Point2> ends;
  for (const auto& p : exp.split.test.paths) ends.push_back(p.end);
  dump_points("fig5b_test_ends.csv", ends);

  // Panel (c): Deep Regression predictions.
  DeepRegressionImu reg(bench::regression_config());
  reg.fit(exp.split.train, &exp.split.val);
  const auto reg_points = reg.predict(exp.split.test);
  dump_points("fig5c_deep_regression.csv", reg_points);

  // Panel (d): NObLe predictions.
  NobleImuTracker noble(bench::noble_imu_config());
  noble.fit(exp.split.train);
  const auto noble_points = positions_of(noble.predict(exp.split.test));
  dump_points("fig5d_noble.csv", noble_points);

  const double tol = 2.0;
  std::printf("\n%-24s %26s\n", "PANEL", "within 2 m of walkways (%)");
  std::printf("%-24s %26.1f   <- ground truth\n", "(b) true end positions",
              100.0 * data::structure_score(ends, exp.world.walkways, tol));
  std::printf("%-24s %26.1f\n", "(c) Deep Regression",
              100.0 * data::structure_score(reg_points, exp.world.walkways, tol));
  std::printf("%-24s %26.1f\n", "(d) NObLe",
              100.0 * data::structure_score(noble_points, exp.world.walkways, tol));
  std::printf("\npaper's claim: NObLe's predicted points closely resemble the "
              "space structure; Deep Regression's are scattered.\n");
  return 0;
}
