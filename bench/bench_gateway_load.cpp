// Gateway saturation: open-loop (Poisson-arrival) latency-vs-offered-load
// sweep over the serving stack, in-process and over the wire.
//
// Closed-loop clients (bench_fleet_throughput) self-throttle — they can
// never offer more load than the target absorbs, so they cannot locate the
// saturation knee. This bench fires requests on an exponential inter-arrival
// schedule at a configured offered QPS, doubling the rate per step until
// achieved throughput falls visibly behind offered (the knee), and prints
// one row per step: achieved QPS and per-class p50/p99 for interactive
// scans, deadline-carrying bulk scans, and streamed IMU session updates.
//
// Modes:
//  - default: self-hosted. Trains once, stands up a fleet::Router, sweeps
//    the in-process target ("router") and a loopback gateway socket
//    ("wire") back to back — the wire's added cost is the difference
//    between the two tables. Self-gates: zero malformed frames, a
//    wire-vs-direct bit-identity spot check, and a finite interactive p99
//    below the knee; exits non-zero on violation (the CI smoke contract).
//  - --serve: trains, starts the gateway, prints the port and blocks until
//    Enter/EOF — terminal 1 of the two-terminal quickstart.
//  - NOBLE_GATEWAY_ADDR=host:port — drives a remote gateway (terminal 2).
//    Training is deterministic from the seed, so both processes hold the
//    same substrate and query pool.
//
// Knobs: NOBLE_LOAD_QPS (first offered step), NOBLE_LOAD_SECONDS (window
// per step), NOBLE_LOAD_STEPS (max doublings), NOBLE_GATEWAY_PORT /
// NOBLE_GATEWAY_THREADS (serve side), the shared NOBLE_ENGINE_* set, and
// NOBLE_SCALE / NOBLE_EPOCHS experiment sizing. Writes the sweep to
// gateway_load.csv under NOBLE_BENCH_OUT.
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

namespace {

struct Workload {
  std::vector<noble::serve::RssiVector> queries;
  std::vector<noble::serve::ImuSegment> segments;
  std::vector<noble::geo::Point2> session_starts;
  noble::serve::WifiLocalizer wifi;
  noble::serve::ImuLocalizer imu;
};

/// Deterministic training for every mode: a --serve process and a remote
/// driver build the same models and query pool from the same seeds.
Workload build_workload() {
  using namespace noble;
  core::WifiExperimentConfig wifi_config;
  wifi_config.total_samples = 3000;
  wifi_config.seed = 12;
  core::WifiExperiment wifi_exp = core::make_uji_experiment(wifi_config);
  core::NobleWifiConfig wifi_model_config;
  wifi_model_config.quantize.tau = 3.0;
  wifi_model_config.quantize.coarse_l = 15.0;
  wifi_model_config.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 10));
  core::NobleWifiModel wifi_model(wifi_model_config);
  wifi_model.fit(wifi_exp.split.train, &wifi_exp.split.val);

  core::ImuExperimentConfig imu_config;
  imu_config.num_paths = 400;
  imu_config.total_walk_time_s = 1000.0;
  imu_config.readings_per_segment = 8;
  imu_config.imu.ref_interval_s = 15.0;
  imu_config.seed = 304;
  core::ImuExperiment imu_exp = core::make_imu_experiment(imu_config);
  core::NobleImuConfig imu_model_config;
  imu_model_config.quantize.tau = 2.0;
  imu_model_config.epochs = 6;
  imu_model_config.projection_dim = 6;
  core::NobleImuTracker tracker(imu_model_config);
  tracker.fit(imu_exp.split.train);

  Workload load{{},
                {},
                {},
                serve::WifiLocalizer::from_model(wifi_model),
                serve::ImuLocalizer::from_model(tracker)};
  for (const auto& sample : wifi_exp.split.test.samples)
    load.queries.push_back(sample.rssi);
  const std::size_t dim = tracker.segment_dim();
  for (const auto& path : imu_exp.split.test.paths) {
    load.session_starts.push_back(path.start);
    for (std::size_t s = 0; s < path.num_segments; ++s) {
      load.segments.emplace_back(
          path.features.begin() + static_cast<std::ptrdiff_t>(s * dim),
          path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * dim));
    }
  }
  return load;
}

void add_serving_shards(noble::fleet::Router& router, const Workload& load,
                        const noble::engine::EngineConfig& cfg) {
  noble::fleet::ShardConfig shard;
  shard.key = "bldg-A";
  shard.engine = cfg;
  router.add_shard(shard, load.wifi, load.imu);
}

void print_sweep_header(const char* target) {
  std::printf("%s target: offered vs achieved (per-class client-side latency)\n",
              target);
  std::printf("  %8s %9s   %9s %9s | %9s %9s | %9s %9s   %7s %7s   %8s\n",
              "offered", "achieved", "int p50", "int p99", "bulk p50", "bulk p99",
              "sess p50", "sess p99", "shed", "expired", "lag us");
}

/// Doubles offered QPS until achieved falls behind (the knee) or the step
/// budget runs out; returns every row for gating + the CSV artifact.
std::vector<noble::bench::OpenLoopReport> sweep(
    noble::bench::LoadTarget& target, const Workload& load,
    const noble::bench::OpenLoopConfig& base, std::size_t max_steps) {
  std::vector<noble::bench::OpenLoopReport> rows;
  const std::vector<std::string> keys = {"bldg-A"};
  noble::bench::OpenLoopConfig cfg = base;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const noble::bench::OpenLoopReport row = noble::bench::run_open_loop(
        target, keys, load.queries, load.segments, load.session_starts, cfg);
    noble::bench::print_open_loop_row(row);
    rows.push_back(row);
    // Past the knee: achieved visibly behind offered, or the generator's
    // outstanding guard started shedding (the queue only grows from here).
    // One saturated row is the measurement; more would just burn wall clock.
    if (row.achieved_qps < 0.75 * row.offered_qps || row.dropped > 0) break;
    cfg.offered_qps *= 2.0;
  }
  return rows;
}

bool spot_check_bit_identity(const Workload& load, std::uint16_t port) {
  std::optional<noble::gateway::GatewayClient> client =
      noble::gateway::GatewayClient::connect("127.0.0.1", port);
  if (!client.has_value()) return false;
  const std::size_t n = std::min<std::size_t>(32, load.queries.size());
  for (std::size_t i = 0; i < n; ++i) {
    const noble::gateway::WireResult wired = client->locate("bldg-A", load.queries[i]);
    if (!wired.ok() || !(wired.fix == load.wifi.locate(load.queries[i]))) return false;
  }
  return n > 0;
}

void write_csv(const std::string& path, const char* target,
               const std::vector<noble::bench::OpenLoopReport>& rows, bool append) {
  std::FILE* out = std::fopen(path.c_str(), append ? "a" : "w");
  if (out == nullptr) return;
  if (!append) {
    std::fprintf(out,
                 "target,offered_qps,achieved_qps,interactive_p50_us,"
                 "interactive_p99_us,bulk_p50_us,bulk_p99_us,session_p50_us,"
                 "session_p99_us,shed,expired\n");
  }
  for (const auto& row : rows) {
    const auto interactive = noble::summarize_latency_us(row.interactive.latency_us);
    const auto bulk = noble::summarize_latency_us(row.bulk.latency_us);
    const auto session = noble::summarize_latency_us(row.session.latency_us);
    std::fprintf(out, "%s,%.0f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%llu,%llu\n",
                 target, row.offered_qps, row.achieved_qps, interactive.p50_us,
                 interactive.p99_us, bulk.p50_us, bulk.p99_us, session.p50_us,
                 session.p99_us,
                 static_cast<unsigned long long>(
                     row.interactive.rejected + row.bulk.rejected +
                     row.session.rejected + row.dropped),
                 static_cast<unsigned long long>(row.interactive.expired +
                                                 row.bulk.expired +
                                                 row.session.expired));
  }
  std::fclose(out);
}

/// Gate: below the knee (the first row), interactive traffic completed and
/// its p99 is a finite positive number — the latency table means something.
bool finite_interactive_p99_below_knee(
    const std::vector<noble::bench::OpenLoopReport>& rows) {
  if (rows.empty()) return false;
  const auto p = noble::summarize_latency_us(rows.front().interactive.latency_us);
  return rows.front().interactive.completed > 0 && p.p99_us > 0.0 &&
         p.p99_us < 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noble;

  const bool serve_mode = argc > 1 && std::strcmp(argv[1], "--serve") == 0;
  bench::print_banner("gateway_load",
                      "noble::gateway open-loop saturation (latency vs offered QPS)");

  engine::EngineConfig engine_defaults;
  engine_defaults.workers = 0;  // auto: min(hardware, 8)
  engine_defaults.max_wait_us = 100;
  engine_defaults.queue_cap = 4096;
  const engine::EngineConfig engine_cfg = bench::engine_config_from_env(engine_defaults);
  const gateway::GatewayConfig gw_cfg = bench::gateway_config_from_env();
  const bench::OpenLoopConfig load_cfg = bench::open_loop_config_from_env();
  const auto max_steps =
      static_cast<std::size_t>(env_int("NOBLE_LOAD_STEPS", 6));
  std::printf("engine: %s\n", bench::describe_engine_config(engine_cfg).c_str());
  std::printf("gateway: %s\n", bench::describe_gateway_config(gw_cfg).c_str());
  std::printf("load: %s, <= %zu doublings\n\n",
              bench::describe_open_loop_config(load_cfg).c_str(), max_steps);

  std::printf("training (deterministic: every mode rebuilds the same models)...\n");
  const Workload load = build_workload();
  std::printf("workload: %zu scans, %zu imu segments, %zu session anchors\n\n",
              load.queries.size(), load.segments.size(), load.session_starts.size());
  if (load.queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  // --serve: stand up the gateway and hold it open for a remote driver.
  if (serve_mode) {
    fleet::Router router;
    add_serving_shards(router, load, engine_cfg);
    gateway::Listener listener(router, gw_cfg);
    if (!listener.start()) {
      std::printf("FAIL: cannot bind %s:%u\n", gw_cfg.bind_address.c_str(), gw_cfg.port);
      return 1;
    }
    std::printf("serving on %s:%u — drive it with:\n", gw_cfg.bind_address.c_str(),
                listener.port());
    std::printf("  NOBLE_GATEWAY_ADDR=127.0.0.1:%u ./bench_gateway_load\n",
                listener.port());
    std::printf("press Enter (or close stdin) to stop.\n");
    (void)std::getchar();
    listener.stop();
    return 0;
  }

  // Remote-drive: NOBLE_GATEWAY_ADDR=host:port, no local server.
  const std::string addr = env_string("NOBLE_GATEWAY_ADDR", "");
  if (!addr.empty()) {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      std::printf("FAIL: NOBLE_GATEWAY_ADDR must be host:port, got '%s'\n",
                  addr.c_str());
      return 1;
    }
    const std::string host = addr.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(addr.c_str() + colon + 1, nullptr, 10));
    std::unique_ptr<bench::SocketTarget> target =
        bench::SocketTarget::connect(host, port, /*connections=*/4);
    if (target == nullptr) {
      std::printf("FAIL: cannot connect to %s\n", addr.c_str());
      return 1;
    }
    print_sweep_header("wire (remote)");
    const auto rows = sweep(*target, load, load_cfg, max_steps);
    write_csv(bench::artifact_path("gateway_load.csv"), "wire-remote", rows,
              /*append=*/false);
    return rows.empty() ? 1 : 0;
  }

  // Self-hosted: one router, swept twice — in-process, then over loopback.
  fleet::Router router;
  add_serving_shards(router, load, engine_cfg);

  print_sweep_header("router (in-process)");
  bench::RouterTarget router_target(router);
  const auto router_rows = sweep(router_target, load, load_cfg, max_steps);
  std::printf("\n");

  gateway::Listener listener(router, gw_cfg);
  if (!listener.start()) {
    std::printf("FAIL: cannot bind %s:%u\n", gw_cfg.bind_address.c_str(), gw_cfg.port);
    return 1;
  }
  print_sweep_header("wire (loopback)");
  std::vector<bench::OpenLoopReport> wire_rows;
  {
    std::unique_ptr<bench::SocketTarget> target =
        bench::SocketTarget::connect("127.0.0.1", listener.port(), /*connections=*/4);
    if (target == nullptr) {
      std::printf("FAIL: cannot connect to the loopback gateway\n");
      return 1;
    }
    wire_rows = sweep(*target, load, load_cfg, max_steps);
  }

  const std::string csv = bench::artifact_path("gateway_load.csv");
  write_csv(csv, "router", router_rows, /*append=*/false);
  write_csv(csv, "wire", wire_rows, /*append=*/true);
  std::printf("\nwrote %s\n", csv.c_str());

  // Overload summary (printed, not gated: at smoke scale the saturated row
  // is a handful of completions per class). Overload shows either as
  // achieved falling behind offered or as sheds/expiries appearing while
  // the outstanding guard caps queue growth.
  const auto overloaded = [](const bench::OpenLoopReport& row) {
    return row.achieved_qps < 0.9 * row.offered_qps || row.dropped > 0 ||
           row.interactive.rejected + row.bulk.rejected + row.session.rejected > 0 ||
           row.interactive.expired + row.bulk.expired + row.session.expired > 0;
  };
  if (!wire_rows.empty() && overloaded(wire_rows.back())) {
    const auto interactive =
        summarize_latency_us(wire_rows.back().interactive.latency_us);
    const auto bulk = summarize_latency_us(wire_rows.back().bulk.latency_us);
    std::printf("overload (%.0f qps offered over the wire): interactive p99 %.1f us "
                "vs bulk p99 %.1f us%s\n",
                wire_rows.back().offered_qps, interactive.p99_us, bulk.p99_us,
                interactive.p99_us < bulk.p99_us
                    ? " — the class lanes hold under the flood"
                    : "");
  } else {
    std::printf("note: the sweep never left the linear regime; raise "
                "NOBLE_LOAD_STEPS or NOBLE_LOAD_QPS to reach the knee\n");
  }

  // Self-gates — the CI smoke contract.
  const bool identity = spot_check_bit_identity(load, listener.port());
  const gateway::GatewayCounters counters = listener.counters();
  listener.stop();
  const bool no_malformed = counters.malformed_frames == 0;
  const bool finite_p99 = finite_interactive_p99_below_knee(wire_rows) &&
                          finite_interactive_p99_below_knee(router_rows);
  std::printf("\ngates: malformed frames %s (%llu), wire-vs-direct spot check %s, "
              "below-knee interactive p99 %s\n",
              no_malformed ? "ok" : "FAIL",
              static_cast<unsigned long long>(counters.malformed_frames),
              identity ? "ok" : "FAIL", finite_p99 ? "ok" : "FAIL");
  if (!(no_malformed && identity && finite_p99)) {
    std::printf("FAIL: gateway load gates violated\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
