// Gateway saturation: open-loop (Poisson-arrival) latency-vs-offered-load
// sweep over the serving stack, in-process and over the wire.
//
// Closed-loop clients (bench_fleet_throughput) self-throttle — they can
// never offer more load than the target absorbs, so they cannot locate the
// saturation knee. This bench fires requests on an exponential inter-arrival
// schedule at a configured offered QPS, doubling the rate per step until
// achieved throughput falls visibly behind offered (the knee), and prints
// one row per step: achieved QPS and per-class p50/p99 for interactive
// scans, deadline-carrying bulk scans, and streamed IMU session updates.
//
// Modes:
//  - default: self-hosted. Trains once, stands up a fleet::Router, sweeps
//    the in-process target ("router") and a loopback gateway socket
//    ("wire") back to back — the wire's added cost is the difference
//    between the two tables. Self-gates: zero malformed frames, a
//    wire-vs-direct bit-identity spot check, a finite interactive p99
//    below the knee, a metrics/trace coherence probe (registry totals ==
//    harness-observed totals, stage means telescope to the e2e mean), and
//    a tracing-overhead bound (in-process interactive p50 with stage
//    histograms on + 1% sampling within 5% of tracing disabled); exits
//    non-zero on violation (the CI smoke contract). Mid-sweep it scrapes
//    the live gateway in both exposition formats (gateway_metrics.prom /
//    .bin under NOBLE_BENCH_OUT), and every CSV row carries the server-side
//    per-stage p50s for that step (decode/admission/queue/assembly/
//    compute/respond) from before/after deltas of the cumulative stage
//    histograms.
//  - --serve: trains, starts the gateway, prints the port and blocks until
//    Enter/EOF — terminal 1 of the two-terminal quickstart.
//  - NOBLE_GATEWAY_ADDR=host:port — drives a remote gateway (terminal 2).
//    Training is deterministic from the seed, so both processes hold the
//    same substrate and query pool.
//
// Knobs: NOBLE_LOAD_QPS (first offered step), NOBLE_LOAD_SECONDS (window
// per step), NOBLE_LOAD_STEPS (max doublings), NOBLE_GATEWAY_PORT /
// NOBLE_GATEWAY_THREADS (serve side), the shared NOBLE_ENGINE_* set, and
// NOBLE_SCALE / NOBLE_EPOCHS experiment sizing. Writes the sweep to
// gateway_load.csv under NOBLE_BENCH_OUT.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "fleet/router.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

namespace {

struct Workload {
  std::vector<noble::serve::RssiVector> queries;
  std::vector<noble::serve::ImuSegment> segments;
  std::vector<noble::geo::Point2> session_starts;
  noble::serve::WifiLocalizer wifi;
  noble::serve::ImuLocalizer imu;
};

/// Deterministic training for every mode: a --serve process and a remote
/// driver build the same models and query pool from the same seeds.
Workload build_workload() {
  using namespace noble;
  core::WifiExperimentConfig wifi_config;
  wifi_config.total_samples = 3000;
  wifi_config.seed = 12;
  core::WifiExperiment wifi_exp = core::make_uji_experiment(wifi_config);
  core::NobleWifiConfig wifi_model_config;
  wifi_model_config.quantize.tau = 3.0;
  wifi_model_config.quantize.coarse_l = 15.0;
  wifi_model_config.epochs = static_cast<std::size_t>(env_int("NOBLE_EPOCHS", 10));
  core::NobleWifiModel wifi_model(wifi_model_config);
  wifi_model.fit(wifi_exp.split.train, &wifi_exp.split.val);

  core::ImuExperimentConfig imu_config;
  imu_config.num_paths = 400;
  imu_config.total_walk_time_s = 1000.0;
  imu_config.readings_per_segment = 8;
  imu_config.imu.ref_interval_s = 15.0;
  imu_config.seed = 304;
  core::ImuExperiment imu_exp = core::make_imu_experiment(imu_config);
  core::NobleImuConfig imu_model_config;
  imu_model_config.quantize.tau = 2.0;
  imu_model_config.epochs = 6;
  imu_model_config.projection_dim = 6;
  core::NobleImuTracker tracker(imu_model_config);
  tracker.fit(imu_exp.split.train);

  Workload load{{},
                {},
                {},
                serve::WifiLocalizer::from_model(wifi_model),
                serve::ImuLocalizer::from_model(tracker)};
  for (const auto& sample : wifi_exp.split.test.samples)
    load.queries.push_back(sample.rssi);
  const std::size_t dim = tracker.segment_dim();
  for (const auto& path : imu_exp.split.test.paths) {
    load.session_starts.push_back(path.start);
    for (std::size_t s = 0; s < path.num_segments; ++s) {
      load.segments.emplace_back(
          path.features.begin() + static_cast<std::ptrdiff_t>(s * dim),
          path.features.begin() + static_cast<std::ptrdiff_t>((s + 1) * dim));
    }
  }
  return load;
}

void add_serving_shards(noble::fleet::Router& router, const Workload& load,
                        const noble::engine::EngineConfig& cfg) {
  noble::fleet::ShardConfig shard;
  shard.key = "bldg-A";
  shard.engine = cfg;
  router.add_shard(shard, load.wifi, load.imu);
}

// --- per-stage latency from the tracer's global histograms -------------------
//
// The stage histograms are cumulative; a sweep step's own distribution is
// the before/after delta (Histogram::subtract). Self-hosted runs read the
// local registry (both sweep targets feed the same process); a remote
// driver scrapes the server's binary snapshot instead — full bins cross the
// wire, so the delta works the same way.

struct StageSnapshot {
  std::vector<noble::Histogram> stages;  ///< obs::kNumStages entries
  noble::Histogram e2e = noble::Histogram::latency_us();

  StageSnapshot() {
    for (std::size_t s = 0; s < noble::obs::kNumStages; ++s) {
      stages.push_back(noble::Histogram::latency_us());
    }
  }
};

StageSnapshot read_stage_snapshot(const noble::obs::MetricsSnapshot& snap) {
  using noble::obs::Stage;
  StageSnapshot out;
  for (std::size_t s = 0; s < noble::obs::kNumStages; ++s) {
    const noble::obs::MetricSample* sample = snap.find(
        "noble_stage_latency_us",
        {{"stage", noble::obs::stage_name(static_cast<Stage>(s))}});
    if (sample != nullptr && sample->hist.has_value() &&
        sample->hist->same_layout(out.stages[s])) {
      out.stages[s] = *sample->hist;
    }
  }
  const noble::obs::MetricSample* e2e = snap.find("noble_trace_e2e_us");
  if (e2e != nullptr && e2e->hist.has_value() && e2e->hist->same_layout(out.e2e)) {
    out.e2e = *e2e->hist;
  }
  return out;
}

StageSnapshot local_stage_snapshot() {
  return read_stage_snapshot(noble::obs::Registry::global().collect());
}

/// after - before, per stage (both snapshots of the same growing stream).
StageSnapshot stage_delta(StageSnapshot after, const StageSnapshot& before) {
  for (std::size_t s = 0; s < after.stages.size(); ++s) {
    after.stages[s].subtract(before.stages[s]);
  }
  after.e2e.subtract(before.e2e);
  return after;
}

/// One sweep step: the open-loop row plus the stage-latency delta its
/// traffic produced.
struct SweepRow {
  noble::bench::OpenLoopReport report;
  StageSnapshot stages;
};

void print_sweep_header(const char* target) {
  std::printf("%s target: offered vs achieved (per-class client-side latency)\n",
              target);
  std::printf("  %8s %9s   %9s %9s | %9s %9s | %9s %9s   %7s %7s   %8s\n",
              "offered", "achieved", "int p50", "int p99", "bulk p50", "bulk p99",
              "sess p50", "sess p99", "shed", "expired", "lag us");
}

/// Doubles offered QPS until achieved falls behind (the knee) or the step
/// budget runs out; returns every row for gating + the CSV artifact.
/// `scrape` reads the cumulative stage histograms (local registry or remote
/// snapshot) around each step; `after_step`, when set, runs between steps —
/// the CI smoke uses it to scrape the gateway mid-sweep.
std::vector<SweepRow> sweep(noble::bench::LoadTarget& target, const Workload& load,
                            const noble::bench::OpenLoopConfig& base,
                            std::size_t max_steps,
                            const std::function<StageSnapshot()>& scrape,
                            const std::function<void(std::size_t)>& after_step = {}) {
  std::vector<SweepRow> rows;
  const std::vector<std::string> keys = {"bldg-A"};
  noble::bench::OpenLoopConfig cfg = base;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const StageSnapshot before = scrape();
    SweepRow row;
    row.report = noble::bench::run_open_loop(target, keys, load.queries,
                                             load.segments, load.session_starts, cfg);
    row.stages = stage_delta(scrape(), before);
    noble::bench::print_open_loop_row(row.report);
    rows.push_back(std::move(row));
    if (after_step) after_step(step);
    // Past the knee: achieved visibly behind offered, or the generator's
    // outstanding guard started shedding (the queue only grows from here).
    // One saturated row is the measurement; more would just burn wall clock.
    const noble::bench::OpenLoopReport& report = rows.back().report;
    if (report.achieved_qps < 0.75 * report.offered_qps || report.dropped > 0) break;
    cfg.offered_qps *= 2.0;
  }
  return rows;
}

bool spot_check_bit_identity(const Workload& load, std::uint16_t port) {
  std::optional<noble::gateway::GatewayClient> client =
      noble::gateway::GatewayClient::connect("127.0.0.1", port);
  if (!client.has_value()) return false;
  const std::size_t n = std::min<std::size_t>(32, load.queries.size());
  for (std::size_t i = 0; i < n; ++i) {
    const noble::gateway::WireResult wired = client->locate("bldg-A", load.queries[i]);
    if (!wired.ok() || !(wired.fix == load.wifi.locate(load.queries[i]))) return false;
  }
  return n > 0;
}

void write_csv(const std::string& path, const char* target,
               const std::vector<SweepRow>& rows, bool append) {
  std::FILE* out = std::fopen(path.c_str(), append ? "a" : "w");
  if (out == nullptr) return;
  if (!append) {
    std::fprintf(out,
                 "target,offered_qps,achieved_qps,interactive_p50_us,"
                 "interactive_p99_us,bulk_p50_us,bulk_p99_us,session_p50_us,"
                 "session_p99_us,shed,expired,interactive_goodput,bulk_goodput,"
                 "session_goodput,decode_p50_us,admission_p50_us,"
                 "queue_p50_us,assembly_p50_us,compute_p50_us,respond_p50_us\n");
  }
  for (const auto& sweep_row : rows) {
    const noble::bench::OpenLoopReport& row = sweep_row.report;
    const auto interactive = noble::summarize_latency_us(row.interactive.latency_us);
    const auto bulk = noble::summarize_latency_us(row.bulk.latency_us);
    const auto session = noble::summarize_latency_us(row.session.latency_us);
    std::fprintf(out, "%s,%.0f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%llu,%llu",
                 target, row.offered_qps, row.achieved_qps, interactive.p50_us,
                 interactive.p99_us, bulk.p50_us, bulk.p99_us, session.p50_us,
                 session.p99_us,
                 static_cast<unsigned long long>(
                     row.interactive.rejected + row.bulk.rejected +
                     row.session.rejected + row.dropped),
                 static_cast<unsigned long long>(row.interactive.expired +
                                                 row.bulk.expired +
                                                 row.session.expired));
    // Per-class goodput: the fraction of attempted requests that completed
    // with a fix before any deadline — shed and expired both count against
    // it. 1.0 for a class with no traffic (nothing offered, nothing lost).
    const auto goodput = [](const noble::bench::ClassLoadReport& cls) {
      return cls.attempted == 0 ? 1.0
                                : static_cast<double>(cls.completed) /
                                      static_cast<double>(cls.attempted);
    };
    std::fprintf(out, ",%.4f,%.4f,%.4f", goodput(row.interactive),
                 goodput(row.bulk), goodput(row.session));
    // Server-side stage medians for this step's traffic (0.0 when the stage
    // never ran — in-process rows have no decode leg, for example).
    for (const noble::Histogram& stage : sweep_row.stages.stages) {
      std::fprintf(out, ",%.1f", stage.percentile(50.0));
    }
    std::fprintf(out, "\n");
  }
  std::fclose(out);
}

/// Gate: below the knee (the first row), interactive traffic completed and
/// its p99 is a finite positive number — the latency table means something.
bool finite_interactive_p99_below_knee(const std::vector<SweepRow>& rows) {
  if (rows.empty()) return false;
  const auto p =
      noble::summarize_latency_us(rows.front().report.interactive.latency_us);
  return rows.front().report.interactive.completed > 0 && p.p99_us > 0.0 &&
         p.p99_us < 1e9;
}

/// Gate: the registry's request totals agree with what the harness observed,
/// and the stage clocks telescope. Drives exactly `kProbes` locates at 100%
/// sampling through a quiet gateway, deltas the scrape around them, and
/// checks (a) noble_fleet_submitted grew by exactly kProbes, (b) every probe
/// produced an e2e trace sample, (c) the per-stage means sum to the e2e mean
/// (the marks telescope, so this is near-exact), and (d) the per-stage p50
/// sum lands within the e2e p50's neighborhood (medians don't telescope
/// exactly; a loose band still catches a broken stage clock).
bool coherence_gate(std::uint16_t port, const Workload& load) {
  using noble::obs::Tracer;
  constexpr std::uint64_t kProbes = 32;
  const noble::obs::TraceConfig saved = Tracer::global().config();
  noble::obs::TraceConfig cfg = saved;
  cfg.enabled = true;
  cfg.sample_rate = 1.0;
  Tracer::global().configure(cfg);

  bool ok = false;
  do {
    std::optional<noble::gateway::GatewayClient> client =
        noble::gateway::GatewayClient::connect("127.0.0.1", port);
    if (!client.has_value()) break;
    const std::optional<std::string> before_bytes = client->stats_snapshot_bytes();
    if (!before_bytes.has_value()) break;
    const std::optional<noble::obs::MetricsSnapshot> before =
        noble::obs::decode_snapshot(*before_bytes);
    if (!before.has_value()) break;

    bool all_ok = true;
    for (std::uint64_t i = 0; i < kProbes; ++i) {
      all_ok = all_ok &&
               client->locate("bldg-A", load.queries[i % load.queries.size()]).ok();
    }
    if (!all_ok) break;

    const std::optional<std::string> after_bytes = client->stats_snapshot_bytes();
    if (!after_bytes.has_value()) break;
    const std::optional<noble::obs::MetricsSnapshot> after =
        noble::obs::decode_snapshot(*after_bytes);
    if (!after.has_value()) break;

    const noble::obs::MetricSample* sub_before = before->find("noble_fleet_submitted");
    const noble::obs::MetricSample* sub_after = after->find("noble_fleet_submitted");
    if (sub_before == nullptr || sub_after == nullptr) break;
    const std::uint64_t submitted_delta =
        sub_after->counter_value - sub_before->counter_value;
    if (submitted_delta != kProbes) {
      std::printf("coherence: noble_fleet_submitted grew %llu, expected %llu\n",
                  static_cast<unsigned long long>(submitted_delta),
                  static_cast<unsigned long long>(kProbes));
      break;
    }

    const StageSnapshot delta =
        stage_delta(read_stage_snapshot(*after), read_stage_snapshot(*before));
    if (delta.e2e.count() != kProbes) {
      std::printf("coherence: %llu e2e trace samples, expected %llu\n",
                  static_cast<unsigned long long>(delta.e2e.count()),
                  static_cast<unsigned long long>(kProbes));
      break;
    }
    double stage_mean_sum = 0.0;
    double stage_p50_sum = 0.0;
    for (const noble::Histogram& stage : delta.stages) {
      stage_mean_sum += stage.count() > 0 ? stage.mean() : 0.0;
      stage_p50_sum += stage.percentile(50.0);
    }
    const double e2e_mean = delta.e2e.mean();
    const double e2e_p50 = delta.e2e.percentile(50.0);
    const bool means_telescope =
        std::abs(stage_mean_sum - e2e_mean) <= 0.01 * e2e_mean + 1.0;
    const bool p50_in_band = stage_p50_sum >= 0.25 * e2e_p50 &&
                             stage_p50_sum <= 2.0 * e2e_p50 + 10.0;
    if (!means_telescope || !p50_in_band) {
      std::printf("coherence: stage means sum %.1f us vs e2e mean %.1f us, "
                  "stage p50 sum %.1f us vs e2e p50 %.1f us\n",
                  stage_mean_sum, e2e_mean, stage_p50_sum, e2e_p50);
      break;
    }
    ok = true;
  } while (false);

  Tracer::global().configure(saved);
  return ok;
}

/// Gate: tracing is cheap enough to leave on. Runs a strict closed loop of
/// in-process interactive locates — tracing disabled vs enabled at the
/// default 1% ring sampling (stage histograms always on) — alternating
/// passes to decorrelate machine drift, and compares the best p50 of each
/// mode. The bound is 5% plus a small absolute floor (at smoke scale a p50
/// is a few hundred us; a fixed 25 us keeps scheduler noise from failing an
/// honest run).
bool overhead_gate(noble::fleet::Router& router, const Workload& load,
                   double* off_p50, double* on_p50) {
  using noble::obs::Tracer;
  const noble::obs::TraceConfig saved = Tracer::global().config();
  noble::bench::RouterTarget target(router);
  const std::size_t per_pass = 1000;
  constexpr int kPassesPerMode = 3;

  auto run_pass = [&]() {
    std::vector<double> lat_us;
    lat_us.reserve(per_pass);
    for (std::size_t i = 0; i < per_pass; ++i) {
      noble::engine::SubmitOptions options;
      if (Tracer::global().enabled() &&
          (options.trace = Tracer::global().start(i)) != nullptr) {
        options.trace->stamp(noble::obs::Mark::kSubmit);
      }
      const auto t0 = std::chrono::steady_clock::now();
      noble::engine::Submission s = target.submit(
          "bldg-A", load.queries[i % load.queries.size()], options);
      if (!s.accepted()) return -1.0;
      s.result.get();
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
    return noble::percentile(std::move(lat_us), 50.0);
  };

  double best[2] = {1e18, 1e18};  // [0] = tracing off, [1] = on at 1%
  bool pass_failed = false;
  for (int pass = 0; pass < 2 * kPassesPerMode; ++pass) {
    const int mode = pass % 2;
    noble::obs::TraceConfig cfg = saved;
    cfg.enabled = mode == 1;
    cfg.sample_rate = 0.01;
    Tracer::global().configure(cfg);
    const double p50 = run_pass();
    if (p50 < 0.0) {
      pass_failed = true;
      break;
    }
    best[mode] = std::min(best[mode], p50);
  }
  Tracer::global().configure(saved);
  *off_p50 = best[0];
  *on_p50 = best[1];
  return !pass_failed && best[1] <= best[0] * 1.05 + 25.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noble;

  const bool serve_mode = argc > 1 && std::strcmp(argv[1], "--serve") == 0;
  bench::print_banner("gateway_load",
                      "noble::gateway open-loop saturation (latency vs offered QPS)");

  engine::EngineConfig engine_defaults;
  engine_defaults.workers = 0;  // auto: min(hardware, 8)
  engine_defaults.max_wait_us = 100;
  engine_defaults.queue_cap = 4096;
  const engine::EngineConfig engine_cfg = bench::engine_config_from_env(engine_defaults);
  const gateway::GatewayConfig gw_cfg = bench::gateway_config_from_env();
  const bench::OpenLoopConfig load_cfg = bench::open_loop_config_from_env();
  const auto max_steps =
      static_cast<std::size_t>(env_int("NOBLE_LOAD_STEPS", 6));
  std::printf("engine: %s\n", bench::describe_engine_config(engine_cfg).c_str());
  std::printf("gateway: %s\n", bench::describe_gateway_config(gw_cfg).c_str());
  std::printf("load: %s, <= %zu doublings\n\n",
              bench::describe_open_loop_config(load_cfg).c_str(), max_steps);

  std::printf("training (deterministic: every mode rebuilds the same models)...\n");
  const Workload load = build_workload();
  std::printf("workload: %zu scans, %zu imu segments, %zu session anchors\n\n",
              load.queries.size(), load.segments.size(), load.session_starts.size());
  if (load.queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  // --serve: stand up the gateway and hold it open for a remote driver.
  if (serve_mode) {
    fleet::Router router;
    add_serving_shards(router, load, engine_cfg);
    gateway::Listener listener(router, gw_cfg);
    if (!listener.start()) {
      std::printf("FAIL: cannot bind %s:%u\n", gw_cfg.bind_address.c_str(), gw_cfg.port);
      return 1;
    }
    std::printf("serving on %s:%u — drive it with:\n", gw_cfg.bind_address.c_str(),
                listener.port());
    std::printf("  NOBLE_GATEWAY_ADDR=127.0.0.1:%u ./bench_gateway_load\n",
                listener.port());
    std::printf("press Enter (or close stdin) to stop.\n");
    (void)std::getchar();
    listener.stop();
    return 0;
  }

  // Remote-drive: NOBLE_GATEWAY_ADDR=host:port, no local server.
  const std::string addr = env_string("NOBLE_GATEWAY_ADDR", "");
  if (!addr.empty()) {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      std::printf("FAIL: NOBLE_GATEWAY_ADDR must be host:port, got '%s'\n",
                  addr.c_str());
      return 1;
    }
    const std::string host = addr.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(addr.c_str() + colon + 1, nullptr, 10));
    std::unique_ptr<bench::SocketTarget> target =
        bench::SocketTarget::connect(host, port, /*connections=*/4);
    if (target == nullptr) {
      std::printf("FAIL: cannot connect to %s\n", addr.c_str());
      return 1;
    }
    // Stage columns come from the *server's* histograms: scrape the binary
    // snapshot (full bins) around each step and delta it.
    std::optional<gateway::GatewayClient> scraper =
        gateway::GatewayClient::connect(host, port);
    const auto remote_scrape = [&scraper]() {
      StageSnapshot out;
      if (!scraper.has_value()) return out;
      const std::optional<std::string> bytes = scraper->stats_snapshot_bytes();
      if (!bytes.has_value()) return out;
      const std::optional<obs::MetricsSnapshot> snap = obs::decode_snapshot(*bytes);
      return snap.has_value() ? read_stage_snapshot(*snap) : out;
    };
    print_sweep_header("wire (remote)");
    const auto rows = sweep(*target, load, load_cfg, max_steps, remote_scrape);
    write_csv(bench::artifact_path("gateway_load.csv"), "wire-remote", rows,
              /*append=*/false);
    return rows.empty() ? 1 : 0;
  }

  // Self-hosted: one router, swept twice — in-process, then over loopback.
  fleet::Router router;
  add_serving_shards(router, load, engine_cfg);

  print_sweep_header("router (in-process)");
  bench::RouterTarget router_target(router);
  const auto router_rows =
      sweep(router_target, load, load_cfg, max_steps, local_stage_snapshot);
  std::printf("\n");

  gateway::Listener listener(router, gw_cfg);
  if (!listener.start()) {
    std::printf("FAIL: cannot bind %s:%u\n", gw_cfg.bind_address.c_str(), gw_cfg.port);
    return 1;
  }
  print_sweep_header("wire (loopback)");
  std::vector<SweepRow> wire_rows;
  {
    std::unique_ptr<bench::SocketTarget> target =
        bench::SocketTarget::connect("127.0.0.1", listener.port(), /*connections=*/4);
    if (target == nullptr) {
      std::printf("FAIL: cannot connect to the loopback gateway\n");
      return 1;
    }
    // Mid-sweep (after the first step, traffic still to come): scrape the
    // live gateway in both exposition formats into the artifact dir — the
    // CI smoke uploads these alongside the CSV.
    const auto mid_sweep_scrape = [&listener](std::size_t step) {
      if (step != 0) return;
      std::optional<gateway::GatewayClient> scraper =
          gateway::GatewayClient::connect("127.0.0.1", listener.port());
      if (!scraper.has_value()) return;
      const std::optional<std::string> text = scraper->stats_text();
      const std::optional<std::string> bytes = scraper->stats_snapshot_bytes();
      if (!text.has_value() || !bytes.has_value()) return;
      const std::string prom = bench::artifact_path("gateway_metrics.prom");
      const std::string bin = bench::artifact_path("gateway_metrics.bin");
      if (std::FILE* out = std::fopen(prom.c_str(), "w")) {
        std::fwrite(text->data(), 1, text->size(), out);
        std::fclose(out);
      }
      if (std::FILE* out = std::fopen(bin.c_str(), "wb")) {
        std::fwrite(bytes->data(), 1, bytes->size(), out);
        std::fclose(out);
      }
      std::printf("  (scraped mid-sweep: %s, %s)\n", prom.c_str(), bin.c_str());
    };
    wire_rows =
        sweep(*target, load, load_cfg, max_steps, local_stage_snapshot,
              mid_sweep_scrape);
  }

  const std::string csv = bench::artifact_path("gateway_load.csv");
  write_csv(csv, "router", router_rows, /*append=*/false);
  write_csv(csv, "wire", wire_rows, /*append=*/true);
  std::printf("\nwrote %s\n", csv.c_str());

  // Overload summary (printed, not gated: at smoke scale the saturated row
  // is a handful of completions per class). Overload shows either as
  // achieved falling behind offered or as sheds/expiries appearing while
  // the outstanding guard caps queue growth.
  const auto overloaded = [](const bench::OpenLoopReport& row) {
    return row.achieved_qps < 0.9 * row.offered_qps || row.dropped > 0 ||
           row.interactive.rejected + row.bulk.rejected + row.session.rejected > 0 ||
           row.interactive.expired + row.bulk.expired + row.session.expired > 0;
  };
  if (!wire_rows.empty() && overloaded(wire_rows.back().report)) {
    const bench::OpenLoopReport& last = wire_rows.back().report;
    const auto interactive = summarize_latency_us(last.interactive.latency_us);
    const auto bulk = summarize_latency_us(last.bulk.latency_us);
    std::printf("overload (%.0f qps offered over the wire): interactive p99 %.1f us "
                "vs bulk p99 %.1f us%s\n",
                last.offered_qps, interactive.p99_us, bulk.p99_us,
                interactive.p99_us < bulk.p99_us
                    ? " — the class lanes hold under the flood"
                    : "");
  } else {
    std::printf("note: the sweep never left the linear regime; raise "
                "NOBLE_LOAD_STEPS or NOBLE_LOAD_QPS to reach the knee\n");
  }

  // Self-gates — the CI smoke contract.
  const bool identity = spot_check_bit_identity(load, listener.port());
  const bool coherent = coherence_gate(listener.port(), load);
  const gateway::GatewayCounters counters = listener.counters();
  listener.stop();
  const bool no_malformed = counters.malformed_frames == 0;
  const bool finite_p99 = finite_interactive_p99_below_knee(wire_rows) &&
                          finite_interactive_p99_below_knee(router_rows);
  double off_p50 = 0.0, on_p50 = 0.0;
  const bool overhead_ok = overhead_gate(router, load, &off_p50, &on_p50);
  std::printf("\ngates: malformed frames %s (%llu), wire-vs-direct spot check %s, "
              "below-knee interactive p99 %s, metrics/trace coherence %s, "
              "tracing overhead %s (p50 %.1f us off -> %.1f us at 1%% sampling)\n",
              no_malformed ? "ok" : "FAIL",
              static_cast<unsigned long long>(counters.malformed_frames),
              identity ? "ok" : "FAIL", finite_p99 ? "ok" : "FAIL",
              coherent ? "ok" : "FAIL", overhead_ok ? "ok" : "FAIL", off_p50,
              on_p50);
  if (!(no_malformed && identity && finite_p99 && coherent && overhead_ok)) {
    std::printf("FAIL: gateway load gates violated\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
