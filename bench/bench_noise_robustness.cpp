// Ablation — input-noise robustness (§III-A's motivation).
//
// The paper argues Euclidean distances between noisy signal vectors are
// unreliable neighborhood evidence, so NObLe ignores them ("neighbor
// oblivious") while kNN-style matching and manifold methods depend on them.
// This bench sweeps measurement noise and shows the degradation slopes:
// kNN fingerprinting (pure Euclidean neighbors) degrades faster than NObLe.
#include <cstdio>

#include "support/bench_util.h"

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("noise_robustness",
                      "§III-A motivation: Euclidean neighbors vs noise");

  std::printf("%16s %18s %18s %18s\n", "noise sigma (dB)", "NObLe mean (m)",
              "kNN mean (m)", "DeepReg mean (m)");
  for (const double noise : {1.0, 3.0, 5.0, 8.0}) {
    auto ecfg = bench::uji_config();
    ecfg.total_samples = 4000;
    ecfg.radio.measurement_noise_db = noise;
    WifiExperiment exp = make_uji_experiment(ecfg);

    auto ncfg = bench::noble_wifi_config();
    ncfg.epochs = 20;
    NobleWifiModel noble(ncfg);
    noble.fit(exp.split.train, &exp.split.val);
    const auto noble_report = evaluate_wifi(noble.predict(exp.split.test),
                                            exp.split.test, noble.quantizer(), nullptr);

    KnnFingerprintWifi knn(5);
    knn.fit(exp.split.train);
    const auto knn_report =
        evaluate_positions(knn.predict(exp.split.test), exp.split.test, nullptr);

    auto rcfg = bench::regression_config();
    rcfg.epochs = 20;
    DeepRegressionWifi reg(rcfg);
    reg.fit(exp.split.train, &exp.split.val);
    const auto reg_report =
        evaluate_positions(reg.predict(exp.split.test), exp.split.test, nullptr);

    std::printf("%16.1f %18.2f %18.2f %18.2f\n", noise, noble_report.errors.mean,
                knn_report.errors.mean, reg_report.errors.mean);
  }
  std::printf("\nexpected shape: all degrade with noise, but the Euclidean-\n"
              "neighbor matcher (kNN) loses accuracy fastest, supporting the\n"
              "paper's neighbor-oblivious argument.\n");
  return 0;
}
