// Ablation — multi-label design choices (§III-B, §IV-A / DESIGN.md §5.2-5.4):
//  * adjacency soft labels on/off,
//  * hierarchical coarse head r on/off,
//  * joint building/floor heads on/off.
#include <cstdio>

#include "support/bench_util.h"

namespace {

void run_variant(const char* name, noble::core::NobleWifiConfig cfg,
                 noble::core::WifiExperiment& exp) {
  using namespace noble::core;
  NobleWifiModel model(cfg);
  model.fit(exp.split.train, &exp.split.val);
  const auto report = evaluate_wifi(model.predict(exp.split.test), exp.split.test,
                                    model.quantizer(), &exp.world.plan);
  std::printf("%-36s mean=%6.2f m median=%6.2f m class=%6.2f%% floor=%6.2f%%\n", name,
              report.errors.mean, report.errors.median, 100.0 * report.class_accuracy,
              100.0 * report.floor_accuracy);
}

}  // namespace

int main() {
  using namespace noble;
  using namespace noble::core;

  bench::print_banner("ablation_labels",
                      "design-choice ablation: multi-label target blocks");
  auto ecfg = bench::uji_config();
  ecfg.total_samples = 5000;
  WifiExperiment exp = make_uji_experiment(ecfg);

  auto base = bench::noble_wifi_config();
  base.epochs = 20;

  run_variant("FULL (adjacency + coarse + b/f)", base, exp);

  {
    auto cfg = base;
    cfg.quantize.adjacency_labels = false;
    run_variant("- adjacency soft labels", cfg, exp);
  }
  {
    auto cfg = base;
    cfg.quantize.use_coarse = false;
    run_variant("- coarse head r", cfg, exp);
  }
  {
    auto cfg = base;
    cfg.predict_building = false;
    cfg.predict_floor = false;
    run_variant("- building/floor heads", cfg, exp);
  }
  {
    auto cfg = base;
    cfg.quantize.adjacency_labels = false;
    cfg.quantize.use_coarse = false;
    cfg.predict_building = false;
    cfg.predict_floor = false;
    run_variant("BARE (fine classes only)", cfg, exp);
  }
  {
    auto cfg = base;
    cfg.hierarchical_decode = true;
    run_variant("+ hierarchical coarse decode", cfg, exp);
  }
  std::printf("\npaper rationale (§III-B, §IV-A): adjacency fights class sparsity; "
              "the coarse head and the building/floor heads inject geodesic "
              "neighborhood information into the shared embedding.\n");
  return 0;
}
