// Fleet throughput: aggregate QPS and merged latency percentiles across
// sharded engines, plus the fingerprint-cache fast path on a repeated-scan
// workload.
//
// Phase 1 (shards): one model artifact served as NOBLE_FLEET_SHARDS shards
// of NOBLE_FLEET_ENGINES engines each, driven by closed-loop clients that
// spread scans across shard keys. Reported: aggregate QPS, per-shard and
// merged p50/p95/p99 (FleetStats merges the per-engine histograms — the
// merge()-able layout doing the job it was designed for).
//
// Phase 2 (cache): the same router config with the admission cache enabled,
// against a workload of repeated scans (a small distinct-scan pool, as
// produced by fixed infrastructure). Reported: hit rate and the client-side
// p50 with the cache on vs off — the hit path answers at submit() without
// entering the queue, so it must sit far under the uncached p50.
//
// Knobs: the shared NOBLE_ENGINE_* set (bench::engine_config_from_env),
// NOBLE_FLEET_SHARDS, NOBLE_FLEET_ENGINES, NOBLE_FLEET_CLIENTS,
// NOBLE_FLEET_REQUESTS (per client), NOBLE_FLEET_DISTINCT (phase-2 pool),
// plus NOBLE_SCALE / NOBLE_EPOCHS experiment sizing.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "fleet/router.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::string> make_shard_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t s = 0; s < count; ++s) keys.push_back("bldg-" + std::to_string(s));
  return keys;
}

/// Sequential submit+get over a repeated-scan pool; returns the client-side
/// latency histogram (what a device experiences per fix).
noble::Histogram run_repeated_scan_probe(noble::fleet::Router& router,
                                         const std::string& key,
                                         const std::vector<noble::serve::RssiVector>& pool,
                                         std::size_t requests) {
  noble::Histogram latencies = noble::bench::latency_histogram();
  for (std::size_t r = 0; r < requests; ++r) {
    const auto& q = pool[r % pool.size()];
    const auto t0 = Clock::now();
    noble::engine::Submission s = router.submit(key, q);
    if (!s.accepted()) continue;
    (void)s.result.get();
    latencies.record(seconds_since(t0) * 1e6);
  }
  return latencies;
}

}  // namespace

int main() {
  using namespace noble;

  bench::print_banner("fleet_throughput",
                      "noble::fleet sharded routing + fingerprint cache");

  core::WifiExperiment experiment = core::make_uji_experiment(bench::uji_config());
  core::NobleWifiModel model(bench::noble_wifi_config());
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  engine::EngineConfig defaults;
  defaults.workers = 0;  // auto: min(hardware, 8)
  defaults.max_wait_us = 100;
  defaults.queue_cap = 4096;
  const engine::EngineConfig cfg = bench::engine_config_from_env(defaults);
  const auto num_shards =
      static_cast<std::size_t>(env_int("NOBLE_FLEET_SHARDS", 2));
  const auto engines_per_shard =
      static_cast<std::size_t>(env_int("NOBLE_FLEET_ENGINES", 1));
  const auto clients = static_cast<std::size_t>(env_int("NOBLE_FLEET_CLIENTS", 4));
  const auto per_client = static_cast<std::size_t>(
      env_int("NOBLE_FLEET_REQUESTS", static_cast<long>(scaled(2000, 128))));

  const std::vector<std::string> keys = make_shard_keys(num_shards);
  std::printf("fleet: %zu shards x %zu engines | engine: %s\n",
              num_shards, engines_per_shard,
              bench::describe_engine_config(cfg).c_str());
  std::printf("load: %zu clients x %zu requests, %zu distinct scans\n\n", clients,
              per_client, queries.size());

  // Warm-up.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, queries.size()); ++i) {
    (void)localizer.locate(queries[i]);
  }

  // Phase 1: sharded throughput, cache off.
  {
    fleet::Router router;
    for (const std::string& key : keys) {
      fleet::ShardConfig shard;
      shard.key = key;
      shard.engines = engines_per_shard;
      shard.engine = cfg;
      shard.engine.cache_capacity = 0;
      router.add_shard(shard, localizer);
    }
    // The shared mixed-workload generator in pure-throughput trim: every
    // client pipelined interactive, no pacing, retry-on-full, no bulk.
    bench::MixedLoadConfig load;
    load.interactive_clients = clients;
    load.interactive_requests = per_client;
    load.interactive_pace_us = 0;
    load.retry_interactive_full = true;
    load.interactive_inflight_window = 16;  // keep micro-batches full
    load.bulk_clients = 0;
    const bench::MixedLoadReport result =
        bench::run_mixed_load(router, keys, queries, load);
    const double qps = result.qps;
    const fleet::FleetStats stats = router.stats();
    std::printf("phase 1 — sharded routing (%zu engines total): %9.0f qps aggregate\n",
                stats.num_engines, qps);
    bench::print_latency_row("fleet merged", clients, stats.total.latency_us);
    for (const auto& [key, shard_stats] : stats.shards) {
      bench::print_latency_row("  " + key, clients, shard_stats.latency_us);
    }
    std::printf("\n");
  }

  // Phase 2: repeated-scan workload, cache off vs on.
  const auto distinct = static_cast<std::size_t>(
      env_int("NOBLE_FLEET_DISTINCT", 64));
  std::vector<serve::RssiVector> pool(
      queries.begin(),
      queries.begin() + static_cast<std::ptrdiff_t>(std::min(distinct, queries.size())));
  const std::size_t probe_requests = std::max<std::size_t>(4 * pool.size(), 512);

  const auto probe = [&](std::size_t cache_capacity) {
    fleet::Router router;
    fleet::ShardConfig shard;
    shard.key = keys.front();
    shard.engines = 1;
    shard.engine = cfg;
    shard.engine.cache_capacity = cache_capacity;
    router.add_shard(shard, localizer);
    Histogram latencies =
        run_repeated_scan_probe(router, keys.front(), pool, probe_requests);
    const fleet::FleetStats stats = router.stats();
    return std::make_pair(std::move(latencies), stats.total);
  };

  auto [uncached_us, uncached_stats] = probe(0);
  auto [cached_us, cached_stats] =
      probe(cfg.cache_capacity > 0 ? cfg.cache_capacity : 4096);

  std::printf("phase 2 — repeated scans (%zu distinct, %zu requests, 1 client):\n",
              pool.size(), probe_requests);
  bench::print_latency_row("cache off", 1, uncached_us);
  bench::print_latency_row("cache on", 1, cached_us);
  const double hit_rate =
      cached_stats.cache_hits + cached_stats.cache_misses == 0
          ? 0.0
          : static_cast<double>(cached_stats.cache_hits) /
                static_cast<double>(cached_stats.cache_hits + cached_stats.cache_misses);
  const double speedup = cached_us.percentile(50.0) > 0.0
                             ? uncached_us.percentile(50.0) / cached_us.percentile(50.0)
                             : 0.0;
  std::printf("  hit rate %.1f%% (%llu hits / %llu misses), cache-on p50 is "
              "%.1fx under the uncached p50\n",
              100.0 * hit_rate,
              static_cast<unsigned long long>(cached_stats.cache_hits),
              static_cast<unsigned long long>(cached_stats.cache_misses), speedup);
  std::printf("note: phase-1 latency rows are end-to-end submit->fix and include "
              "queueing plus the batching window.\n");
  return 0;
}
