// Engine throughput: QPS and latency percentiles vs. offered load.
//
// Baseline is one thread calling locate() sequentially — the serving story
// without the engine. Against it, the micro-batching engine is driven by
// 1/4/8 closed-loop client threads, each keeping a small window of requests
// in flight (that in-flight depth is what lets the batcher form
// micro-batches even from few clients). The acceptance bar for this repo:
// engine QPS at 8 client threads >= 2x the sequential baseline.
//
// Knobs: the shared NOBLE_ENGINE_* set (see bench::engine_config_from_env),
// NOBLE_ENGINE_REQUESTS (per client thread), plus the usual NOBLE_SCALE /
// NOBLE_EPOCHS experiment sizing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "engine/engine.h"
#include "serve/wifi_localizer.h"
#include "support/bench_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// In-flight window per client: deep enough to expose batching opportunity,
/// shallow enough to be a realistic device-side pipeline.
constexpr std::size_t kInflightWindow = 16;

struct LoadResult {
  double qps = 0.0;
  noble::engine::EngineStats stats;
};

LoadResult run_load(const noble::serve::WifiLocalizer& localizer,
                    const std::vector<noble::serve::RssiVector>& queries,
                    std::size_t clients, std::size_t per_client,
                    const noble::engine::EngineConfig& cfg) {
  noble::engine::Engine engine(localizer, cfg);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<noble::serve::Fix>> inflight;
      inflight.reserve(kInflightWindow);
      for (std::size_t r = 0; r < per_client; ++r) {
        const auto& q = queries[(c * 7919 + r) % queries.size()];
        noble::engine::Submission s = engine.submit(q);
        while (s.status == noble::engine::SubmitStatus::kQueueFull) {
          std::this_thread::yield();
          s = engine.submit(q);
        }
        inflight.push_back(std::move(s.result));
        if (inflight.size() >= kInflightWindow) {
          for (auto& f : inflight) (void)f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) (void)f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = seconds_since(t0);
  LoadResult result;
  result.stats = engine.stats();
  result.qps = static_cast<double>(clients * per_client) / wall_s;
  return result;
}

}  // namespace

int main() {
  using namespace noble;

  bench::print_banner("engine_throughput",
                      "noble::engine micro-batching vs sequential serving");

  core::WifiExperiment experiment = core::make_uji_experiment(bench::uji_config());
  core::NobleWifiModel model(bench::noble_wifi_config());
  model.fit(experiment.split.train, &experiment.split.val);
  const serve::WifiLocalizer localizer = serve::WifiLocalizer::from_model(model);

  std::vector<serve::RssiVector> queries;
  for (const auto& sample : experiment.split.test.samples)
    queries.push_back(sample.rssi);
  if (queries.empty()) {
    std::printf("no test queries at this scale; nothing to do\n");
    return 1;
  }

  engine::EngineConfig defaults;
  defaults.workers = 0;  // auto: min(hardware, 8)
  defaults.max_wait_us = 100;
  defaults.queue_cap = 4096;
  const engine::EngineConfig cfg = bench::engine_config_from_env(defaults);
  const auto per_client = static_cast<std::size_t>(
      env_int("NOBLE_ENGINE_REQUESTS", static_cast<long>(scaled(4000, 256))));

  std::printf("localizer: %zu APs, %zu test queries | engine: %s\n\n",
              localizer.num_aps(), queries.size(),
              bench::describe_engine_config(cfg).c_str());

  // Warm-up.
  for (std::size_t i = 0; i < std::min<std::size_t>(64, queries.size()); ++i) {
    (void)localizer.locate(queries[i]);
  }

  // Baseline: one thread, direct sequential locate().
  Histogram seq_us = bench::latency_histogram();
  const std::size_t seq_total = std::max<std::size_t>(per_client, queries.size());
  const auto seq_t0 = Clock::now();
  for (std::size_t r = 0; r < seq_total; ++r) {
    const auto t0 = Clock::now();
    (void)localizer.locate(queries[r % queries.size()]);
    seq_us.record(seconds_since(t0) * 1e6);
  }
  const double seq_qps = static_cast<double>(seq_total) / seconds_since(seq_t0);
  std::printf("sequential baseline (1 thread, direct locate): %9.0f qps\n", seq_qps);
  bench::print_latency_row("sequential", 1, seq_us);
  std::printf("\n");

  // Offered load: 1 / 4 / 8 closed-loop clients against the engine.
  double qps_at_8 = 0.0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const LoadResult result = run_load(localizer, queries, clients, per_client, cfg);
    std::printf("engine, %zu client thread%s: %9.0f qps  (%.2fx baseline, "
                "mean batch %.1f, %llu rejected)\n",
                clients, clients == 1 ? " " : "s", result.qps,
                result.qps / seq_qps, result.stats.batch_size.mean(),
                static_cast<unsigned long long>(result.stats.rejected));
    bench::print_latency_row("engine e2e", clients, result.stats.latency_us);
    if (clients == 8) qps_at_8 = result.qps;
  }

  const double speedup = qps_at_8 / seq_qps;
  std::printf("\nengine @ 8 clients vs sequential baseline: %.2fx %s\n", speedup,
              speedup >= 2.0 ? "(meets the >=2x serving bar)"
                             : "(below the 2x bar on this substrate)");
  std::printf("note: engine latency rows are end-to-end submit->fix, so they "
              "include queueing and the max_wait batching window.\n");
  return 0;
}
