# Shared compile options, attached to every target through the
# noble::compile_options interface library so flags live in one place.

add_library(noble_compile_options INTERFACE)
add_library(noble::compile_options ALIAS noble_compile_options)

target_compile_features(noble_compile_options INTERFACE cxx_std_20)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(noble_compile_options INTERFACE -Wall -Wextra)
  # The kernel layer's bit-identity contract (scalar vs SIMD) requires every
  # multiply and add to round separately; forbid FMA contraction everywhere
  # so a stray -march bump can't silently change numerics.
  target_compile_options(noble_compile_options INTERFACE -ffp-contract=off)
  if(NOBLE_WERROR)
    target_compile_options(noble_compile_options INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(noble_compile_options INTERFACE /W4)
  if(NOBLE_WERROR)
    target_compile_options(noble_compile_options INTERFACE /WX)
  endif()
endif()
