# Opt-in sanitizer instrumentation for the whole tree:
#   cmake -B build -S . -DNOBLE_SANITIZE=address
#   cmake -B build -S . -DNOBLE_SANITIZE=address,undefined
#   cmake -B build -S . -DNOBLE_SANITIZE=thread
# Applied through noble::compile_options so every library, test, bench and
# example is instrumented consistently (mixing is an ODR hazard).
#
# ThreadSanitizer is incompatible with AddressSanitizer/LeakSanitizer at the
# runtime level (and UBSan alongside it is unsupported by GCC), so `thread`
# must be requested alone — the configure step fails fast instead of
# producing a binary that dies at load time.

if(NOBLE_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    string(REPLACE "," ";" _noble_sanitize_list "${NOBLE_SANITIZE}")
    if("thread" IN_LIST _noble_sanitize_list)
      list(LENGTH _noble_sanitize_list _noble_sanitize_count)
      if(NOT _noble_sanitize_count EQUAL 1)
        message(FATAL_ERROR
          "NOBLE_SANITIZE=thread cannot be combined with other sanitizers "
          "(got '${NOBLE_SANITIZE}'); TSan and ASan/LSan runtimes are "
          "mutually exclusive")
      endif()
    endif()
    target_compile_options(noble_compile_options INTERFACE
      -fsanitize=${NOBLE_SANITIZE} -fno-omit-frame-pointer -g)
    target_link_options(noble_compile_options INTERFACE
      -fsanitize=${NOBLE_SANITIZE})
    message(STATUS "NObLe: building with -fsanitize=${NOBLE_SANITIZE}")
  else()
    message(WARNING
      "NOBLE_SANITIZE=${NOBLE_SANITIZE} requested but compiler "
      "'${CMAKE_CXX_COMPILER_ID}' is not GNU/Clang; ignoring")
  endif()
endif()
