# Opt-in sanitizer instrumentation for the whole tree:
#   cmake -B build -S . -DNOBLE_SANITIZE=address
#   cmake -B build -S . -DNOBLE_SANITIZE=address,undefined
# Applied through noble::compile_options so every library, test, bench and
# example is instrumented consistently (mixing is an ODR hazard).

if(NOBLE_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(noble_compile_options INTERFACE
      -fsanitize=${NOBLE_SANITIZE} -fno-omit-frame-pointer -g)
    target_link_options(noble_compile_options INTERFACE
      -fsanitize=${NOBLE_SANITIZE})
    message(STATUS "NObLe: building with -fsanitize=${NOBLE_SANITIZE}")
  else()
    message(WARNING
      "NOBLE_SANITIZE=${NOBLE_SANITIZE} requested but compiler "
      "'${CMAKE_CXX_COMPILER_ID}' is not GNU/Clang; ignoring")
  endif()
endif()
