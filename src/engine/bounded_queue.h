// Bounded MPMC queue with class-aware admission, priority-ordered batched
// consumption and deadline expiry — the admission-control and micro-batching
// substrate of noble::engine.
//
// Producers never block: `try_push` reports kFull/kClosed instead of
// waiting, so overload turns into an explicit reject the caller can surface
// (degrade predictably, don't OOM). Every entry carries a RequestClass:
// interactive traffic (latency is the product) and bulk traffic (throughput
// is) share the queue but not its behavior —
//
//  * per-class capacity caps bound how much of the queue one class may
//    occupy, so a bulk flood can never take the headroom interactive
//    admissions rely on;
//  * `pop_batch` drains interactive entries first within the batching
//    window, bulk fills the remainder of the batch;
//  * entries may carry a deadline: ones that expire before a consumer
//    reaches them are handed back separately instead of wasting a slot in
//    the batch (the caller fails their promises; no GEMM is spent on them);
//  * optionally the bulk lane orders by earliest deadline first (EDF)
//    instead of arrival: under a deadline-diverse backlog, draining the
//    most urgent work first converts entries that FIFO would have let
//    expire into completions — more goodput from the same queue. Ties (and
//    deadline-less entries, which sort last) break by admission sequence,
//    so the order is total and deterministic. Interactive stays FIFO: its
//    product is arrival-order latency, not deadline goodput.
//
// Consumers block in `pop_batch`, which gathers up to `max_items` entries,
// waiting at most `max_wait` after the first entry for stragglers — the
// micro-batching window.
#ifndef NOBLE_ENGINE_BOUNDED_QUEUE_H_
#define NOBLE_ENGINE_BOUNDED_QUEUE_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace noble::engine {

enum class PushResult {
  kOk,      ///< item enqueued
  kFull,    ///< capacity (total or per-class) reached; item not enqueued
  kClosed,  ///< queue closed; item not enqueued
};

/// Admission class of one request. Interactive fixes are served first;
/// bulk re-localization sweeps fill whatever capacity and batch slots
/// remain, and are the first to shed under overload.
enum class RequestClass {
  kInteractive,  ///< a user is waiting on this fix
  kBulk,         ///< background sweep; throughput over latency
};

inline constexpr std::size_t kNumRequestClasses = 2;

constexpr const char* request_class_name(RequestClass cls) {
  return cls == RequestClass::kInteractive ? "interactive" : "bulk";
}

/// Canonical class -> array index mapping, shared by every per-class table
/// (queue lanes, engine counters, latency histograms) so the enum's layout
/// lives in exactly one place.
constexpr std::size_t request_class_index(RequestClass cls) {
  return cls == RequestClass::kInteractive ? 0 : 1;
}

/// Per-class occupancy caps, each bounding how many queue slots one class
/// may hold at once. 0 means "no class-specific cap" (the total capacity
/// still applies). Setting `bulk` below the total capacity reserves the
/// difference as interactive-only headroom.
struct ClassCaps {
  std::size_t interactive = 0;
  std::size_t bulk = 0;

  std::size_t of(RequestClass cls) const {
    return cls == RequestClass::kInteractive ? interactive : bulk;
  }
};

template <class T>
class BoundedQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// `edf_bulk` switches the bulk lane from FIFO to earliest-deadline-first
  /// ordering (see the header comment); the interactive lane is always FIFO.
  explicit BoundedQueue(std::size_t capacity, ClassCaps caps = {},
                        bool edf_bulk = false)
      : capacity_(capacity), caps_(caps), edf_bulk_(edf_bulk) {
    NOBLE_EXPECTS(capacity >= 1);
    NOBLE_EXPECTS(caps.interactive <= capacity);
    NOBLE_EXPECTS(caps.bulk <= capacity);
  }

  /// Non-blocking enqueue; the caller owns rejection handling. kFull when
  /// either the total capacity or the item's class cap is reached. An
  /// optional deadline marks the entry expired once the clock passes it —
  /// `pop_batch` then returns it through its `expired` out-list instead of
  /// the batch.
  PushResult try_push(T item, RequestClass cls = RequestClass::kInteractive,
                      std::optional<Clock::time_point> deadline = std::nullopt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      std::deque<Entry>& lane = lanes_[request_class_index(cls)];
      const std::size_t class_cap = caps_.of(cls);
      if (class_cap > 0 && lane.size() >= class_cap) return PushResult::kFull;
      if (size_locked() >= capacity_) return PushResult::kFull;
      Entry entry{std::move(item), deadline, next_seq_++};
      if (edf_bulk_ && cls == RequestClass::kBulk) {
        // Sorted insertion keeps pop_batch a plain front-pop: the deque is
        // always ordered by (deadline, seq), deadline-less entries last.
        // O(lane) memmove per insert is fine at queue-cap scale (~1k small
        // entries) — pop_batch's contended path stays untouched.
        const auto pos = std::upper_bound(
            lane.begin(), lane.end(), entry,
            [](const Entry& a, const Entry& b) { return a.key() < b.key(); });
        lane.insert(pos, std::move(entry));
      } else {
        lane.push_back(std::move(entry));
      }
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until at least one entry is available (or the queue is closed),
  /// then gathers up to `max_items` live entries, waiting at most `max_wait`
  /// past the first take for more to arrive. Interactive entries drain
  /// first on every sweep; bulk fills the remainder of the batch.
  ///
  /// When `expired` is non-null, entries whose deadline has passed are
  /// appended there instead of the batch (they do not count against
  /// `max_items`); with only expired entries on hand the call returns
  /// immediately so the caller can fail them without sitting out the
  /// window. When `expired` is null, deadlines are ignored.
  ///
  /// Returns an empty batch with nothing appended to `expired` only when
  /// the queue is closed and fully drained — the consumer's exit signal.
  std::vector<T> pop_batch(std::size_t max_items, std::chrono::microseconds max_wait,
                           std::vector<T>* expired = nullptr) {
    NOBLE_EXPECTS(max_items >= 1);
    std::vector<T> batch;
    const std::size_t expired_before = expired == nullptr ? 0 : expired->size();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return size_locked() > 0 || closed_; });
    if (size_locked() == 0) return batch;  // closed and drained
    const auto window = Clock::now() + max_wait;
    for (;;) {
      // Priority sweep: interactive first, bulk fills what is left.
      const Clock::time_point now = Clock::now();
      for (std::deque<Entry>& lane : lanes_) {
        while (!lane.empty() && batch.size() < max_items) {
          Entry entry = std::move(lane.front());
          lane.pop_front();
          if (expired != nullptr && entry.deadline.has_value() &&
              *entry.deadline <= now) {
            expired->push_back(std::move(entry.item));
          } else {
            batch.push_back(std::move(entry.item));
          }
        }
      }
      if (batch.size() >= max_items || closed_) break;
      // Everything taken so far expired: hand the corpses back now instead
      // of holding the window open over them.
      if (batch.empty() && expired != nullptr && expired->size() > expired_before) {
        break;
      }
      // Wait out the rest of the batching window for stragglers.
      if (!cv_.wait_until(lock, window, [&] { return size_locked() > 0 || closed_; })) {
        break;  // window expired; serve what we have
      }
    }
    return batch;
  }

  /// Closes the queue: producers get kClosed, consumers drain what remains
  /// and then receive empty batches. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_locked();
  }

  std::size_t depth(RequestClass cls) const {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_[request_class_index(cls)].size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }
  const ClassCaps& class_caps() const { return caps_; }

  /// True when the bulk lane drains earliest-deadline-first.
  bool edf_bulk() const { return edf_bulk_; }

 private:
  struct Entry {
    T item;
    std::optional<Clock::time_point> deadline;
    /// Admission order, the EDF tie-breaker: equal deadlines (and the
    /// deadline-less tail) drain in arrival order, making the bulk-lane
    /// order total and deterministic.
    std::uint64_t seq = 0;

    std::pair<Clock::time_point, std::uint64_t> key() const {
      return {deadline.value_or(Clock::time_point::max()), seq};
    }
  };

  std::size_t size_locked() const { return lanes_[0].size() + lanes_[1].size(); }

  const std::size_t capacity_;
  const ClassCaps caps_;
  const bool edf_bulk_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// One lane per class; index 0 (interactive) always drains first.
  /// Interactive is FIFO; bulk is FIFO or deadline-ordered (edf_bulk_).
  std::array<std::deque<Entry>, kNumRequestClasses> lanes_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_BOUNDED_QUEUE_H_
