// Bounded MPMC queue with batched, deadline-bounded consumption — the
// admission-control and micro-batching substrate of noble::engine.
//
// Producers never block: `try_push` reports kFull/kClosed instead of
// waiting, so overload turns into an explicit reject the caller can surface
// (degrade predictably, don't OOM). Consumers block in `pop_batch`, which
// gathers up to `max_items` entries, waiting at most `max_wait` after the
// first entry for stragglers — the micro-batching window.
#ifndef NOBLE_ENGINE_BOUNDED_QUEUE_H_
#define NOBLE_ENGINE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace noble::engine {

enum class PushResult {
  kOk,      ///< item enqueued
  kFull,    ///< capacity reached; item not enqueued
  kClosed,  ///< queue closed; item not enqueued
};

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NOBLE_EXPECTS(capacity >= 1);
  }

  /// Non-blocking enqueue; the caller owns rejection handling.
  PushResult try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until at least one item is available (or the queue is closed),
  /// then gathers up to `max_items`, waiting at most `max_wait` past the
  /// first take for more to arrive. Returns an empty vector only when the
  /// queue is closed and fully drained — the consumer's exit signal.
  std::vector<T> pop_batch(std::size_t max_items, std::chrono::microseconds max_wait) {
    NOBLE_EXPECTS(max_items >= 1);
    std::vector<T> batch;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return batch;  // closed and drained
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      while (!items_.empty() && batch.size() < max_items) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      if (batch.size() >= max_items || closed_) break;
      // Wait out the rest of the batching window for stragglers.
      if (!cv_.wait_until(lock, deadline, [&] { return !items_.empty() || closed_; })) {
        break;  // window expired; serve what we have
      }
    }
    return batch;
  }

  /// Closes the queue: producers get kClosed, consumers drain what remains
  /// and then receive empty batches. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_BOUNDED_QUEUE_H_
