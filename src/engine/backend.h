// noble::engine backends — the replica abstraction the worker pool serves
// from.
//
// PR 3 hard-coded the worker replica type to serve::WifiLocalizer; every
// alternate forward path (quantized, future accelerator kernels) and every
// layer above the engine (the fleet router) was blocked on that coupling.
// A WifiBackend is an opaque batched-locate provider — the standard shape
// of production inference runtimes, where every kernel sits behind one
// uniform batched-op signature:
//
//   locate_batch(span<RssiVector>) -> vector<Fix>   the batched hot path
//   input_dim()                                     admission-control check
//   clone()                                         shared-nothing replication
//
// Backends must be deterministic and batch-invariant: a query's Fix may not
// depend on what else was coalesced into its micro-batch, and clone()s must
// answer bit-identically to the original. That is what keeps the engine's
// equivalence contract ("routed == direct, however requests were batched")
// checkable per backend.
#ifndef NOBLE_ENGINE_BACKEND_H_
#define NOBLE_ENGINE_BACKEND_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/quantize.h"
#include "serve/fix.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {

/// Opaque batched Wi-Fi localization provider consumed by Engine workers.
class WifiBackend {
 public:
  virtual ~WifiBackend() = default;

  /// Localizes a batch of raw scans; one Fix per query, order-preserving.
  /// Must be const, thread-safe, deterministic and batch-invariant.
  virtual std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const = 0;

  /// Expected scan width; submissions of any other size are rejected with
  /// kBadDimension before they reach a worker.
  virtual std::size_t input_dim() const = 0;

  /// Replication for the worker pool (one replica per worker). Clones must
  /// be bit-identical providers: clone()->locate_batch(q) == locate_batch(q)
  /// for every q. Since PR 6 the built-in backends share their immutable
  /// pre-packed weight state across clones via shared_ptr — a clone is two
  /// pointer copies, never a weight re-pack or re-quantization.
  virtual std::unique_ptr<WifiBackend> clone() const = 0;

  /// Stable identifier for telemetry and bench output.
  virtual std::string name() const = 0;
};

/// Backend selector carried by EngineConfig.
enum class BackendKind {
  kDense,      ///< float32 forward through serve::WifiLocalizer (the default)
  kQuantized,  ///< int8 forward via the pre-packed quantized kernel plan
};

/// Human-readable backend kind ("dense" / "quantized").
const char* backend_kind_name(BackendKind kind);

/// Float32 replica: serves through a serve::WifiLocalizer and its pre-packed
/// fp32 plan. The localizer (weights included) is immutable and shared
/// across every clone.
class DenseBackend final : public WifiBackend {
 public:
  /// Deep-copies the localizer's model once (shared-nothing with the
  /// original); clones of this backend then share that copy.
  explicit DenseBackend(const serve::WifiLocalizer& localizer);

  std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const override;
  std::size_t input_dim() const override { return localizer_->num_aps(); }
  std::unique_ptr<WifiBackend> clone() const override;
  std::string name() const override { return "dense"; }

  /// The packed fp32 plan this replica serves from — same object across
  /// clones (the no-re-pack contract is testable by pointer equality).
  std::shared_ptr<const serve::OptimizedNetwork> plan() const {
    return localizer_->plan();
  }

 private:
  explicit DenseBackend(std::shared_ptr<const serve::WifiLocalizer> shared)
      : localizer_(std::move(shared)) {}

  std::shared_ptr<const serve::WifiLocalizer> localizer_;
};

/// Int8 replica: same featurization and logit decoding as the dense path,
/// but the forward runs through the pre-packed int8 kernel plan
/// (per-output-channel int8 weights, per-row dynamic activation scales —
/// bit-identical to core::QuantizedNetwork by the OptimizedNetwork
/// contract). Positions differ from the dense backend by quantization
/// error; the engine contract it upholds is bit-identity with *direct*
/// quantized inference on the same replica family, checked by the same
/// harness the dense backend passes.
class QuantizedBackend final : public WifiBackend {
 public:
  /// Quantizes and pre-packs the model's dense layers once; clones share the
  /// resulting immutable int8 plan.
  explicit QuantizedBackend(const serve::WifiLocalizer& localizer);

  std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const override;
  std::size_t input_dim() const override { return localizer_->num_aps(); }
  std::unique_ptr<WifiBackend> clone() const override;
  std::string name() const override { return "quantized"; }

  /// Bytes of pre-packed int8 weight storage, scales included (vs the float
  /// model's parameter_bytes()).
  std::size_t quantized_parameter_bytes() const {
    return plan_->stats().packed_bytes;
  }

  /// The packed int8 plan this replica serves from — same object across
  /// clones (the no-re-quantization contract is testable by pointer
  /// equality).
  std::shared_ptr<const serve::OptimizedNetwork> plan() const { return plan_; }

 private:
  QuantizedBackend(std::shared_ptr<const serve::WifiLocalizer> localizer,
                   std::shared_ptr<const serve::OptimizedNetwork> plan)
      : localizer_(std::move(localizer)), plan_(std::move(plan)) {}

  // plan_ borrows heap-stable layer state from localizer_'s network, so the
  // localizer pointer must be declared first and kept alive alongside it.
  std::shared_ptr<const serve::WifiLocalizer> localizer_;
  std::shared_ptr<const serve::OptimizedNetwork> plan_;
};

/// Builds the backend `kind` over a deep copy of `localizer`'s model.
std::unique_ptr<WifiBackend> make_backend(BackendKind kind,
                                          const serve::WifiLocalizer& localizer);

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_BACKEND_H_
