// noble::engine backends — the replica abstraction the worker pool serves
// from.
//
// PR 3 hard-coded the worker replica type to serve::WifiLocalizer; every
// alternate forward path (quantized, future accelerator kernels) and every
// layer above the engine (the fleet router) was blocked on that coupling.
// A WifiBackend is an opaque batched-locate provider — the standard shape
// of production inference runtimes, where every kernel sits behind one
// uniform batched-op signature:
//
//   locate_batch(span<RssiVector>) -> vector<Fix>   the batched hot path
//   input_dim()                                     admission-control check
//   clone()                                         shared-nothing replication
//
// Backends must be deterministic and batch-invariant: a query's Fix may not
// depend on what else was coalesced into its micro-batch, and clone()s must
// answer bit-identically to the original. That is what keeps the engine's
// equivalence contract ("routed == direct, however requests were batched")
// checkable per backend.
#ifndef NOBLE_ENGINE_BACKEND_H_
#define NOBLE_ENGINE_BACKEND_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/quantize.h"
#include "serve/fix.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {

/// Opaque batched Wi-Fi localization provider consumed by Engine workers.
class WifiBackend {
 public:
  virtual ~WifiBackend() = default;

  /// Localizes a batch of raw scans; one Fix per query, order-preserving.
  /// Must be const, thread-safe, deterministic and batch-invariant.
  virtual std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const = 0;

  /// Expected scan width; submissions of any other size are rejected with
  /// kBadDimension before they reach a worker.
  virtual std::size_t input_dim() const = 0;

  /// Deep copy for shared-nothing replication (one replica per worker).
  /// Clones must be bit-identical providers: clone()->locate_batch(q) ==
  /// locate_batch(q) for every q.
  virtual std::unique_ptr<WifiBackend> clone() const = 0;

  /// Stable identifier for telemetry and bench output.
  virtual std::string name() const = 0;
};

/// Backend selector carried by EngineConfig.
enum class BackendKind {
  kDense,      ///< float32 forward through serve::WifiLocalizer (the default)
  kQuantized,  ///< int8 forward via core::QuantizedNetwork
};

/// Human-readable backend kind ("dense" / "quantized").
const char* backend_kind_name(BackendKind kind);

/// Float32 replica: wraps a deep-copied serve::WifiLocalizer.
class DenseBackend final : public WifiBackend {
 public:
  /// Deep-copies the localizer's model (shared-nothing with the original).
  explicit DenseBackend(const serve::WifiLocalizer& localizer);

  std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const override;
  std::size_t input_dim() const override { return localizer_.num_aps(); }
  std::unique_ptr<WifiBackend> clone() const override;
  std::string name() const override { return "dense"; }

 private:
  serve::WifiLocalizer localizer_;
};

/// Int8 replica: same featurization and logit decoding as the dense path,
/// but the forward runs through core::QuantizedNetwork (per-output-channel
/// int8 weights, per-row dynamic activation scales). Positions differ from
/// the dense backend by quantization error; the engine contract it upholds
/// is bit-identity with *direct* quantized inference on the same replica
/// family, checked by the same harness the dense backend passes.
class QuantizedBackend final : public WifiBackend {
 public:
  explicit QuantizedBackend(const serve::WifiLocalizer& localizer);

  std::vector<serve::Fix> locate_batch(
      std::span<const serve::RssiVector> queries) const override;
  std::size_t input_dim() const override { return localizer_.num_aps(); }
  std::unique_ptr<WifiBackend> clone() const override;
  std::string name() const override { return "quantized"; }

  /// Bytes of int8 weight storage (vs the float model's parameter_bytes()).
  std::size_t quantized_parameter_bytes() const {
    return qnet_.quantized_parameter_bytes();
  }

 private:
  // Declaration order is load-bearing: qnet_ holds a pointer into
  // localizer_'s network, so localizer_ must be constructed first and the
  // pair can never be copied or moved apart (the class is neither).
  serve::WifiLocalizer localizer_;
  core::QuantizedNetwork qnet_;
};

/// Builds the backend `kind` over a deep copy of `localizer`'s model.
std::unique_ptr<WifiBackend> make_backend(BackendKind kind,
                                          const serve::WifiLocalizer& localizer);

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_BACKEND_H_
