// RSSI-fingerprint -> Fix result cache keying.
//
// Scans from fixed infrastructure repeat heavily: the same phone parked at
// the same desk reports the same fingerprint scan after scan. The engine
// caches Fix results at admission control, so a repeated scan is answered
// before it ever enters the queue.
//
// Keying is quantized-hash / exact-verify:
//  - the *hash* quantizes each RSSI value to a configurable dB step, so
//    bucketing is robust to the representation of equal readings and cheap
//    to compute;
//  - *equality* is exact float comparison of the full scan (std::equal_to
//    over the vector), so two different scans that happen to share a
//    quantized key can never alias.
// The exact-verify half is what preserves the engine's bit-identity
// contract with cache enabled: a hit is only ever served for a scan that is
// exactly the one whose Fix was computed and cached.
#ifndef NOBLE_ENGINE_FINGERPRINT_CACHE_H_
#define NOBLE_ENGINE_FINGERPRINT_CACHE_H_

#include <cmath>
#include <cstdint>

#include "common/lru_cache.h"
#include "serve/fix.h"

namespace noble::engine {

/// FNV-1a over the dB-step-quantized fingerprint.
struct FingerprintHash {
  /// 1 / quantization step; e.g. 1.0 buckets scans at 1 dB resolution.
  double inv_step = 1.0;

  std::size_t operator()(const serve::RssiVector& rssi) const {
    std::uint64_t h = 1469598103934665603ull;
    for (const float v : rssi) {
      const auto q = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(std::llround(static_cast<double>(v) * inv_step)));
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (q >> (8 * byte)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return static_cast<std::size_t>(h);
  }
};

/// Bounded sharded-LRU fingerprint cache (exact-equality values, see above).
using FingerprintCache = ShardedLruCache<serve::RssiVector, serve::Fix, FingerprintHash>;

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_FINGERPRINT_CACHE_H_
