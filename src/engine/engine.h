// noble::engine — concurrent micro-batching inference engine.
//
// PR 2's localizers are thread-safe but single-query: many concurrent
// clients each paying a one-row network pass forfeit the batched-GEMM
// amortization `locate_batch` already proves out. The engine closes that
// serving gap:
//
//   clients ── submit() ──▶ bounded queue ── pop_batch ──▶ worker 0 ─ replica 0
//      ▲          │            (admission control)         worker 1 ─ replica 1
//      │          └─ kQueueFull / kBadDimension / kStopped    ...        ...
//      └──────────── std::future<Fix> fulfilled per micro-batch
//
// Requests are coalesced under a max-batch-size / max-wait-deadline policy
// and executed on a worker pool over shared-nothing WifiBackend replicas
// (see engine/backend.h: float32 dense by default, int8 quantized as an
// alternate, both deep-copied so there is no cross-worker sharing and no
// locks on the hot path). Output is bit-identical to direct inference on
// the same backend for every request regardless of how requests get
// batched.
//
// Admission control is class- and deadline-aware. Every submission carries
// a RequestClass — kInteractive (a user is waiting) or kBulk (background
// re-localization sweep) — and optionally a deadline:
//  - per-class queue caps bound how much of the bounded queue bulk traffic
//    may occupy, so a bulk flood sheds (kQueueFull) while interactive
//    admissions keep their reserved headroom;
//  - workers drain interactive entries first within the batching window,
//    bulk fills the remainder of each micro-batch;
//  - a request whose deadline passes before a worker reaches it never
//    spends a GEMM slot: at submit() an already-expired deadline returns
//    SubmitStatus::kExpired, and an accepted request that expires while
//    queued fails its future with DeadlineExpired.
// Class and deadline decide *when and whether* a scan runs — never its
// result: any request that is served is bit-identical to direct inference.
//
// Two more admission-control refinements on top of PR 3:
//  - an optional RSSI-fingerprint -> Fix cache (quantized-key/exact-verify,
//    bounded sharded LRU — engine/fingerprint_cache.h) answers repeated
//    scans at submit() without entering the queue;
//  - an optional adaptive batching window shrinks max_wait toward 0 while
//    the queue is backlogged (batches fill without waiting) and grows it
//    back when traffic idles.
//
// A session registry multiplexes many concurrent IMU TrackingSessions
// behind the same worker pool: per-session FIFOs keep each track's updates
// ordered while different tracks proceed in parallel.
//
// Telemetry: `stats()` snapshots queue depth, accept/reject/complete
// counters, the micro-batch-size distribution and end-to-end latency
// percentiles, all built on noble::Histogram.
#ifndef NOBLE_ENGINE_ENGINE_H_
#define NOBLE_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/stats.h"
#include "engine/backend.h"
#include "engine/bounded_queue.h"
#include "engine/fingerprint_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/imu_localizer.h"
#include "serve/wifi_localizer.h"

namespace noble::engine {

/// Admission-control verdict for one submitted request. Shared by Engine
/// and the fleet Router (which adds the kNoShard routing failure).
enum class SubmitStatus {
  kAccepted,      ///< queued; `result` will be fulfilled
  kQueueFull,     ///< backpressure: bounded queue (or session backlog) full
  kBadDimension,  ///< payload size does not match the model's input layout
  kNoSession,     ///< unknown or already-closed session id
  kNoShard,       ///< router-level: no shard registered under that key
  kExpired,       ///< the request's deadline had already passed at submit
  kStopped,       ///< engine is shut down
};

/// Fails the future of an accepted request whose deadline passed while it
/// waited in the queue (or in a session FIFO): the expired analogue of
/// SubmitStatus::kExpired for requests that were already admitted.
class DeadlineExpired : public std::runtime_error {
 public:
  DeadlineExpired()
      : std::runtime_error("noble::engine: deadline expired before execution") {}
};

/// Per-submission admission options: the request's class and an optional
/// absolute deadline. Defaults (interactive, no deadline) keep the plain
/// submit(rssi) behavior.
struct SubmitOptions {
  RequestClass request_class = RequestClass::kInteractive;
  /// Absolute steady-clock deadline. A request not *started* by then is
  /// expired: kExpired at submit if already past, DeadlineExpired on the
  /// future if it lapses in the queue. nullopt falls back to
  /// EngineConfig::default_deadline_us (0 there = no deadline).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Optional stage trace (obs/trace.h), created by the submitting edge
  /// (gateway or bench harness). The engine stamps kAdmitted/kDequeued/
  /// kAssembled/kComputed on it and — unless `trace->external_respond` says
  /// a higher tier writes the response — stamps kResponded and finishes it
  /// after fulfilling the future. nullptr (the default) costs nothing on
  /// the hot path. Tracing is observability only: it never changes when,
  /// where, or with what result a request runs.
  std::shared_ptr<obs::Trace> trace;

  static SubmitOptions interactive() { return {}; }
  static SubmitOptions bulk() { return {RequestClass::kBulk, std::nullopt, nullptr}; }
  /// Fluent deadline-as-budget: expire unless started within `budget_us`.
  SubmitOptions& expires_in_us(std::uint64_t budget_us) {
    deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(budget_us);
    return *this;
  }
};

/// One submit() outcome: a status plus — only when accepted — a future that
/// the worker pool fulfills with the localization fix.
struct Submission {
  SubmitStatus status = SubmitStatus::kStopped;
  std::future<serve::Fix> result;  ///< valid only when status == kAccepted

  bool accepted() const { return status == SubmitStatus::kAccepted; }
};

struct EngineConfig {
  /// Worker threads; each owns one shared-nothing WifiBackend replica.
  std::size_t workers = 2;
  /// Most requests coalesced into one network pass.
  std::size_t max_batch = 32;
  /// Batching window: how long a worker holds an under-full batch open for
  /// stragglers after taking its first request. 0 = serve whatever is there.
  std::uint64_t max_wait_us = 200;
  /// Bounded request-queue capacity; submissions beyond it are rejected
  /// with kQueueFull (explicit backpressure instead of unbounded memory).
  std::size_t queue_cap = 1024;
  /// Most queue slots interactive submissions may occupy at once; 0 means
  /// "no class cap" (bounded by queue_cap only).
  std::size_t interactive_cap = 0;
  /// Most queue slots bulk submissions may occupy at once; 0 means "no
  /// class cap". Setting this below queue_cap reserves the difference as
  /// interactive-only headroom — the load-shedding knob.
  std::size_t bulk_cap = 0;
  /// Engine-wide default deadline budget in microseconds, applied to every
  /// submission that does not carry its own deadline. 0 = no deadline.
  std::uint64_t default_deadline_us = 0;
  /// Most not-yet-processed segments one tracking session may buffer before
  /// its submissions are rejected with kQueueFull.
  std::size_t session_backlog = 64;
  /// Replica forward path (dense float32 or int8 quantized); ignored by the
  /// backend-injection constructor, which receives a prototype directly.
  BackendKind backend = BackendKind::kDense;
  /// Load-adaptive batching window: when the queue runs deeper than
  /// max_batch — or when the measured per-request queue wait (the obs
  /// queue_wait stage, tracked engine-side as an always-on EWMA) runs past
  /// twice the current window — halve the wait: batches fill without
  /// waiting, holding the window open only adds latency. When a pop leaves
  /// the queue empty, grow it back toward max_wait_us. max_wait_us stays
  /// the ceiling. The wait signal catches pressure depth alone misses: a
  /// queue that hovers shallow because workers drain it instantly still
  /// reads depth 1–2 while requests sit a full window each.
  bool adaptive_wait = false;
  /// Order the bulk queue lane earliest-deadline-first instead of FIFO
  /// (ties and deadline-less entries break by admission sequence, so
  /// draining stays deterministic). Under a deadline-diverse bulk backlog
  /// EDF converts would-be DeadlineExpired futures into completed fixes at
  /// the same offered load; with uniform (or no) deadlines it degrades to
  /// exactly FIFO, which is why it defaults on. Scheduling only: any
  /// request that is served is still bit-identical to direct inference.
  bool edf_bulk = true;
  /// Coalesce pending IMU updates from *different* sessions into one
  /// batched network pass (the session-path analogue of Wi-Fi
  /// micro-batching). The per-session FIFOs still serialize each track and
  /// every module in the IMU path is row-independent, so coalescing
  /// changes when updates run, never their results. Off = drain tracks one
  /// at a time (the serialized-per-track baseline the bench compares).
  bool coalesce_sessions = true;
  /// Fingerprint-cache entries at admission control; 0 disables the cache.
  std::size_t cache_capacity = 0;
  /// Lock shards of the fingerprint cache (contention, not semantics).
  std::size_t cache_shards = 8;
  /// dB step of the cache's quantized hash key (exact-verify on hit keeps
  /// any step bit-identity-safe; the step only tunes bucketing).
  double cache_key_step_db = 1.0;
};

/// Per-class admission/latency telemetry. Merge()-able like everything
/// else in EngineStats, so fleet views report interactive and bulk
/// behavior separately.
struct ClassStats {
  std::uint64_t accepted = 0;  ///< admitted (queued or served from cache)
  std::uint64_t rejected = 0;  ///< kQueueFull/kBadDimension/kStopped verdicts
  std::uint64_t expired = 0;   ///< kExpired at submit + DeadlineExpired futures
  /// Instantaneous depth of this class's queue lane — the split of
  /// EngineStats::queue_depth the Router's bulk spill and the obs labeled
  /// depth gauges read.
  std::size_t queue_depth = 0;
  Histogram latency_us = Histogram::latency_us();  ///< submit -> fulfilled
  /// p50/p95/p99 extracted from latency_us at snapshot/merge time.
  LatencySummary latency;

  /// Counters sum, histograms merge() bin-wise, percentiles recompute.
  void merge(const ClassStats& other);
};

/// Telemetry snapshot. Histograms share noble::Histogram's fixed layouts,
/// so snapshots from several engines can be merge()d for fleet views —
/// that is exactly what fleet::Router::stats() does.
struct EngineStats {
  std::uint64_t submitted = 0;  ///< accepted (queued or served from cache)
  std::uint64_t rejected = 0;   ///< non-kAccepted submissions (kExpired aside)
  std::uint64_t expired = 0;    ///< deadline-expired requests, both flavors
  std::uint64_t completed = 0;  ///< futures fulfilled (cache hits included)
  std::uint64_t batches = 0;    ///< Wi-Fi micro-batches executed
  /// Coalesced IMU passes executed (cross-session batches; every session
  /// update is served by exactly one, of size >= 1).
  std::uint64_t imu_batches = 0;
  std::size_t queue_depth = 0;  ///< instantaneous shared-queue depth
  /// Per-class splits of the admission counters and latencies. The totals
  /// above are exactly interactive + bulk (latency_us is their merge).
  ClassStats interactive;
  ClassStats bulk;
  /// Fingerprint-cache counters (all zero when the cache is disabled).
  /// Misses count *admitted* Wi-Fi scans only — a scan rejected with
  /// kQueueFull and retried does not deflate the hit rate. IMU session
  /// updates are stateful and never cached, so they contribute to
  /// `submitted` but to neither cache counter.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;  ///< instantaneous resident entries
  /// Current batching window (== max_wait_us unless adaptive_wait shrank it).
  std::uint64_t batch_wait_us = 0;
  Histogram batch_size = Histogram::batch_sizes();  ///< Wi-Fi batch sizes
  /// Cross-session IMU coalescing widths (updates per imu_batch).
  Histogram imu_batch_size = Histogram::batch_sizes();
  /// Measured per-request queue wait (admit -> dequeue) and per-batch
  /// assembly time (dequeue -> compute start) — the engine-owned, always-on
  /// counterparts of the obs kQueueWait/kBatchAssembly stages, and the
  /// signal the adaptive batching window feeds on.
  Histogram queue_wait_us = Histogram::latency_us();
  Histogram assembly_us = Histogram::latency_us();
  Histogram latency_us = Histogram::latency_us();   ///< submit -> fulfilled
  /// Convenience percentiles extracted from latency_us at snapshot time.
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  /// Per-class view by enum (read-only convenience over the named fields).
  const ClassStats& for_class(RequestClass cls) const {
    return cls == RequestClass::kInteractive ? interactive : bulk;
  }

  /// Folds another engine's snapshot into this one: counters and gauges
  /// sum (batch_wait_us takes the max — it is a window, not a count), the
  /// histograms (total and per-class) merge() bin-wise, and the
  /// convenience percentiles are recomputed from the merged histograms.
  void merge(const EngineStats& other);
};

/// Handle for one registered IMU tracking session.
using SessionId = std::uint64_t;

class Engine {
 public:
  /// Wi-Fi-only engine: builds the config-selected backend over `wifi`,
  /// replicates it once per worker (deep copies) and starts the pool.
  explicit Engine(const serve::WifiLocalizer& wifi, EngineConfig config = {});

  /// Engine that additionally serves streaming IMU sessions. The single
  /// `imu` localizer is shared by all sessions — its inference path is
  /// const and thread-safe, so replicas would buy nothing.
  Engine(const serve::WifiLocalizer& wifi, const serve::ImuLocalizer& imu,
         EngineConfig config = {});

  /// Backend-injection constructor: the worker pool replicates `prototype`
  /// via clone() (prototype becomes replica 0). This is the seam custom
  /// forward paths (tests, future accelerator backends) plug into;
  /// config.backend is ignored.
  explicit Engine(std::unique_ptr<WifiBackend> prototype, EngineConfig config = {});

  /// Drains and joins (see shutdown()).
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Asynchronous localization of one raw RSSI scan. Never blocks: the scan
  /// is answered from the fingerprint cache (kAccepted, future already
  /// fulfilled), queued (kAccepted, fulfilled by a worker micro-batch), or
  /// rejected with an explicit status. Takes a reference and copies only on
  /// admission, so rejection/fallback paths (the fleet router probes
  /// several engines with one scan) never pay for the copy.
  ///
  /// `options` selects the admission class (interactive drains before bulk,
  /// per-class caps apply) and an optional deadline: already expired =>
  /// kExpired here; expires while queued => DeadlineExpired on the future.
  Submission submit(const serve::RssiVector& rssi, const SubmitOptions& options);
  Submission submit(const serve::RssiVector& rssi) { return submit(rssi, {}); }

  /// Registers a streaming IMU track anchored at `start`. nullopt when the
  /// engine was built without an IMU localizer or is stopped.
  std::optional<SessionId> open_session(const geo::Point2& start);

  /// Queues one IMU segment for `session`. Updates to one session are
  /// applied strictly in submission order; distinct sessions proceed in
  /// parallel on the worker pool. Admission options apply per update: an
  /// expired update fails with kExpired/DeadlineExpired and is *not*
  /// applied to the track (later updates see the state without it).
  Submission track(SessionId session, serve::ImuSegment segment,
                   const SubmitOptions& options);
  Submission track(SessionId session, serve::ImuSegment segment) {
    return track(session, std::move(segment), {});
  }

  /// Unregisters a session. Pending (unprocessed) updates fail their
  /// futures with std::runtime_error. Returns false for unknown ids.
  bool close_session(SessionId session);

  /// Stops admission, drains every queued request (all accepted futures are
  /// fulfilled), and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  /// Telemetry snapshot; safe to call concurrently with serving.
  EngineStats stats() const;

  const EngineConfig& config() const { return config_; }
  /// Instantaneous shared-queue depth — the cheap load signal the fleet
  /// router's queue-depth-weighted bulk spill reads (stats() copies whole
  /// histograms; this takes one queue lock).
  std::size_t queue_depth() const { return queue_.depth(); }
  /// Per-class lane depth: what a spilling bulk sweep actually competes
  /// with is the *bulk* lane, not interactive traffic that outranks it
  /// everywhere anyway. Same cost as queue_depth() — one queue lock.
  std::size_t queue_depth(RequestClass cls) const { return queue_.depth(cls); }
  std::size_t num_aps() const { return replicas_.front()->input_dim(); }
  /// Name of the backend the worker replicas run ("dense", "quantized", or
  /// whatever an injected prototype reports).
  std::string backend_name() const { return replicas_.front()->name(); }
  bool has_imu() const { return imu_.has_value(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct WifiRequest {
    serve::RssiVector rssi;
    std::promise<serve::Fix> promise;
    Clock::time_point submitted_at;
    RequestClass cls = RequestClass::kInteractive;
    std::shared_ptr<obs::Trace> trace;  ///< stage clock; nullptr = untraced
  };
  /// Queue token: "this session has pending segments". One token is in
  /// flight per session regardless of backlog depth, so a busy track cannot
  /// starve the shared queue.
  struct SessionWork {
    SessionId id;
  };
  using Request = std::variant<WifiRequest, SessionWork>;

  struct PendingUpdate {
    serve::ImuSegment segment;
    std::promise<serve::Fix> promise;
    Clock::time_point submitted_at;
    RequestClass cls = RequestClass::kInteractive;
    std::optional<Clock::time_point> deadline;
    std::shared_ptr<obs::Trace> trace;  ///< stage clock; nullptr = untraced
  };
  struct SessionState {
    explicit SessionState(serve::TrackingSession s) : session(std::move(s)) {}
    std::mutex mu;
    serve::TrackingSession session;
    std::deque<PendingUpdate> pending;
    bool scheduled = false;  ///< a SessionWork token is queued or running
    bool closed = false;
  };

  void worker_loop(std::size_t worker_index);
  /// `dequeued_ns` is the batch's single pop timestamp — one clock read
  /// serves every trace in the batch (kDequeued is a batch-level boundary).
  void run_wifi_batch(const WifiBackend& replica, std::vector<WifiRequest> batch,
                      std::uint64_t dequeued_ns);
  void drain_session(SessionId id, std::uint64_t dequeued_ns);
  /// Cross-session coalesced drain: takes one pending update per session
  /// per round and serves each round with a single batched IMU pass
  /// (ImuLocalizer::update_sessions). Session locks are taken only to pop
  /// or retire — never across the batched pass — so producers keep filling
  /// the per-session FIFOs while the GEMM runs. The one-token-in-flight
  /// invariant still makes this worker the sole consumer of every track it
  /// drains, so per-session ordering is exactly drain_session's.
  void drain_sessions(const std::vector<SessionId>& ids, std::uint64_t dequeued_ns);
  /// `queue_wait_us` < 0 means "never queued" (cache hits) — no wait sample.
  void record_completion(const Clock::time_point& submitted_at, RequestClass cls,
                         double queue_wait_us = -1.0);
  /// Folds one batch's mean measured queue wait into the EWMA the adaptive
  /// window controller reads.
  void feed_queue_wait(double mean_wait_us);
  void adapt_batch_window(std::uint64_t used_wait_us);
  /// Resolves the effective deadline: explicit > engine default > none.
  std::optional<Clock::time_point> resolve_deadline(const SubmitOptions& options,
                                                    const Clock::time_point& now) const;
  /// Fails `promise` with DeadlineExpired and counts the expiry.
  void expire_promise(std::promise<serve::Fix>& promise, RequestClass cls);

  EngineConfig config_;
  std::vector<std::unique_ptr<WifiBackend>> replicas_;  ///< one per worker
  std::optional<serve::ImuLocalizer> imu_;
  BoundedQueue<Request> queue_;
  std::optional<FingerprintCache> cache_;  ///< engaged iff cache_capacity > 0
  /// Current adaptive batching window; workers race benignly on it (it is a
  /// relaxed gauge, and any stored value is a valid window).
  std::atomic<std::uint64_t> batch_wait_us_;
  /// EWMA (alpha 1/4) of the measured per-request queue wait in us — the
  /// obs queue_wait stage signal fed back into adapt_batch_window. Relaxed
  /// gauge like batch_wait_us_: any stored value is a valid signal.
  std::atomic<std::uint64_t> ewma_queue_wait_us_{0};

  /// Admission counters are obs::Counter (thread-striped atomics): many
  /// submitter threads increment without sharing a cache line, and the
  /// EngineStats snapshot stays exactly what it was — a struct *view* over
  /// the instruments, folded at stats() time.
  obs::Counter submitted_;
  obs::Counter rejected_;
  /// Per-class admission counters, indexed by class_index().
  obs::Counter class_accepted_[kNumRequestClasses];
  obs::Counter class_rejected_[kNumRequestClasses];
  obs::Counter class_expired_[kNumRequestClasses];
  /// Cache admission outcomes, engine-owned rather than read from the
  /// cache's own counters: a miss is only counted once the Wi-Fi scan is
  /// actually admitted to the queue, so kQueueFull retry loops cannot
  /// deflate the hit rate. (IMU updates count in submitted_ only — they
  /// are stateful and never cached.)
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  mutable std::mutex stats_mu_;  ///< guards the fields below
  Histogram batch_hist_ = Histogram::batch_sizes();
  Histogram imu_batch_hist_ = Histogram::batch_sizes();
  Histogram queue_wait_hist_ = Histogram::latency_us();
  Histogram assembly_hist_ = Histogram::latency_us();
  /// One latency histogram per class; the snapshot's total latency_us is
  /// their merge, so every completion is recorded exactly once.
  Histogram class_latency_[kNumRequestClasses] = {Histogram::latency_us(),
                                                  Histogram::latency_us()};
  std::uint64_t completed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t imu_batches_ = 0;

  mutable std::mutex sessions_mu_;  ///< guards the registry map only
  std::unordered_map<SessionId, std::shared_ptr<SessionState>> sessions_;
  std::atomic<SessionId> next_session_{1};

  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mu_;  ///< serializes the join in shutdown()
  std::vector<std::thread> workers_;
};

}  // namespace noble::engine

#endif  // NOBLE_ENGINE_ENGINE_H_
