#include "engine/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace noble::engine {

namespace {

constexpr auto us_since = [](const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
};

}  // namespace

Engine::Engine(const serve::WifiLocalizer& wifi, EngineConfig config)
    : Engine(make_backend(config.backend, wifi), config) {}

Engine::Engine(std::unique_ptr<WifiBackend> prototype, EngineConfig config)
    : config_(config),
      queue_(config.queue_cap,
             ClassCaps{std::min(config.interactive_cap, config.queue_cap),
                       std::min(config.bulk_cap, config.queue_cap)},
             config.edf_bulk),
      batch_wait_us_(config.max_wait_us) {
  NOBLE_EXPECTS(prototype != nullptr);
  NOBLE_EXPECTS(config_.workers >= 1);
  NOBLE_EXPECTS(config_.max_batch >= 1);
  NOBLE_EXPECTS(config_.session_backlog >= 1);
  if (config_.cache_capacity > 0) {
    NOBLE_EXPECTS(config_.cache_key_step_db > 0.0);
    cache_.emplace(config_.cache_capacity, config_.cache_shards,
                   FingerprintHash{1.0 / config_.cache_key_step_db});
  }
  // Shared-nothing: each worker serves from its own deep copy, so the
  // batched hot path touches no cross-thread state at all.
  replicas_.reserve(config_.workers);
  replicas_.push_back(std::move(prototype));
  for (std::size_t i = 1; i < config_.workers; ++i) {
    replicas_.push_back(replicas_.front()->clone());
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Engine::Engine(const serve::WifiLocalizer& wifi, const serve::ImuLocalizer& imu,
               EngineConfig config)
    : Engine(wifi, config) {
  // Safe after delegation: workers only touch imu_ via session tokens, and
  // no session can be opened before this constructor returns.
  imu_.emplace(serve::ImuLocalizer::from_model(imu.tracker()));
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  stopped_.store(true);
  queue_.close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::optional<Engine::Clock::time_point> Engine::resolve_deadline(
    const SubmitOptions& options, const Clock::time_point& now) const {
  if (options.deadline.has_value()) return options.deadline;
  if (config_.default_deadline_us > 0) {
    return now + std::chrono::microseconds(config_.default_deadline_us);
  }
  return std::nullopt;
}

void Engine::expire_promise(std::promise<serve::Fix>& promise, RequestClass cls) {
  class_expired_[request_class_index(cls)].inc();
  promise.set_exception(std::make_exception_ptr(DeadlineExpired{}));
}

Submission Engine::submit(const serve::RssiVector& rssi, const SubmitOptions& options) {
  const std::size_t cls = request_class_index(options.request_class);
  if (rssi.size() != num_aps()) {
    rejected_.inc();
    class_rejected_[cls].inc();
    return {SubmitStatus::kBadDimension, {}};
  }
  const Clock::time_point submitted_at = Clock::now();
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(options, submitted_at);
  if (deadline.has_value() && *deadline <= submitted_at) {
    // Dead on arrival: never admitted, never copied, never a GEMM slot.
    class_expired_[cls].inc();
    return {SubmitStatus::kExpired, {}};
  }
  const bool cached = cache_.has_value() && !stopped_.load(std::memory_order_relaxed);
  if (cached) {
    if (std::optional<serve::Fix> hit = cache_->get(rssi)) {
      // Admission-control fast path: answered without touching the queue.
      // Counted like any other request (submitted/completed/latency) so the
      // stats invariants hold with the cache on. record_completion takes
      // stats_mu_ once; the promise/future machinery dominates the hit
      // cost, not that short critical section.
      std::promise<serve::Fix> promise;
      std::future<serve::Fix> result = promise.get_future();
      submitted_.inc();
      class_accepted_[cls].inc();
      cache_hits_.inc();
      if (options.trace != nullptr) {
        // The whole pipeline collapses to one instant on a cache hit: every
        // engine stage is stamped "now", so its stage latencies read ~0.
        const std::uint64_t ns = obs::Trace::now_ns();
        options.trace->stamp(obs::Mark::kAdmitted, ns);
        options.trace->stamp(obs::Mark::kDequeued, ns);
        options.trace->stamp(obs::Mark::kAssembled, ns);
        options.trace->stamp(obs::Mark::kComputed, ns);
      }
      promise.set_value(std::move(*hit));
      record_completion(submitted_at, options.request_class);
      if (options.trace != nullptr && !options.trace->external_respond) {
        options.trace->stamp(obs::Mark::kResponded);
        obs::Tracer::global().finish(*options.trace);
      }
      return {SubmitStatus::kAccepted, std::move(result)};
    }
  }
  // The only copy, on admission.
  WifiRequest request{rssi, {}, submitted_at, options.request_class, options.trace};
  std::future<serve::Fix> result = request.promise.get_future();
  // Counted before the push: once the queue has the request a worker may
  // complete it immediately, and stats() must never observe
  // completed > submitted.
  submitted_.inc();
  class_accepted_[cls].inc();
  // Stamped before the push: after it, a worker may already own the trace
  // (the queue handoff is the happens-before edge for the later marks).
  if (options.trace != nullptr) options.trace->stamp(obs::Mark::kAdmitted);
  const PushResult pushed =
      queue_.try_push(Request{std::move(request)}, options.request_class, deadline);
  if (pushed != PushResult::kOk) {
    submitted_.sub();
    class_accepted_[cls].sub();
    rejected_.inc();
    class_rejected_[cls].inc();
    return {pushed == PushResult::kClosed ? SubmitStatus::kStopped
                                          : SubmitStatus::kQueueFull,
            {}};
  }
  // A cache miss only counts once the scan is admitted: rejected-and-
  // retried submissions must not deflate the reported hit rate.
  if (cached) cache_misses_.inc();
  return {SubmitStatus::kAccepted, std::move(result)};
}

std::optional<SessionId> Engine::open_session(const geo::Point2& start) {
  if (!imu_.has_value() || stopped_.load()) return std::nullopt;
  const SessionId id = next_session_.fetch_add(1);
  auto state = std::make_shared<SessionState>(imu_->start_session(start));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(state));
  return id;
}

Submission Engine::track(SessionId session, serve::ImuSegment segment,
                         const SubmitOptions& options) {
  const std::size_t cls = request_class_index(options.request_class);
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) state = it->second;
  }
  if (state == nullptr) {
    rejected_.inc();
    class_rejected_[cls].inc();
    return {SubmitStatus::kNoSession, {}};
  }
  if (segment.size() != imu_->segment_dim()) {
    rejected_.inc();
    class_rejected_[cls].inc();
    return {SubmitStatus::kBadDimension, {}};
  }
  const Clock::time_point submitted_at = Clock::now();
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(options, submitted_at);
  if (deadline.has_value() && *deadline <= submitted_at) {
    class_expired_[cls].inc();
    return {SubmitStatus::kExpired, {}};
  }

  std::lock_guard<std::mutex> lock(state->mu);
  if (state->closed) {
    rejected_.inc();
    class_rejected_[cls].inc();
    return {SubmitStatus::kNoSession, {}};
  }
  if (state->pending.size() >= config_.session_backlog) {
    rejected_.inc();
    class_rejected_[cls].inc();
    return {SubmitStatus::kQueueFull, {}};
  }
  PendingUpdate update{std::move(segment), {}, submitted_at, options.request_class,
                       deadline, options.trace};
  std::future<serve::Fix> result = update.promise.get_future();
  // Same ordering as submit(): count before the work can become visible to
  // a worker, roll back on rejection. Admission for a session update means
  // entering its FIFO (the session mutex is the handoff edge).
  submitted_.inc();
  class_accepted_[cls].inc();
  if (options.trace != nullptr) options.trace->stamp(obs::Mark::kAdmitted);
  state->pending.push_back(std::move(update));
  if (!state->scheduled) {
    // Session tokens carry the class of the update that scheduled them (so
    // a bulk sweep's token queues behind interactive traffic) but never a
    // deadline — per-update deadlines are enforced in drain_session.
    const PushResult pushed =
        queue_.try_push(Request{SessionWork{session}}, options.request_class);
    if (pushed != PushResult::kOk) {
      state->pending.pop_back();
      submitted_.sub();
      class_accepted_[cls].sub();
      rejected_.inc();
      class_rejected_[cls].inc();
      return {pushed == PushResult::kClosed ? SubmitStatus::kStopped
                                            : SubmitStatus::kQueueFull,
              {}};
    }
    state->scheduled = true;
  }
  return {SubmitStatus::kAccepted, std::move(result)};
}

bool Engine::close_session(SessionId session) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    state = std::move(it->second);
    sessions_.erase(it);
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->closed = true;
  for (PendingUpdate& pending : state->pending) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("noble::engine: session closed with pending updates")));
  }
  state->pending.clear();
  return true;
}

EngineStats Engine::stats() const {
  EngineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot.completed = completed_;
    snapshot.batches = batches_;
    snapshot.imu_batches = imu_batches_;
    snapshot.batch_size = batch_hist_;
    snapshot.imu_batch_size = imu_batch_hist_;
    snapshot.queue_wait_us = queue_wait_hist_;
    snapshot.assembly_us = assembly_hist_;
    snapshot.interactive.latency_us = class_latency_[0];
    snapshot.bulk.latency_us = class_latency_[1];
  }
  // The total latency view is exactly the per-class histograms merged —
  // every completion is recorded in exactly one class.
  snapshot.latency_us = snapshot.interactive.latency_us;
  snapshot.latency_us.merge(snapshot.bulk.latency_us);
  // Read after completed_: every completion was counted in submitted_
  // first, so this order keeps submitted >= completed in the snapshot.
  snapshot.submitted = submitted_.value();
  snapshot.rejected = rejected_.value();
  snapshot.interactive.accepted = class_accepted_[0].value();
  snapshot.interactive.rejected = class_rejected_[0].value();
  snapshot.interactive.expired = class_expired_[0].value();
  snapshot.bulk.accepted = class_accepted_[1].value();
  snapshot.bulk.rejected = class_rejected_[1].value();
  snapshot.bulk.expired = class_expired_[1].value();
  snapshot.expired = snapshot.interactive.expired + snapshot.bulk.expired;
  snapshot.queue_depth = queue_.depth();
  snapshot.interactive.queue_depth = queue_.depth(RequestClass::kInteractive);
  snapshot.bulk.queue_depth = queue_.depth(RequestClass::kBulk);
  if (cache_.has_value()) {
    const CacheStats cache = cache_->stats();
    snapshot.cache_hits = cache_hits_.value();
    snapshot.cache_misses = cache_misses_.value();
    snapshot.cache_evictions = cache.evictions;
    snapshot.cache_entries = cache.entries;
  }
  snapshot.batch_wait_us = config_.adaptive_wait
                               ? batch_wait_us_.load(std::memory_order_relaxed)
                               : config_.max_wait_us;
  const LatencySummary total = summarize_latency_us(snapshot.latency_us);
  snapshot.latency_p50_us = total.p50_us;
  snapshot.latency_p95_us = total.p95_us;
  snapshot.latency_p99_us = total.p99_us;
  snapshot.interactive.latency = summarize_latency_us(snapshot.interactive.latency_us);
  snapshot.bulk.latency = summarize_latency_us(snapshot.bulk.latency_us);
  return snapshot;
}

void ClassStats::merge(const ClassStats& other) {
  accepted += other.accepted;
  rejected += other.rejected;
  expired += other.expired;
  queue_depth += other.queue_depth;
  latency_us.merge(other.latency_us);
  latency = summarize_latency_us(latency_us);
}

void EngineStats::merge(const EngineStats& other) {
  submitted += other.submitted;
  rejected += other.rejected;
  expired += other.expired;
  completed += other.completed;
  batches += other.batches;
  imu_batches += other.imu_batches;
  queue_depth += other.queue_depth;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_entries += other.cache_entries;
  batch_wait_us = std::max(batch_wait_us, other.batch_wait_us);
  batch_size.merge(other.batch_size);
  imu_batch_size.merge(other.imu_batch_size);
  queue_wait_us.merge(other.queue_wait_us);
  assembly_us.merge(other.assembly_us);
  latency_us.merge(other.latency_us);
  interactive.merge(other.interactive);
  bulk.merge(other.bulk);
  const LatencySummary total = summarize_latency_us(latency_us);
  latency_p50_us = total.p50_us;
  latency_p95_us = total.p95_us;
  latency_p99_us = total.p99_us;
}

void Engine::worker_loop(std::size_t worker_index) {
  const WifiBackend& replica = *replicas_[worker_index];
  for (;;) {
    const std::uint64_t wait_us = config_.adaptive_wait
                                      ? batch_wait_us_.load(std::memory_order_relaxed)
                                      : config_.max_wait_us;
    std::vector<Request> expired;
    std::vector<Request> batch = queue_.pop_batch(
        config_.max_batch, std::chrono::microseconds(wait_us), &expired);
    if (batch.empty() && expired.empty()) return;  // closed and fully drained
    // One clock read marks kDequeued for every trace in this batch.
    const std::uint64_t dequeued_ns = obs::Trace::now_ns();
    if (config_.adaptive_wait) adapt_batch_window(wait_us);
    // Deadline-expired takes never reach a replica: fail their futures and
    // move on — the batch slots went to live requests instead.
    for (Request& request : expired) {
      if (auto* query = std::get_if<WifiRequest>(&request)) {
        expire_promise(query->promise, query->cls);
      } else {
        // Tokens are pushed without deadlines; treat one here as live.
        batch.push_back(std::move(request));
      }
    }
    // Partition the takes: independent Wi-Fi queries coalesce into one
    // network pass; session tokens are drained per-track afterwards (their
    // ordering lives in the per-session FIFO, not the shared queue).
    std::vector<WifiRequest> wifi;
    std::vector<SessionId> tokens;
    for (Request& request : batch) {
      if (auto* query = std::get_if<WifiRequest>(&request)) {
        wifi.push_back(std::move(*query));
      } else {
        tokens.push_back(std::get<SessionWork>(request).id);
      }
    }
    if (!wifi.empty()) run_wifi_batch(replica, std::move(wifi), dequeued_ns);
    if (config_.coalesce_sessions && tokens.size() > 1) {
      // Cross-session coalescing: one batched IMU pass per round over every
      // track this pop's tokens cover, instead of a per-track drain.
      drain_sessions(tokens, dequeued_ns);
    } else {
      for (const SessionId id : tokens) drain_session(id, dequeued_ns);
    }
  }
}

void Engine::adapt_batch_window(std::uint64_t used_wait_us) {
  const std::size_t depth = queue_.depth();
  const std::uint64_t waited_us = ewma_queue_wait_us_.load(std::memory_order_relaxed);
  // Measured-pressure shrink: when requests already sit in the queue for
  // more than twice the window, batches fill from backlog — the window is
  // pure added latency even if the instantaneous depth reads shallow
  // (workers draining instantly keep depth at 1-2 while every request
  // still waits). depth > 0 keeps a stale EWMA from shrinking an idle
  // engine; new samples decay it once traffic resumes.
  const bool wait_pressure = depth > 0 && waited_us > 2 * used_wait_us;
  if (depth > config_.max_batch || wait_pressure) {
    // Backlogged: the next batch fills without waiting, so any window only
    // adds latency. Halve toward zero.
    batch_wait_us_.store(used_wait_us / 2, std::memory_order_relaxed);
  } else if (depth == 0 && used_wait_us < config_.max_wait_us) {
    // Idle again: grow the window back so sparse traffic re-coalesces.
    const std::uint64_t grown = used_wait_us == 0 ? 1 : used_wait_us * 2;
    batch_wait_us_.store(std::min<std::uint64_t>(config_.max_wait_us, grown),
                         std::memory_order_relaxed);
  }
}

void Engine::feed_queue_wait(double mean_wait_us) {
  const auto sample = static_cast<std::uint64_t>(std::max(0.0, mean_wait_us));
  const std::uint64_t old = ewma_queue_wait_us_.load(std::memory_order_relaxed);
  // Races between workers lose samples, never corrupt the gauge (any
  // stored value is a valid EWMA state) — same contract as batch_wait_us_.
  ewma_queue_wait_us_.store(old - old / 4 + sample / 4, std::memory_order_relaxed);
}

void Engine::run_wifi_batch(const WifiBackend& replica,
                            std::vector<WifiRequest> batch,
                            std::uint64_t dequeued_ns) {
  std::vector<serve::RssiVector> queries;
  queries.reserve(batch.size());
  for (WifiRequest& request : batch) queries.push_back(std::move(request.rssi));
  bool any_traced = false;
  // Measured queue wait per request (admit -> this pop) — always on, one
  // subtraction each: the feedback signal adapt_batch_window reads and the
  // engine-owned counterpart of the obs kQueueWait stage.
  double wait_sum_us = 0.0;
  std::vector<double> waits_us;
  waits_us.reserve(batch.size());
  for (const WifiRequest& request : batch) {
    const auto submitted_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            request.submitted_at.time_since_epoch())
            .count());
    const double wait_us =
        dequeued_ns > submitted_ns ? (dequeued_ns - submitted_ns) / 1000.0 : 0.0;
    waits_us.push_back(wait_us);
    wait_sum_us += wait_us;
    if (request.trace == nullptr) continue;
    any_traced = true;
    request.trace->stamp(obs::Mark::kDequeued, dequeued_ns);
  }
  feed_queue_wait(wait_sum_us / static_cast<double>(batch.size()));
  const std::uint64_t assembled_ns = obs::Trace::now_ns();
  if (any_traced) {
    for (const WifiRequest& request : batch) {
      if (request.trace != nullptr) {
        request.trace->stamp(obs::Mark::kAssembled, assembled_ns);
      }
    }
  }
  const std::vector<serve::Fix> fixes = replica.locate_batch(queries);
  const Clock::time_point done = Clock::now();  // one read for the batch
  if (any_traced) {
    // Stamp before set_value below: the promise hands the trace to whoever
    // awaits the future, so every engine mark must land first.
    const auto done_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(done.time_since_epoch())
            .count());
    for (const WifiRequest& request : batch) {
      if (request.trace != nullptr) {
        request.trace->stamp(obs::Mark::kComputed, done_ns);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    batch_hist_.record(static_cast<double>(batch.size()));
    assembly_hist_.record(
        assembled_ns > dequeued_ns ? (assembled_ns - dequeued_ns) / 1000.0 : 0.0);
    completed_ += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      queue_wait_hist_.record(waits_us[i]);
      class_latency_[request_class_index(batch[i].cls)].record(
          std::chrono::duration<double, std::micro>(done - batch[i].submitted_at)
              .count());
    }
  }
  if (cache_.has_value()) {
    // Populate before fulfilling: once a future resolves, the cache already
    // reflects its scan, so a client that awaits a fix and resubmits the
    // same scan is guaranteed the fast path (and telemetry reads after
    // get() are deterministic).
    for (std::size_t i = 0; i < queries.size(); ++i) {
      cache_->put(std::move(queries[i]), fixes[i]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(fixes[i]);
    if (batch[i].trace != nullptr && !batch[i].trace->external_respond) {
      // In-process serving: fulfilling the future IS the response write.
      batch[i].trace->stamp(obs::Mark::kResponded);
      obs::Tracer::global().finish(*batch[i].trace);
    }
  }
}

void Engine::drain_session(SessionId id, std::uint64_t dequeued_ns) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // closed while the token was queued
    state = it->second;
  }
  // Per-session mutex held across the updates: serialization per track is
  // the session contract, and only same-session submissions wait on it.
  std::lock_guard<std::mutex> lock(state->mu);
  while (!state->pending.empty()) {
    PendingUpdate update = std::move(state->pending.front());
    state->pending.pop_front();
    if (update.deadline.has_value() && *update.deadline <= Clock::now()) {
      // Expired before its turn: never applied to the track, so later
      // updates see the session state without it. Its trace is dropped, not
      // finished — stage latency describes served requests.
      expire_promise(update.promise, update.cls);
      continue;
    }
    if (update.trace != nullptr) {
      // A session update has no separate batch-assembly step; kAssembled
      // marks the moment its turn in the FIFO comes up.
      update.trace->stamp(obs::Mark::kDequeued, dequeued_ns);
      update.trace->stamp(obs::Mark::kAssembled);
    }
    const auto submitted_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            update.submitted_at.time_since_epoch())
            .count());
    const double wait_us =
        dequeued_ns > submitted_ns ? (dequeued_ns - submitted_ns) / 1000.0 : 0.0;
    feed_queue_wait(wait_us);
    const serve::Fix fix = state->session.update(update.segment);
    if (update.trace != nullptr) update.trace->stamp(obs::Mark::kComputed);
    record_completion(update.submitted_at, update.cls, wait_us);
    update.promise.set_value(fix);
    if (update.trace != nullptr && !update.trace->external_respond) {
      update.trace->stamp(obs::Mark::kResponded);
      obs::Tracer::global().finish(*update.trace);
    }
  }
  state->scheduled = false;
}

void Engine::drain_sessions(const std::vector<SessionId>& ids,
                            std::uint64_t dequeued_ns) {
  // shared_ptr copies keep every state alive across the drain even if the
  // session is closed mid-flight (close_session only clears pending and
  // unregisters; it never touches the TrackingSession itself).
  std::vector<std::shared_ptr<SessionState>> tracks;
  tracks.reserve(ids.size());
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const SessionId id : ids) {
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;  // closed while its token was queued
      tracks.push_back(it->second);
    }
  }
  // Locking: each track's mutex is taken only for the instants this loop
  // pops its next pending update or retires its token — never across the
  // batched pass. Producers therefore keep appending to the per-session
  // FIFOs while the GEMM runs (the drain pipelines against submission,
  // which is most of coalescing's engine-level win); holding every lock
  // across the drain instead was measured to convoy all submitters behind
  // the worker. Popping outside the compute is safe: one token is in
  // flight per session, so no other worker can reach these sessions, and
  // the TrackingSession object itself is only ever touched by the token
  // holder. A track retires — atomically with observing its FIFO empty —
  // by clearing `scheduled` under its mutex, exactly drain_session's
  // handoff, after which the next track() submission enqueues a fresh
  // token (possibly for another worker; this one no longer touches it).
  std::vector<char> active(tracks.size(), 1);
  std::vector<PendingUpdate> updates;
  std::vector<serve::TrackingSession*> sessions;
  std::vector<const serve::ImuSegment*> segments;
  for (;;) {
    // One round: at most one live update per session, FIFO within each
    // track, the whole round served by a single batched pass.
    updates.clear();
    sessions.clear();
    segments.clear();
    const Clock::time_point now = Clock::now();
    for (std::size_t t = 0; t < tracks.size(); ++t) {
      if (!active[t]) continue;
      SessionState& state = *tracks[t];
      std::lock_guard<std::mutex> lock(state.mu);
      bool took = false;
      while (!state.pending.empty()) {
        PendingUpdate update = std::move(state.pending.front());
        state.pending.pop_front();
        if (update.deadline.has_value() && *update.deadline <= now) {
          // Expired before its turn: never applied to the track (same
          // contract as drain_session); its successor gets this round's slot.
          expire_promise(update.promise, update.cls);
          continue;
        }
        updates.push_back(std::move(update));
        sessions.push_back(&state.session);
        took = true;
        break;
      }
      if (!took) {
        state.scheduled = false;  // FIFO drained: retire this track's token
        active[t] = 0;
      }
    }
    if (updates.empty()) break;
    const std::size_t n = updates.size();
    // Segment pointers only after the round's updates stopped moving.
    segments.reserve(n);
    for (const PendingUpdate& update : updates) segments.push_back(&update.segment);
    bool any_traced = false;
    for (const PendingUpdate& update : updates) {
      if (update.trace == nullptr) continue;
      any_traced = true;
      update.trace->stamp(obs::Mark::kDequeued, dequeued_ns);
    }
    const std::uint64_t assembled_ns = obs::Trace::now_ns();
    if (any_traced) {
      for (const PendingUpdate& update : updates) {
        if (update.trace != nullptr) {
          update.trace->stamp(obs::Mark::kAssembled, assembled_ns);
        }
      }
    }
    const std::vector<serve::Fix> fixes = imu_->update_sessions(sessions, segments);
    const Clock::time_point done = Clock::now();  // one read for the round
    if (any_traced) {
      const auto done_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              done.time_since_epoch())
              .count());
      for (const PendingUpdate& update : updates) {
        if (update.trace != nullptr) {
          update.trace->stamp(obs::Mark::kComputed, done_ns);
        }
      }
    }
    {
      // One stats lock and one clock read per round, not per update — part
      // of the per-update overhead coalescing exists to amortize.
      double wait_sum_us = 0.0;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++imu_batches_;
      imu_batch_hist_.record(static_cast<double>(n));
      assembly_hist_.record(
          assembled_ns > dequeued_ns ? (assembled_ns - dequeued_ns) / 1000.0 : 0.0);
      completed_ += n;
      for (const PendingUpdate& update : updates) {
        const double wait_us = std::max(
            0.0, std::chrono::duration<double, std::micro>(now - update.submitted_at)
                     .count());
        wait_sum_us += wait_us;
        queue_wait_hist_.record(wait_us);
        class_latency_[request_class_index(update.cls)].record(
            std::chrono::duration<double, std::micro>(done - update.submitted_at)
                .count());
      }
      feed_queue_wait(wait_sum_us / static_cast<double>(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      updates[i].promise.set_value(fixes[i]);
      if (updates[i].trace != nullptr && !updates[i].trace->external_respond) {
        updates[i].trace->stamp(obs::Mark::kResponded);
        obs::Tracer::global().finish(*updates[i].trace);
      }
    }
  }
}

void Engine::record_completion(const Clock::time_point& submitted_at,
                               RequestClass cls, double queue_wait_us) {
  const double latency_us = us_since(submitted_at);  // clock read outside the lock
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++completed_;
  if (queue_wait_us >= 0.0) queue_wait_hist_.record(queue_wait_us);
  class_latency_[request_class_index(cls)].record(latency_us);
}

}  // namespace noble::engine
