#include "engine/backend.h"

#include "common/check.h"

namespace noble::engine {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDense:
      return "dense";
    case BackendKind::kQuantized:
      return "quantized";
  }
  return "unknown";
}

DenseBackend::DenseBackend(const serve::WifiLocalizer& localizer)
    : localizer_(std::make_shared<const serve::WifiLocalizer>(
          serve::WifiLocalizer::from_model(localizer.model()))) {}

std::vector<serve::Fix> DenseBackend::locate_batch(
    std::span<const serve::RssiVector> queries) const {
  return localizer_->locate_batch(queries);
}

std::unique_ptr<WifiBackend> DenseBackend::clone() const {
  // Replicas share the immutable localizer (and its pre-packed fp32 plan):
  // cloning is one shared_ptr copy, never a model copy or weight re-pack.
  return std::unique_ptr<WifiBackend>(new DenseBackend(localizer_));
}

QuantizedBackend::QuantizedBackend(const serve::WifiLocalizer& localizer)
    : localizer_(std::make_shared<const serve::WifiLocalizer>(
          serve::WifiLocalizer::from_model(localizer.model()))),
      plan_(serve::optimize_network(localizer_->model().network(),
                                    serve::OptimizedNetwork::Precision::kInt8)) {}

std::vector<serve::Fix> QuantizedBackend::locate_batch(
    std::span<const serve::RssiVector> queries) const {
  std::vector<serve::Fix> out;
  if (queries.empty()) return out;
  const linalg::Mat logits = plan_->predict(localizer_->featurize(queries));
  out.reserve(queries.size());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    out.push_back(localizer_->decode_logits(logits.row(i)));
  }
  return out;
}

std::unique_ptr<WifiBackend> QuantizedBackend::clone() const {
  // Replicas share the immutable localizer and the pre-packed int8 plan:
  // cloning is two shared_ptr copies, never a re-quantization.
  return std::unique_ptr<WifiBackend>(new QuantizedBackend(localizer_, plan_));
}

std::unique_ptr<WifiBackend> make_backend(BackendKind kind,
                                          const serve::WifiLocalizer& localizer) {
  switch (kind) {
    case BackendKind::kDense:
      return std::make_unique<DenseBackend>(localizer);
    case BackendKind::kQuantized:
      return std::make_unique<QuantizedBackend>(localizer);
  }
  NOBLE_CHECK(false);  // unreachable: enum is exhaustive
  return nullptr;
}

}  // namespace noble::engine
