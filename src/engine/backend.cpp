#include "engine/backend.h"

#include "common/check.h"

namespace noble::engine {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDense:
      return "dense";
    case BackendKind::kQuantized:
      return "quantized";
  }
  return "unknown";
}

DenseBackend::DenseBackend(const serve::WifiLocalizer& localizer)
    : localizer_(serve::WifiLocalizer::from_model(localizer.model())) {}

std::vector<serve::Fix> DenseBackend::locate_batch(
    std::span<const serve::RssiVector> queries) const {
  return localizer_.locate_batch(queries);
}

std::unique_ptr<WifiBackend> DenseBackend::clone() const {
  return std::make_unique<DenseBackend>(localizer_);
}

QuantizedBackend::QuantizedBackend(const serve::WifiLocalizer& localizer)
    : localizer_(serve::WifiLocalizer::from_model(localizer.model())),
      qnet_(localizer_.model().network()) {}

std::vector<serve::Fix> QuantizedBackend::locate_batch(
    std::span<const serve::RssiVector> queries) const {
  std::vector<serve::Fix> out;
  if (queries.empty()) return out;
  const linalg::Mat logits = qnet_.predict(localizer_.featurize(queries));
  out.reserve(queries.size());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    out.push_back(localizer_.decode_logits(logits.row(i)));
  }
  return out;
}

std::unique_ptr<WifiBackend> QuantizedBackend::clone() const {
  // Requantizing a bit-identical model copy reproduces bit-identical int8
  // weights, so clones answer exactly like the original.
  return std::make_unique<QuantizedBackend>(localizer_);
}

std::unique_ptr<WifiBackend> make_backend(BackendKind kind,
                                          const serve::WifiLocalizer& localizer) {
  switch (kind) {
    case BackendKind::kDense:
      return std::make_unique<DenseBackend>(localizer);
    case BackendKind::kQuantized:
      return std::make_unique<QuantizedBackend>(localizer);
  }
  NOBLE_CHECK(false);  // unreachable: enum is exhaustive
  return nullptr;
}

}  // namespace noble::engine
