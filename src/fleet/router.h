// noble::fleet — sharded multi-engine routing over noble::engine.
//
// One Engine serves one model; a campus serves many buildings, each with its
// own model artifact and its own traffic. The Router is the front end that
// scales the engine horizontally:
//
//   clients ── submit(shard_key, scan) ──▶ Router ──▶ shard "bldg-A" ─ engine 0..k
//                                            │        shard "bldg-B" ─ engine 0..k
//                                            └──▶ FleetStats (merge()d EngineStats)
//
// A *shard* is a routing key (per building / per model artifact) plus one or
// more engines that all replicate the same model, so any engine of a shard
// answers bit-identically. Within a shard the query's fingerprint hash picks
// the primary engine — the same scan always lands on the same engine, which
// keeps per-engine fingerprint caches hot. On kQueueFull the fallback is
// class-aware: interactive traffic falls through the remaining engines in
// consistent (deterministic probe) order, preserving cache affinity as far
// as possible, while bulk traffic spills by *queue depth* — the least-loaded
// replica first — because a shedding bulk sweep cares about finding capacity
// anywhere in the shard, not about which replica's cache stays hot. Only
// when every engine is full does the rejection reach the caller.
//
// Shards can be hot-swapped to a retrained model: the replacement engines
// (with fresh, empty caches — a stale fix can never outlive its model) take
// over atomically for new admissions, while the old generation drains so
// every already-accepted future still resolves. IMU sessions are sticky to
// the engine and generation that admitted them; a swap invalidates them
// (kNoSession), mirroring how a device re-anchors after a model update.
#ifndef NOBLE_FLEET_ROUTER_H_
#define NOBLE_FLEET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"

namespace noble::fleet {

/// One shard: routing key plus the engine fleet serving it.
struct ShardConfig {
  /// Routing key (e.g. building or artifact id). Must be non-empty.
  std::string key;
  /// Engines replicating this shard's model; > 1 adds kQueueFull headroom.
  std::size_t engines = 1;
  /// Per-engine knobs (backend kind, cache, batching, workers).
  engine::EngineConfig engine;
  /// Content identity of the model artifact(s) this shard serves. Filled by
  /// the router at add_shard/hot_swap from the localizers' digests (callers
  /// never set it): the value two nodes compare to decide whether a spilled
  /// request lands on bit-identical weights.
  std::uint64_t artifact_digest = 0;
};

/// Handle for one streaming IMU session opened through the router. Sticky:
/// bound to the shard generation and engine that admitted it.
struct FleetSession {
  std::string shard;
  std::uint64_t generation = 0;
  std::size_t engine = 0;
  engine::SessionId id = 0;
};

/// Fleet-wide telemetry built by merge()-ing per-engine EngineStats.
///
/// Consistency contract for the queue-depth gauges: Router::stats() reads
/// every engine's depth in one tight pass *before* the (much slower)
/// histogram-copying stats snapshots, then overwrites each snapshot's own
/// depth with the pass's value. Consequently `queue_depth`,
/// `total.queue_depth`, and the sum of `shards[*].queue_depth` are all the
/// same sum of per-engine reads taken within microseconds of each other —
/// never a smear of instants milliseconds apart. (Depths remain gauges: the
/// pass is near-simultaneous, not an atomic cut across engines, and the
/// *counter* fields are still read at each engine's own snapshot instant.)
/// Identity of what a shard currently serves: artifact digest + the shard
/// generation serving it. The cluster's heartbeat payload and the scrape
/// page's artifact gauges are views of this.
struct ArtifactInfo {
  std::uint64_t digest = 0;
  std::uint64_t generation = 0;
};

struct FleetStats {
  engine::EngineStats total;  ///< merged across every engine of every shard
  std::map<std::string, engine::EngineStats> shards;  ///< merged per shard
  /// Per-shard artifact identity (digest + live generation).
  std::map<std::string, ArtifactInfo> artifacts;
  std::size_t num_shards = 0;
  std::size_t num_engines = 0;
  /// Live fleet-wide queue depth from the single depth pass (see contract
  /// above): always exactly equal to total.queue_depth. This gauge is the
  /// cheap one overload dashboards (the gateway Stats page, the load
  /// harness) poll.
  std::size_t queue_depth = 0;
};

/// Instantaneous per-engine queue depths of one shard, in engine order.
struct ShardDepths {
  std::string shard;
  std::vector<std::size_t> engines;
  /// Bulk-lane depth of each engine (engines[i] counts both classes;
  /// bulk[i] just the bulk lane) — the saturation signal cross-node spill
  /// reads: interactive entries outrank bulk everywhere, so total depth
  /// mistakes interactive-busy engines for bulk-full ones.
  std::vector<std::size_t> bulk;
};

/// One shard's artifact identity, flattened for heartbeat payloads.
struct ShardArtifact {
  std::string shard;
  std::uint64_t digest = 0;
  std::uint64_t generation = 0;
};

/// The routing surface the serving front ends consume — what the gateway
/// listener and the cluster node agent actually need from a fleet: admit
/// work, manage sticky sessions, answer capacity/identity questions. Router
/// is the local implementation; the cluster's NodeAgent wraps a Router and
/// implements the same surface with cross-node bulk spill behind it, so a
/// gateway serves a multi-node fleet without knowing it.
class Routing {
 public:
  virtual ~Routing() = default;

  virtual engine::Submission submit(std::string_view shard_key,
                                    const serve::RssiVector& rssi,
                                    const engine::SubmitOptions& options = {}) = 0;
  virtual std::optional<FleetSession> open_session(std::string_view shard_key,
                                                   const geo::Point2& start) = 0;
  virtual engine::Submission track(const FleetSession& session, serve::ImuSegment segment,
                                   const engine::SubmitOptions& options = {}) = 0;
  virtual bool close_session(const FleetSession& session) = 0;
  virtual bool has_shard(std::string_view shard_key) const = 0;
  virtual FleetStats stats() const = 0;
  virtual std::vector<ShardDepths> queue_depths() const = 0;

  /// Implementation-specific extra scrape samples (e.g. a node agent's
  /// spill counters), spliced into the gateway's snapshot. Default: none.
  virtual void splice_metrics(obs::MetricsSnapshot& out) const { (void)out; }
};

class Router : public Routing {
 public:
  Router() = default;
  ~Router() override { shutdown(); }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers a shard serving `wifi` (every engine replicates it). False
  /// when the key is empty or already registered.
  bool add_shard(const ShardConfig& config, const serve::WifiLocalizer& wifi);
  /// As above, with streaming IMU sessions enabled on every engine.
  bool add_shard(const ShardConfig& config, const serve::WifiLocalizer& wifi,
                 const serve::ImuLocalizer& imu);

  /// Routes one scan to `shard_key`: primary engine by fingerprint hash;
  /// on kQueueFull interactive submissions fall through the remaining
  /// engines in consistent probe order while bulk submissions spill to the
  /// shallowest queue first (fleet-wide load shedding). kNoShard when the
  /// key is unknown. A submission racing a hot_swap retries once onto the
  /// replacement generation. The scan is copied only by the engine that
  /// admits it, never per probe; class and deadline options are forwarded
  /// to every probed engine unchanged.
  engine::Submission submit(std::string_view shard_key, const serve::RssiVector& rssi,
                            const engine::SubmitOptions& options = {}) override;

  /// Opens a streaming IMU session on `shard_key` (engines are rotated
  /// round-robin). nullopt when the shard is unknown or has no IMU model;
  /// an open racing a hot_swap retries once onto the replacement
  /// generation, like submit().
  std::optional<FleetSession> open_session(std::string_view shard_key,
                                           const geo::Point2& start) override;

  /// Queues one IMU segment for a session. kNoSession when the session's
  /// shard generation has been swapped out (sessions do not survive a
  /// model update) or the shard is gone. Admission options apply per
  /// update, exactly as in Engine::track.
  engine::Submission track(const FleetSession& session, serve::ImuSegment segment,
                           const engine::SubmitOptions& options = {}) override;

  /// Unregisters a session; false for unknown/expired handles.
  bool close_session(const FleetSession& session) override;

  /// Replaces `shard_key`'s engines with fresh ones serving `wifi` (same
  /// ShardConfig, new generation, empty caches). Already-accepted futures
  /// on the old generation drain and resolve against the old model; new
  /// admissions are served by the new one. False for unknown keys.
  bool hot_swap(std::string_view shard_key, const serve::WifiLocalizer& wifi);
  bool hot_swap(std::string_view shard_key, const serve::WifiLocalizer& wifi,
                const serve::ImuLocalizer& imu);

  /// Merged per-shard and fleet-total telemetry.
  FleetStats stats() const override;

  /// Snapshot of every engine's instantaneous queue depth, grouped by shard
  /// (keys in registry order). One queue lock per engine, no histogram
  /// copies — the load signal the gateway Stats frame and the open-loop
  /// harness report. Depths of different engines are read at slightly
  /// different instants; it is a gauge, not a consistent cut.
  std::vector<ShardDepths> queue_depths() const override;

  /// Cheap per-shard artifact identity (one registry read, no engine
  /// locks): the digest + generation each heartbeat frame carries.
  std::vector<ShardArtifact> shard_artifacts() const;

  /// Unmerged per-engine snapshots of one shard (tests, debugging; empty
  /// for unknown keys).
  std::vector<engine::EngineStats> shard_engine_stats(std::string_view shard_key) const;

  std::vector<std::string> shard_keys() const;
  bool has_shard(std::string_view shard_key) const override;
  std::size_t num_shards() const;

  /// Drains and stops every engine of every shard. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  struct Shard {
    ShardConfig config;
    std::uint64_t generation = 0;
    std::vector<std::unique_ptr<engine::Engine>> engines;
    std::atomic<std::size_t> next_session_engine{0};
  };

  std::shared_ptr<Shard> find_shard(std::string_view key) const;
  std::shared_ptr<Shard> build_shard(const ShardConfig& config,
                                     const serve::WifiLocalizer& wifi,
                                     const serve::ImuLocalizer* imu);
  bool swap_impl(std::string_view key, const serve::WifiLocalizer& wifi,
                 const serve::ImuLocalizer* imu);

  mutable std::shared_mutex mu_;  ///< guards the shard registry map only
  std::map<std::string, std::shared_ptr<Shard>, std::less<>> shards_;
  std::atomic<std::uint64_t> next_generation_{1};
};

}  // namespace noble::fleet

#endif  // NOBLE_FLEET_ROUTER_H_
