#include "fleet/router.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "serve/wifi_localizer.h"
#include "serve/imu_localizer.h"

namespace noble::fleet {

namespace {

/// Primary-engine selection: the same scan always hashes to the same engine
/// of a shard, so per-engine fingerprint caches see every repeat of a scan.
/// The hash step matches the default cache key step; it only spreads load,
/// correctness never depends on it (all engines of a shard are replicas).
std::size_t primary_engine(const serve::RssiVector& rssi, std::size_t num_engines) {
  return engine::FingerprintHash{1.0}(rssi) % num_engines;
}

}  // namespace

bool Router::add_shard(const ShardConfig& config, const serve::WifiLocalizer& wifi) {
  if (config.key.empty() || config.engines == 0) return false;
  std::shared_ptr<Shard> shard = build_shard(config, wifi, nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  return shards_.emplace(config.key, std::move(shard)).second;
}

bool Router::add_shard(const ShardConfig& config, const serve::WifiLocalizer& wifi,
                       const serve::ImuLocalizer& imu) {
  if (config.key.empty() || config.engines == 0) return false;
  std::shared_ptr<Shard> shard = build_shard(config, wifi, &imu);
  std::unique_lock<std::shared_mutex> lock(mu_);
  return shards_.emplace(config.key, std::move(shard)).second;
}

std::shared_ptr<Router::Shard> Router::build_shard(const ShardConfig& config,
                                                   const serve::WifiLocalizer& wifi,
                                                   const serve::ImuLocalizer* imu) {
  auto shard = std::make_shared<Shard>();
  shard->config = config;
  // The shard's artifact identity is derived from the localizers, never
  // trusted from the caller's config: a wifi-only shard is its wifi digest,
  // a wifi+imu shard chains the imu digest onto it (order fixed, so the
  // combined identity is stable).
  shard->config.artifact_digest = wifi.artifact_digest();
  if (imu != nullptr) {
    const std::uint64_t imu_digest = imu->artifact_digest();
    shard->config.artifact_digest = common::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(&imu_digest), sizeof imu_digest),
        shard->config.artifact_digest);
  }
  shard->generation = next_generation_.fetch_add(1);
  shard->engines.reserve(config.engines);
  for (std::size_t i = 0; i < config.engines; ++i) {
    shard->engines.push_back(
        imu != nullptr
            ? std::make_unique<engine::Engine>(wifi, *imu, config.engine)
            : std::make_unique<engine::Engine>(wifi, config.engine));
  }
  return shard;
}

std::shared_ptr<Router::Shard> Router::find_shard(std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : it->second;
}

engine::Submission Router::submit(std::string_view shard_key,
                                  const serve::RssiVector& rssi,
                                  const engine::SubmitOptions& options) {
  engine::Submission last{engine::SubmitStatus::kNoShard, {}};
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<Shard> shard = find_shard(shard_key);
    if (shard == nullptr) return {engine::SubmitStatus::kNoShard, {}};
    const std::size_t n = shard->engines.size();
    const std::size_t primary = primary_engine(rssi, n);
    // Primary first for every class: the fingerprint affinity that keeps
    // per-engine caches hot. Only kQueueFull falls through — any other
    // verdict is a property of the whole shard (replicas are identical).
    last = shard->engines[primary]->submit(rssi, options);
    if (last.status == engine::SubmitStatus::kQueueFull && n > 1) {
      if (options.request_class == engine::RequestClass::kBulk) {
        // Fleet-wide load shedding: a shedding bulk sweep hunts for
        // capacity, not cache affinity — spill to the shallowest *bulk
        // lane* first: interactive entries outrank bulk on every engine
        // anyway, so total depth mistakes interactive-busy engines for
        // bulk-full ones. Depths are snapshotted once per engine before
        // sorting (comparing live depths inside the sort would break
        // strict weak ordering while workers drain concurrently); the
        // stable sort keeps the probe order deterministic on ties.
        std::vector<std::pair<std::size_t, std::size_t>> order;
        order.reserve(n - 1);
        for (std::size_t probe = 1; probe < n; ++probe) {
          const std::size_t index = (primary + probe) % n;
          order.emplace_back(
              shard->engines[index]->queue_depth(engine::RequestClass::kBulk), index);
        }
        std::stable_sort(order.begin(), order.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [depth, index] : order) {
          last = shard->engines[index]->submit(rssi, options);
          if (last.status != engine::SubmitStatus::kQueueFull) break;
        }
      } else {
        // Interactive keeps the consistent affinity-preserving probe order
        // — and pays no depth locks on its latency path.
        for (std::size_t probe = 1; probe < n; ++probe) {
          last = shard->engines[(primary + probe) % n]->submit(rssi, options);
          if (last.status != engine::SubmitStatus::kQueueFull) break;
        }
      }
    }
    if (last.status != engine::SubmitStatus::kStopped) return last;
    // kStopped from a routed engine means this generation was hot-swapped
    // under us; re-resolve the key and retry once on the replacement.
    if (find_shard(shard_key) == shard) break;
  }
  return last;
}

std::optional<FleetSession> Router::open_session(std::string_view shard_key,
                                                 const geo::Point2& start) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<Shard> shard = find_shard(shard_key);
    if (shard == nullptr) return std::nullopt;
    const std::size_t n = shard->engines.size();
    const std::size_t first = shard->next_session_engine.fetch_add(1) % n;
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t index = (first + probe) % n;
      if (std::optional<engine::SessionId> id = shard->engines[index]->open_session(start)) {
        return FleetSession{shard->config.key, shard->generation, index, *id};
      }
    }
    // Every engine refused: either the shard has no IMU model, or its
    // generation was hot-swapped under us (stopped engines refuse opens).
    // Mirror submit(): retry once iff the registry now holds a new shard.
    if (find_shard(shard_key) == shard) break;
  }
  return std::nullopt;
}

engine::Submission Router::track(const FleetSession& session, serve::ImuSegment segment,
                                 const engine::SubmitOptions& options) {
  std::shared_ptr<Shard> shard = find_shard(session.shard);
  if (shard == nullptr || shard->generation != session.generation ||
      session.engine >= shard->engines.size()) {
    return {engine::SubmitStatus::kNoSession, {}};
  }
  return shard->engines[session.engine]->track(session.id, std::move(segment), options);
}

bool Router::close_session(const FleetSession& session) {
  std::shared_ptr<Shard> shard = find_shard(session.shard);
  if (shard == nullptr || shard->generation != session.generation ||
      session.engine >= shard->engines.size()) {
    return false;
  }
  return shard->engines[session.engine]->close_session(session.id);
}

bool Router::hot_swap(std::string_view shard_key, const serve::WifiLocalizer& wifi) {
  return swap_impl(shard_key, wifi, nullptr);
}

bool Router::hot_swap(std::string_view shard_key, const serve::WifiLocalizer& wifi,
                      const serve::ImuLocalizer& imu) {
  return swap_impl(shard_key, wifi, &imu);
}

bool Router::swap_impl(std::string_view key, const serve::WifiLocalizer& wifi,
                       const serve::ImuLocalizer* imu) {
  ShardConfig config;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = shards_.find(key);
    if (it == shards_.end()) return false;
    config = it->second->config;
  }
  // Engines are built outside every lock (model replication is the slow
  // part), then swapped in atomically.
  std::shared_ptr<Shard> fresh = build_shard(config, wifi, imu);
  std::shared_ptr<Shard> old;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = shards_.find(key);
    if (it == shards_.end()) return false;  // removed while we were building
    old = std::exchange(it->second, std::move(fresh));
  }
  // Drain the old generation outside the registry lock: every accepted
  // future resolves (against the old model); racing submissions observe
  // kStopped and retry onto the new generation inside submit().
  for (const auto& eng : old->engines) eng->shutdown();
  return true;
}

FleetStats Router::stats() const {
  FleetStats out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.num_shards = shards_.size();
  // Depth gauges first, in one tight pass: eng->stats() copies whole
  // histograms, and interleaving depth reads with those copies used to put
  // milliseconds between the first and last engine's gauge — under load the
  // "fleet depth" was a smear of instants that disagreed with the per-engine
  // sum. One quick pass (a queue-lock each, no copies) nails every depth to
  // nearly the same instant; the stats copies below then *overwrite* their
  // own interleaved depth reads with the pass's values, which is what makes
  // the FleetStats consistency contract (total.queue_depth == queue_depth ==
  // sum of per-shard depths) hold exactly.
  std::map<std::string, std::vector<std::size_t>> depth_pass;
  for (const auto& [key, shard] : shards_) {
    std::vector<std::size_t>& depths = depth_pass[key];
    depths.reserve(shard->engines.size());
    for (const auto& eng : shard->engines) {
      depths.push_back(eng->queue_depth());
      out.queue_depth += depths.back();
    }
  }
  for (const auto& [key, shard] : shards_) {
    const std::vector<std::size_t>& depths = depth_pass[key];
    engine::EngineStats merged;
    for (std::size_t e = 0; e < shard->engines.size(); ++e) {
      engine::EngineStats snap = shard->engines[e]->stats();
      snap.queue_depth = depths[e];
      merged.merge(snap);
      ++out.num_engines;
    }
    out.total.merge(merged);
    out.shards.emplace(key, std::move(merged));
    out.artifacts.emplace(
        key, ArtifactInfo{shard->config.artifact_digest, shard->generation});
  }
  return out;
}

std::vector<ShardDepths> Router::queue_depths() const {
  std::vector<ShardDepths> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) {
    ShardDepths depths;
    depths.shard = key;
    depths.engines.reserve(shard->engines.size());
    depths.bulk.reserve(shard->engines.size());
    for (const auto& eng : shard->engines) {
      depths.engines.push_back(eng->queue_depth());
      depths.bulk.push_back(eng->queue_depth(engine::RequestClass::kBulk));
    }
    out.push_back(std::move(depths));
  }
  return out;
}

std::vector<ShardArtifact> Router::shard_artifacts() const {
  std::vector<ShardArtifact> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) {
    out.push_back(ShardArtifact{key, shard->config.artifact_digest, shard->generation});
  }
  return out;
}

std::vector<engine::EngineStats> Router::shard_engine_stats(
    std::string_view shard_key) const {
  std::vector<engine::EngineStats> out;
  std::shared_ptr<Shard> shard = find_shard(shard_key);
  if (shard == nullptr) return out;
  out.reserve(shard->engines.size());
  for (const auto& eng : shard->engines) out.push_back(eng->stats());
  return out;
}

std::vector<std::string> Router::shard_keys() const {
  std::vector<std::string> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) out.push_back(key);
  return out;
}

bool Router::has_shard(std::string_view shard_key) const {
  return find_shard(shard_key) != nullptr;
}

std::size_t Router::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_.size();
}

void Router::shutdown() {
  std::vector<std::shared_ptr<Shard>> all;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    all.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) all.push_back(shard);
  }
  for (const auto& shard : all) {
    for (const auto& eng : shard->engines) eng->shutdown();
  }
}

}  // namespace noble::fleet
