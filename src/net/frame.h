// noble::net — the shared frame codec under every socket protocol in the
// tree (the gateway's client wire and the cluster's inter-node RPC).
//
// Every frame on a noble connection is
//
//   u32 payload_length | payload
//
// and every payload opens with the same header, encoded with the
// nn/serialize ByteWriter/ByteReader codec the model artifacts already use:
//
//   u32 magic+version ("NGW" + version byte)   — versioned magic
//   u32 message type                           — protocol-scoped id
//   u64 request id                             — echoed on the response
//   u8  request class                          — interactive / bulk
//   u64 deadline budget (us, 0 = none)         — relative, resolved by the
//                                                server against its clock at
//                                                decode (clocks never cross
//                                                the wire)
//
// followed by a per-type body owned by the protocol. What makes the codec
// shareable is the MessageSet registry: each protocol registers its message
// ids (gateway request/response types, cluster hello/heartbeat/spill/
// rollout types) and hands its set to decode_frame, which enforces
// membership exactly like it enforces the magic — one framing loop, one
// defensive-decode contract, per-protocol vocabularies.
//
// Decoding is defensive at every step: a length prefix beyond
// max_frame_bytes, a bad magic, an unsupported version, a type outside the
// protocol's MessageSet or a truncated header all yield kMalformed with a
// reason, and a server answers with one kError frame and closes the
// connection. A short buffer is just kNeedMore — framing state, not an
// error.
#ifndef NOBLE_NET_FRAME_H_
#define NOBLE_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "engine/bounded_queue.h"

namespace noble::net {

/// "NGW" + one version byte. Bumping the protocol bumps only the low byte,
/// so a decoder can tell "other version" apart from "not our protocol".
/// (The tag predates the transport extraction — kept so existing gateway
/// peers stay wire-compatible.)
inline constexpr std::uint32_t kProtocolTag = 0x4E475700u;  // "NGW\0"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kMagic = kProtocolTag | kVersion;

/// Hard ceiling a decoder applies to the length prefix before trusting it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// The one message id every MessageSet must register: the error frame a
/// server sends before closing on a protocol violation. Shared across
/// protocols so a client library can recognize "the peer is hanging up on
/// me" without knowing which protocol the peer speaks.
inline constexpr std::uint32_t kErrorType = 105;

/// A message-type id on the wire. Stores the raw u32 but converts to and
/// compares against any protocol's enum, so gateway code keeps writing
/// `frame.type = MsgType::kLocate` while the codec stays protocol-blind.
class TypeId {
 public:
  constexpr TypeId() = default;
  constexpr TypeId(std::uint32_t raw) : raw_(raw) {}  // NOLINT(google-explicit-constructor)
  template <typename E, typename = std::enable_if_t<std::is_enum_v<E>>>
  constexpr TypeId(E e) : raw_(static_cast<std::uint32_t>(e)) {}  // NOLINT

  constexpr std::uint32_t raw() const { return raw_; }
  explicit constexpr operator std::uint32_t() const { return raw_; }
  /// View as a protocol enum (caller has already checked membership — the
  /// decoder's MessageSet pass guarantees it for decoded frames).
  template <typename E>
  constexpr E as() const {
    return static_cast<E>(raw_);
  }

  friend constexpr bool operator==(TypeId a, TypeId b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(TypeId a, TypeId b) { return a.raw_ != b.raw_; }

 private:
  std::uint32_t raw_ = 0;
};

/// One protocol's message vocabulary: the registry decode_frame validates
/// inbound type ids against. Built once per protocol (function-local static)
/// and shared by every socket speaking it.
class MessageSet {
 public:
  struct Entry {
    std::uint32_t id = 0;
    const char* name = "?";
  };

  MessageSet(const char* protocol, std::vector<Entry> entries);

  const char* protocol() const { return protocol_; }
  bool known(std::uint32_t id) const;
  /// Human-readable name for logs/tests; "?" for ids outside the set.
  const char* name_of(std::uint32_t id) const;
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  const char* protocol_;
  std::vector<Entry> entries_;  ///< sorted by id
};

/// One decoded frame: the common header plus the still-encoded body (the
/// protocol's typed decode_* helpers parse it).
struct Frame {
  TypeId type{};
  std::uint64_t request_id = 0;
  engine::RequestClass cls = engine::RequestClass::kInteractive;
  std::uint64_t deadline_us = 0;  ///< relative budget; 0 = none
  std::string body;
};

// --- framing -----------------------------------------------------------------

/// Encodes header + body and prepends the u32 length prefix.
std::string encode_frame(const Frame& frame);

enum class DecodeResult {
  kFrame,      ///< one frame consumed from the buffer into `out`
  kNeedMore,   ///< buffer holds a partial frame; read more bytes
  kMalformed,  ///< unrecoverable framing/header error; close the connection
};

/// Consumes at most one frame from the front of `buffer`, admitting only
/// message types registered in `set`. On kMalformed the buffer is left
/// as-is (the connection is dead anyway) and `error` (when non-null) names
/// the violation: oversized length prefix, bad magic, version mismatch,
/// unknown message type, or truncated header.
DecodeResult decode_frame(const MessageSet& set, std::string& buffer, Frame& out,
                          std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                          std::string* error = nullptr);

// --- shared bodies -----------------------------------------------------------

/// Error frames (and any other single-string payload) share one body codec
/// across protocols: u64-length-prefixed raw bytes.
std::string encode_text_body(std::string_view text);
bool decode_text_body(std::string_view body, std::string& text);

}  // namespace noble::net

#endif  // NOBLE_NET_FRAME_H_
