// Server half of the shared transport: the accept/poll/framing machinery
// extracted from the gateway listener so every frame protocol in the tree
// (gateway client traffic, cluster heartbeats and spill RPC) runs the same
// loop instead of re-implementing it.
//
//   peers ══ TCP, net::Frame ══▶ accept loop ──▶ handler 0 ─ conns…
//                                  (round-robin)  handler 1 ─ conns…
//                                                    │
//                                        FrameHandler::on_frame / on_service
//
// The FrameServer owns sockets, buffers and framing; the FrameHandler owns
// meaning. Per connection the server keeps a read buffer (bytes -> frames),
// a write buffer (frames -> bytes, flushed as the socket drains) and the
// handler's opaque per-connection state. Responses are whatever the handler
// send()s, in whatever order it settles them — the transport never imposes
// request order.
//
// The defensive-decode contract lives here, once: a frame that fails
// decode_frame against the handler's MessageSet answers with one kError
// frame (net::kErrorType + text body naming the violation) and closes the
// connection after the flush — there is no resync point in a
// length-prefixed stream once the prefix itself is untrusted.
#ifndef NOBLE_NET_SERVER_H_
#define NOBLE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "obs/metrics.h"

namespace noble::net {

struct ServerConfig {
  /// TCP port to bind; 0 picks an ephemeral port (FrameServer::port()
  /// reports the actual one — what tests and self-hosted benches want).
  std::uint16_t port = 0;
  /// Bind address. Loopback by default: this is a demo fleet, not an
  /// internet-facing deployment.
  std::string bind_address = "127.0.0.1";
  /// Connection-handler threads; each multiplexes its share of connections.
  std::size_t threads = 2;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Frames with a larger length prefix are malformed (connection closes).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bytes of pending response data before a connection is declared too
  /// slow and closed (it is not reading what we send).
  std::size_t max_write_buffer = 4u << 20;
  int listen_backlog = 64;
};

class FrameServer;

/// One live connection as the protocol handler sees it. Only valid inside
/// the handler callbacks (the owning handler thread); never retained.
class ServerConn {
 public:
  /// Encodes `frame` into the write buffer; the poll loop flushes it as the
  /// socket drains.
  void send(const Frame& frame);

  /// Flush the write buffer and pending work, then close. The poll loop
  /// keeps servicing the connection (on_service still runs) until both the
  /// buffer and the handler's pending work drain.
  void close_after_flush() { closing_ = true; }
  bool closing() const { return closing_; }

  /// Protocol-defined per-connection state (in-flight windows, sticky
  /// sessions). The handler allocates it on first use; it is destroyed with
  /// the connection, after on_close.
  std::shared_ptr<void> user;

 private:
  friend class FrameServer;
  ServerConn(int fd, FrameServer* server) : fd_(fd), server_(server) {}
  int fd_;
  FrameServer* server_;
  std::string inbuf_;
  std::string outbuf_;
  bool closing_ = false;
  bool busy_ = false;  ///< last on_service verdict; drives the poll timeout
};

/// Transport-level counters (what only the socket layer can see; protocol
/// counters live in the handler).
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;  ///< gauge
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t malformed_frames = 0;  ///< framing-level decode failures
};

/// Protocol half of the server. Callbacks run on handler threads, one
/// thread per connection at a time (a connection never migrates mid-pass).
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// The protocol's message vocabulary; inbound frames are validated
  /// against it before on_frame sees them.
  virtual const MessageSet& message_set() const = 0;

  /// One decoded frame. `recv_ns` is the arrival stamp of the read pass
  /// that carried it (0 unless stamp_arrivals()). Return false to close
  /// the connection immediately (protocol violations that want the
  /// one-error-frame path should send + close_after_flush and return true).
  virtual bool on_frame(ServerConn& conn, Frame frame, std::uint64_t recv_ns) = 0;

  /// Called once per poll pass per connection (frames or not): settle
  /// pending futures, emit responses. Return true while the connection has
  /// pending work — the poll loop then spins at a 200us timeout instead of
  /// blocking (the engine has no way to kick a socket thread).
  virtual bool on_service(ServerConn& conn) {
    (void)conn;
    return false;
  }

  /// The connection is going away (peer loss, violation, server stop):
  /// release protocol state (sticky sessions etc.). conn.user is still set.
  virtual void on_close(ServerConn& conn) { (void)conn; }

  /// True => the server stamps one steady-clock read per read pass and
  /// passes it to on_frame (request tracing); false skips the clock read.
  virtual bool stamp_arrivals() const { return false; }
};

class FrameServer {
 public:
  /// The handler must outlive the server. Construction does not touch the
  /// network; start() does.
  FrameServer(FrameHandler& handler, ServerConfig config = {});
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens and spawns the accept + handler threads. False (with
  /// the OS error in errno) when the socket cannot be bound.
  bool start();

  /// Stops accepting, wakes every handler, closes every connection (with
  /// on_close) and joins. Idempotent; the destructor calls it — but owners
  /// whose handler state dies before the server member must call stop()
  /// in their own destructor first.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }

  ServerCounters counters() const;

 private:
  friend class ServerConn;

  struct HandlerThread {
    std::mutex mu;              ///< guards the handoff queue
    std::vector<int> incoming;  ///< accepted fds awaiting adoption
    int wake_read_fd = -1, wake_write_fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void handler_loop(HandlerThread& handler);
  /// Drains readable bytes and parses frames; false = close the connection.
  bool handle_readable(ServerConn& conn);
  /// Non-blocking flush of the write buffer; false = peer gone.
  bool flush_writes(ServerConn& conn);
  void close_connection(ServerConn& conn);

  FrameHandler& handler_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<HandlerThread>> handlers_;
  std::thread accept_thread_;

  /// obs::Counter members (thread-striped): handler threads increment
  /// without sharing lines, and ServerCounters stays the struct view.
  /// connections_open_ is a level worn as a counter (inc on accept, sub on
  /// close) — the mod-2^64 stripe sum keeps it exact.
  obs::Counter connections_accepted_;
  obs::Counter connections_open_;
  obs::Counter connections_rejected_;
  obs::Counter frames_received_;
  obs::Counter frames_sent_;
  obs::Counter malformed_frames_;
};

}  // namespace noble::net

#endif  // NOBLE_NET_SERVER_H_
