// Client half of the shared transport: one connected fd plus the framing
// state (buffered reads, whole-frame sends), bound to the MessageSet of the
// protocol it speaks.
//
// FrameSocket is deliberately dumb: one frame in, one frame out, full
// duplex — one thread may send while another receives (that is how the
// open-loop load harness and the cluster's spill clients pipeline), but
// each direction belongs to exactly one thread at a time.
#ifndef NOBLE_NET_SOCKET_H_
#define NOBLE_NET_SOCKET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.h"

namespace noble::net {

class FrameSocket {
 public:
  /// Connects (blocking) to host:port speaking `set`'s protocol; nullopt on
  /// refusal/resolution error. The MessageSet must outlive the socket
  /// (protocol sets are function-local statics, so this is free).
  static std::optional<FrameSocket> connect(const std::string& host,
                                            std::uint16_t port,
                                            const MessageSet& set);

  FrameSocket(FrameSocket&& other) noexcept;
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;
  ~FrameSocket();

  /// Sends one whole frame (blocking). False when the peer is gone.
  bool send_frame(const Frame& frame);

  /// Receives the next frame, waiting at most `timeout_ms` (-1 = forever).
  /// nullopt on timeout, orderly close, or a malformed inbound frame (the
  /// socket is marked invalid for the latter two; timeouts leave it usable).
  std::optional<Frame> recv_frame(int timeout_ms = -1);

  /// Half-closes both directions — unblocks a thread parked in recv_frame
  /// (it observes EOF), which is how a reader thread gets stopped.
  void shutdown_both();

  bool valid() const { return fd_ >= 0 && !broken_; }

 private:
  FrameSocket(int fd, const MessageSet* set) : fd_(fd), set_(set) {}
  int fd_ = -1;
  const MessageSet* set_ = nullptr;
  bool broken_ = false;
  std::string inbuf_;
};

}  // namespace noble::net

#endif  // NOBLE_NET_SOCKET_H_
