#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.h"

namespace noble::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void ServerConn::send(const Frame& frame) {
  outbuf_ += encode_frame(frame);
  server_->frames_sent_.inc();
}

FrameServer::FrameServer(FrameHandler& handler, ServerConfig config)
    : handler_(handler), config_(std::move(config)) {}

FrameServer::~FrameServer() { stop(); }

bool FrameServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  handlers_.clear();
  const std::size_t threads = config_.threads == 0 ? 1 : config_.threads;
  for (std::size_t i = 0; i < threads; ++i) {
    auto handler = std::make_unique<HandlerThread>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      running_.store(false, std::memory_order_release);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    handler->wake_read_fd = pipe_fds[0];
    handler->wake_write_fd = pipe_fds[1];
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    handler->thread = std::thread([this, &h = *handler] { handler_loop(h); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void FrameServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unpark a blocked accept-poll, but leave the fd itself alone until the
  // accept thread is joined: closing (and overwriting) it here would race
  // the poll()/accept() calls still using it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& handler : handlers_) {
    const char byte = 'q';
    (void)!::write(handler->wake_write_fd, &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
    ::close(handler->wake_read_fd);
    ::close(handler->wake_write_fd);
    // Adopt-queue stragglers the handler never saw still need closing.
    for (const int fd : handler->incoming) ::close(fd);
    handler->incoming.clear();
  }
  handlers_.clear();
}

void FrameServer::accept_loop() {
  std::size_t next_handler = 0;
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (connections_open_.value() >= config_.max_connections) {
      connections_rejected_.inc();
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Frames are small and latency is the product; never Nagle-delay them.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.inc();
    connections_open_.inc();
    HandlerThread& handler = *handlers_[next_handler];
    next_handler = (next_handler + 1) % handlers_.size();
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      handler.incoming.push_back(fd);
    }
    const char byte = 'c';
    (void)!::write(handler.wake_write_fd, &byte, 1);
  }
}

void FrameServer::handler_loop(HandlerThread& handler) {
  std::vector<std::unique_ptr<ServerConn>> conns;
  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{handler.wake_read_fd, POLLIN, 0});
    bool any_busy = false;
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (!conn->outbuf_.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd_, events, 0});
      any_busy = any_busy || conn->busy_;
    }
    // With protocol work pending (the handler's last on_service said busy)
    // the loop must poll it too — an engine future has no way to kick a
    // socket thread — so sleep at most 200us (one batching window) instead
    // of blocking. Idle handlers block until a socket or the wake pipe
    // fires. ppoll for the sub-millisecond case: poll()'s millisecond floor
    // would put a visible constant into every latency.
    if (any_busy) {
      const timespec wait{0, 200'000};
      ::ppoll(pfds.data(), pfds.size(), &wait, nullptr);
    } else {
      ::ppoll(pfds.data(), pfds.size(), nullptr, nullptr);
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(handler.wake_read_fd, drain, sizeof drain) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      for (const int fd : handler.incoming) {
        conns.push_back(std::unique_ptr<ServerConn>(new ServerConn(fd, this)));
      }
      handler.incoming.clear();
    }

    for (std::size_t i = 0; i < conns.size();) {
      ServerConn& conn = *conns[i];
      // pfds[0] is the wake pipe; connection i sat at pfds[i + 1] — but
      // adoption above may have grown conns past pfds, so guard the index.
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
      if (alive && (revents & (POLLIN | POLLHUP))) alive = handle_readable(conn);
      if (alive) conn.busy_ = handler_.on_service(conn);
      if (alive && !conn.outbuf_.empty()) alive = flush_writes(conn);
      if (alive && conn.outbuf_.size() > config_.max_write_buffer) alive = false;
      if (alive && conn.closing_ && conn.outbuf_.empty() && !conn.busy_) {
        alive = false;
      }
      if (!alive) {
        close_connection(conn);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        // pfds is now stale relative to conns; process remaining entries
        // with no revents this pass (the next loop iteration re-polls).
        pfds.clear();
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : conns) close_connection(*conn);
}

bool FrameServer::handle_readable(ServerConn& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd_, chunk, sizeof chunk);
    if (n > 0) {
      conn.inbuf_.append(chunk, static_cast<std::size_t>(n));
      if (conn.inbuf_.size() > config_.max_frame_bytes + sizeof(std::uint32_t)) break;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // One clock read stamps arrival for every frame parsed out of this read
  // pass — the bytes were all on the socket together, so they share an
  // arrival instant. 0 (stamping off) skips trace creation downstream.
  const std::uint64_t recv_ns =
      handler_.stamp_arrivals() ? obs::Trace::now_ns() : 0;
  while (!conn.closing_) {
    Frame frame;
    std::string error;
    switch (decode_frame(handler_.message_set(), conn.inbuf_, frame,
                         config_.max_frame_bytes, &error)) {
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kMalformed: {
        malformed_frames_.inc();
        Frame reply;
        reply.type = kErrorType;
        reply.body = encode_text_body(error);
        conn.send(reply);
        // One error frame, then close: there is no resync point in a
        // length-prefixed stream once the prefix itself is untrusted.
        conn.closing_ = true;
        return true;
      }
      case DecodeResult::kFrame:
        frames_received_.inc();
        if (!handler_.on_frame(conn, std::move(frame), recv_ns)) return false;
        break;
    }
  }
  return true;
}

bool FrameServer::flush_writes(ServerConn& conn) {
  while (!conn.outbuf_.empty()) {
    const ssize_t n =
        ::send(conn.fd_, conn.outbuf_.data(), conn.outbuf_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf_.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void FrameServer::close_connection(ServerConn& conn) {
  if (conn.fd_ < 0) return;
  handler_.on_close(conn);
  ::close(conn.fd_);
  conn.fd_ = -1;
  connections_open_.sub();
}

ServerCounters FrameServer::counters() const {
  ServerCounters out;
  out.connections_accepted = connections_accepted_.value();
  out.connections_open = connections_open_.value();
  out.connections_rejected = connections_rejected_.value();
  out.frames_received = frames_received_.value();
  out.frames_sent = frames_sent_.value();
  out.malformed_frames = malformed_frames_.value();
  return out;
}

}  // namespace noble::net
