#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace noble::net {

std::optional<FrameSocket> FrameSocket::connect(const std::string& host,
                                                std::uint16_t port,
                                                const MessageSet& set) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return FrameSocket(fd, &set);
}

FrameSocket::FrameSocket(FrameSocket&& other) noexcept
    : fd_(other.fd_),
      set_(other.set_),
      broken_(other.broken_),
      inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    set_ = other.set_;
    broken_ = other.broken_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

FrameSocket::~FrameSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool FrameSocket::send_frame(const Frame& frame) {
  if (!valid()) return false;
  const std::string bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    broken_ = true;
    return false;
  }
  return true;
}

std::optional<Frame> FrameSocket::recv_frame(int timeout_ms) {
  if (!valid()) return std::nullopt;
  for (;;) {
    Frame frame;
    switch (decode_frame(*set_, inbuf_, frame)) {
      case DecodeResult::kFrame:
        return frame;
      case DecodeResult::kMalformed:
        broken_ = true;
        return std::nullopt;
      case DecodeResult::kNeedMore:
        break;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return std::nullopt;  // timeout; socket stays usable
    if (ready < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      return std::nullopt;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    broken_ = true;  // orderly close or hard error: no more frames will come
    return std::nullopt;
  }
}

void FrameSocket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace noble::net
