#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "nn/serialize.h"

namespace noble::net {

namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

MessageSet::MessageSet(const char* protocol, std::vector<Entry> entries)
    : protocol_(protocol), entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
}

bool MessageSet::known(std::uint32_t id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, std::uint32_t value) { return e.id < value; });
  return it != entries_.end() && it->id == id;
}

const char* MessageSet::name_of(std::uint32_t id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, std::uint32_t value) { return e.id < value; });
  return it != entries_.end() && it->id == id ? it->name : "?";
}

std::string encode_frame(const Frame& frame) {
  nn::ByteWriter payload;
  payload.u32(kMagic);
  payload.u32(frame.type.raw());
  payload.u64(frame.request_id);
  payload.u8(static_cast<std::uint8_t>(engine::request_class_index(frame.cls)));
  payload.u64(frame.deadline_us);
  std::string out;
  const std::uint32_t length =
      static_cast<std::uint32_t>(payload.bytes().size() + frame.body.size());
  out.reserve(sizeof length + length);
  out.append(reinterpret_cast<const char*>(&length), sizeof length);
  out.append(payload.bytes());
  out.append(frame.body);
  return out;
}

DecodeResult decode_frame(const MessageSet& set, std::string& buffer, Frame& out,
                          std::size_t max_frame_bytes, std::string* error) {
  if (buffer.size() < sizeof(std::uint32_t)) return DecodeResult::kNeedMore;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer.data(), sizeof length);
  // The length prefix is attacker-controlled until proven otherwise: cap it
  // before allocating or waiting on it. There is no resync point in the
  // stream, so an oversized frame is terminal, not skippable.
  if (length > max_frame_bytes) {
    set_error(error, "oversized length prefix");
    return DecodeResult::kMalformed;
  }
  if (buffer.size() < sizeof length + length) return DecodeResult::kNeedMore;

  nn::ByteReader header(std::string_view(buffer).substr(sizeof length, length));
  std::uint32_t magic = 0, raw_type = 0;
  std::uint8_t cls_index = 0;
  Frame frame;
  if (!header.u32(magic) || !header.u32(raw_type) || !header.u64(frame.request_id) ||
      !header.u8(cls_index) || !header.u64(frame.deadline_us)) {
    set_error(error, "truncated frame header");
    return DecodeResult::kMalformed;
  }
  if (magic != kMagic) {
    // Distinguish a protocol peer speaking another version from raw garbage
    // — the error a two-sided deploy actually hits deserves its own text.
    set_error(error, (magic & 0xFFFFFF00u) == kProtocolTag ? "version mismatch"
                                                           : "bad magic");
    return DecodeResult::kMalformed;
  }
  if (!set.known(raw_type)) {
    set_error(error, "unknown message type");
    return DecodeResult::kMalformed;
  }
  if (cls_index >= engine::kNumRequestClasses) {
    set_error(error, "unknown request class");
    return DecodeResult::kMalformed;
  }
  frame.type = raw_type;
  frame.cls = cls_index == 0 ? engine::RequestClass::kInteractive
                             : engine::RequestClass::kBulk;
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 1 + 8;
  frame.body.assign(buffer, sizeof length + kHeaderBytes, length - kHeaderBytes);
  buffer.erase(0, sizeof length + length);
  out = std::move(frame);
  return DecodeResult::kFrame;
}

std::string encode_text_body(std::string_view text) {
  nn::ByteWriter w;
  w.str(text);
  return w.take();
}

bool decode_text_body(std::string_view body, std::string& text) {
  nn::ByteReader r(body);
  return r.str(text) && r.exhausted();
}

}  // namespace noble::net
