#include "sim/energy.h"

#include "common/check.h"

namespace noble::sim {

DeviceProfile jetson_tx2_profile() {
  // Calibration targets (paper §IV-C and §V-D): the UJI Wi-Fi model
  // (520-128-128 with ~2k output labels, ~0.34 MMAC) costs 0.00518 J / 2 ms
  // per inference, and the IMU model at the paper's raw scale (50 segments
  // of 768 x 6 readings through the shared projection, ~59 MMAC) costs
  // 0.08599 J / 5 ms. Jointly those two points pin a launch-overhead-
  // dominated regime for the small model and a ~2e10 MAC/s sustained rate
  // with ~1.3 nJ/MAC effective energy at single-sample batch — consistent
  // with TX2 small-batch GPU inference.
  return DeviceProfile{
      .name = "JetsonTX2",
      .joules_per_mac = 1.3e-9,
      .joules_per_byte = 3.0e-11,
      .joules_overhead = 4.6e-3,
      .latency_overhead_s = 1.9e-3,
      .macs_per_second = 2.0e10,
  };
}

EnergyModel::EnergyModel(DeviceProfile profile, SensorCosts sensors)
    : profile_(std::move(profile)), sensors_(sensors) {
  NOBLE_EXPECTS(profile_.joules_per_mac >= 0.0);
  NOBLE_EXPECTS(profile_.macs_per_second > 0.0);
}

InferenceCost EnergyModel::inference(std::size_t macs, std::size_t param_bytes) const {
  InferenceCost cost;
  cost.energy_j = profile_.joules_overhead +
                  profile_.joules_per_mac * static_cast<double>(macs) +
                  profile_.joules_per_byte * static_cast<double>(param_bytes);
  cost.latency_s = profile_.latency_overhead_s +
                   static_cast<double>(macs) / profile_.macs_per_second;
  return cost;
}

double EnergyModel::imu_sensing(double seconds) const {
  NOBLE_EXPECTS(seconds >= 0.0);
  return sensors_.imu_power_w * seconds;
}

double EnergyModel::imu_tracking_total(double path_seconds, std::size_t macs,
                                       std::size_t param_bytes) const {
  return imu_sensing(path_seconds) + inference(macs, param_bytes).energy_j;
}

}  // namespace noble::sim
