// Offline fingerprint collection: walks the corridor network of every
// building/floor and records (s⃗, b, f, (x, y)) samples, reproducing the
// UJIIndoorLoc collection protocol on the synthetic world.
#ifndef NOBLE_SIM_WIFI_DATASET_H_
#define NOBLE_SIM_WIFI_DATASET_H_

#include "data/dataset.h"
#include "sim/wifi.h"

namespace noble::sim {

/// Collection parameters.
struct CollectionConfig {
  /// Spacing of collection points along corridors (m).
  double spacing_m = 1.5;
  /// Independent measurements taken per collection point.
  std::size_t measurements_per_point = 3;
  /// Positional jitter of the surveyor around each point (m, std-dev).
  double position_jitter_m = 0.4;
  /// Cap on total samples (0 = unlimited); points are cycled uniformly.
  std::size_t max_samples = 0;
};

/// Collects a fingerprint dataset over the whole indoor world.
data::WifiDataset collect_wifi_dataset(const geo::IndoorWorld& world,
                                       const WifiWorld& wifi,
                                       const CollectionConfig& config, Rng& rng);

}  // namespace noble::sim

#endif  // NOBLE_SIM_WIFI_DATASET_H_
