#include "sim/imu_dataset.h"

#include <algorithm>

#include "common/check.h"

namespace noble::sim {

std::vector<float> resample_window(const ImuRecording& rec, std::size_t begin,
                                   std::size_t end, std::size_t readings) {
  NOBLE_EXPECTS(begin < end && end <= rec.samples.size());
  NOBLE_EXPECTS(readings >= 1);
  const std::size_t raw = end - begin;
  std::vector<float> out(readings * 6, 0.0f);
  for (std::size_t r = 0; r < readings; ++r) {
    // Block [lo, hi) of raw samples contributing to resampled reading r.
    const std::size_t lo = begin + r * raw / readings;
    std::size_t hi = begin + (r + 1) * raw / readings;
    if (hi <= lo) hi = lo + 1;
    double acc[6] = {0, 0, 0, 0, 0, 0};
    for (std::size_t i = lo; i < hi; ++i) {
      for (int c = 0; c < 6; ++c) acc[c] += rec.samples[i][static_cast<std::size_t>(c)];
    }
    const double inv = 1.0 / static_cast<double>(hi - lo);
    for (int c = 0; c < 6; ++c) {
      out[r * 6 + static_cast<std::size_t>(c)] = static_cast<float>(acc[c] * inv);
    }
  }
  return out;
}

data::ImuDataset build_imu_paths(const std::vector<ImuRecording>& recordings,
                                 const PathConfig& config, Rng& rng) {
  NOBLE_EXPECTS(!recordings.empty());
  NOBLE_EXPECTS(config.max_segments >= 1);
  data::ImuDataset ds;
  ds.segment_dim = config.readings_per_segment * 6;
  ds.max_segments = config.max_segments;
  ds.paths.reserve(config.num_paths);

  const double dt_per_sample = 1.0;  // durations are derived from indices below

  for (std::size_t n = 0; n < config.num_paths; ++n) {
    const auto& rec = recordings[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(recordings.size()) - 1))];
    const std::size_t refs = rec.num_refs();
    NOBLE_CHECK(refs >= 2);
    // (1) random start reference; (2) random length < max_segments.
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(refs) - 2));
    const std::size_t max_len = std::min(config.max_segments, refs - 1 - start);
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_len)));

    data::ImuPath path;
    path.features.assign(ds.feature_dim(), 0.0f);
    path.num_segments = len;
    path.start_ref = static_cast<int>(start);
    path.end_ref = static_cast<int>(start + len);
    path.start = rec.ref_position(start);
    path.end = rec.ref_position(start + len);
    // (3) concatenate the resampled inter-reference windows.
    path.segment_endpoints.reserve(len);
    for (std::size_t s = 0; s < len; ++s) {
      const std::size_t lo = rec.ref_sample_idx[start + s];
      const std::size_t hi = rec.ref_sample_idx[start + s + 1];
      const auto window = resample_window(rec, lo, hi, config.readings_per_segment);
      std::copy(window.begin(), window.end(),
                path.features.begin() + static_cast<std::ptrdiff_t>(s * ds.segment_dim));
      path.segment_endpoints.push_back(rec.ref_position(start + s + 1));
    }
    path.duration_s =
        static_cast<double>(rec.ref_sample_idx[start + len] - rec.ref_sample_idx[start]) *
        dt_per_sample / 50.0;
    ds.paths.push_back(std::move(path));
  }
  return ds;
}

}  // namespace noble::sim
