#include "sim/wifi_dataset.h"

#include "common/check.h"

namespace noble::sim {

data::WifiDataset collect_wifi_dataset(const geo::IndoorWorld& world,
                                       const WifiWorld& wifi,
                                       const CollectionConfig& config, Rng& rng) {
  NOBLE_EXPECTS(config.spacing_m > 0.0);
  NOBLE_EXPECTS(config.measurements_per_point >= 1);

  // Enumerate collection points: corridor polylines per building/floor.
  struct CollectPoint {
    geo::Point2 p;
    int building;
    int floor;
  };
  std::vector<CollectPoint> points;
  for (const auto& corridor : world.corridors) {
    for (const auto& p : corridor.graph.sample_along_edges(config.spacing_m)) {
      points.push_back({p, corridor.building, corridor.floor});
    }
  }
  NOBLE_CHECK(!points.empty());
  // Shuffle so a max_samples cap still covers every building/floor evenly.
  rng.shuffle(points);

  data::WifiDataset ds;
  ds.num_aps = wifi.num_aps();
  const std::size_t total_target =
      config.max_samples == 0 ? points.size() * config.measurements_per_point
                              : config.max_samples;
  ds.samples.reserve(total_target);

  std::size_t emitted = 0;
  for (std::size_t round = 0; emitted < total_target; ++round) {
    for (std::size_t i = 0; i < points.size() && emitted < total_target; ++i) {
      const CollectPoint& cp = points[i];
      // Surveyor stands near (not exactly at) the nominal point; keep the
      // jittered position inside the building's accessible region.
      geo::Point2 pos = cp.p;
      const geo::Point2 jittered{
          cp.p.x + rng.normal(0.0, config.position_jitter_m),
          cp.p.y + rng.normal(0.0, config.position_jitter_m)};
      const auto& b = world.plan.building(static_cast<std::size_t>(cp.building));
      if (b.accessible(jittered)) pos = jittered;

      data::WifiSample s;
      s.building = cp.building;
      s.floor = cp.floor;
      s.position = pos;
      s.rssi = wifi.measure(pos, cp.building, cp.floor, rng);
      ds.samples.push_back(std::move(s));
      ++emitted;
    }
    // When max_samples is unlimited, a single round of
    // measurements_per_point passes suffices.
    if (config.max_samples == 0 && round + 1 >= config.measurements_per_point) break;
  }
  return ds;
}

}  // namespace noble::sim
