// IMU walk simulation (the §V substitute for the paper's self-collected
// campus walks).
//
// A walker traverses the outdoor walkway graph at a jittered human pace. The
// 6-channel 50 Hz IMU stream is synthesized from the kinematics:
//   ax — forward axis: gait oscillation at the step frequency + noise + bias
//   ay — lateral sway (half the step frequency) + noise + bias
//   az — gravity + vertical bounce + noise
//   gx, gy — small attitude noise
//   gz — yaw rate from heading changes + noise + slowly drifting bias
// Reference locations are logged every ref_interval_s seconds of walking,
// mirroring the paper's 177 GPS reference points over ~75 minutes.
#ifndef NOBLE_SIM_IMU_H_
#define NOBLE_SIM_IMU_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/campus.h"

namespace noble::sim {

/// Walk and sensor parameters.
struct ImuConfig {
  double sample_rate_hz = 50.0;
  /// Mean walking speed and its slow modulation.
  double walk_speed_mps = 1.35;
  double speed_jitter = 0.12;
  /// Step (gait) frequency driving the accelerometer oscillation.
  double step_freq_hz = 1.9;
  /// Gait oscillation amplitude (m/s^2).
  double gait_amplitude = 1.0;
  /// White accelerometer noise (m/s^2, per axis).
  double accel_noise = 0.25;
  /// White gyroscope noise (rad/s, per axis).
  double gyro_noise = 0.035;
  /// Random-walk bias increments per sample.
  double accel_bias_walk = 2e-5;
  double gyro_bias_walk = 2e-6;
  /// Fraction of gravity leaking into the horizontal axes along the walking
  /// direction, modelling the forward body/device tilt that survives
  /// attitude estimation. This low-frequency component is what lets
  /// learning-based trackers recover heading from consumer IMUs.
  double gravity_leak = 0.15;
  /// Interval between logged reference locations (s).
  double ref_interval_s = 12.0;
};

/// One continuous recording: synchronized IMU samples, ground-truth
/// positions, and the sample indices at which reference locations were
/// logged.
struct ImuRecording {
  /// Per-sample channels: ax, ay, az, gx, gy, gz.
  std::vector<std::array<float, 6>> samples;
  /// Ground-truth walker position per sample.
  std::vector<geo::Point2> positions;
  /// Sample indices of reference-location logs (ascending; includes 0).
  std::vector<std::size_t> ref_sample_idx;

  std::size_t num_refs() const { return ref_sample_idx.size(); }
  geo::Point2 ref_position(std::size_t r) const { return positions[ref_sample_idx[r]]; }
};

/// Simulates one walk of `duration_s` seconds over the outdoor track.
ImuRecording simulate_walk(const geo::OutdoorWorld& world, const ImuConfig& config,
                           double duration_s, Rng& rng);

}  // namespace noble::sim

#endif  // NOBLE_SIM_IMU_H_
