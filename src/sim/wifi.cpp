#include "sim/wifi.h"

#include <cmath>

#include "common/check.h"
#include "data/dataset.h"

namespace noble::sim {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Deterministic standard-normal-ish value derived from a hash (sum of four
/// uniforms, variance-corrected; adequate for a shadowing field).
double hash_normal(std::uint64_t key) {
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    key = mix64(key + 0x9E3779B97F4A7C15ULL);
    acc += static_cast<double>(key >> 11) * 0x1.0p-53;
  }
  // Sum of 4 U(0,1): mean 2, variance 4/12 -> scale to unit variance.
  return (acc - 2.0) / std::sqrt(4.0 / 12.0);
}

}  // namespace

WifiWorld::WifiWorld(const geo::IndoorWorld& world, WifiConfig config, std::uint64_t seed)
    : config_(config), shadow_seed_(seed) {
  for (const auto& b : world.plan.buildings()) floor_heights_.push_back(b.floor_height());
  NOBLE_EXPECTS(config.aps_per_floor >= 1);
  NOBLE_EXPECTS(config.path_loss_exponent > 1.0);
  NOBLE_EXPECTS(config.shadowing_cell_m > 0.0);
  Rng rng(seed);
  // Deploy APs uniformly over each building's accessible area per floor
  // (rejection sampling inside the footprint, outside holes).
  for (const auto& b : world.plan.buildings()) {
    const geo::Aabb& box = b.footprint().bounds();
    for (int f = 0; f < b.num_floors(); ++f) {
      for (std::size_t a = 0; a < config.aps_per_floor; ++a) {
        geo::Point2 p;
        int guard = 0;
        do {
          p = {rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y)};
          NOBLE_CHECK(++guard < 10000);
        } while (!b.accessible(p));
        aps_.push_back({p, b.id(), f});
      }
    }
  }
  NOBLE_ENSURES(!aps_.empty());
}

double WifiWorld::shadowing_db(std::size_t ap, const geo::Point2& p) const {
  // Piecewise-constant value noise on a grid of side shadowing_cell_m,
  // bilinearly interpolated for spatial smoothness.
  const double gx = p.x / config_.shadowing_cell_m;
  const double gy = p.y / config_.shadowing_cell_m;
  const auto x0 = static_cast<std::int64_t>(std::floor(gx));
  const auto y0 = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  auto corner = [&](std::int64_t cx, std::int64_t cy) {
    const std::uint64_t key = shadow_seed_ ^ (static_cast<std::uint64_t>(ap) << 48) ^
                              (static_cast<std::uint64_t>(cx) << 24) ^
                              static_cast<std::uint64_t>(cy & 0xFFFFFF);
    return hash_normal(key);
  };
  const double v = corner(x0, y0) * (1 - fx) * (1 - fy) +
                   corner(x0 + 1, y0) * fx * (1 - fy) +
                   corner(x0, y0 + 1) * (1 - fx) * fy +
                   corner(x0 + 1, y0 + 1) * fx * fy;
  return v * config_.shadowing_sigma_db;
}

double WifiWorld::mean_rssi(std::size_t ap, const geo::Point2& p, int building,
                            int floor) const {
  NOBLE_EXPECTS(ap < aps_.size());
  const AccessPoint& a = aps_[ap];
  const double dz = static_cast<double>(floor - a.floor) *
                    floor_heights_[static_cast<std::size_t>(a.building)];
  const double d2 = geo::distance(p, a.position);
  const double d3 = std::max(1.0, std::sqrt(d2 * d2 + dz * dz));
  double rssi = config_.tx_power_dbm -
                10.0 * config_.path_loss_exponent * std::log10(d3);
  if (a.building != building) rssi -= config_.wall_attenuation_db;
  rssi -= std::fabs(static_cast<double>(floor - a.floor)) * config_.floor_attenuation_db;
  rssi += shadowing_db(ap, p);
  return rssi;
}

std::vector<float> WifiWorld::measure(const geo::Point2& p, int building, int floor,
                                      Rng& rng) const {
  std::vector<float> out(aps_.size(), data::kNotDetectedRssi);
  for (std::size_t ap = 0; ap < aps_.size(); ++ap) {
    const double rssi =
        mean_rssi(ap, p, building, floor) + rng.normal(0.0, config_.measurement_noise_db);
    if (rssi < config_.detect_threshold_dbm) continue;
    if (rng.bernoulli(config_.detect_dropout)) continue;
    out[ap] = static_cast<float>(rssi);
  }
  return out;
}

}  // namespace noble::sim
