// Wi-Fi RSSI propagation world (the UJIIndoorLoc substitute).
//
// Access points are placed per building/floor; received signal strength
// follows a log-distance path-loss model with floor/wall attenuation,
// spatially-correlated static shadowing (so fingerprinting is physically
// meaningful: the same location re-measures similarly) and per-measurement
// device noise. Signals below the detection threshold, or randomly dropped,
// report the UJI sentinel +100.
#ifndef NOBLE_SIM_WIFI_H_
#define NOBLE_SIM_WIFI_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/campus.h"

namespace noble::sim {

/// Radio propagation and measurement parameters.
struct WifiConfig {
  /// Access points deployed per (building, floor).
  std::size_t aps_per_floor = 10;
  /// Transmit power measured at 1 m (dBm).
  double tx_power_dbm = -28.0;
  /// Log-distance path-loss exponent (indoor: 2.5 - 4).
  double path_loss_exponent = 3.2;
  /// Extra attenuation when receiver and AP are in different buildings (dB).
  double wall_attenuation_db = 18.0;
  /// Attenuation per floor of separation (dB).
  double floor_attenuation_db = 13.0;
  /// Std-dev of static log-normal shadowing (dB).
  double shadowing_sigma_db = 5.0;
  /// Spatial correlation length of the shadowing field (m).
  double shadowing_cell_m = 6.0;
  /// Std-dev of per-measurement device noise (dB).
  double measurement_noise_db = 2.5;
  /// Weakest detectable RSSI (dBm); below this the AP is "not detected".
  double detect_threshold_dbm = -96.0;
  /// Probability of a random missed detection even above threshold.
  double detect_dropout = 0.04;
};

/// A deployed access point.
struct AccessPoint {
  geo::Point2 position;
  int building = 0;
  int floor = 0;
};

/// Deterministic RSSI world over an IndoorWorld.
class WifiWorld {
 public:
  /// Deploys APs and freezes the shadowing field from `seed`.
  WifiWorld(const geo::IndoorWorld& world, WifiConfig config, std::uint64_t seed);

  std::size_t num_aps() const { return aps_.size(); }
  const std::vector<AccessPoint>& aps() const { return aps_; }
  const WifiConfig& config() const { return config_; }

  /// Noise-free mean RSSI (dBm) from AP `ap` at (p, building, floor),
  /// including path loss, attenuation and static shadowing (no device noise,
  /// no detection logic). Exposed for tests of propagation monotonicity.
  double mean_rssi(std::size_t ap, const geo::Point2& p, int building, int floor) const;

  /// One RSSI measurement vector at a location. Applies device noise,
  /// detection threshold and dropout; undetected APs report
  /// data::kNotDetectedRssi (+100).
  std::vector<float> measure(const geo::Point2& p, int building, int floor,
                             Rng& rng) const;

 private:
  double shadowing_db(std::size_t ap, const geo::Point2& p) const;

  WifiConfig config_;
  std::vector<AccessPoint> aps_;
  std::vector<double> floor_heights_;  // per building id (world copied here
                                       // so WifiWorld owns all state it needs)
  std::uint64_t shadow_seed_;
};

}  // namespace noble::sim

#endif  // NOBLE_SIM_WIFI_H_
