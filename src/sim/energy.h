// Analytic energy/latency model for on-device inference (§IV-C, §V-D).
//
// The paper measures energy on an Nvidia Jetson TX2 and compares against GPS
// fix energy from [8]. That hardware is not available to this reproduction,
// so the model is an explicit bookkeeping device: energy = MACs x e_mac +
// bytes_moved x e_byte + fixed controller overhead, plus sensor/GPS cost
// tables. The JetsonTX2 profile is calibrated so the paper's published
// operating points are reproduced exactly at the paper's model sizes; other
// profiles can be swapped in by downstream users.
#ifndef NOBLE_SIM_ENERGY_H_
#define NOBLE_SIM_ENERGY_H_

#include <cstddef>
#include <string>

namespace noble::sim {

/// Per-device energy coefficients.
struct DeviceProfile {
  std::string name;
  /// Energy per multiply-accumulate (J).
  double joules_per_mac;
  /// Energy per parameter byte moved from DRAM (J).
  double joules_per_byte;
  /// Fixed per-inference controller/launch overhead (J).
  double joules_overhead;
  /// Fixed per-inference launch latency (s).
  double latency_overhead_s;
  /// Sustained MAC throughput (MAC/s) for the latency estimate.
  double macs_per_second;
};

/// Jetson TX2-like profile; calibrated against the paper's §IV-C numbers
/// (0.00518 J / 2 ms for the UJIIndoorLoc model).
DeviceProfile jetson_tx2_profile();

/// Continuous-sensor and GPS energy constants (from [8] via §V-D).
struct SensorCosts {
  /// IMU (3-axis accel + 3-axis gyro) power draw (W). Paper: 0.1356 J over
  /// an 8 s path -> 16.95 mW.
  double imu_power_w = 0.1356 / 8.0;
  /// Energy for one GPS position fix (J). Paper cites 5.925 J from [8].
  double gps_fix_energy_j = 5.925;
};

/// Estimated cost of one inference pass.
struct InferenceCost {
  double energy_j = 0.0;
  double latency_s = 0.0;
};

/// Energy model over a device profile.
class EnergyModel {
 public:
  explicit EnergyModel(DeviceProfile profile, SensorCosts sensors = {});

  const DeviceProfile& profile() const { return profile_; }
  const SensorCosts& sensors() const { return sensors_; }

  /// Cost of one network inference given its MAC count and parameter bytes.
  InferenceCost inference(std::size_t macs, std::size_t param_bytes) const;

  /// Energy to run the IMU sensors for `seconds`.
  double imu_sensing(double seconds) const;

  /// Energy for one GPS fix.
  double gps_fix() const { return sensors_.gps_fix_energy_j; }

  /// Total tracking energy for one path: sensing for `path_seconds` plus one
  /// inference — the paper's §V-D accounting.
  double imu_tracking_total(double path_seconds, std::size_t macs,
                            std::size_t param_bytes) const;

 private:
  DeviceProfile profile_;
  SensorCosts sensors_;
};

}  // namespace noble::sim

#endif  // NOBLE_SIM_ENERGY_H_
