// Path construction per §V-A: from continuous recordings, build training
// paths by (1) choosing a random start reference, (2) choosing a path length
// below 50 references, (3) concatenating the inter-reference IMU windows.
// Each window is resampled to a fixed number of readings so the feature
// layout is constant.
#ifndef NOBLE_SIM_IMU_DATASET_H_
#define NOBLE_SIM_IMU_DATASET_H_

#include "data/dataset.h"
#include "sim/imu.h"

namespace noble::sim {

/// Path-construction parameters.
struct PathConfig {
  /// Readings each inter-reference window is resampled to. The paper records
  /// 768 raw readings per window; the default resamples to 32 for single-core
  /// tractability (see DESIGN.md) — raise via NOBLE_IMU_READINGS to match.
  std::size_t readings_per_segment = 32;
  /// Maximum path length in reference hops (paper: < 50).
  std::size_t max_segments = 50;
  /// Number of paths to construct.
  std::size_t num_paths = 6857;
};

/// Resamples the raw window [begin, end) of `rec` to `readings` rows by
/// block averaging (6 channels preserved). Returns readings*6 floats,
/// reading-major: [r0.ax r0.ay r0.az r0.gx r0.gy r0.gz r1.ax ...].
std::vector<float> resample_window(const ImuRecording& rec, std::size_t begin,
                                   std::size_t end, std::size_t readings);

/// Builds the path dataset from one or more walk recordings.
data::ImuDataset build_imu_paths(const std::vector<ImuRecording>& recordings,
                                 const PathConfig& config, Rng& rng);

}  // namespace noble::sim

#endif  // NOBLE_SIM_IMU_DATASET_H_
