#include "sim/imu.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace noble::sim {

namespace {

/// Wraps an angle difference into (-pi, pi].
double wrap_angle(double a) {
  while (a > std::numbers::pi) a -= 2.0 * std::numbers::pi;
  while (a <= -std::numbers::pi) a += 2.0 * std::numbers::pi;
  return a;
}

}  // namespace

ImuRecording simulate_walk(const geo::OutdoorWorld& world, const ImuConfig& config,
                           double duration_s, Rng& rng) {
  NOBLE_EXPECTS(duration_s > 0.0);
  NOBLE_EXPECTS(config.sample_rate_hz > 1.0);
  const geo::PathGraph& g = world.walkways;
  NOBLE_EXPECTS(g.node_count() >= 2);

  const double dt = 1.0 / config.sample_rate_hz;
  const auto total_samples = static_cast<std::size_t>(duration_s * config.sample_rate_hz);
  const auto ref_every =
      static_cast<std::size_t>(config.ref_interval_s * config.sample_rate_hz);

  ImuRecording rec;
  rec.samples.reserve(total_samples);
  rec.positions.reserve(total_samples);

  // Plan a long random walk over nodes; consume segments as time advances.
  const std::size_t start_node =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
  // Enough hops: distance covered = speed * duration; average edge ~ tens of m.
  const std::size_t hops =
      static_cast<std::size_t>(duration_s * config.walk_speed_mps / 5.0) + 8;
  const auto node_seq = g.random_walk(start_node, hops, rng);
  NOBLE_CHECK(node_seq.size() >= 2);

  std::size_t seg = 0;  // current segment: node_seq[seg] -> node_seq[seg+1]
  geo::Point2 pos = g.node(node_seq[0]);
  geo::Point2 seg_target = g.node(node_seq[1]);
  double heading = std::atan2(seg_target.y - pos.y, seg_target.x - pos.x);

  double speed_mod = 0.0;  // slow speed modulation state (AR(1))
  double accel_bias[3] = {0, 0, 0};
  double gyro_bias[3] = {0, 0, 0};
  double gait_phase = 0.0;

  for (std::size_t i = 0; i < total_samples; ++i) {
    // --- Kinematics ---------------------------------------------------
    speed_mod = 0.995 * speed_mod + rng.normal(0.0, config.speed_jitter * 0.1);
    const double speed = std::max(0.4, config.walk_speed_mps + speed_mod);
    double remaining = speed * dt;
    double target_heading = heading;
    while (remaining > 0.0) {
      const geo::Point2 to_target = seg_target - pos;
      const double d = to_target.norm();
      if (d <= remaining) {
        pos = seg_target;
        remaining -= d;
        if (seg + 2 < node_seq.size()) {
          ++seg;
          seg_target = g.node(node_seq[seg + 1]);
        } else {
          remaining = 0.0;  // end of plan: idle at the last node
        }
      } else {
        pos = pos + to_target * (remaining / d);
        remaining = 0.0;
      }
      const geo::Point2 dir = seg_target - pos;
      if (dir.norm() > 1e-9) target_heading = std::atan2(dir.y, dir.x);
    }
    // Heading turns smoothly toward the segment direction (human-like turn
    // rate limit of ~2.5 rad/s).
    const double dheading = wrap_angle(target_heading - heading);
    const double max_turn = 2.5 * dt;
    const double applied_turn =
        dheading > max_turn ? max_turn : (dheading < -max_turn ? -max_turn : dheading);
    heading += applied_turn;
    const double yaw_rate = applied_turn / dt;

    // --- Sensor synthesis ----------------------------------------------
    gait_phase += 2.0 * std::numbers::pi * config.step_freq_hz * dt;
    for (int b = 0; b < 3; ++b) {
      accel_bias[b] += rng.normal(0.0, config.accel_bias_walk);
      gyro_bias[b] += rng.normal(0.0, config.gyro_bias_walk);
    }
    std::array<float, 6> s;
    const double gait = config.gait_amplitude * std::sin(gait_phase);
    const double sway = 0.5 * config.gait_amplitude * std::sin(0.5 * gait_phase);
    const double bounce = 0.8 * config.gait_amplitude * std::fabs(std::sin(gait_phase));
    // ax/ay are world-frame horizontal accelerations (the "linear
    // acceleration" virtual sensor of phone IMU stacks): the gait
    // oscillation points along the heading, the sway across it. This keeps
    // absolute displacement learnable, as in the paper's setup.
    const double speed_scale = speed / config.walk_speed_mps;
    const double ah = gait * speed_scale;
    // Forward body tilt leaks a slice of gravity into the horizontal axes
    // along the heading — the persistent low-frequency component real
    // pedestrian trackers exploit.
    const double leak = config.gravity_leak * 9.81 * speed_scale;
    const double ax_world =
        (ah + leak) * std::cos(heading) - sway * std::sin(heading);
    const double ay_world =
        (ah + leak) * std::sin(heading) + sway * std::cos(heading);
    s[0] = static_cast<float>(ax_world + accel_bias[0] +
                              rng.normal(0.0, config.accel_noise));
    s[1] = static_cast<float>(ay_world + accel_bias[1] +
                              rng.normal(0.0, config.accel_noise));
    s[2] = static_cast<float>(9.81 + bounce * speed_scale + accel_bias[2] +
                              rng.normal(0.0, config.accel_noise));
    s[3] = static_cast<float>(gyro_bias[0] + rng.normal(0.0, config.gyro_noise));
    s[4] = static_cast<float>(gyro_bias[1] + rng.normal(0.0, config.gyro_noise));
    s[5] = static_cast<float>(yaw_rate + gyro_bias[2] + rng.normal(0.0, config.gyro_noise));

    rec.samples.push_back(s);
    rec.positions.push_back(pos);
    if (i % ref_every == 0) rec.ref_sample_idx.push_back(i);
  }
  NOBLE_ENSURES(rec.num_refs() >= 2);
  return rec;
}

}  // namespace noble::sim
