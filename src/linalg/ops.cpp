#include "linalg/ops.h"

#include <cmath>

#include "kernels/kernels.h"

namespace noble::linalg {

// gemm / gemm_acc route through the runtime-dispatched kernel layer. The
// scalar kernel is the historical i-k-j zero-skip loop verbatim, and the
// SIMD paths are bit-identical to it by the kernels.h contract, so callers
// (eigen solvers included) see exactly the numerics they always did.

void gemm(const Mat& a, const Mat& b, Mat& c) {
  kernels::gemm(a, b, c, /*accumulate=*/false);
}

void gemm_acc(const Mat& a, const Mat& b, Mat& c) {
  kernels::gemm(a, b, c, /*accumulate=*/true);
}

void gemm_tn(const Mat& a, const Mat& b, Mat& c) {
  NOBLE_EXPECTS(a.rows() == b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  c.resize(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float api = ap[i];
      if (api == 0.0f) continue;
      float* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

void gemm_nt(const Mat& a, const Mat& b, Mat& c) {
  NOBLE_EXPECTS(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.resize(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      ci[j] = static_cast<float>(dot(ai, b.row(j), k));
    }
  }
}

void gemv(const Mat& a, const std::vector<float>& x, std::vector<float>& y) {
  NOBLE_EXPECTS(x.size() == a.cols());
  y.assign(a.rows(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = static_cast<float>(dot(a.row(i), x.data(), a.cols()));
  }
}

void axpy(float alpha, const Mat& a, Mat& b) {
  NOBLE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  const float* pa = a.data();
  float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pb[i] += alpha * pa[i];
}

void scale(Mat& a, float alpha) {
  float* p = a.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) p[i] *= alpha;
}

void hadamard(const Mat& a, const Mat& b, Mat& c) {
  NOBLE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  c.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pc[i] = pa[i] * pb[i];
}

std::vector<float> col_mean(const Mat& a) {
  std::vector<double> acc(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) acc[j] += row[j];
  }
  std::vector<float> out(a.cols());
  const double inv = a.rows() ? 1.0 / static_cast<double>(a.rows()) : 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) out[j] = static_cast<float>(acc[j] * inv);
  return out;
}

std::vector<float> col_var(const Mat& a) {
  const auto mu = col_mean(a);
  std::vector<double> acc(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = row[j] - mu[j];
      acc[j] += d * d;
    }
  }
  std::vector<float> out(a.cols());
  const double inv = a.rows() ? 1.0 / static_cast<double>(a.rows()) : 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) out[j] = static_cast<float>(acc[j] * inv);
  return out;
}

double sum(const Mat& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += p[i];
  return s;
}

double frobenius_norm(const Mat& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += static_cast<double>(p[i]) * p[i];
  return std::sqrt(s);
}

double dot(const float* x, const float* y, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]) * y[i];
  return s;
}

double norm(const float* x, std::size_t n) { return std::sqrt(dot(x, x, n)); }

Mat take_rows(const Mat& a, const std::vector<std::size_t>& rows) {
  Mat out(rows.size(), a.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    NOBLE_EXPECTS(rows[i] < a.rows());
    const float* src = a.row(rows[i]);
    float* dst = out.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) dst[j] = src[j];
  }
  return out;
}

std::vector<float> col_sum(const Mat& a) {
  std::vector<double> acc(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) acc[j] += row[j];
  }
  std::vector<float> out(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) out[j] = static_cast<float>(acc[j]);
  return out;
}

}  // namespace noble::linalg
