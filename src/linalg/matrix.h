// Dense row-major matrix.
//
// `Mat` (float) is the workhorse for neural-network activations and large
// manifold kernels; `MatD` (double) is used by the small dense solvers where
// numerical headroom matters (Cholesky/LU/Jacobi). The class is a plain value
// type: copy/move semantics are the compiler defaults over std::vector.
#ifndef NOBLE_LINALG_MATRIX_H_
#define NOBLE_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace noble::linalg {

/// Row-major dense matrix of arithmetic type T.
template <typename T>
class BasicMatrix {
 public:
  using value_type = T;

  /// Empty 0x0 matrix.
  BasicMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  BasicMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{0}) {}

  /// rows x cols matrix filled with `value`.
  BasicMatrix(std::size_t rows, std::size_t cols, T value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Construction from nested initializer lists (row major). All rows must
  /// have equal length.
  BasicMatrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      NOBLE_EXPECTS(row.size() == cols_);
      for (const T& v : row) data_.push_back(v);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Element access (bounds-checked by contract in debug-style builds).
  T& operator()(std::size_t r, std::size_t c) {
    NOBLE_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  T operator()(std::size_t r, std::size_t c) const {
    NOBLE_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage (row major).
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Pointer to the first element of row r.
  T* row(std::size_t r) {
    NOBLE_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    NOBLE_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Sets every element to `value`.
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  /// Reshapes to rows x cols, reallocating and zeroing.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{0});
  }

  /// Returns the transposed matrix (copy).
  BasicMatrix transposed() const {
    BasicMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Identity matrix of order n.
  static BasicMatrix identity(std::size_t n) {
    BasicMatrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

  bool operator==(const BasicMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Single-precision matrix for bulk compute.
using Mat = BasicMatrix<float>;
/// Double-precision matrix for small dense solvers.
using MatD = BasicMatrix<double>;

}  // namespace noble::linalg

#endif  // NOBLE_LINALG_MATRIX_H_
