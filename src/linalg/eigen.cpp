#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "linalg/ops.h"
#include "linalg/solve.h"

namespace noble::linalg {

namespace {

/// Orthonormalizes the columns of V (n x k) in place by modified
/// Gram-Schmidt. Columns that collapse numerically are re-randomized.
void orthonormalize_columns(Mat& v, Rng& rng) {
  const std::size_t n = v.rows(), k = v.cols();
  for (std::size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      // Subtract projections onto previous columns.
      for (std::size_t p = 0; p < c; ++p) {
        double proj = 0.0;
        for (std::size_t i = 0; i < n; ++i) proj += static_cast<double>(v(i, c)) * v(i, p);
        for (std::size_t i = 0; i < n; ++i)
          v(i, c) -= static_cast<float>(proj) * v(i, p);
      }
      double nrm = 0.0;
      for (std::size_t i = 0; i < n; ++i) nrm += static_cast<double>(v(i, c)) * v(i, c);
      nrm = std::sqrt(nrm);
      if (nrm > 1e-10) {
        const float inv = static_cast<float>(1.0 / nrm);
        for (std::size_t i = 0; i < n; ++i) v(i, c) *= inv;
        break;
      }
      // Degenerate direction: replace with a fresh random vector and retry.
      for (std::size_t i = 0; i < n; ++i) v(i, c) = static_cast<float>(rng.normal());
    }
  }
}

/// Rayleigh quotient of column c of V against symmetric A (via AV).
double rayleigh(const Mat& av, const Mat& v, std::size_t c) {
  double q = 0.0;
  for (std::size_t i = 0; i < v.rows(); ++i)
    q += static_cast<double>(v(i, c)) * av(i, c);
  return q;
}

}  // namespace

EigenResult jacobi_eigen(const MatD& a, int max_sweeps, double tol) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  MatD m = a;
  MatD v = MatD::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (off < tol * tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p), aqq = m(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation to rows/cols p and q of m.
        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Collect and sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  EigenResult out;
  out.values.resize(n);
  out.vectors.resize(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = diag[order[c]];
    for (std::size_t r = 0; r < n; ++r)
      out.vectors(r, c) = static_cast<float>(v(r, order[c]));
  }
  return out;
}

EigenResult top_k_eigen_symmetric(const Mat& a, std::size_t k, std::uint64_t seed,
                                  int max_iters, double tol) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  NOBLE_EXPECTS(k >= 1 && k <= a.rows());
  const std::size_t n = a.rows();
  Rng rng(seed);

  Mat v(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) v(i, c) = static_cast<float>(rng.normal());
  orthonormalize_columns(v, rng);

  Mat av;
  std::vector<double> prev(k, 0.0), cur(k, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    gemm(a, v, av);
    for (std::size_t c = 0; c < k; ++c) cur[c] = rayleigh(av, v, c);
    v = av;
    orthonormalize_columns(v, rng);

    double delta = 0.0;
    for (std::size_t c = 0; c < k; ++c)
      delta = std::max(delta, std::fabs(cur[c] - prev[c]) /
                                  std::max(1.0, std::fabs(cur[c])));
    prev = cur;
    if (iter > 2 && delta < tol) break;
  }

  // Rayleigh-Ritz refinement: eigendecompose the projected k x k matrix
  // T = V^T A V and rotate V accordingly. This separates eigenvectors whose
  // eigenvalues are clustered (where plain subspace iteration only converges
  // to the invariant subspace, not to individual vectors).
  gemm(a, v, av);
  MatD t(k, k);
  for (std::size_t c1 = 0; c1 < k; ++c1) {
    for (std::size_t c2 = c1; c2 < k; ++c2) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        s += static_cast<double>(v(i, c1)) * av(i, c2);
      t(c1, c2) = s;
      t(c2, c1) = s;
    }
  }
  const EigenResult small = jacobi_eigen(t);

  EigenResult out;
  out.values = small.values;  // already descending
  out.vectors.resize(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        s += static_cast<double>(v(r, p)) * small.vectors(p, c);
      out.vectors(r, c) = static_cast<float>(s);
    }
  }
  return out;
}

EigenResult bottom_k_eigen_symmetric(const Mat& a, std::size_t k, std::uint64_t seed,
                                     int max_iters, double tol) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  NOBLE_EXPECTS(k >= 1 && k <= a.rows());
  const std::size_t n = a.rows();
  // Shift-invert subspace iteration: the smallest eigenvalues of PSD
  // matrices like LLE's (I-W)^T(I-W) are tightly clustered near zero, where
  // plain shifted power iteration cannot separate them; applying
  // (A + eps I)^{-1} amplifies them by 1/(lambda + eps) instead.
  const double gersh = gershgorin_upper_bound(a);
  double eps = std::max(1e-12, 1e-10 * gersh);
  MatD ad(n, n);
  CholeskyFactorization chol;
  for (int attempt = 0; attempt < 8; ++attempt) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ad(i, j) = static_cast<double>(a(i, j)) + (i == j ? eps : 0.0);
    if (chol.compute(ad)) break;
    eps *= 100.0;  // not SPD at this regularization: escalate
  }
  NOBLE_CHECK(chol.ok());

  Rng rng(seed);
  Mat v(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) v(i, c) = static_cast<float>(rng.normal());
  orthonormalize_columns(v, rng);

  Mat av;
  std::vector<double> col(n), prev(k, 0.0), cur(k, 0.0);
  const int iters = std::min(max_iters, 60);  // shift-invert converges fast
  for (int iter = 0; iter < iters; ++iter) {
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t i = 0; i < n; ++i) col[i] = v(i, c);
      chol.solve_in_place(col);
      for (std::size_t i = 0; i < n; ++i) v(i, c) = static_cast<float>(col[i]);
    }
    orthonormalize_columns(v, rng);
    gemm(a, v, av);
    for (std::size_t c = 0; c < k; ++c) cur[c] = rayleigh(av, v, c);
    double delta = 0.0;
    for (std::size_t c = 0; c < k; ++c)
      delta = std::max(delta, std::fabs(cur[c] - prev[c]) /
                                  std::max(1e-12, std::fabs(cur[c])));
    prev = cur;
    if (iter > 2 && delta < tol) break;
  }

  // Rayleigh-Ritz on A to extract individual eigenpairs, sorted ascending.
  gemm(a, v, av);
  MatD t(k, k);
  for (std::size_t c1 = 0; c1 < k; ++c1) {
    for (std::size_t c2 = c1; c2 < k; ++c2) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        s += static_cast<double>(v(i, c1)) * av(i, c2);
      t(c1, c2) = s;
      t(c2, c1) = s;
    }
  }
  const EigenResult small = jacobi_eigen(t);  // descending

  EigenResult out;
  out.values.resize(k);
  out.vectors.resize(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t src = k - 1 - c;  // reverse to ascending
    out.values[c] = small.values[src];
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        s += static_cast<double>(v(r, p)) * small.vectors(p, src);
      out.vectors(r, c) = static_cast<float>(s);
    }
  }
  return out;
}

double gershgorin_upper_bound(const Mat& a) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  double bound = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double radius = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (j != i) radius += std::fabs(a(i, j));
    bound = std::max(bound, a(i, i) + radius);
  }
  return bound;
}

}  // namespace noble::linalg
