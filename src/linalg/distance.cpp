#include "linalg/distance.h"

#include <cmath>

#include "linalg/ops.h"

namespace noble::linalg {

void pairwise_sq_dist(const Mat& x, const Mat& y, Mat& d) {
  NOBLE_EXPECTS(x.cols() == y.cols());
  const std::size_t n = x.rows(), m = y.rows(), dim = x.cols();
  gemm_nt(x, y, d);  // d = X Y^T
  std::vector<double> xs(n), ys(m);
  for (std::size_t i = 0; i < n; ++i) xs[i] = dot(x.row(i), x.row(i), dim);
  for (std::size_t j = 0; j < m; ++j) ys[j] = dot(y.row(j), y.row(j), dim);
  for (std::size_t i = 0; i < n; ++i) {
    float* di = d.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double v = xs[i] + ys[j] - 2.0 * di[j];
      di[j] = static_cast<float>(v > 0.0 ? v : 0.0);
    }
  }
}

void pairwise_dist(const Mat& x, const Mat& y, Mat& d) {
  pairwise_sq_dist(x, y, d);
  float* p = d.data();
  for (std::size_t i = 0; i < d.size(); ++i) p[i] = std::sqrt(p[i]);
}

double sq_dist(const float* a, const float* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace noble::linalg
