// BLAS-like kernels on row-major matrices, written so gcc auto-vectorizes the
// inner loops on a single core (the library's reference substrate).
#ifndef NOBLE_LINALG_OPS_H_
#define NOBLE_LINALG_OPS_H_

#include "linalg/matrix.h"

namespace noble::linalg {

/// C = A * B. Requires A.cols == B.rows; C is resized to A.rows x B.cols.
void gemm(const Mat& a, const Mat& b, Mat& c);

/// C += A * B (accumulate). C must already be A.rows x B.cols.
void gemm_acc(const Mat& a, const Mat& b, Mat& c);

/// C = A^T * B. Requires A.rows == B.rows; C is resized to A.cols x B.cols.
void gemm_tn(const Mat& a, const Mat& b, Mat& c);

/// C = A * B^T. Requires A.cols == B.cols; C is resized to A.rows x B.rows.
void gemm_nt(const Mat& a, const Mat& b, Mat& c);

/// y = A * x for a vector x (x.size == A.cols).
void gemv(const Mat& a, const std::vector<float>& x, std::vector<float>& y);

/// B += alpha * A (elementwise; shapes must match).
void axpy(float alpha, const Mat& a, Mat& b);

/// A *= alpha (elementwise).
void scale(Mat& a, float alpha);

/// Elementwise product: C = A ⊙ B (shapes must match; C resized).
void hadamard(const Mat& a, const Mat& b, Mat& c);

/// Per-column mean of A (length A.cols).
std::vector<float> col_mean(const Mat& a);

/// Per-column variance of A (population, length A.cols).
std::vector<float> col_var(const Mat& a);

/// Sum of all elements.
double sum(const Mat& a);

/// Frobenius norm.
double frobenius_norm(const Mat& a);

/// Dot product of two equal-length float spans with double accumulation.
double dot(const float* x, const float* y, std::size_t n);

/// Euclidean norm of a float span.
double norm(const float* x, std::size_t n);

/// Gathers the given rows of A into a new matrix (minibatch construction).
Mat take_rows(const Mat& a, const std::vector<std::size_t>& rows);

/// Per-column sum of A (length A.cols), double accumulation.
std::vector<float> col_sum(const Mat& a);

}  // namespace noble::linalg

#endif  // NOBLE_LINALG_OPS_H_
