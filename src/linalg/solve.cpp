#include "linalg/solve.h"

#include <cmath>

namespace noble::linalg {

namespace {

/// In-place Cholesky factorization A = L L^T (lower triangle). Returns false
/// if a non-positive pivot appears.
bool cholesky_factor(MatD& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  return true;
}

void cholesky_back_substitute(const MatD& l, std::vector<double>& x) {
  const std::size_t n = l.rows();
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  // Backward: L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
}

}  // namespace

bool cholesky_solve(const MatD& a, const std::vector<double>& b, std::vector<double>& x) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  NOBLE_EXPECTS(b.size() == a.rows());
  MatD l = a;
  if (!cholesky_factor(l)) return false;
  x = b;
  cholesky_back_substitute(l, x);
  return true;
}

bool CholeskyFactorization::compute(const MatD& a) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  l_ = a;
  ok_ = cholesky_factor(l_);
  return ok_;
}

void CholeskyFactorization::solve_in_place(std::vector<double>& x) const {
  NOBLE_EXPECTS(ok_);
  NOBLE_EXPECTS(x.size() == l_.rows());
  cholesky_back_substitute(l_, x);
}

bool lu_solve(MatD a, std::vector<double> b, std::vector<double>& x) {
  NOBLE_EXPECTS(a.rows() == a.cols());
  NOBLE_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      a(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return true;
}

bool regularized_spd_solve(const MatD& a, const std::vector<double>& b, double reg,
                           double max_reg, std::vector<double>& x) {
  NOBLE_EXPECTS(reg >= 0.0 && max_reg >= reg);
  for (double r = reg;; r = (r == 0.0) ? 1e-12 : r * 10.0) {
    MatD regd = a;
    for (std::size_t i = 0; i < regd.rows(); ++i) regd(i, i) += r;
    if (cholesky_solve(regd, b, x)) return true;
    if (r >= max_reg) return false;
  }
}

bool least_squares(const MatD& a, const std::vector<double>& b, double reg,
                   std::vector<double>& x) {
  NOBLE_EXPECTS(a.rows() >= a.cols());
  NOBLE_EXPECTS(b.size() == a.rows());
  const std::size_t m = a.rows(), n = a.cols();
  MatD ata(n, n);
  std::vector<double> atb(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += a(r, i) * b[r];
      for (std::size_t j = i; j < n; ++j) ata(i, j) += a(r, i) * a(r, j);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);
  return regularized_spd_solve(ata, atb, reg, 1e6, x);
}

}  // namespace noble::linalg
