// Pairwise distance kernels used by kNN, Isomap and LLE.
#ifndef NOBLE_LINALG_DISTANCE_H_
#define NOBLE_LINALG_DISTANCE_H_

#include "linalg/matrix.h"

namespace noble::linalg {

/// D(i,j) = ||X_i - Y_j||^2 (squared Euclidean), computed via the expansion
/// ||x||^2 + ||y||^2 - 2<x,y> with a GEMM for the cross term. Negative
/// round-off is clamped to zero.
void pairwise_sq_dist(const Mat& x, const Mat& y, Mat& d);

/// D(i,j) = ||X_i - Y_j|| (Euclidean).
void pairwise_dist(const Mat& x, const Mat& y, Mat& d);

/// Squared Euclidean distance between two rows of equal length.
double sq_dist(const float* a, const float* b, std::size_t n);

}  // namespace noble::linalg

#endif  // NOBLE_LINALG_DISTANCE_H_
