// Symmetric eigensolvers.
//
// Two regimes:
//  * Jacobi rotation solver (double) for small matrices (n up to a few
//    hundred) — used by classical MDS on landmark sets and by tests.
//  * Subspace iteration (float storage, double accumulation) for the large
//    kernels that Isomap/LLE build (n in the thousands), where only k << n
//    extremal eigenpairs are needed.
#ifndef NOBLE_LINALG_EIGEN_H_
#define NOBLE_LINALG_EIGEN_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace noble::linalg {

/// Result of a (partial) symmetric eigendecomposition: `values[i]` pairs with
/// column i of `vectors` (n x k, orthonormal columns).
struct EigenResult {
  std::vector<double> values;
  Mat vectors;
};

/// Full eigendecomposition of a small symmetric matrix by cyclic Jacobi.
/// Eigenvalues are returned in descending order. Aborts on non-square input.
EigenResult jacobi_eigen(const MatD& a, int max_sweeps = 64, double tol = 1e-12);

/// Top-k (largest algebraic) eigenpairs of symmetric A via block subspace
/// iteration with Gram-Schmidt re-orthonormalization. Deterministic given
/// `seed`. k must be <= A.rows().
EigenResult top_k_eigen_symmetric(const Mat& a, std::size_t k, std::uint64_t seed = 7,
                                  int max_iters = 300, double tol = 1e-7);

/// Smallest-k eigenpairs of symmetric positive semi-definite A, computed by
/// spectral shift: the top-k of (sigma*I - A) with sigma an upper bound on
/// lambda_max (Gershgorin). Values returned in ascending order.
EigenResult bottom_k_eigen_symmetric(const Mat& a, std::size_t k, std::uint64_t seed = 7,
                                     int max_iters = 300, double tol = 1e-7);

/// Gershgorin upper bound on the largest eigenvalue of symmetric A.
double gershgorin_upper_bound(const Mat& a);

}  // namespace noble::linalg

#endif  // NOBLE_LINALG_EIGEN_H_
