// Small dense linear solvers (double precision). Used by LLE's local Gram
// systems and the map-fitting utilities; sizes are O(k) with k ~ tens, so
// O(n^3) algorithms are appropriate.
#ifndef NOBLE_LINALG_SOLVE_H_
#define NOBLE_LINALG_SOLVE_H_

#include <vector>

#include "linalg/matrix.h"

namespace noble::linalg {

/// Solves A x = b for symmetric positive definite A via Cholesky.
/// Returns false if A is not (numerically) SPD.
bool cholesky_solve(const MatD& a, const std::vector<double>& b, std::vector<double>& x);

/// Reusable Cholesky factorization for repeated solves against one SPD
/// matrix (inverse subspace iteration in the eigensolvers).
class CholeskyFactorization {
 public:
  /// Factors A = L L^T; returns false (and marks !ok()) if not SPD.
  bool compute(const MatD& a);
  /// Solves L L^T x = b in place. Requires ok().
  void solve_in_place(std::vector<double>& x) const;
  bool ok() const { return ok_; }

 private:
  MatD l_;
  bool ok_ = false;
};

/// Solves A x = b via LU with partial pivoting. Returns false if singular.
bool lu_solve(MatD a, std::vector<double> b, std::vector<double>& x);

/// Solves (A + reg*I) x = b with Cholesky, escalating `reg` by 10x up to
/// `max_reg` until the factorization succeeds. Returns false if it never does.
bool regularized_spd_solve(const MatD& a, const std::vector<double>& b, double reg,
                           double max_reg, std::vector<double>& x);

/// Least-squares solution of min ||A x - b||_2 via normal equations with
/// Tikhonov regularization `reg`. A is m x n with m >= n.
bool least_squares(const MatD& a, const std::vector<double>& b, double reg,
                   std::vector<double>& x);

}  // namespace noble::linalg

#endif  // NOBLE_LINALG_SOLVE_H_
