#include "gateway/gateway.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace noble::gateway {

namespace {

engine::SubmitOptions to_submit_options(const wire::Frame& frame) {
  engine::SubmitOptions options;
  options.request_class = frame.cls;
  // The wire carries a relative budget (clocks never cross the socket);
  // resolve it against this host's steady clock at decode time.
  if (frame.deadline_us > 0) options.expires_in_us(frame.deadline_us);
  return options;
}

net::ServerConfig to_server_config(const GatewayConfig& config) {
  net::ServerConfig out;
  out.port = config.port;
  out.bind_address = config.bind_address;
  out.threads = config.threads;
  out.max_connections = config.max_connections;
  out.max_frame_bytes = config.max_frame_bytes;
  out.max_write_buffer = config.max_write_buffer;
  out.listen_backlog = config.listen_backlog;
  return out;
}

}  // namespace

Listener::Listener(fleet::Routing& routing, GatewayConfig config)
    : routing_(routing),
      config_(std::move(config)),
      server_(*this, to_server_config(config_)) {}

// The server must stop before the Listener's protocol state goes away:
// handler threads call back into on_service/on_close until joined.
Listener::~Listener() { server_.stop(); }

bool Listener::start() { return server_.start(); }

void Listener::stop() { server_.stop(); }

Listener::ConnState& Listener::state_of(net::ServerConn& conn) {
  if (conn.user == nullptr) conn.user = std::make_shared<ConnState>();
  return *static_cast<ConnState*>(conn.user.get());
}

void Listener::send_frame(net::ServerConn& conn, wire::MsgType type,
                          std::uint64_t request_id, std::string body) {
  wire::Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.body = std::move(body);
  conn.send(frame);
}

bool Listener::on_frame(net::ServerConn& conn, net::Frame frame,
                        std::uint64_t recv_ns) {
  ConnState& state = state_of(conn);
  const auto malformed = [&](const char* what) {
    // Body-level protocol violation: same one-error-frame-then-close
    // contract the FrameServer applies to framing-level ones.
    body_malformed_frames_.inc();
    send_frame(conn, wire::MsgType::kError, frame.request_id,
               wire::encode_text_body(what));
    conn.close_after_flush();
    return true;
  };
  // Stage trace for a decoded request frame: decode = kRecv -> kSubmit, the
  // engine stamps the middle, settle_inflight stamps kResponded and
  // finishes. nullptr when tracing is off.
  const auto start_trace = [&] {
    std::shared_ptr<obs::Trace> trace = obs::Tracer::global().start(frame.request_id);
    if (trace != nullptr) {
      trace->external_respond = true;  // the gateway writes the response
      if (recv_ns != 0) trace->stamp(obs::Mark::kRecv, recv_ns);
      trace->stamp(obs::Mark::kSubmit);
    }
    return trace;
  };

  switch (frame.type.as<wire::MsgType>()) {
    case wire::MsgType::kLocate: {
      std::string shard_key;
      serve::RssiVector rssi;
      if (!wire::decode_locate_body(frame.body, shard_key, rssi)) {
        return malformed("bad locate body");
      }
      if (state.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.inc();
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::SubmitOptions options = to_submit_options(frame);
      options.trace = start_trace();
      engine::Submission s = routing_.submit(shard_key, rssi, options);
      if (s.accepted()) {
        state.inflight.push_back(Pending{frame.request_id, frame.cls,
                                         std::move(s.result), std::move(options.trace)});
      } else {
        // Rejected: the trace is dropped unfinished — stage histograms
        // describe served requests.
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::from_submit_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kTrackUpdate: {
      std::uint64_t session_id = 0;
      serve::ImuSegment segment;
      if (!wire::decode_track_body(frame.body, session_id, segment)) {
        return malformed("bad track body");
      }
      const auto it = state.sessions.find(session_id);
      if (it == state.sessions.end()) {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kNoSession, nullptr));
        return true;
      }
      if (state.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.inc();
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::SubmitOptions options = to_submit_options(frame);
      options.trace = start_trace();
      engine::Submission s = routing_.track(it->second, std::move(segment), options);
      if (s.accepted()) {
        state.inflight.push_back(Pending{frame.request_id, frame.cls,
                                         std::move(s.result), std::move(options.trace)});
      } else {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::from_submit_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kOpenSession: {
      std::string shard_key;
      geo::Point2 start;
      if (!wire::decode_open_session_body(frame.body, shard_key, start)) {
        return malformed("bad open-session body");
      }
      std::optional<fleet::FleetSession> session = routing_.open_session(shard_key, start);
      if (!session.has_value()) {
        const wire::Status status = routing_.has_shard(shard_key)
                                        ? wire::Status::kNoSession
                                        : wire::Status::kNoShard;
        send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                   wire::encode_session_opened_body(status, 0));
        return true;
      }
      const std::uint64_t wire_id = state.next_session_id++;
      state.sessions.emplace(wire_id, *session);
      sessions_opened_.inc();
      send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                 wire::encode_session_opened_body(wire::Status::kOk, wire_id));
      return true;
    }
    case wire::MsgType::kCloseSession: {
      std::uint64_t session_id = 0;
      if (!wire::decode_close_session_body(frame.body, session_id)) {
        return malformed("bad close-session body");
      }
      const auto it = state.sessions.find(session_id);
      wire::Status status = wire::Status::kNoSession;
      if (it != state.sessions.end()) {
        routing_.close_session(it->second);
        state.sessions.erase(it);
        sessions_closed_.inc();
        status = wire::Status::kOk;
      }
      send_frame(conn, wire::MsgType::kSessionClosed, frame.request_id,
                 wire::encode_status_body(status));
      return true;
    }
    case wire::MsgType::kStats:
      send_frame(conn, wire::MsgType::kStatsText, frame.request_id,
                 wire::encode_text_body(stats_text()));
      return true;
    case wire::MsgType::kStatsBinary:
      // Same snapshot, binary exposition: full histogram bins ride the
      // text-body framing (u64 length + raw bytes carries arbitrary bytes).
      send_frame(conn, wire::MsgType::kStatsSnapshot, frame.request_id,
                 wire::encode_text_body(obs::encode_snapshot(stats_snapshot())));
      return true;
    case wire::MsgType::kFix:
    case wire::MsgType::kSessionOpened:
    case wire::MsgType::kSessionClosed:
    case wire::MsgType::kStatsText:
    case wire::MsgType::kError:
    case wire::MsgType::kStatsSnapshot:
      return malformed("response type from client");
  }
  return malformed("unknown message type");
}

bool Listener::on_service(net::ServerConn& conn) {
  if (conn.user == nullptr) return false;
  ConnState& state = *static_cast<ConnState*>(conn.user.get());
  return settle_inflight(conn, state) > 0;
}

std::size_t Listener::settle_inflight(net::ServerConn& conn, ConnState& state) {
  // Completion order, not submission order: a cache hit or a faster
  // micro-batch may finish request N+1 before N, and holding its response
  // hostage behind N would serialize the window. Request ids disambiguate.
  for (auto it = state.inflight.begin(); it != state.inflight.end();) {
    if (it->result.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++it;
      continue;
    }
    std::string body;
    try {
      const serve::Fix fix = it->result.get();
      body = wire::encode_fix_body(wire::Status::kOk, &fix);
    } catch (const engine::DeadlineExpired&) {
      body = wire::encode_fix_body(wire::Status::kDeadlineExpired, nullptr);
    } catch (const std::exception&) {
      // Session closed under a pending update, or an engine drained at
      // shutdown: the request is gone, tell the client so.
      body = wire::encode_fix_body(wire::Status::kStopped, nullptr);
    }
    send_frame(conn, wire::MsgType::kFix, it->request_id, std::move(body));
    if (it->trace != nullptr) {
      // The respond stage ends when the response enters the write buffer:
      // the poll loop owns the actual socket flush, and per-frame kernel
      // write timing would need outbuf bookkeeping tracing does not pay
      // for. (A failed request still finishes here — its unreached stage
      // marks are simply absent from the stage histograms.)
      it->trace->stamp(obs::Mark::kResponded);
      obs::Tracer::global().finish(*it->trace);
    }
    it = state.inflight.erase(it);
  }
  return state.inflight.size();
}

void Listener::on_close(net::ServerConn& conn) {
  if (conn.user == nullptr) return;
  ConnState& state = *static_cast<ConnState*>(conn.user.get());
  // A vanished connection must not leak its tracks: sticky sessions die
  // with the connection, exactly like a device dropping off the network.
  for (const auto& [wire_id, session] : state.sessions) {
    routing_.close_session(session);
    sessions_closed_.inc();
  }
  state.sessions.clear();
}

GatewayCounters Listener::counters() const {
  const net::ServerCounters server = server_.counters();
  GatewayCounters out;
  out.connections_accepted = server.connections_accepted;
  out.connections_open = server.connections_open;
  out.connections_rejected = server.connections_rejected;
  out.frames_received = server.frames_received;
  out.frames_sent = server.frames_sent;
  out.malformed_frames = server.malformed_frames + body_malformed_frames_.value();
  out.backpressure_rejects = backpressure_rejects_.value();
  out.sessions_opened = sessions_opened_.value();
  out.sessions_closed = sessions_closed_.value();
  return out;
}

obs::MetricsSnapshot Listener::stats_snapshot() const {
  obs::MetricsSnapshot out;
  // Gateway and fleet samples are spliced from this listener's own counters
  // and router — NOT from global named instruments: many listeners/engines
  // coexist in one process (every gateway test stands one up), and a global
  // "noble_fleet_submitted" would smear them together. The global registry
  // contributes only genuinely process-wide instruments (trace stage
  // histograms, trace counters) at the end.
  const GatewayCounters c = counters();
  out.counter("noble_gateway_connections_accepted", c.connections_accepted);
  out.counter("noble_gateway_connections_open", c.connections_open);
  out.counter("noble_gateway_connections_rejected", c.connections_rejected);
  out.counter("noble_gateway_frames_received", c.frames_received);
  out.counter("noble_gateway_frames_sent", c.frames_sent);
  out.counter("noble_gateway_malformed_frames", c.malformed_frames);
  out.counter("noble_gateway_backpressure_rejects", c.backpressure_rejects);
  out.counter("noble_gateway_sessions_opened", c.sessions_opened);
  out.counter("noble_gateway_sessions_closed", c.sessions_closed);

  const fleet::FleetStats stats = routing_.stats();
  out.counter("noble_fleet_shards", stats.num_shards);
  out.counter("noble_fleet_engines", stats.num_engines);
  out.gauge_int("noble_fleet_queue_depth", stats.queue_depth);
  out.counter("noble_fleet_submitted", stats.total.submitted);
  out.counter("noble_fleet_completed", stats.total.completed);
  out.counter("noble_fleet_rejected", stats.total.rejected);
  out.counter("noble_fleet_expired", stats.total.expired);
  out.counter("noble_fleet_batches", stats.total.batches);
  out.counter("noble_fleet_imu_batches", stats.total.imu_batches);
  out.counter("noble_fleet_cache_hits", stats.total.cache_hits);
  out.counter("noble_fleet_cache_misses", stats.total.cache_misses);
  // Scheduler instruments (PR 9): coalescing widths plus the measured
  // queue-wait/assembly stages the adaptive window feeds on — fleet-merged,
  // full bins in the binary exposition.
  out.histogram("noble_fleet_imu_batch_size", stats.total.imu_batch_size);
  out.histogram("noble_fleet_queue_wait_us", stats.total.queue_wait_us);
  out.histogram("noble_fleet_assembly_us", stats.total.assembly_us);
  for (const engine::RequestClass cls :
       {engine::RequestClass::kInteractive, engine::RequestClass::kBulk}) {
    const engine::ClassStats& cs = stats.total.for_class(cls);
    const std::string prefix = std::string("noble_fleet_") +
                               engine::request_class_name(cls);
    out.counter(prefix + "_accepted", cs.accepted);
    out.counter(prefix + "_rejected", cs.rejected);
    out.counter(prefix + "_expired", cs.expired);
    // Per-class lane depth as a labeled split of noble_fleet_queue_depth,
    // matching the per-engine {shard,engine} split below.
    out.gauge_int("noble_fleet_queue_depth", cs.queue_depth,
                  {{"class", engine::request_class_name(cls)}});
    out.gauge(prefix + "_p50_us", cs.latency.p50_us);
    out.gauge(prefix + "_p95_us", cs.latency.p95_us);
    out.gauge(prefix + "_p99_us", cs.latency.p99_us);
  }
  for (const fleet::ShardDepths& shard : routing_.queue_depths()) {
    for (std::size_t e = 0; e < shard.engines.size(); ++e) {
      out.gauge_int("noble_fleet_queue_depth", shard.engines[e],
                    {{"shard", shard.shard}, {"engine", std::to_string(e)}});
    }
  }
  // Artifact identity per shard: the generation as the gauge value (small,
  // exactly representable) with the 64-bit digest as a hex label — a u64
  // digest as a double sample would silently lose low bits.
  for (const auto& [shard, artifact] : stats.artifacts) {
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  static_cast<unsigned long long>(artifact.digest));
    out.gauge_int("noble_fleet_artifact_generation", artifact.generation,
                  {{"shard", shard}, {"digest", digest_hex}});
  }
  // Implementation-specific samples (a cluster node agent's spill counters;
  // a plain Router contributes nothing).
  routing_.splice_metrics(out);
  out.append(obs::Registry::global().collect());
  return out;
}

std::string Listener::stats_text() const {
  return obs::render_prometheus(stats_snapshot());
}

}  // namespace noble::gateway
