#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace noble::gateway {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

wire::Status to_wire_status(engine::SubmitStatus status) {
  switch (status) {
    case engine::SubmitStatus::kAccepted: return wire::Status::kOk;
    case engine::SubmitStatus::kQueueFull: return wire::Status::kQueueFull;
    case engine::SubmitStatus::kBadDimension: return wire::Status::kBadDimension;
    case engine::SubmitStatus::kNoSession: return wire::Status::kNoSession;
    case engine::SubmitStatus::kNoShard: return wire::Status::kNoShard;
    case engine::SubmitStatus::kExpired: return wire::Status::kExpired;
    case engine::SubmitStatus::kStopped: return wire::Status::kStopped;
  }
  return wire::Status::kStopped;
}

engine::SubmitOptions to_submit_options(const wire::Frame& frame) {
  engine::SubmitOptions options;
  options.request_class = frame.cls;
  // The wire carries a relative budget (clocks never cross the socket);
  // resolve it against this host's steady clock at decode time.
  if (frame.deadline_us > 0) options.expires_in_us(frame.deadline_us);
  return options;
}

void append_counter(std::string& out, const char* name, std::uint64_t value) {
  char line[128];
  std::snprintf(line, sizeof line, "%s %llu\n", name,
                static_cast<unsigned long long>(value));
  out += line;
}

void append_gauge_f(std::string& out, const char* name, double value) {
  char line[128];
  std::snprintf(line, sizeof line, "%s %.1f\n", name, value);
  out += line;
}

}  // namespace

Listener::Listener(fleet::Router& router, GatewayConfig config)
    : router_(router), config_(std::move(config)) {}

Listener::~Listener() { stop(); }

bool Listener::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  handlers_.clear();
  const std::size_t threads = config_.threads == 0 ? 1 : config_.threads;
  for (std::size_t i = 0; i < threads; ++i) {
    auto handler = std::make_unique<Handler>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      running_.store(false, std::memory_order_release);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    handler->wake_read_fd = pipe_fds[0];
    handler->wake_write_fd = pipe_fds[1];
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    handler->thread = std::thread([this, &h = *handler] { handler_loop(h); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Listener::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unpark a blocked accept-poll, but leave the fd itself alone until the
  // accept thread is joined: closing (and overwriting) it here would race
  // the poll()/accept() calls still using it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& handler : handlers_) {
    const char byte = 'q';
    (void)!::write(handler->wake_write_fd, &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
    ::close(handler->wake_read_fd);
    ::close(handler->wake_write_fd);
    // Adopt-queue stragglers the handler never saw still need closing.
    for (const int fd : handler->incoming) ::close(fd);
    handler->incoming.clear();
  }
  handlers_.clear();
}

void Listener::accept_loop() {
  std::size_t next_handler = 0;
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (connections_open_.load(std::memory_order_relaxed) >= config_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Frames are small and latency is the product; never Nagle-delay them.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    Handler& handler = *handlers_[next_handler];
    next_handler = (next_handler + 1) % handlers_.size();
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      handler.incoming.push_back(fd);
    }
    const char byte = 'c';
    (void)!::write(handler.wake_write_fd, &byte, 1);
  }
}

void Listener::handler_loop(Handler& handler) {
  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{handler.wake_read_fd, POLLIN, 0});
    bool any_inflight = false;
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
      any_inflight = any_inflight || !conn->inflight.empty();
    }
    // With futures pending the loop must poll them too — the engine has no
    // way to kick a socket thread — so sleep at most 200us (one batching
    // window) instead of blocking. Idle handlers block until a socket or
    // the wake pipe fires. ppoll for the sub-millisecond case: poll()'s
    // millisecond floor would put a visible constant into every latency.
    if (any_inflight) {
      const timespec wait{0, 200'000};
      ::ppoll(pfds.data(), pfds.size(), &wait, nullptr);
    } else {
      ::ppoll(pfds.data(), pfds.size(), nullptr, nullptr);
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(handler.wake_read_fd, drain, sizeof drain) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      for (const int fd : handler.incoming) {
        conns.push_back(std::make_unique<Connection>(fd));
      }
      handler.incoming.clear();
    }

    for (std::size_t i = 0; i < conns.size();) {
      Connection& conn = *conns[i];
      // pfds[0] is the wake pipe; connection i sat at pfds[i + 1] — but
      // adoption above may have grown conns past pfds, so guard the index.
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
      if (alive && (revents & (POLLIN | POLLHUP))) alive = handle_readable(conn);
      if (alive) settle_inflight(conn);
      if (alive && !conn.outbuf.empty()) alive = flush_writes(conn);
      if (alive && conn.outbuf.size() > config_.max_write_buffer) alive = false;
      if (alive && conn.closing && conn.outbuf.empty() && conn.inflight.empty()) {
        alive = false;
      }
      if (!alive) {
        close_connection(conn);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        // pfds is now stale relative to conns; process remaining entries
        // with no revents this pass (the next loop iteration re-polls).
        pfds.clear();
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : conns) close_connection(*conn);
}

bool Listener::handle_readable(Connection& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      if (conn.inbuf.size() > config_.max_frame_bytes + sizeof(std::uint32_t)) break;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  while (!conn.closing) {
    wire::Frame frame;
    std::string error;
    switch (wire::decode_frame(conn.inbuf, frame, config_.max_frame_bytes, &error)) {
      case wire::DecodeResult::kNeedMore:
        return true;
      case wire::DecodeResult::kMalformed:
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, wire::MsgType::kError, 0, wire::encode_text_body(error));
        // One error frame, then close: there is no resync point in a
        // length-prefixed stream once the prefix itself is untrusted.
        conn.closing = true;
        return true;
      case wire::DecodeResult::kFrame:
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        if (!handle_frame(conn, std::move(frame))) return false;
        break;
    }
  }
  return true;
}

bool Listener::handle_frame(Connection& conn, wire::Frame frame) {
  const auto malformed = [&](const char* what) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    send_frame(conn, wire::MsgType::kError, frame.request_id,
               wire::encode_text_body(what));
    conn.closing = true;
    return true;
  };

  switch (frame.type) {
    case wire::MsgType::kLocate: {
      std::string shard_key;
      serve::RssiVector rssi;
      if (!wire::decode_locate_body(frame.body, shard_key, rssi)) {
        return malformed("bad locate body");
      }
      if (conn.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::Submission s = router_.submit(shard_key, rssi, to_submit_options(frame));
      if (s.accepted()) {
        conn.inflight.push_back(Pending{frame.request_id, frame.cls, std::move(s.result)});
      } else {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(to_wire_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kTrackUpdate: {
      std::uint64_t session_id = 0;
      serve::ImuSegment segment;
      if (!wire::decode_track_body(frame.body, session_id, segment)) {
        return malformed("bad track body");
      }
      const auto it = conn.sessions.find(session_id);
      if (it == conn.sessions.end()) {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kNoSession, nullptr));
        return true;
      }
      if (conn.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::Submission s =
          router_.track(it->second, std::move(segment), to_submit_options(frame));
      if (s.accepted()) {
        conn.inflight.push_back(Pending{frame.request_id, frame.cls, std::move(s.result)});
      } else {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(to_wire_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kOpenSession: {
      std::string shard_key;
      geo::Point2 start;
      if (!wire::decode_open_session_body(frame.body, shard_key, start)) {
        return malformed("bad open-session body");
      }
      std::optional<fleet::FleetSession> session = router_.open_session(shard_key, start);
      if (!session.has_value()) {
        const wire::Status status = router_.has_shard(shard_key)
                                        ? wire::Status::kNoSession
                                        : wire::Status::kNoShard;
        send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                   wire::encode_session_opened_body(status, 0));
        return true;
      }
      const std::uint64_t wire_id = conn.next_session_id++;
      conn.sessions.emplace(wire_id, *session);
      sessions_opened_.fetch_add(1, std::memory_order_relaxed);
      send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                 wire::encode_session_opened_body(wire::Status::kOk, wire_id));
      return true;
    }
    case wire::MsgType::kCloseSession: {
      std::uint64_t session_id = 0;
      if (!wire::decode_close_session_body(frame.body, session_id)) {
        return malformed("bad close-session body");
      }
      const auto it = conn.sessions.find(session_id);
      wire::Status status = wire::Status::kNoSession;
      if (it != conn.sessions.end()) {
        router_.close_session(it->second);
        conn.sessions.erase(it);
        sessions_closed_.fetch_add(1, std::memory_order_relaxed);
        status = wire::Status::kOk;
      }
      send_frame(conn, wire::MsgType::kSessionClosed, frame.request_id,
                 wire::encode_status_body(status));
      return true;
    }
    case wire::MsgType::kStats:
      send_frame(conn, wire::MsgType::kStatsText, frame.request_id,
                 wire::encode_text_body(stats_text()));
      return true;
    case wire::MsgType::kFix:
    case wire::MsgType::kSessionOpened:
    case wire::MsgType::kSessionClosed:
    case wire::MsgType::kStatsText:
    case wire::MsgType::kError:
      return malformed("response type from client");
  }
  return malformed("unknown message type");
}

std::size_t Listener::settle_inflight(Connection& conn) {
  std::size_t settled = 0;
  // Completion order, not submission order: a cache hit or a faster
  // micro-batch may finish request N+1 before N, and holding its response
  // hostage behind N would serialize the window. Request ids disambiguate.
  for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
    if (it->result.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++it;
      continue;
    }
    std::string body;
    try {
      const serve::Fix fix = it->result.get();
      body = wire::encode_fix_body(wire::Status::kOk, &fix);
    } catch (const engine::DeadlineExpired&) {
      body = wire::encode_fix_body(wire::Status::kDeadlineExpired, nullptr);
    } catch (const std::exception&) {
      // Session closed under a pending update, or an engine drained at
      // shutdown: the request is gone, tell the client so.
      body = wire::encode_fix_body(wire::Status::kStopped, nullptr);
    }
    send_frame(conn, wire::MsgType::kFix, it->request_id, std::move(body));
    it = conn.inflight.erase(it);
    ++settled;
  }
  return settled;
}

bool Listener::flush_writes(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Listener::send_frame(Connection& conn, wire::MsgType type,
                          std::uint64_t request_id, std::string body) {
  wire::Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.body = std::move(body);
  conn.outbuf += wire::encode_frame(frame);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

void Listener::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  // A vanished connection must not leak its tracks: sticky sessions die
  // with the connection, exactly like a device dropping off the network.
  for (const auto& [wire_id, session] : conn.sessions) {
    router_.close_session(session);
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  conn.sessions.clear();
  ::close(conn.fd);
  conn.fd = -1;
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

GatewayCounters Listener::counters() const {
  GatewayCounters out;
  out.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  out.connections_open = connections_open_.load(std::memory_order_relaxed);
  out.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  out.frames_received = frames_received_.load(std::memory_order_relaxed);
  out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  out.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  out.backpressure_rejects = backpressure_rejects_.load(std::memory_order_relaxed);
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  return out;
}

std::string Listener::stats_text() const {
  std::string out;
  out.reserve(2048);
  const GatewayCounters c = counters();
  append_counter(out, "noble_gateway_connections_accepted", c.connections_accepted);
  append_counter(out, "noble_gateway_connections_open", c.connections_open);
  append_counter(out, "noble_gateway_connections_rejected", c.connections_rejected);
  append_counter(out, "noble_gateway_frames_received", c.frames_received);
  append_counter(out, "noble_gateway_frames_sent", c.frames_sent);
  append_counter(out, "noble_gateway_malformed_frames", c.malformed_frames);
  append_counter(out, "noble_gateway_backpressure_rejects", c.backpressure_rejects);
  append_counter(out, "noble_gateway_sessions_opened", c.sessions_opened);
  append_counter(out, "noble_gateway_sessions_closed", c.sessions_closed);

  const fleet::FleetStats stats = router_.stats();
  append_counter(out, "noble_fleet_shards", stats.num_shards);
  append_counter(out, "noble_fleet_engines", stats.num_engines);
  append_counter(out, "noble_fleet_queue_depth", stats.queue_depth);
  append_counter(out, "noble_fleet_submitted", stats.total.submitted);
  append_counter(out, "noble_fleet_completed", stats.total.completed);
  append_counter(out, "noble_fleet_rejected", stats.total.rejected);
  append_counter(out, "noble_fleet_expired", stats.total.expired);
  append_counter(out, "noble_fleet_batches", stats.total.batches);
  append_counter(out, "noble_fleet_cache_hits", stats.total.cache_hits);
  append_counter(out, "noble_fleet_cache_misses", stats.total.cache_misses);
  for (const engine::RequestClass cls :
       {engine::RequestClass::kInteractive, engine::RequestClass::kBulk}) {
    const engine::ClassStats& cs = stats.total.for_class(cls);
    const char* name = engine::request_class_name(cls);
    char key[96];
    std::snprintf(key, sizeof key, "noble_fleet_%s_accepted", name);
    append_counter(out, key, cs.accepted);
    std::snprintf(key, sizeof key, "noble_fleet_%s_rejected", name);
    append_counter(out, key, cs.rejected);
    std::snprintf(key, sizeof key, "noble_fleet_%s_expired", name);
    append_counter(out, key, cs.expired);
    std::snprintf(key, sizeof key, "noble_fleet_%s_p50_us", name);
    append_gauge_f(out, key, cs.latency.p50_us);
    std::snprintf(key, sizeof key, "noble_fleet_%s_p95_us", name);
    append_gauge_f(out, key, cs.latency.p95_us);
    std::snprintf(key, sizeof key, "noble_fleet_%s_p99_us", name);
    append_gauge_f(out, key, cs.latency.p99_us);
  }
  for (const fleet::ShardDepths& shard : router_.queue_depths()) {
    for (std::size_t e = 0; e < shard.engines.size(); ++e) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "noble_fleet_queue_depth{shard=\"%s\",engine=\"%zu\"} %zu\n",
                    shard.shard.c_str(), e, shard.engines[e]);
      out += line;
    }
  }
  return out;
}

}  // namespace noble::gateway
