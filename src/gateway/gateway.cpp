#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace noble::gateway {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

wire::Status to_wire_status(engine::SubmitStatus status) {
  switch (status) {
    case engine::SubmitStatus::kAccepted: return wire::Status::kOk;
    case engine::SubmitStatus::kQueueFull: return wire::Status::kQueueFull;
    case engine::SubmitStatus::kBadDimension: return wire::Status::kBadDimension;
    case engine::SubmitStatus::kNoSession: return wire::Status::kNoSession;
    case engine::SubmitStatus::kNoShard: return wire::Status::kNoShard;
    case engine::SubmitStatus::kExpired: return wire::Status::kExpired;
    case engine::SubmitStatus::kStopped: return wire::Status::kStopped;
  }
  return wire::Status::kStopped;
}

engine::SubmitOptions to_submit_options(const wire::Frame& frame) {
  engine::SubmitOptions options;
  options.request_class = frame.cls;
  // The wire carries a relative budget (clocks never cross the socket);
  // resolve it against this host's steady clock at decode time.
  if (frame.deadline_us > 0) options.expires_in_us(frame.deadline_us);
  return options;
}

}  // namespace

Listener::Listener(fleet::Router& router, GatewayConfig config)
    : router_(router), config_(std::move(config)) {}

Listener::~Listener() { stop(); }

bool Listener::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  handlers_.clear();
  const std::size_t threads = config_.threads == 0 ? 1 : config_.threads;
  for (std::size_t i = 0; i < threads; ++i) {
    auto handler = std::make_unique<Handler>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      running_.store(false, std::memory_order_release);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    handler->wake_read_fd = pipe_fds[0];
    handler->wake_write_fd = pipe_fds[1];
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    handler->thread = std::thread([this, &h = *handler] { handler_loop(h); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Listener::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unpark a blocked accept-poll, but leave the fd itself alone until the
  // accept thread is joined: closing (and overwriting) it here would race
  // the poll()/accept() calls still using it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& handler : handlers_) {
    const char byte = 'q';
    (void)!::write(handler->wake_write_fd, &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
    ::close(handler->wake_read_fd);
    ::close(handler->wake_write_fd);
    // Adopt-queue stragglers the handler never saw still need closing.
    for (const int fd : handler->incoming) ::close(fd);
    handler->incoming.clear();
  }
  handlers_.clear();
}

void Listener::accept_loop() {
  std::size_t next_handler = 0;
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (connections_open_.value() >= config_.max_connections) {
      connections_rejected_.inc();
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Frames are small and latency is the product; never Nagle-delay them.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.inc();
    connections_open_.inc();
    Handler& handler = *handlers_[next_handler];
    next_handler = (next_handler + 1) % handlers_.size();
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      handler.incoming.push_back(fd);
    }
    const char byte = 'c';
    (void)!::write(handler.wake_write_fd, &byte, 1);
  }
}

void Listener::handler_loop(Handler& handler) {
  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{handler.wake_read_fd, POLLIN, 0});
    bool any_inflight = false;
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
      any_inflight = any_inflight || !conn->inflight.empty();
    }
    // With futures pending the loop must poll them too — the engine has no
    // way to kick a socket thread — so sleep at most 200us (one batching
    // window) instead of blocking. Idle handlers block until a socket or
    // the wake pipe fires. ppoll for the sub-millisecond case: poll()'s
    // millisecond floor would put a visible constant into every latency.
    if (any_inflight) {
      const timespec wait{0, 200'000};
      ::ppoll(pfds.data(), pfds.size(), &wait, nullptr);
    } else {
      ::ppoll(pfds.data(), pfds.size(), nullptr, nullptr);
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(handler.wake_read_fd, drain, sizeof drain) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(handler.mu);
      for (const int fd : handler.incoming) {
        conns.push_back(std::make_unique<Connection>(fd));
      }
      handler.incoming.clear();
    }

    for (std::size_t i = 0; i < conns.size();) {
      Connection& conn = *conns[i];
      // pfds[0] is the wake pipe; connection i sat at pfds[i + 1] — but
      // adoption above may have grown conns past pfds, so guard the index.
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
      if (alive && (revents & (POLLIN | POLLHUP))) alive = handle_readable(conn);
      if (alive) settle_inflight(conn);
      if (alive && !conn.outbuf.empty()) alive = flush_writes(conn);
      if (alive && conn.outbuf.size() > config_.max_write_buffer) alive = false;
      if (alive && conn.closing && conn.outbuf.empty() && conn.inflight.empty()) {
        alive = false;
      }
      if (!alive) {
        close_connection(conn);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        // pfds is now stale relative to conns; process remaining entries
        // with no revents this pass (the next loop iteration re-polls).
        pfds.clear();
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : conns) close_connection(*conn);
}

bool Listener::handle_readable(Connection& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      if (conn.inbuf.size() > config_.max_frame_bytes + sizeof(std::uint32_t)) break;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // One clock read stamps kRecv for every frame parsed out of this read
  // pass — the bytes were all on the socket together, so they share an
  // arrival instant. 0 (tracing off) skips trace creation downstream.
  const std::uint64_t recv_ns =
      obs::Tracer::global().enabled() ? obs::Trace::now_ns() : 0;
  while (!conn.closing) {
    wire::Frame frame;
    std::string error;
    switch (wire::decode_frame(conn.inbuf, frame, config_.max_frame_bytes, &error)) {
      case wire::DecodeResult::kNeedMore:
        return true;
      case wire::DecodeResult::kMalformed:
        malformed_frames_.inc();
        send_frame(conn, wire::MsgType::kError, 0, wire::encode_text_body(error));
        // One error frame, then close: there is no resync point in a
        // length-prefixed stream once the prefix itself is untrusted.
        conn.closing = true;
        return true;
      case wire::DecodeResult::kFrame:
        frames_received_.inc();
        if (!handle_frame(conn, std::move(frame), recv_ns)) return false;
        break;
    }
  }
  return true;
}

bool Listener::handle_frame(Connection& conn, wire::Frame frame,
                            std::uint64_t recv_ns) {
  const auto malformed = [&](const char* what) {
    malformed_frames_.inc();
    send_frame(conn, wire::MsgType::kError, frame.request_id,
               wire::encode_text_body(what));
    conn.closing = true;
    return true;
  };
  // Stage trace for a decoded request frame: decode = kRecv -> kSubmit, the
  // engine stamps the middle, settle_inflight stamps kResponded and
  // finishes. nullptr when tracing is off.
  const auto start_trace = [&] {
    std::shared_ptr<obs::Trace> trace = obs::Tracer::global().start(frame.request_id);
    if (trace != nullptr) {
      trace->external_respond = true;  // the gateway writes the response
      if (recv_ns != 0) trace->stamp(obs::Mark::kRecv, recv_ns);
      trace->stamp(obs::Mark::kSubmit);
    }
    return trace;
  };

  switch (frame.type) {
    case wire::MsgType::kLocate: {
      std::string shard_key;
      serve::RssiVector rssi;
      if (!wire::decode_locate_body(frame.body, shard_key, rssi)) {
        return malformed("bad locate body");
      }
      if (conn.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.inc();
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::SubmitOptions options = to_submit_options(frame);
      options.trace = start_trace();
      engine::Submission s = router_.submit(shard_key, rssi, options);
      if (s.accepted()) {
        conn.inflight.push_back(Pending{frame.request_id, frame.cls,
                                        std::move(s.result), std::move(options.trace)});
      } else {
        // Rejected: the trace is dropped unfinished — stage histograms
        // describe served requests.
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(to_wire_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kTrackUpdate: {
      std::uint64_t session_id = 0;
      serve::ImuSegment segment;
      if (!wire::decode_track_body(frame.body, session_id, segment)) {
        return malformed("bad track body");
      }
      const auto it = conn.sessions.find(session_id);
      if (it == conn.sessions.end()) {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kNoSession, nullptr));
        return true;
      }
      if (conn.inflight.size() >= config_.inflight_window) {
        backpressure_rejects_.inc();
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(wire::Status::kWindowFull, nullptr));
        return true;
      }
      engine::SubmitOptions options = to_submit_options(frame);
      options.trace = start_trace();
      engine::Submission s = router_.track(it->second, std::move(segment), options);
      if (s.accepted()) {
        conn.inflight.push_back(Pending{frame.request_id, frame.cls,
                                        std::move(s.result), std::move(options.trace)});
      } else {
        send_frame(conn, wire::MsgType::kFix, frame.request_id,
                   wire::encode_fix_body(to_wire_status(s.status), nullptr));
      }
      return true;
    }
    case wire::MsgType::kOpenSession: {
      std::string shard_key;
      geo::Point2 start;
      if (!wire::decode_open_session_body(frame.body, shard_key, start)) {
        return malformed("bad open-session body");
      }
      std::optional<fleet::FleetSession> session = router_.open_session(shard_key, start);
      if (!session.has_value()) {
        const wire::Status status = router_.has_shard(shard_key)
                                        ? wire::Status::kNoSession
                                        : wire::Status::kNoShard;
        send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                   wire::encode_session_opened_body(status, 0));
        return true;
      }
      const std::uint64_t wire_id = conn.next_session_id++;
      conn.sessions.emplace(wire_id, *session);
      sessions_opened_.inc();
      send_frame(conn, wire::MsgType::kSessionOpened, frame.request_id,
                 wire::encode_session_opened_body(wire::Status::kOk, wire_id));
      return true;
    }
    case wire::MsgType::kCloseSession: {
      std::uint64_t session_id = 0;
      if (!wire::decode_close_session_body(frame.body, session_id)) {
        return malformed("bad close-session body");
      }
      const auto it = conn.sessions.find(session_id);
      wire::Status status = wire::Status::kNoSession;
      if (it != conn.sessions.end()) {
        router_.close_session(it->second);
        conn.sessions.erase(it);
        sessions_closed_.inc();
        status = wire::Status::kOk;
      }
      send_frame(conn, wire::MsgType::kSessionClosed, frame.request_id,
                 wire::encode_status_body(status));
      return true;
    }
    case wire::MsgType::kStats:
      send_frame(conn, wire::MsgType::kStatsText, frame.request_id,
                 wire::encode_text_body(stats_text()));
      return true;
    case wire::MsgType::kStatsBinary:
      // Same snapshot, binary exposition: full histogram bins ride the
      // text-body framing (u64 length + raw bytes carries arbitrary bytes).
      send_frame(conn, wire::MsgType::kStatsSnapshot, frame.request_id,
                 wire::encode_text_body(obs::encode_snapshot(stats_snapshot())));
      return true;
    case wire::MsgType::kFix:
    case wire::MsgType::kSessionOpened:
    case wire::MsgType::kSessionClosed:
    case wire::MsgType::kStatsText:
    case wire::MsgType::kError:
    case wire::MsgType::kStatsSnapshot:
      return malformed("response type from client");
  }
  return malformed("unknown message type");
}

std::size_t Listener::settle_inflight(Connection& conn) {
  std::size_t settled = 0;
  // Completion order, not submission order: a cache hit or a faster
  // micro-batch may finish request N+1 before N, and holding its response
  // hostage behind N would serialize the window. Request ids disambiguate.
  for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
    if (it->result.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++it;
      continue;
    }
    std::string body;
    try {
      const serve::Fix fix = it->result.get();
      body = wire::encode_fix_body(wire::Status::kOk, &fix);
    } catch (const engine::DeadlineExpired&) {
      body = wire::encode_fix_body(wire::Status::kDeadlineExpired, nullptr);
    } catch (const std::exception&) {
      // Session closed under a pending update, or an engine drained at
      // shutdown: the request is gone, tell the client so.
      body = wire::encode_fix_body(wire::Status::kStopped, nullptr);
    }
    send_frame(conn, wire::MsgType::kFix, it->request_id, std::move(body));
    if (it->trace != nullptr) {
      // The respond stage ends when the response enters the write buffer:
      // the poll loop owns the actual socket flush, and per-frame kernel
      // write timing would need outbuf bookkeeping tracing does not pay
      // for. (A failed request still finishes here — its unreached stage
      // marks are simply absent from the stage histograms.)
      it->trace->stamp(obs::Mark::kResponded);
      obs::Tracer::global().finish(*it->trace);
    }
    it = conn.inflight.erase(it);
    ++settled;
  }
  return settled;
}

bool Listener::flush_writes(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Listener::send_frame(Connection& conn, wire::MsgType type,
                          std::uint64_t request_id, std::string body) {
  wire::Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.body = std::move(body);
  conn.outbuf += wire::encode_frame(frame);
  frames_sent_.inc();
}

void Listener::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  // A vanished connection must not leak its tracks: sticky sessions die
  // with the connection, exactly like a device dropping off the network.
  for (const auto& [wire_id, session] : conn.sessions) {
    router_.close_session(session);
    sessions_closed_.inc();
  }
  conn.sessions.clear();
  ::close(conn.fd);
  conn.fd = -1;
  connections_open_.sub();
}

GatewayCounters Listener::counters() const {
  GatewayCounters out;
  out.connections_accepted = connections_accepted_.value();
  out.connections_open = connections_open_.value();
  out.connections_rejected = connections_rejected_.value();
  out.frames_received = frames_received_.value();
  out.frames_sent = frames_sent_.value();
  out.malformed_frames = malformed_frames_.value();
  out.backpressure_rejects = backpressure_rejects_.value();
  out.sessions_opened = sessions_opened_.value();
  out.sessions_closed = sessions_closed_.value();
  return out;
}

obs::MetricsSnapshot Listener::stats_snapshot() const {
  obs::MetricsSnapshot out;
  // Gateway and fleet samples are spliced from this listener's own counters
  // and router — NOT from global named instruments: many listeners/engines
  // coexist in one process (every gateway test stands one up), and a global
  // "noble_fleet_submitted" would smear them together. The global registry
  // contributes only genuinely process-wide instruments (trace stage
  // histograms, trace counters) at the end.
  const GatewayCounters c = counters();
  out.counter("noble_gateway_connections_accepted", c.connections_accepted);
  out.counter("noble_gateway_connections_open", c.connections_open);
  out.counter("noble_gateway_connections_rejected", c.connections_rejected);
  out.counter("noble_gateway_frames_received", c.frames_received);
  out.counter("noble_gateway_frames_sent", c.frames_sent);
  out.counter("noble_gateway_malformed_frames", c.malformed_frames);
  out.counter("noble_gateway_backpressure_rejects", c.backpressure_rejects);
  out.counter("noble_gateway_sessions_opened", c.sessions_opened);
  out.counter("noble_gateway_sessions_closed", c.sessions_closed);

  const fleet::FleetStats stats = router_.stats();
  out.counter("noble_fleet_shards", stats.num_shards);
  out.counter("noble_fleet_engines", stats.num_engines);
  out.gauge_int("noble_fleet_queue_depth", stats.queue_depth);
  out.counter("noble_fleet_submitted", stats.total.submitted);
  out.counter("noble_fleet_completed", stats.total.completed);
  out.counter("noble_fleet_rejected", stats.total.rejected);
  out.counter("noble_fleet_expired", stats.total.expired);
  out.counter("noble_fleet_batches", stats.total.batches);
  out.counter("noble_fleet_imu_batches", stats.total.imu_batches);
  out.counter("noble_fleet_cache_hits", stats.total.cache_hits);
  out.counter("noble_fleet_cache_misses", stats.total.cache_misses);
  // Scheduler instruments (PR 9): coalescing widths plus the measured
  // queue-wait/assembly stages the adaptive window feeds on — fleet-merged,
  // full bins in the binary exposition.
  out.histogram("noble_fleet_imu_batch_size", stats.total.imu_batch_size);
  out.histogram("noble_fleet_queue_wait_us", stats.total.queue_wait_us);
  out.histogram("noble_fleet_assembly_us", stats.total.assembly_us);
  for (const engine::RequestClass cls :
       {engine::RequestClass::kInteractive, engine::RequestClass::kBulk}) {
    const engine::ClassStats& cs = stats.total.for_class(cls);
    const std::string prefix = std::string("noble_fleet_") +
                               engine::request_class_name(cls);
    out.counter(prefix + "_accepted", cs.accepted);
    out.counter(prefix + "_rejected", cs.rejected);
    out.counter(prefix + "_expired", cs.expired);
    // Per-class lane depth as a labeled split of noble_fleet_queue_depth,
    // matching the per-engine {shard,engine} split below.
    out.gauge_int("noble_fleet_queue_depth", cs.queue_depth,
                  {{"class", engine::request_class_name(cls)}});
    out.gauge(prefix + "_p50_us", cs.latency.p50_us);
    out.gauge(prefix + "_p95_us", cs.latency.p95_us);
    out.gauge(prefix + "_p99_us", cs.latency.p99_us);
  }
  for (const fleet::ShardDepths& shard : router_.queue_depths()) {
    for (std::size_t e = 0; e < shard.engines.size(); ++e) {
      out.gauge_int("noble_fleet_queue_depth", shard.engines[e],
                    {{"shard", shard.shard}, {"engine", std::to_string(e)}});
    }
  }
  out.append(obs::Registry::global().collect());
  return out;
}

std::string Listener::stats_text() const {
  return obs::render_prometheus(stats_snapshot());
}

}  // namespace noble::gateway
