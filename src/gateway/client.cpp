#include "gateway/client.h"

namespace noble::gateway {

// --- GatewayClient -----------------------------------------------------------

std::optional<GatewayClient> GatewayClient::connect(const std::string& host,
                                                    std::uint16_t port) {
  std::optional<FrameSocket> sock = connect_socket(host, port);
  if (!sock.has_value()) return std::nullopt;
  return GatewayClient(std::move(*sock));
}

std::optional<wire::Frame> GatewayClient::await(wire::MsgType type,
                                                std::uint64_t request_id) {
  // Sync callers have exactly one request outstanding, so the next frame of
  // the right (type, id) is theirs; anything else is a protocol violation.
  while (std::optional<wire::Frame> frame = sock_.recv_frame()) {
    if (frame->type == type && frame->request_id == request_id) return frame;
    return std::nullopt;
  }
  return std::nullopt;
}

std::uint64_t GatewayClient::send_locate(const std::string& shard_key,
                                         const serve::RssiVector& rssi,
                                         engine::RequestClass cls,
                                         std::uint64_t deadline_us) {
  wire::Frame frame;
  frame.type = wire::MsgType::kLocate;
  frame.request_id = next_request_id_++;
  frame.cls = cls;
  frame.deadline_us = deadline_us;
  frame.body = wire::encode_locate_body(shard_key, rssi);
  return sock_.send_frame(frame) ? frame.request_id : 0;
}

std::uint64_t GatewayClient::send_track(std::uint64_t session_id,
                                        const serve::ImuSegment& segment,
                                        engine::RequestClass cls,
                                        std::uint64_t deadline_us) {
  wire::Frame frame;
  frame.type = wire::MsgType::kTrackUpdate;
  frame.request_id = next_request_id_++;
  frame.cls = cls;
  frame.deadline_us = deadline_us;
  frame.body = wire::encode_track_body(session_id, segment);
  return sock_.send_frame(frame) ? frame.request_id : 0;
}

std::optional<std::pair<std::uint64_t, WireResult>> GatewayClient::recv_fix(
    int timeout_ms) {
  std::optional<wire::Frame> frame = sock_.recv_frame(timeout_ms);
  if (!frame.has_value() || frame->type != wire::MsgType::kFix) return std::nullopt;
  WireResult result;
  if (!wire::decode_fix_body(frame->body, result.status, result.fix)) return std::nullopt;
  return std::make_pair(frame->request_id, result);
}

WireResult GatewayClient::locate(const std::string& shard_key,
                                 const serve::RssiVector& rssi,
                                 engine::RequestClass cls, std::uint64_t deadline_us) {
  WireResult result;
  const std::uint64_t id = send_locate(shard_key, rssi, cls, deadline_us);
  if (id == 0) return result;
  std::optional<wire::Frame> frame = await(wire::MsgType::kFix, id);
  if (!frame.has_value() ||
      !wire::decode_fix_body(frame->body, result.status, result.fix)) {
    result.status = wire::Status::kStopped;
  }
  return result;
}

std::optional<std::uint64_t> GatewayClient::open_session(const std::string& shard_key,
                                                         const geo::Point2& start) {
  wire::Frame frame;
  frame.type = wire::MsgType::kOpenSession;
  frame.request_id = next_request_id_++;
  frame.body = wire::encode_open_session_body(shard_key, start);
  if (!sock_.send_frame(frame)) return std::nullopt;
  std::optional<wire::Frame> reply = await(wire::MsgType::kSessionOpened, frame.request_id);
  wire::Status status = wire::Status::kStopped;
  std::uint64_t session_id = 0;
  if (!reply.has_value() ||
      !wire::decode_session_opened_body(reply->body, status, session_id)) {
    last_error_ = wire::Status::kStopped;
    return std::nullopt;
  }
  last_error_ = status;
  if (status != wire::Status::kOk) return std::nullopt;
  return session_id;
}

WireResult GatewayClient::track(std::uint64_t session_id, const serve::ImuSegment& segment,
                                engine::RequestClass cls, std::uint64_t deadline_us) {
  WireResult result;
  const std::uint64_t id = send_track(session_id, segment, cls, deadline_us);
  if (id == 0) return result;
  std::optional<wire::Frame> frame = await(wire::MsgType::kFix, id);
  if (!frame.has_value() ||
      !wire::decode_fix_body(frame->body, result.status, result.fix)) {
    result.status = wire::Status::kStopped;
  }
  return result;
}

bool GatewayClient::close_session(std::uint64_t session_id) {
  wire::Frame frame;
  frame.type = wire::MsgType::kCloseSession;
  frame.request_id = next_request_id_++;
  frame.body = wire::encode_close_session_body(session_id);
  if (!sock_.send_frame(frame)) return false;
  std::optional<wire::Frame> reply = await(wire::MsgType::kSessionClosed, frame.request_id);
  wire::Status status = wire::Status::kStopped;
  return reply.has_value() && wire::decode_status_body(reply->body, status) &&
         status == wire::Status::kOk;
}

std::optional<std::string> GatewayClient::stats_text() {
  wire::Frame frame;
  frame.type = wire::MsgType::kStats;
  frame.request_id = next_request_id_++;
  if (!sock_.send_frame(frame)) return std::nullopt;
  std::optional<wire::Frame> reply = await(wire::MsgType::kStatsText, frame.request_id);
  std::string text;
  if (!reply.has_value() || !wire::decode_text_body(reply->body, text)) {
    return std::nullopt;
  }
  return text;
}

std::optional<std::string> GatewayClient::stats_snapshot_bytes() {
  wire::Frame frame;
  frame.type = wire::MsgType::kStatsBinary;
  frame.request_id = next_request_id_++;
  if (!sock_.send_frame(frame)) return std::nullopt;
  std::optional<wire::Frame> reply =
      await(wire::MsgType::kStatsSnapshot, frame.request_id);
  std::string bytes;
  if (!reply.has_value() || !wire::decode_text_body(reply->body, bytes)) {
    return std::nullopt;
  }
  return bytes;
}

}  // namespace noble::gateway
