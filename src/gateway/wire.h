// noble::gateway wire protocol — compact length-prefixed binary framing.
//
// Every frame on a gateway connection is
//
//   u32 payload_length | payload
//
// and every payload opens with the same header, encoded with the
// nn/serialize ByteWriter/ByteReader codec the model artifacts already use:
//
//   u32 magic+version ("NGW" + version byte)   — versioned magic
//   u32 message type                           — MsgType below
//   u64 request id                             — echoed on the response
//   u8  request class                          — interactive / bulk
//   u64 deadline budget (us, 0 = none)         — relative, resolved by the
//                                                server against its clock at
//                                                decode (clocks never cross
//                                                the wire)
//
// followed by a per-type body. Request ids correlate responses on a
// multiplexed connection: the gateway answers out of request order when
// micro-batches or the fingerprint cache complete out of order, and the
// header's class + deadline map straight onto engine::SubmitOptions — the
// admission story (PR 5) carried end to end over the socket.
//
// Decoding is defensive at every step: a length prefix beyond
// max_frame_bytes, a bad magic, an unsupported version, an unknown type or
// a body that does not parse all yield kMalformed with a reason, and the
// server answers with one kError frame and closes the connection. A short
// buffer is just kNeedMore — framing state, not an error.
#ifndef NOBLE_GATEWAY_WIRE_H_
#define NOBLE_GATEWAY_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "engine/bounded_queue.h"
#include "geo/point.h"
#include "serve/fix.h"

namespace noble::gateway::wire {

/// "NGW" + one version byte. Bumping the protocol bumps only the low byte,
/// so a decoder can tell "other version" apart from "not our protocol".
inline constexpr std::uint32_t kProtocolTag = 0x4E475700u;  // "NGW\0"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kMagic = kProtocolTag | kVersion;

/// Hard ceiling a decoder applies to the length prefix before trusting it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint32_t {
  // Client -> server.
  kLocate = 1,        ///< one RSSI scan for a shard key
  kOpenSession = 2,   ///< open a streaming IMU track on a shard
  kTrackUpdate = 3,   ///< one IMU segment for an open session
  kCloseSession = 4,  ///< close a streaming track
  kStats = 5,         ///< scrape the stats page, Prometheus text exposition
  kStatsBinary = 6,   ///< scrape the obs::MetricsSnapshot binary exposition
  // Server -> client.
  kFix = 101,            ///< Locate / TrackUpdate outcome (status + fix)
  kSessionOpened = 102,  ///< OpenSession outcome (status + session id)
  kSessionClosed = 103,  ///< CloseSession outcome (status)
  kStatsText = 104,      ///< Stats outcome (text page)
  kError = 105,          ///< protocol violation; the connection closes after
  kStatsSnapshot = 106,  ///< StatsBinary outcome (encode_snapshot image)
};

/// Outcome code carried by response frames: engine::SubmitStatus verdicts
/// plus the two wire-only outcomes (a future that expired after admission,
/// and gateway-level backpressure when a connection overruns its in-flight
/// window).
enum class Status : std::uint32_t {
  kOk = 0,
  kQueueFull = 1,
  kBadDimension = 2,
  kNoSession = 3,
  kNoShard = 4,
  kExpired = 5,
  kStopped = 6,
  kDeadlineExpired = 7,  ///< admitted, then lapsed in queue (future failed)
  kWindowFull = 8,       ///< per-connection in-flight window exceeded
};

const char* status_name(Status s);

/// One decoded frame: the common header plus the still-encoded body (typed
/// decode_* helpers below parse it).
struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  engine::RequestClass cls = engine::RequestClass::kInteractive;
  std::uint64_t deadline_us = 0;  ///< relative budget; 0 = none
  std::string body;
};

// --- framing -----------------------------------------------------------------

/// Encodes header + body and prepends the u32 length prefix.
std::string encode_frame(const Frame& frame);

enum class DecodeResult {
  kFrame,      ///< one frame consumed from the buffer into `out`
  kNeedMore,   ///< buffer holds a partial frame; read more bytes
  kMalformed,  ///< unrecoverable framing/header error; close the connection
};

/// Consumes at most one frame from the front of `buffer`. On kMalformed the
/// buffer is left as-is (the connection is dead anyway) and `error` (when
/// non-null) names the violation: oversized length prefix, bad magic,
/// version mismatch, unknown message type, or truncated header.
DecodeResult decode_frame(std::string& buffer, Frame& out,
                          std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                          std::string* error = nullptr);

// --- request bodies ----------------------------------------------------------

std::string encode_locate_body(std::string_view shard_key, const serve::RssiVector& rssi);
bool decode_locate_body(std::string_view body, std::string& shard_key,
                        serve::RssiVector& rssi);

std::string encode_open_session_body(std::string_view shard_key, const geo::Point2& start);
bool decode_open_session_body(std::string_view body, std::string& shard_key,
                              geo::Point2& start);

std::string encode_track_body(std::uint64_t session_id, const serve::ImuSegment& segment);
bool decode_track_body(std::string_view body, std::uint64_t& session_id,
                       serve::ImuSegment& segment);

std::string encode_close_session_body(std::uint64_t session_id);
bool decode_close_session_body(std::string_view body, std::uint64_t& session_id);

// --- response bodies ---------------------------------------------------------

/// status != kOk carries no fix payload.
std::string encode_fix_body(Status status, const serve::Fix* fix);
bool decode_fix_body(std::string_view body, Status& status, serve::Fix& fix);

std::string encode_session_opened_body(Status status, std::uint64_t session_id);
bool decode_session_opened_body(std::string_view body, Status& status,
                                std::uint64_t& session_id);

std::string encode_status_body(Status status);
bool decode_status_body(std::string_view body, Status& status);

std::string encode_text_body(std::string_view text);
bool decode_text_body(std::string_view body, std::string& text);

}  // namespace noble::gateway::wire

#endif  // NOBLE_GATEWAY_WIRE_H_
