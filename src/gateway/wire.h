// noble::gateway wire protocol — the gateway's message vocabulary and typed
// bodies over the shared noble::net frame codec.
//
// Framing (length prefix, versioned magic header, request id, class,
// relative deadline, defensive decode) lives in net/frame.h and is shared
// with the cluster's inter-node protocol; this header owns what is
// gateway-specific: the MsgType registry, the per-type body codecs, and the
// Status outcome space.
//
// Request ids correlate responses on a multiplexed connection: the gateway
// answers out of request order when micro-batches or the fingerprint cache
// complete out of order, and the header's class + deadline map straight
// onto engine::SubmitOptions — the admission story (PR 5) carried end to
// end over the socket.
//
// This header is also the one place the engine's SubmitStatus verdicts, the
// wire Status codes and the client-side exception surface meet:
// from_submit_status / to_submit_status are total inverse-ish maps (the
// wire-only codes fold onto their nearest engine verdict on the way back),
// and rejection_exception() is the single table every client reader uses to
// turn a non-kOk fix status into the exception the harness counts.
#ifndef NOBLE_GATEWAY_WIRE_H_
#define NOBLE_GATEWAY_WIRE_H_

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>

#include "engine/engine.h"
#include "geo/point.h"
#include "net/frame.h"
#include "serve/fix.h"

namespace noble::gateway::wire {

/// Framing constants and types are the shared net ones; aliased so existing
/// gateway code (and its tests) keep compiling unchanged.
inline constexpr std::uint32_t kProtocolTag = net::kProtocolTag;
inline constexpr std::uint32_t kVersion = net::kVersion;
inline constexpr std::uint32_t kMagic = net::kMagic;
inline constexpr std::size_t kDefaultMaxFrameBytes = net::kDefaultMaxFrameBytes;

using Frame = net::Frame;
using DecodeResult = net::DecodeResult;

enum class MsgType : std::uint32_t {
  // Client -> server.
  kLocate = 1,        ///< one RSSI scan for a shard key
  kOpenSession = 2,   ///< open a streaming IMU track on a shard
  kTrackUpdate = 3,   ///< one IMU segment for an open session
  kCloseSession = 4,  ///< close a streaming track
  kStats = 5,         ///< scrape the stats page, Prometheus text exposition
  kStatsBinary = 6,   ///< scrape the obs::MetricsSnapshot binary exposition
  // Server -> client.
  kFix = 101,            ///< Locate / TrackUpdate outcome (status + fix)
  kSessionOpened = 102,  ///< OpenSession outcome (status + session id)
  kSessionClosed = 103,  ///< CloseSession outcome (status)
  kStatsText = 104,      ///< Stats outcome (text page)
  kError = net::kErrorType,  ///< protocol violation; the connection closes
  kStatsSnapshot = 106,  ///< StatsBinary outcome (encode_snapshot image)
};

/// The gateway protocol's message registry — what decode_frame admits on a
/// gateway connection.
const net::MessageSet& message_set();

/// Outcome code carried by response frames: engine::SubmitStatus verdicts
/// plus the wire-only outcomes (a future that expired after admission,
/// gateway-level backpressure when a connection overruns its in-flight
/// window, and a cluster spill landing on a peer serving a different
/// artifact).
enum class Status : std::uint32_t {
  kOk = 0,
  kQueueFull = 1,
  kBadDimension = 2,
  kNoSession = 3,
  kNoShard = 4,
  kExpired = 5,
  kStopped = 6,
  kDeadlineExpired = 7,  ///< admitted, then lapsed in queue (future failed)
  kWindowFull = 8,       ///< per-connection in-flight window exceeded
  kWrongArtifact = 9,    ///< spill peer serves a different model generation
};

const char* status_name(Status s);

// --- the status table (engine verdict <-> wire code <-> client exception) ----

/// Engine admission verdict -> wire status. Total over SubmitStatus; the
/// single map every server-side reply path uses.
Status from_submit_status(engine::SubmitStatus status);

/// Wire status -> nearest engine verdict (for targets that surface an
/// engine-shaped API over a socket). Wire-only codes fold: kDeadlineExpired
/// -> kExpired, kWindowFull -> kQueueFull, kWrongArtifact -> kNoShard.
engine::SubmitStatus to_submit_status(Status status);

/// Rejection that reached the client over the wire after admission-time
/// accounting was no longer possible (a pipelined socket learns the verdict
/// only when the response frame arrives). Carries the wire status; load
/// harnesses count it as a shed, mirroring an immediate kQueueFull.
class WireRejected : public std::runtime_error {
 public:
  explicit WireRejected(Status status)
      : std::runtime_error(std::string("rejected over the wire: ") +
                           status_name(status)),
        status(status) {}
  Status status;
};

/// The one non-kOk-status -> exception map client readers install on their
/// waiting futures: kDeadlineExpired becomes engine::DeadlineExpired (so
/// wire and in-process targets fail identically), everything else a
/// WireRejected carrying the status.
std::exception_ptr rejection_exception(Status status);

// --- framing (shared codec, gateway vocabulary) ------------------------------

inline std::string encode_frame(const Frame& frame) {
  return net::encode_frame(frame);
}

inline DecodeResult decode_frame(std::string& buffer, Frame& out,
                                 std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                                 std::string* error = nullptr) {
  return net::decode_frame(message_set(), buffer, out, max_frame_bytes, error);
}

// --- request bodies ----------------------------------------------------------

std::string encode_locate_body(std::string_view shard_key, const serve::RssiVector& rssi);
bool decode_locate_body(std::string_view body, std::string& shard_key,
                        serve::RssiVector& rssi);

std::string encode_open_session_body(std::string_view shard_key, const geo::Point2& start);
bool decode_open_session_body(std::string_view body, std::string& shard_key,
                              geo::Point2& start);

std::string encode_track_body(std::uint64_t session_id, const serve::ImuSegment& segment);
bool decode_track_body(std::string_view body, std::uint64_t& session_id,
                       serve::ImuSegment& segment);

std::string encode_close_session_body(std::uint64_t session_id);
bool decode_close_session_body(std::string_view body, std::uint64_t& session_id);

// --- response bodies ---------------------------------------------------------

/// status != kOk carries no fix payload.
std::string encode_fix_body(Status status, const serve::Fix* fix);
bool decode_fix_body(std::string_view body, Status& status, serve::Fix& fix);

std::string encode_session_opened_body(Status status, std::uint64_t session_id);
bool decode_session_opened_body(std::string_view body, Status& status,
                                std::uint64_t& session_id);

std::string encode_status_body(Status status);
bool decode_status_body(std::string_view body, Status& status);

inline std::string encode_text_body(std::string_view text) {
  return net::encode_text_body(text);
}
inline bool decode_text_body(std::string_view body, std::string& text) {
  return net::decode_text_body(body, text);
}

}  // namespace noble::gateway::wire

#endif  // NOBLE_GATEWAY_WIRE_H_
