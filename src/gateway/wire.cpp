#include "gateway/wire.h"

#include <cstring>

#include "nn/serialize.h"

namespace noble::gateway::wire {

namespace {

bool known_type(std::uint32_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kLocate:
    case MsgType::kOpenSession:
    case MsgType::kTrackUpdate:
    case MsgType::kCloseSession:
    case MsgType::kStats:
    case MsgType::kStatsBinary:
    case MsgType::kFix:
    case MsgType::kSessionOpened:
    case MsgType::kSessionClosed:
    case MsgType::kStatsText:
    case MsgType::kError:
    case MsgType::kStatsSnapshot:
      return true;
  }
  return false;
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kQueueFull: return "queue_full";
    case Status::kBadDimension: return "bad_dimension";
    case Status::kNoSession: return "no_session";
    case Status::kNoShard: return "no_shard";
    case Status::kExpired: return "expired";
    case Status::kStopped: return "stopped";
    case Status::kDeadlineExpired: return "deadline_expired";
    case Status::kWindowFull: return "window_full";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  nn::ByteWriter payload;
  payload.u32(kMagic);
  payload.u32(static_cast<std::uint32_t>(frame.type));
  payload.u64(frame.request_id);
  payload.u8(static_cast<std::uint8_t>(engine::request_class_index(frame.cls)));
  payload.u64(frame.deadline_us);
  std::string out;
  const std::uint32_t length =
      static_cast<std::uint32_t>(payload.bytes().size() + frame.body.size());
  out.reserve(sizeof length + length);
  out.append(reinterpret_cast<const char*>(&length), sizeof length);
  out.append(payload.bytes());
  out.append(frame.body);
  return out;
}

DecodeResult decode_frame(std::string& buffer, Frame& out,
                          std::size_t max_frame_bytes, std::string* error) {
  if (buffer.size() < sizeof(std::uint32_t)) return DecodeResult::kNeedMore;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer.data(), sizeof length);
  // The length prefix is attacker-controlled until proven otherwise: cap it
  // before allocating or waiting on it. There is no resync point in the
  // stream, so an oversized frame is terminal, not skippable.
  if (length > max_frame_bytes) {
    set_error(error, "oversized length prefix");
    return DecodeResult::kMalformed;
  }
  if (buffer.size() < sizeof length + length) return DecodeResult::kNeedMore;

  nn::ByteReader header(std::string_view(buffer).substr(sizeof length, length));
  std::uint32_t magic = 0, raw_type = 0;
  std::uint8_t cls_index = 0;
  Frame frame;
  if (!header.u32(magic) || !header.u32(raw_type) || !header.u64(frame.request_id) ||
      !header.u8(cls_index) || !header.u64(frame.deadline_us)) {
    set_error(error, "truncated frame header");
    return DecodeResult::kMalformed;
  }
  if (magic != kMagic) {
    // Distinguish a protocol peer speaking another version from raw garbage
    // — the error a two-sided deploy actually hits deserves its own text.
    set_error(error, (magic & 0xFFFFFF00u) == kProtocolTag ? "version mismatch"
                                                           : "bad magic");
    return DecodeResult::kMalformed;
  }
  if (!known_type(raw_type)) {
    set_error(error, "unknown message type");
    return DecodeResult::kMalformed;
  }
  if (cls_index >= engine::kNumRequestClasses) {
    set_error(error, "unknown request class");
    return DecodeResult::kMalformed;
  }
  frame.type = static_cast<MsgType>(raw_type);
  frame.cls = cls_index == 0 ? engine::RequestClass::kInteractive
                             : engine::RequestClass::kBulk;
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 1 + 8;
  frame.body.assign(buffer, sizeof length + kHeaderBytes, length - kHeaderBytes);
  buffer.erase(0, sizeof length + length);
  out = std::move(frame);
  return DecodeResult::kFrame;
}

// --- request bodies ----------------------------------------------------------

std::string encode_locate_body(std::string_view shard_key, const serve::RssiVector& rssi) {
  nn::ByteWriter w;
  w.str(shard_key);
  w.f32v(rssi);
  return w.take();
}

bool decode_locate_body(std::string_view body, std::string& shard_key,
                        serve::RssiVector& rssi) {
  nn::ByteReader r(body);
  return r.str(shard_key) && r.f32v(rssi) && r.exhausted();
}

std::string encode_open_session_body(std::string_view shard_key, const geo::Point2& start) {
  nn::ByteWriter w;
  w.str(shard_key);
  w.f64(start.x);
  w.f64(start.y);
  return w.take();
}

bool decode_open_session_body(std::string_view body, std::string& shard_key,
                              geo::Point2& start) {
  nn::ByteReader r(body);
  return r.str(shard_key) && r.f64(start.x) && r.f64(start.y) && r.exhausted();
}

std::string encode_track_body(std::uint64_t session_id, const serve::ImuSegment& segment) {
  nn::ByteWriter w;
  w.u64(session_id);
  w.f32v(segment);
  return w.take();
}

bool decode_track_body(std::string_view body, std::uint64_t& session_id,
                       serve::ImuSegment& segment) {
  nn::ByteReader r(body);
  return r.u64(session_id) && r.f32v(segment) && r.exhausted();
}

std::string encode_close_session_body(std::uint64_t session_id) {
  nn::ByteWriter w;
  w.u64(session_id);
  return w.take();
}

bool decode_close_session_body(std::string_view body, std::uint64_t& session_id) {
  nn::ByteReader r(body);
  return r.u64(session_id) && r.exhausted();
}

// --- response bodies ---------------------------------------------------------

std::string encode_fix_body(Status status, const serve::Fix* fix) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  if (status == Status::kOk && fix != nullptr) {
    w.u32(static_cast<std::uint32_t>(fix->building));
    w.u32(static_cast<std::uint32_t>(fix->floor));
    w.u32(static_cast<std::uint32_t>(fix->fine_class));
    w.f64(fix->position.x);
    w.f64(fix->position.y);
    w.f64(fix->confidence);
  }
  return w.take();
}

bool decode_fix_body(std::string_view body, Status& status, serve::Fix& fix) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw)) return false;
  status = static_cast<Status>(raw);
  if (status != Status::kOk) return r.exhausted();
  std::uint32_t building = 0, floor = 0, fine_class = 0;
  if (!r.u32(building) || !r.u32(floor) || !r.u32(fine_class) ||
      !r.f64(fix.position.x) || !r.f64(fix.position.y) || !r.f64(fix.confidence) ||
      !r.exhausted()) {
    return false;
  }
  fix.building = static_cast<int>(building);
  fix.floor = static_cast<int>(floor);
  fix.fine_class = static_cast<int>(fine_class);
  return true;
}

std::string encode_session_opened_body(Status status, std::uint64_t session_id) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  w.u64(session_id);
  return w.take();
}

bool decode_session_opened_body(std::string_view body, Status& status,
                                std::uint64_t& session_id) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw) || !r.u64(session_id) || !r.exhausted()) return false;
  status = static_cast<Status>(raw);
  return true;
}

std::string encode_status_body(Status status) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  return w.take();
}

bool decode_status_body(std::string_view body, Status& status) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw) || !r.exhausted()) return false;
  status = static_cast<Status>(raw);
  return true;
}

std::string encode_text_body(std::string_view text) {
  nn::ByteWriter w;
  w.str(text);
  return w.take();
}

bool decode_text_body(std::string_view body, std::string& text) {
  nn::ByteReader r(body);
  return r.str(text) && r.exhausted();
}

}  // namespace noble::gateway::wire
