#include "gateway/wire.h"

#include "nn/serialize.h"

namespace noble::gateway::wire {

const net::MessageSet& message_set() {
  static const net::MessageSet set(
      "gateway",
      {{static_cast<std::uint32_t>(MsgType::kLocate), "locate"},
       {static_cast<std::uint32_t>(MsgType::kOpenSession), "open_session"},
       {static_cast<std::uint32_t>(MsgType::kTrackUpdate), "track_update"},
       {static_cast<std::uint32_t>(MsgType::kCloseSession), "close_session"},
       {static_cast<std::uint32_t>(MsgType::kStats), "stats"},
       {static_cast<std::uint32_t>(MsgType::kStatsBinary), "stats_binary"},
       {static_cast<std::uint32_t>(MsgType::kFix), "fix"},
       {static_cast<std::uint32_t>(MsgType::kSessionOpened), "session_opened"},
       {static_cast<std::uint32_t>(MsgType::kSessionClosed), "session_closed"},
       {static_cast<std::uint32_t>(MsgType::kStatsText), "stats_text"},
       {static_cast<std::uint32_t>(MsgType::kError), "error"},
       {static_cast<std::uint32_t>(MsgType::kStatsSnapshot), "stats_snapshot"}});
  return set;
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kQueueFull: return "queue_full";
    case Status::kBadDimension: return "bad_dimension";
    case Status::kNoSession: return "no_session";
    case Status::kNoShard: return "no_shard";
    case Status::kExpired: return "expired";
    case Status::kStopped: return "stopped";
    case Status::kDeadlineExpired: return "deadline_expired";
    case Status::kWindowFull: return "window_full";
    case Status::kWrongArtifact: return "wrong_artifact";
  }
  return "unknown";
}

Status from_submit_status(engine::SubmitStatus status) {
  switch (status) {
    case engine::SubmitStatus::kAccepted: return Status::kOk;
    case engine::SubmitStatus::kQueueFull: return Status::kQueueFull;
    case engine::SubmitStatus::kBadDimension: return Status::kBadDimension;
    case engine::SubmitStatus::kNoSession: return Status::kNoSession;
    case engine::SubmitStatus::kNoShard: return Status::kNoShard;
    case engine::SubmitStatus::kExpired: return Status::kExpired;
    case engine::SubmitStatus::kStopped: return Status::kStopped;
  }
  return Status::kStopped;
}

engine::SubmitStatus to_submit_status(Status status) {
  switch (status) {
    case Status::kOk: return engine::SubmitStatus::kAccepted;
    case Status::kQueueFull: return engine::SubmitStatus::kQueueFull;
    case Status::kBadDimension: return engine::SubmitStatus::kBadDimension;
    case Status::kNoSession: return engine::SubmitStatus::kNoSession;
    case Status::kNoShard: return engine::SubmitStatus::kNoShard;
    case Status::kExpired: return engine::SubmitStatus::kExpired;
    case Status::kStopped: return engine::SubmitStatus::kStopped;
    // Wire-only codes fold onto the nearest engine verdict: a lapsed
    // deadline is an expiry, window backpressure is a full queue, and a
    // wrong-artifact spill bounce means this peer cannot serve the shard.
    case Status::kDeadlineExpired: return engine::SubmitStatus::kExpired;
    case Status::kWindowFull: return engine::SubmitStatus::kQueueFull;
    case Status::kWrongArtifact: return engine::SubmitStatus::kNoShard;
  }
  return engine::SubmitStatus::kStopped;
}

std::exception_ptr rejection_exception(Status status) {
  if (status == Status::kDeadlineExpired) {
    return std::make_exception_ptr(engine::DeadlineExpired());
  }
  return std::make_exception_ptr(WireRejected(status));
}

// --- request bodies ----------------------------------------------------------

std::string encode_locate_body(std::string_view shard_key, const serve::RssiVector& rssi) {
  nn::ByteWriter w;
  w.str(shard_key);
  w.f32v(rssi);
  return w.take();
}

bool decode_locate_body(std::string_view body, std::string& shard_key,
                        serve::RssiVector& rssi) {
  nn::ByteReader r(body);
  return r.str(shard_key) && r.f32v(rssi) && r.exhausted();
}

std::string encode_open_session_body(std::string_view shard_key, const geo::Point2& start) {
  nn::ByteWriter w;
  w.str(shard_key);
  w.f64(start.x);
  w.f64(start.y);
  return w.take();
}

bool decode_open_session_body(std::string_view body, std::string& shard_key,
                              geo::Point2& start) {
  nn::ByteReader r(body);
  return r.str(shard_key) && r.f64(start.x) && r.f64(start.y) && r.exhausted();
}

std::string encode_track_body(std::uint64_t session_id, const serve::ImuSegment& segment) {
  nn::ByteWriter w;
  w.u64(session_id);
  w.f32v(segment);
  return w.take();
}

bool decode_track_body(std::string_view body, std::uint64_t& session_id,
                       serve::ImuSegment& segment) {
  nn::ByteReader r(body);
  return r.u64(session_id) && r.f32v(segment) && r.exhausted();
}

std::string encode_close_session_body(std::uint64_t session_id) {
  nn::ByteWriter w;
  w.u64(session_id);
  return w.take();
}

bool decode_close_session_body(std::string_view body, std::uint64_t& session_id) {
  nn::ByteReader r(body);
  return r.u64(session_id) && r.exhausted();
}

// --- response bodies ---------------------------------------------------------

std::string encode_fix_body(Status status, const serve::Fix* fix) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  if (status == Status::kOk && fix != nullptr) {
    w.u32(static_cast<std::uint32_t>(fix->building));
    w.u32(static_cast<std::uint32_t>(fix->floor));
    w.u32(static_cast<std::uint32_t>(fix->fine_class));
    w.f64(fix->position.x);
    w.f64(fix->position.y);
    w.f64(fix->confidence);
  }
  return w.take();
}

bool decode_fix_body(std::string_view body, Status& status, serve::Fix& fix) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw)) return false;
  status = static_cast<Status>(raw);
  if (status != Status::kOk) return r.exhausted();
  std::uint32_t building = 0, floor = 0, fine_class = 0;
  if (!r.u32(building) || !r.u32(floor) || !r.u32(fine_class) ||
      !r.f64(fix.position.x) || !r.f64(fix.position.y) || !r.f64(fix.confidence) ||
      !r.exhausted()) {
    return false;
  }
  fix.building = static_cast<int>(building);
  fix.floor = static_cast<int>(floor);
  fix.fine_class = static_cast<int>(fine_class);
  return true;
}

std::string encode_session_opened_body(Status status, std::uint64_t session_id) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  w.u64(session_id);
  return w.take();
}

bool decode_session_opened_body(std::string_view body, Status& status,
                                std::uint64_t& session_id) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw) || !r.u64(session_id) || !r.exhausted()) return false;
  status = static_cast<Status>(raw);
  return true;
}

std::string encode_status_body(Status status) {
  nn::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(status));
  return w.take();
}

bool decode_status_body(std::string_view body, Status& status) {
  nn::ByteReader r(body);
  std::uint32_t raw = 0;
  if (!r.u32(raw) || !r.exhausted()) return false;
  status = static_cast<Status>(raw);
  return true;
}

}  // namespace noble::gateway::wire
