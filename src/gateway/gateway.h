// noble::gateway — the socket-facing serving front end over fleet::Router.
//
// The engine/fleet stack serves heavy concurrent traffic, but only
// in-process; this is the network story (the role onnxruntime's
// hosting/http/session.cc plays for ORT). One Listener owns a TCP accept
// loop plus N connection-handler threads, each multiplexing its share of
// the connections over non-blocking sockets with poll()-based readiness:
//
//   clients ══ TCP, wire.h frames ══▶ accept loop ──▶ handler 0 ─ conns…
//                                        (round-robin)  handler 1 ─ conns…
//                                                          │
//                                            router.submit / track / stats
//
// Per connection the handler keeps a read buffer (bytes -> frames), a write
// buffer (frames -> bytes, flushed as the socket drains) and a bounded
// in-flight window of admitted-but-unfulfilled requests. The frame header's
// class + deadline map straight onto engine::SubmitOptions, so the
// admission-control story — interactive reservation, bulk shedding,
// deadline expiry — holds for network traffic exactly as it does
// in-process. Responses carry the request id and go out in completion
// order: micro-batching and the fingerprint cache reorder completions, the
// wire does not hide it.
//
// Long-lived connections stream IMU session updates: OpenSession binds a
// wire session id to a sticky FleetSession on this connection; TrackUpdates
// ride the same per-session FIFO ordering the engine already guarantees
// (the handler submits updates of one session in arrival order). A closing
// connection closes its sessions — no leaked registry entries.
//
// Protocol errors (wire::DecodeResult::kMalformed) answer with one kError
// frame and close the connection; in-flight futures still resolve (the
// engine owns them) and are simply dropped. The bit-identity contract is
// end to end: a fix served over the wire is Fix::operator==-equal to direct
// locate() — the wire codec moves exact bit patterns, never re-derived
// values.
//
// Observability: per-request frames (kLocate / kTrackUpdate) carry an
// obs::Trace when tracing is on — kRecv stamped at byte arrival, kSubmit at
// decode, engine marks inside, kResponded when the response enters the
// write buffer — and the gateway finishes each trace into the process-wide
// stage histograms. The scrape page is built as an obs::MetricsSnapshot
// (gateway counters + FleetStats views + per-engine depth gauges + the
// global registry's trace instruments) and served in either exposition
// format: kStats returns the Prometheus text rendering, kStatsBinary the
// versioned binary image — full histogram bins, decodable with
// obs::decode_snapshot.
#ifndef NOBLE_GATEWAY_GATEWAY_H_
#define NOBLE_GATEWAY_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/router.h"
#include "gateway/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace noble::gateway {

struct GatewayConfig {
  /// TCP port to bind; 0 picks an ephemeral port (Listener::port() reports
  /// the actual one — what tests and self-hosted benches want).
  std::uint16_t port = 0;
  /// Bind address. Loopback by default: this is a demo fleet, not an
  /// internet-facing deployment.
  std::string bind_address = "127.0.0.1";
  /// Connection-handler threads; each multiplexes its share of connections.
  std::size_t threads = 2;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Frames with a larger length prefix are malformed (connection closes).
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Most admitted-but-unfulfilled requests one connection may hold; the
  /// gateway answers kWindowFull beyond it without touching the router —
  /// per-connection backpressure in front of the fleet's own admission.
  std::size_t inflight_window = 64;
  /// Bytes of pending response data before a connection is declared too
  /// slow and closed (it is not reading what we send).
  std::size_t max_write_buffer = 4u << 20;
  int listen_backlog = 64;
};

/// Monotonic gateway-level counters (the fleet's own telemetry lives in
/// FleetStats; these count what only the socket layer can see).
struct GatewayCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;  ///< gauge
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t backpressure_rejects = 0;  ///< kWindowFull verdicts
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;  ///< client closes + connection sweeps
};

class Listener {
 public:
  /// The router must outlive the listener. Construction does not touch the
  /// network; start() does.
  Listener(fleet::Router& router, GatewayConfig config = {});
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds, listens and spawns the accept + handler threads. False (with
  /// the OS error in errno) when the socket cannot be bound.
  bool start();

  /// Stops accepting, wakes every handler, closes every connection (their
  /// sticky sessions are closed on the router) and joins. Idempotent; the
  /// destructor calls it.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }
  const GatewayConfig& config() const { return config_; }

  GatewayCounters counters() const;

  /// The scrape snapshot: gateway counters, FleetStats totals and per-class
  /// percentiles, per-shard/per-engine queue depths (all as view samples),
  /// plus every instrument in obs::Registry::global() (the tracer's stage
  /// histograms and trace counters). Both wire scrape formats and
  /// stats_text() render this one snapshot.
  obs::MetricsSnapshot stats_snapshot() const;

  /// Prometheus text rendering of stats_snapshot() — the scrape page,
  /// served over the wire as the kStats response.
  std::string stats_text() const;

 private:
  struct Pending {
    std::uint64_t request_id = 0;
    engine::RequestClass cls = engine::RequestClass::kInteractive;
    std::future<serve::Fix> result;
    std::shared_ptr<obs::Trace> trace;  ///< stage clock; nullptr = untraced
  };

  struct Connection {
    explicit Connection(int descriptor) : fd(descriptor) {}
    int fd;
    std::string inbuf;
    std::string outbuf;
    std::deque<Pending> inflight;
    /// Wire session id -> sticky fleet session (per-connection namespace).
    std::unordered_map<std::uint64_t, fleet::FleetSession> sessions;
    std::uint64_t next_session_id = 1;
    bool closing = false;  ///< flush outbuf, then close
  };

  struct Handler {
    std::mutex mu;                      ///< guards the handoff queue
    std::vector<int> incoming;          ///< accepted fds awaiting adoption
    int wake_read_fd = -1, wake_write_fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void handler_loop(Handler& handler);
  /// Drains readable bytes and parses frames; false = close the connection.
  bool handle_readable(Connection& conn);
  /// Dispatches one decoded frame; false = close the connection. `recv_ns`
  /// is the kRecv stamp for this read pass (0 when tracing is off).
  bool handle_frame(Connection& conn, wire::Frame frame, std::uint64_t recv_ns);
  /// Moves fulfilled futures from the in-flight window into the write
  /// buffer; returns how many settled.
  std::size_t settle_inflight(Connection& conn);
  /// Non-blocking flush of the write buffer; false = peer gone.
  bool flush_writes(Connection& conn);
  void send_frame(Connection& conn, wire::MsgType type, std::uint64_t request_id,
                  std::string body);
  void close_connection(Connection& conn);

  fleet::Router& router_;
  GatewayConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Handler>> handlers_;
  std::thread accept_thread_;

  /// obs::Counter members (thread-striped): handler threads increment
  /// without sharing lines, and GatewayCounters stays the struct view.
  /// connections_open_ is a level worn as a counter (inc on accept, sub on
  /// close) — the mod-2^64 stripe sum keeps it exact.
  obs::Counter connections_accepted_;
  obs::Counter connections_open_;
  obs::Counter connections_rejected_;
  obs::Counter frames_received_;
  obs::Counter frames_sent_;
  obs::Counter malformed_frames_;
  obs::Counter backpressure_rejects_;
  obs::Counter sessions_opened_;
  obs::Counter sessions_closed_;
};

}  // namespace noble::gateway

#endif  // NOBLE_GATEWAY_GATEWAY_H_
