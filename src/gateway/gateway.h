// noble::gateway — the socket-facing serving front end over fleet::Routing.
//
// The engine/fleet stack serves heavy concurrent traffic, but only
// in-process; this is the network story (the role onnxruntime's
// hosting/http/session.cc plays for ORT). The transport — accept loop,
// N poll-based connection-handler threads, buffered framing, defensive
// decode — is the shared net::FrameServer; the Listener is its gateway
// protocol handler:
//
//   clients ══ TCP, wire.h frames ══▶ net::FrameServer ──▶ Listener
//                                                             │
//                                               routing.submit / track / stats
//
// Per connection the Listener keeps a bounded in-flight window of
// admitted-but-unfulfilled requests plus the sticky-session table. The
// frame header's class + deadline map straight onto engine::SubmitOptions,
// so the admission-control story — interactive reservation, bulk shedding,
// deadline expiry — holds for network traffic exactly as it does
// in-process. Responses carry the request id and go out in completion
// order: micro-batching and the fingerprint cache reorder completions, the
// wire does not hide it.
//
// Long-lived connections stream IMU session updates: OpenSession binds a
// wire session id to a sticky FleetSession on this connection; TrackUpdates
// ride the same per-session FIFO ordering the engine already guarantees
// (the handler submits updates of one session in arrival order). A closing
// connection closes its sessions — no leaked registry entries.
//
// Protocol errors answer with one kError frame and close the connection
// (framing-level violations are handled by the FrameServer itself;
// body-level ones — a frame whose type is known but whose body does not
// parse — by the Listener, same contract). In-flight futures still resolve
// (the engine owns them) and are simply dropped. The bit-identity contract
// is end to end: a fix served over the wire is Fix::operator==-equal to
// direct locate() — the wire codec moves exact bit patterns, never
// re-derived values.
//
// The Listener serves any fleet::Routing — a local Router, or a cluster
// NodeAgent whose submit() spills saturated bulk traffic to peer nodes; the
// gateway cannot tell the difference, which is the point of the interface.
//
// Observability: per-request frames (kLocate / kTrackUpdate) carry an
// obs::Trace when tracing is on — kRecv stamped at byte arrival, kSubmit at
// decode, engine marks inside, kResponded when the response enters the
// write buffer — and the gateway finishes each trace into the process-wide
// stage histograms. The scrape page is built as an obs::MetricsSnapshot
// (gateway counters + FleetStats views + per-engine depth gauges + the
// routing implementation's own splice + the global registry's trace
// instruments) and served in either exposition format: kStats returns the
// Prometheus text rendering, kStatsBinary the versioned binary image —
// full histogram bins, decodable with obs::decode_snapshot.
#ifndef NOBLE_GATEWAY_GATEWAY_H_
#define NOBLE_GATEWAY_GATEWAY_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "fleet/router.h"
#include "gateway/wire.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace noble::gateway {

struct GatewayConfig {
  /// TCP port to bind; 0 picks an ephemeral port (Listener::port() reports
  /// the actual one — what tests and self-hosted benches want).
  std::uint16_t port = 0;
  /// Bind address. Loopback by default: this is a demo fleet, not an
  /// internet-facing deployment.
  std::string bind_address = "127.0.0.1";
  /// Connection-handler threads; each multiplexes its share of connections.
  std::size_t threads = 2;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Frames with a larger length prefix are malformed (connection closes).
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Most admitted-but-unfulfilled requests one connection may hold; the
  /// gateway answers kWindowFull beyond it without touching the router —
  /// per-connection backpressure in front of the fleet's own admission.
  std::size_t inflight_window = 64;
  /// Bytes of pending response data before a connection is declared too
  /// slow and closed (it is not reading what we send).
  std::size_t max_write_buffer = 4u << 20;
  int listen_backlog = 64;
};

/// Monotonic gateway-level counters (the fleet's own telemetry lives in
/// FleetStats; these count what only the socket layer can see).
struct GatewayCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;  ///< gauge
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t malformed_frames = 0;  ///< framing-level + body-level
  std::uint64_t backpressure_rejects = 0;  ///< kWindowFull verdicts
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;  ///< client closes + connection sweeps
};

class Listener final : private net::FrameHandler {
 public:
  /// The routing implementation must outlive the listener. Construction
  /// does not touch the network; start() does.
  Listener(fleet::Routing& routing, GatewayConfig config = {});
  ~Listener() override;

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds, listens and spawns the accept + handler threads. False (with
  /// the OS error in errno) when the socket cannot be bound.
  bool start();

  /// Stops accepting, wakes every handler, closes every connection (their
  /// sticky sessions are closed on the router) and joins. Idempotent; the
  /// destructor calls it.
  void stop();

  bool running() const { return server_.running(); }
  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const { return server_.port(); }
  const GatewayConfig& config() const { return config_; }

  GatewayCounters counters() const;

  /// The scrape snapshot: gateway counters, FleetStats totals and per-class
  /// percentiles, per-shard/per-engine queue depths and artifact identity
  /// (all as view samples), the routing implementation's own splice, plus
  /// every instrument in obs::Registry::global() (the tracer's stage
  /// histograms and trace counters). Both wire scrape formats and
  /// stats_text() render this one snapshot.
  obs::MetricsSnapshot stats_snapshot() const;

  /// Prometheus text rendering of stats_snapshot() — the scrape page,
  /// served over the wire as the kStats response.
  std::string stats_text() const;

 private:
  struct Pending {
    std::uint64_t request_id = 0;
    engine::RequestClass cls = engine::RequestClass::kInteractive;
    std::future<serve::Fix> result;
    std::shared_ptr<obs::Trace> trace;  ///< stage clock; nullptr = untraced
  };

  /// Gateway protocol state of one connection, carried in ServerConn::user.
  struct ConnState {
    std::deque<Pending> inflight;
    /// Wire session id -> sticky fleet session (per-connection namespace).
    std::unordered_map<std::uint64_t, fleet::FleetSession> sessions;
    std::uint64_t next_session_id = 1;
  };

  // net::FrameHandler:
  const net::MessageSet& message_set() const override { return wire::message_set(); }
  bool on_frame(net::ServerConn& conn, net::Frame frame, std::uint64_t recv_ns) override;
  bool on_service(net::ServerConn& conn) override;
  void on_close(net::ServerConn& conn) override;
  bool stamp_arrivals() const override { return obs::Tracer::global().enabled(); }

  ConnState& state_of(net::ServerConn& conn);
  /// Moves fulfilled futures from the in-flight window into the write
  /// buffer; returns how many are still pending.
  std::size_t settle_inflight(net::ServerConn& conn, ConnState& state);
  void send_frame(net::ServerConn& conn, wire::MsgType type, std::uint64_t request_id,
                  std::string body);

  fleet::Routing& routing_;
  GatewayConfig config_;
  net::FrameServer server_;

  /// Gateway-protocol counters; the transport-level ones live in the
  /// FrameServer and are merged into GatewayCounters by counters().
  obs::Counter body_malformed_frames_;
  obs::Counter backpressure_rejects_;
  obs::Counter sessions_opened_;
  obs::Counter sessions_closed_;
};

}  // namespace noble::gateway

#endif  // NOBLE_GATEWAY_GATEWAY_H_
