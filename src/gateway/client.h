// Client side of the gateway wire protocol: the shared net::FrameSocket
// bound to the gateway MessageSet, plus a small synchronous convenience
// API.
//
// GatewayClient layers request-id bookkeeping and blocking call-and-wait
// helpers on top — what an example, a test, or a device SDK would use. The
// fix a sync call returns is the decoded wire payload, bit-identical to the
// server-side Fix by the codec's exactness (raw float/double bit patterns
// cross the wire, nothing is re-derived).
#ifndef NOBLE_GATEWAY_CLIENT_H_
#define NOBLE_GATEWAY_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "gateway/wire.h"
#include "net/socket.h"

namespace noble::gateway {

/// The transport is the shared one; a gateway FrameSocket is a
/// net::FrameSocket speaking wire::message_set().
using FrameSocket = net::FrameSocket;

/// Connects a FrameSocket speaking the gateway protocol; nullopt on
/// refusal/resolution error.
inline std::optional<FrameSocket> connect_socket(const std::string& host,
                                                 std::uint16_t port) {
  return net::FrameSocket::connect(host, port, wire::message_set());
}

/// Status + fix outcome of one Locate/TrackUpdate over the wire.
struct WireResult {
  wire::Status status = wire::Status::kStopped;
  serve::Fix fix;  ///< meaningful only when status == kOk

  bool ok() const { return status == wire::Status::kOk; }
};

class GatewayClient {
 public:
  static std::optional<GatewayClient> connect(const std::string& host,
                                              std::uint16_t port);

  GatewayClient(GatewayClient&&) = default;
  GatewayClient& operator=(GatewayClient&&) = default;

  // --- blocking call-and-wait ------------------------------------------------

  /// One scan, one answer. Class and deadline ride the frame header into
  /// the server's SubmitOptions.
  WireResult locate(const std::string& shard_key, const serve::RssiVector& rssi,
                    engine::RequestClass cls = engine::RequestClass::kInteractive,
                    std::uint64_t deadline_us = 0);

  /// Opens a streaming IMU track; the returned wire session id feeds
  /// track()/close_session(). nullopt when the server refused (status
  /// available via last_error()).
  std::optional<std::uint64_t> open_session(const std::string& shard_key,
                                            const geo::Point2& start);

  WireResult track(std::uint64_t session_id, const serve::ImuSegment& segment,
                   engine::RequestClass cls = engine::RequestClass::kInteractive,
                   std::uint64_t deadline_us = 0);

  bool close_session(std::uint64_t session_id);

  /// The scrape page (gateway counters + fleet stats), Prometheus text.
  std::optional<std::string> stats_text();

  /// The binary scrape: raw bytes of the server's obs::encode_snapshot
  /// image (full histogram bins included). Decode with obs::decode_snapshot.
  std::optional<std::string> stats_snapshot_bytes();

  // --- pipelined access ------------------------------------------------------

  /// Fire-and-forget submit; returns the request id to match against
  /// recv_fix(), or 0 when the send failed.
  std::uint64_t send_locate(const std::string& shard_key, const serve::RssiVector& rssi,
                            engine::RequestClass cls, std::uint64_t deadline_us);
  std::uint64_t send_track(std::uint64_t session_id, const serve::ImuSegment& segment,
                           engine::RequestClass cls, std::uint64_t deadline_us);

  /// Next kFix response in arrival order: (request id, outcome). nullopt on
  /// timeout or connection loss. Skips nothing: any non-kFix frame that
  /// arrives while waiting fails the call (protocol confusion, not traffic).
  std::optional<std::pair<std::uint64_t, WireResult>> recv_fix(int timeout_ms = -1);

  /// Last refusal status observed by open_session().
  wire::Status last_error() const { return last_error_; }

  FrameSocket& socket() { return sock_; }
  bool valid() const { return sock_.valid(); }

 private:
  explicit GatewayClient(FrameSocket sock) : sock_(std::move(sock)) {}

  /// Blocks until the response with `request_id` of `type` arrives.
  std::optional<wire::Frame> await(wire::MsgType type, std::uint64_t request_id);

  FrameSocket sock_;
  std::uint64_t next_request_id_ = 1;
  wire::Status last_error_ = wire::Status::kOk;
};

}  // namespace noble::gateway

#endif  // NOBLE_GATEWAY_CLIENT_H_
