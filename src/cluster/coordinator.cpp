#include "cluster/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "gateway/wire.h"
#include "net/socket.h"
#include "serve/artifact.h"
#include "serve/wifi_localizer.h"

namespace noble::cluster {

namespace wire = gateway::wire;

namespace {

std::string hex_digest(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)), server_(*this, config_.server) {}

Coordinator::~Coordinator() { stop(); }

bool Coordinator::start() {
  if (!server_.start()) return false;
  if (!config_.model_dir.empty() && config_.poll_ms > 0 &&
      !watch_running_.exchange(true)) {
    watch_thread_ = std::thread([this] { watch_loop(); });
  }
  return true;
}

void Coordinator::stop() {
  if (watch_running_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
    }
    watch_cv_.notify_all();
  }
  if (watch_thread_.joinable()) watch_thread_.join();
  server_.stop();
}

void Coordinator::log_line(std::string line) {
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(std::move(line));
}

std::vector<std::string> Coordinator::rollout_log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

void Coordinator::set_probe_queries(std::string_view shard,
                                    std::vector<serve::RssiVector> queries) {
  std::lock_guard<std::mutex> lock(probes_mu_);
  probe_queries_[std::string(shard)] = std::move(queries);
}

CoordinatorCounters Coordinator::counters() const {
  CoordinatorCounters out;
  out.heartbeats = heartbeats_.value();
  out.members_joined = members_joined_.value();
  out.members_died = members_died_.value();
  out.rollouts_started = rollouts_started_.value();
  out.rollouts_committed = rollouts_committed_.value();
  out.rollouts_failed = rollouts_failed_.value();
  out.probes_matched = probes_matched_.value();
  out.probes_mismatched = probes_mismatched_.value();
  return out;
}

// --- membership --------------------------------------------------------------

std::vector<proto::NodeInfo> Coordinator::membership_locked() {
  const auto now = std::chrono::steady_clock::now();
  const auto ttl = std::chrono::milliseconds(config_.dead_after_ms);
  std::vector<proto::NodeInfo> out;
  out.reserve(members_.size());
  for (auto& [name, member] : members_) {
    const bool alive = (now - member.last_beat) <= ttl;
    if (member.was_alive && !alive) {
      members_died_.inc();
      log_line("member " + name + " died (no heartbeat)");
    }
    member.was_alive = alive;
    proto::NodeInfo info = member.info;
    info.alive = alive;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<proto::NodeInfo> Coordinator::members() {
  std::lock_guard<std::mutex> lock(members_mu_);
  return membership_locked();
}

bool Coordinator::on_frame(net::ServerConn& conn, net::Frame frame, std::uint64_t) {
  const auto type = frame.type.as<proto::MsgType>();
  if (type == proto::MsgType::kHello || type == proto::MsgType::kHeartbeat) {
    proto::NodeInfo info;
    if (!proto::decode_node_info_body(frame.body, info) || info.name.empty()) {
      net::Frame reply;
      reply.type = net::kErrorType;
      reply.request_id = frame.request_id;
      reply.body = net::encode_text_body("malformed node_info body");
      conn.send(reply);
      conn.close_after_flush();
      return true;
    }
    heartbeats_.inc();
    net::Frame reply;
    reply.type = proto::MsgType::kMembership;
    reply.request_id = frame.request_id;
    {
      std::lock_guard<std::mutex> lock(members_mu_);
      auto [it, inserted] = members_.try_emplace(info.name);
      if (inserted) {
        members_joined_.inc();
        log_line("member " + info.name + " joined (" + info.host + ":" +
                 std::to_string(info.port) + ")");
      } else if (!it->second.was_alive) {
        log_line("member " + info.name + " rejoined");
      }
      it->second.info = std::move(info);
      it->second.info.alive = true;
      it->second.last_beat = std::chrono::steady_clock::now();
      it->second.was_alive = true;
      reply.body = proto::encode_membership_body(membership_locked());
    }
    conn.send(reply);
    return true;
  }
  // In-vocabulary but wrong direction: rollout replies arrive on the
  // coordinator's own client sockets, never here.
  net::Frame reply;
  reply.type = net::kErrorType;
  reply.request_id = frame.request_id;
  reply.body = net::encode_text_body("unexpected message type for the coordinator");
  conn.send(reply);
  conn.close_after_flush();
  return true;
}

// --- rollout watcher ---------------------------------------------------------

void Coordinator::watch_loop() {
  while (watch_running_.load(std::memory_order_acquire)) {
    scan_model_dir();
    std::unique_lock<std::mutex> lock(watch_mu_);
    watch_cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms), [this] {
      return !watch_running_.load(std::memory_order_acquire);
    });
  }
}

void Coordinator::scan_model_dir() {
  std::lock_guard<std::mutex> scan_lock(scan_mu_);
  if (config_.model_dir.empty()) return;
  std::error_code ec;
  std::filesystem::directory_iterator dir(config_.model_dir, ec);
  if (ec) return;
  for (const auto& entry : dir) {
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec) || file_ec) continue;
    const std::string path = entry.path().string();
    const std::string shard = entry.path().stem().string();
    if (shard.empty()) continue;
    const std::string bytes = read_file_bytes(path);
    if (bytes.empty()) continue;  // vanished or mid-write; next poll retries
    const std::uint64_t file_fnv = common::fnv1a64(bytes);
    auto it = watched_.find(path);
    std::uint64_t digest = 0;
    if (it != watched_.end() && it->second.file_fnv == file_fnv) {
      digest = it->second.artifact_digest;  // unchanged file: cached identity
    } else {
      // New or rewritten: establish the artifact identity the fleet will
      // converge on. Non-wifi / unreadable artifacts are remembered with
      // digest 0 so they are not re-parsed every poll.
      const auto kind = serve::artifact_kind(path);
      if (kind && *kind == serve::kWifiKind) {
        if (auto wifi = serve::WifiLocalizer::load(path)) {
          digest = wifi->artifact_digest();
          log_line("artifact " + shard + " digest=" + hex_digest(digest) + " at " +
                   path);
        }
      }
      watched_[path] = WatchedFile{file_fnv, digest};
    }
    if (digest == 0) continue;
    // Roll only when an alive member still serves this shard on different
    // weights — first scans of an already-converged fleet are no-ops, and
    // late joiners with stale artifacts get picked up on later polls.
    bool divergent = false;
    {
      std::lock_guard<std::mutex> lock(members_mu_);
      for (const proto::NodeInfo& member : membership_locked()) {
        if (!member.alive) continue;
        for (const proto::ShardState& state : member.shards) {
          if (state.key == shard && state.digest != digest) divergent = true;
        }
      }
    }
    if (divergent) run_rollout(shard, path, digest);
  }
}

bool Coordinator::run_rollout(const std::string& shard, const std::string& path,
                              std::uint64_t digest) {
  rollouts_started_.inc();
  log_line("rollout " + shard + " digest=" + hex_digest(digest) + " started");

  std::vector<proto::NodeInfo> targets;
  {
    std::lock_guard<std::mutex> lock(members_mu_);
    for (proto::NodeInfo& member : membership_locked()) {
      if (!member.alive) continue;
      for (const proto::ShardState& state : member.shards) {
        if (state.key == shard) {
          targets.push_back(std::move(member));
          break;
        }
      }
    }
  }
  if (targets.empty()) {
    rollouts_failed_.inc();
    log_line("rollout " + shard + " failed: no alive member serves the shard");
    return false;
  }
  // Deterministic canary choice: lowest node name.
  std::sort(targets.begin(), targets.end(),
            [](const proto::NodeInfo& a, const proto::NodeInfo& b) {
              return a.name < b.name;
            });

  std::vector<serve::RssiVector> probes;
  {
    std::lock_guard<std::mutex> lock(probes_mu_);
    auto it = probe_queries_.find(shard);
    if (it != probe_queries_.end()) probes = it->second;
  }
  // The coordinator's own copy of the artifact is the probe reference: the
  // canary's spill answers must be byte-identical to it.
  std::optional<serve::WifiLocalizer> reference;
  if (!probes.empty()) {
    reference = serve::WifiLocalizer::load(path);
    if (!reference || reference->artifact_digest() != digest) {
      rollouts_failed_.inc();
      log_line("rollout " + shard + " failed: reference artifact reload failed");
      return false;
    }
  }

  const int timeout_ms = static_cast<int>(config_.rollout_timeout_ms);
  const auto command = [&](const proto::NodeInfo& node,
                           proto::RolloutStage stage) -> bool {
    std::optional<net::FrameSocket> sock =
        net::FrameSocket::connect(node.host, node.port, proto::message_set());
    if (!sock) {
      log_line(std::string(proto::rollout_stage_name(stage)) + " " + node.name +
               " failed: connect refused");
      return false;
    }
    proto::RolloutCommand cmd;
    cmd.shard = shard;
    cmd.artifact_path = path;
    cmd.digest = digest;
    cmd.stage = stage;
    net::Frame frame;
    frame.type = proto::MsgType::kRolloutCommand;
    frame.request_id = 1;
    frame.body = proto::encode_rollout_command_body(cmd);
    if (!sock->send_frame(frame)) return false;
    std::optional<net::Frame> reply = sock->recv_frame(timeout_ms);
    proto::RolloutReport report;
    if (!reply || reply->type != proto::MsgType::kRolloutStatus ||
        !proto::decode_rollout_report_body(reply->body, report)) {
      log_line(std::string(proto::rollout_stage_name(stage)) + " " + node.name +
               " failed: no rollout status");
      return false;
    }
    if (report.status != static_cast<std::uint32_t>(wire::Status::kOk)) {
      log_line(std::string(proto::rollout_stage_name(stage)) + " " + node.name +
               " refused: " + report.message);
      return false;
    }
    if (stage == proto::RolloutStage::kCanary && reference) {
      std::uint64_t request_id = 2;
      for (const serve::RssiVector& query : probes) {
        net::Frame probe;
        probe.type = proto::MsgType::kSpillSubmit;
        probe.request_id = request_id++;
        probe.cls = engine::RequestClass::kBulk;
        probe.body = proto::encode_spill_submit_body(shard, digest, query);
        if (!sock->send_frame(probe)) return false;
        std::optional<net::Frame> result = sock->recv_frame(timeout_ms);
        if (!result || result->type != proto::MsgType::kSpillResult) {
          log_line("canary " + node.name + " failed: no probe result");
          return false;
        }
        const serve::Fix local = reference->locate(query);
        const std::string expected = wire::encode_fix_body(wire::Status::kOk, &local);
        if (result->body == expected) {
          probes_matched_.inc();
        } else {
          probes_mismatched_.inc();
          log_line("canary " + node.name + " failed: probe fix mismatch");
          return false;
        }
      }
    }
    return true;
  };

  const proto::NodeInfo& canary = targets.front();
  if (!command(canary, proto::RolloutStage::kCanary)) {
    rollouts_failed_.inc();
    log_line("rollout " + shard + " aborted at canary " + canary.name);
    return false;
  }
  log_line("canary " + canary.name + " ok (" + std::to_string(probes.size()) +
           " probes verified)");

  bool all_ok = true;
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (command(targets[i], proto::RolloutStage::kCommit)) {
      log_line("commit " + targets[i].name + " ok");
    } else {
      all_ok = false;
      log_line("commit " + targets[i].name + " failed");
    }
  }
  if (!all_ok) {
    rollouts_failed_.inc();
    return false;  // divergent members remain; the next poll retries
  }
  rollouts_committed_.inc();
  log_line("rollout " + shard + " committed to " + std::to_string(targets.size()) +
           " node(s)");
  return true;
}

}  // namespace noble::cluster
