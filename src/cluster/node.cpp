#include "cluster/node.h"

#include <chrono>
#include <deque>
#include <future>
#include <unordered_map>
#include <utility>

#include "gateway/wire.h"
#include "serve/wifi_localizer.h"

namespace noble::cluster {

namespace wire = gateway::wire;

// --- outbound spill connection -----------------------------------------------

/// One socket to one peer, shared by every spilled scan headed there:
/// senders append frames under send_mu and park a promise under the
/// request id; the reader thread settles promises in whatever order the
/// peer answers. Peer loss fails every outstanding promise (the spilled
/// submissions surface kStopped, which the caller's harness counts as a
/// shed — never a hang).
struct NodeAgent::SpillPeer {
  SpillPeer(net::FrameSocket socket, obs::Counter& completed, obs::Counter& failed)
      : sock(std::move(socket)), completed(completed), failed(failed) {
    reader = std::thread([this] { read_loop(); });
  }

  ~SpillPeer() {
    sock.shutdown_both();  // unparks the reader at EOF
    if (reader.joinable()) reader.join();
  }

  std::future<serve::Fix> enlist(std::uint64_t request_id) {
    std::lock_guard<std::mutex> lock(pending_mu);
    return pending.emplace(request_id, std::promise<serve::Fix>())
        .first->second.get_future();
  }

  void abandon(std::uint64_t request_id) {
    std::lock_guard<std::mutex> lock(pending_mu);
    pending.erase(request_id);
  }

  bool send(const net::Frame& frame) {
    std::lock_guard<std::mutex> lock(send_mu);
    return sock.send_frame(frame);
  }

  void read_loop() {
    for (;;) {
      std::optional<net::Frame> frame = sock.recv_frame(-1);
      if (!frame) break;  // EOF, peer reset, or malformed stream
      if (frame->type != proto::MsgType::kSpillResult) break;  // protocol breach
      wire::Status status = wire::Status::kStopped;
      serve::Fix fix;
      if (!wire::decode_fix_body(frame->body, status, fix)) break;
      std::promise<serve::Fix> waiter;
      {
        std::lock_guard<std::mutex> lock(pending_mu);
        auto it = pending.find(frame->request_id);
        if (it == pending.end()) continue;  // abandoned after a failed send
        waiter = std::move(it->second);
        pending.erase(it);
      }
      if (status == wire::Status::kOk) {
        completed.inc();
        waiter.set_value(fix);
      } else {
        failed.inc();
        waiter.set_exception(wire::rejection_exception(status));
      }
    }
    fail_all();
  }

  void fail_all() {
    std::unordered_map<std::uint64_t, std::promise<serve::Fix>> orphans;
    {
      std::lock_guard<std::mutex> lock(pending_mu);
      orphans.swap(pending);
    }
    for (auto& [id, waiter] : orphans) {
      (void)id;
      failed.inc();
      waiter.set_exception(wire::rejection_exception(wire::Status::kStopped));
    }
  }

  net::FrameSocket sock;
  obs::Counter& completed;
  obs::Counter& failed;
  std::mutex send_mu;
  std::atomic<std::uint64_t> next_request_id{1};
  std::mutex pending_mu;
  std::unordered_map<std::uint64_t, std::promise<serve::Fix>> pending;
  std::thread reader;
};

// --- per-connection server state ---------------------------------------------

namespace {

struct NodeConnState {
  struct Pending {
    std::uint64_t request_id = 0;
    std::future<serve::Fix> result;
  };
  std::deque<Pending> inflight;  ///< admitted spills awaiting their future
};

NodeConnState& state_of(net::ServerConn& conn) {
  if (!conn.user) conn.user = std::make_shared<NodeConnState>();
  return *static_cast<NodeConnState*>(conn.user.get());
}

}  // namespace

// --- lifecycle ---------------------------------------------------------------

NodeAgent::NodeAgent(fleet::Router& router, NodeConfig config)
    : router_(router), config_(std::move(config)), server_(*this, config_.server) {}

NodeAgent::~NodeAgent() { stop(); }

bool NodeAgent::start() {
  if (!server_.start()) return false;
  if (config_.coordinator_port != 0 && !hb_running_.exchange(true)) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
  return true;
}

void NodeAgent::stop() {
  if (hb_running_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(hb_mu_);
    }
    hb_cv_.notify_all();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::map<std::string, std::shared_ptr<SpillPeer>> conns;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    conns.swap(spill_conns_);
  }
  conns.clear();  // joins readers, fails outstanding spills
  // The server stops last and before any member dies: handler callbacks
  // (this object) must never run against a half-destroyed agent.
  server_.stop();
}

// --- routing surface ---------------------------------------------------------

engine::Submission NodeAgent::submit(std::string_view shard_key,
                                     const serve::RssiVector& rssi,
                                     const engine::SubmitOptions& options) {
  engine::Submission local = router_.submit(shard_key, rssi, options);
  // Cross-node spill is a bulk-only escape hatch: interactive latency can't
  // afford the extra hop, and every non-capacity verdict is final.
  if (local.status != engine::SubmitStatus::kQueueFull ||
      options.request_class != engine::RequestClass::kBulk || !config_.spill_enabled) {
    return local;
  }
  std::uint64_t digest = 0;
  bool found = false;
  for (const fleet::ShardArtifact& artifact : router_.shard_artifacts()) {
    if (artifact.shard == shard_key) {
      digest = artifact.digest;
      found = true;
      break;
    }
  }
  if (!found) return local;
  const std::optional<proto::NodeInfo> peer = pick_spill_peer(shard_key, digest);
  if (!peer) return local;
  engine::Submission remote = forward_spill(*peer, shard_key, digest, rssi, options);
  if (remote.accepted()) return remote;
  return local;
}

std::optional<fleet::FleetSession> NodeAgent::open_session(std::string_view shard_key,
                                                           const geo::Point2& start) {
  return router_.open_session(shard_key, start);
}

engine::Submission NodeAgent::track(const fleet::FleetSession& session,
                                    serve::ImuSegment segment,
                                    const engine::SubmitOptions& options) {
  return router_.track(session, std::move(segment), options);
}

bool NodeAgent::close_session(const fleet::FleetSession& session) {
  return router_.close_session(session);
}

bool NodeAgent::has_shard(std::string_view shard_key) const {
  return router_.has_shard(shard_key);
}

fleet::FleetStats NodeAgent::stats() const { return router_.stats(); }

std::vector<fleet::ShardDepths> NodeAgent::queue_depths() const {
  return router_.queue_depths();
}

void NodeAgent::splice_metrics(obs::MetricsSnapshot& out) const {
  const obs::Labels labels{{"node", config_.name}};
  out.counter("noble_cluster_heartbeats_sent_total", heartbeats_sent_.value(), labels);
  out.counter("noble_cluster_membership_updates_total", membership_updates_.value(),
              labels);
  out.counter("noble_cluster_spill_forwarded_total", spill_forwarded_.value(), labels);
  out.counter("noble_cluster_spill_completed_total", spill_completed_.value(), labels);
  out.counter("noble_cluster_spill_failed_total", spill_failed_.value(), labels);
  out.counter("noble_cluster_spill_served_total", spill_served_.value(), labels);
  out.counter("noble_cluster_spill_refused_total", spill_refused_.value(), labels);
  out.counter("noble_cluster_rollouts_applied_total", rollouts_applied_.value(), labels);
  out.counter("noble_cluster_rollouts_refused_total", rollouts_refused_.value(), labels);
  out.counter("noble_cluster_protocol_errors_total", protocol_errors_.value(), labels);
  std::size_t peers_alive = 0;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (const proto::NodeInfo& peer : peers_) {
      if (peer.alive && peer.name != config_.name) ++peers_alive;
    }
  }
  out.gauge_int("noble_cluster_peers_alive", peers_alive, labels);
}

NodeCounters NodeAgent::counters() const {
  NodeCounters out;
  out.heartbeats_sent = heartbeats_sent_.value();
  out.membership_updates = membership_updates_.value();
  out.spill_forwarded = spill_forwarded_.value();
  out.spill_completed = spill_completed_.value();
  out.spill_failed = spill_failed_.value();
  out.spill_served = spill_served_.value();
  out.spill_refused = spill_refused_.value();
  out.rollouts_applied = rollouts_applied_.value();
  out.rollouts_refused = rollouts_refused_.value();
  out.protocol_errors = protocol_errors_.value();
  return out;
}

std::vector<proto::NodeInfo> NodeAgent::peers() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_;
}

proto::NodeInfo NodeAgent::self_info() const {
  proto::NodeInfo info;
  info.name = config_.name;
  info.host = config_.advertise_host;
  info.port = server_.port();
  info.alive = true;
  std::map<std::string, proto::ShardState> shards;
  for (const fleet::ShardArtifact& artifact : router_.shard_artifacts()) {
    proto::ShardState state;
    state.key = artifact.shard;
    state.digest = artifact.digest;
    state.generation = artifact.generation;
    shards.emplace(artifact.shard, std::move(state));
  }
  for (const fleet::ShardDepths& depths : router_.queue_depths()) {
    auto it = shards.find(depths.shard);
    if (it == shards.end()) continue;
    for (std::size_t depth : depths.engines) it->second.total_depth += depth;
    for (std::size_t depth : depths.bulk) it->second.bulk_depth += depth;
  }
  info.shards.reserve(shards.size());
  for (auto& [key, state] : shards) {
    (void)key;
    info.shards.push_back(std::move(state));
  }
  return info;
}

// --- heartbeat ---------------------------------------------------------------

void NodeAgent::heartbeat_loop() {
  std::optional<net::FrameSocket> sock;
  bool said_hello = false;
  std::uint64_t seq = 0;
  while (hb_running_.load(std::memory_order_acquire)) {
    if (!sock || !sock->valid()) {
      sock = net::FrameSocket::connect(config_.coordinator_host,
                                       config_.coordinator_port, proto::message_set());
      said_hello = false;  // a fresh connection re-introduces itself
    }
    if (sock) {
      net::Frame beat;
      beat.type = said_hello ? proto::MsgType::kHeartbeat : proto::MsgType::kHello;
      beat.request_id = ++seq;
      beat.body = proto::encode_node_info_body(self_info());
      if (!sock->send_frame(beat)) {
        sock.reset();
      } else {
        said_hello = true;
        heartbeats_sent_.inc();
        // Bounded wait for the membership echo: a slow coordinator may cost
        // one beat of staleness but never stalls the cadence.
        std::optional<net::Frame> reply =
            sock->recv_frame(static_cast<int>(config_.heartbeat_ms));
        if (reply && reply->type == proto::MsgType::kMembership) {
          std::vector<proto::NodeInfo> members;
          if (proto::decode_membership_body(reply->body, members)) {
            apply_membership(std::move(members));
          }
        } else if (sock && !sock->valid()) {
          sock.reset();  // EOF or protocol breach; reconnect next beat
        }
      }
    }
    std::unique_lock<std::mutex> lock(hb_mu_);
    hb_cv_.wait_for(lock, std::chrono::milliseconds(config_.heartbeat_ms),
                    [this] { return !hb_running_.load(std::memory_order_acquire); });
  }
}

void NodeAgent::apply_membership(std::vector<proto::NodeInfo> members) {
  std::vector<std::shared_ptr<SpillPeer>> dropped;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers_ = std::move(members);
    for (auto it = spill_conns_.begin(); it != spill_conns_.end();) {
      bool keep = false;
      for (const proto::NodeInfo& peer : peers_) {
        if (peer.alive && peer.name == it->first) {
          keep = true;
          break;
        }
      }
      if (keep) {
        ++it;
      } else {
        dropped.push_back(std::move(it->second));
        it = spill_conns_.erase(it);
      }
    }
  }
  // Connection teardown (reader join + promise failure) happens outside the
  // lock so in-flight submits are never blocked behind it.
  dropped.clear();
  membership_updates_.inc();
}

// --- cross-node spill (client side) ------------------------------------------

std::optional<proto::NodeInfo> NodeAgent::pick_spill_peer(std::string_view shard_key,
                                                          std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  const proto::NodeInfo* best = nullptr;
  std::uint64_t best_depth = 0;
  for (const proto::NodeInfo& peer : peers_) {
    if (!peer.alive || peer.name == config_.name) continue;
    for (const proto::ShardState& shard : peer.shards) {
      // Digest equality is the safety condition: a peer on different
      // weights would answer, but not bit-identically.
      if (shard.key != shard_key || shard.digest != digest) continue;
      if (best == nullptr || shard.bulk_depth < best_depth) {
        best = &peer;
        best_depth = shard.bulk_depth;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::shared_ptr<NodeAgent::SpillPeer> NodeAgent::peer_conn(const proto::NodeInfo& peer) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto it = spill_conns_.find(peer.name);
  if (it != spill_conns_.end()) return it->second;
  std::optional<net::FrameSocket> sock =
      net::FrameSocket::connect(peer.host, peer.port, proto::message_set());
  if (!sock) return nullptr;
  auto conn = std::make_shared<SpillPeer>(std::move(*sock), spill_completed_,
                                          spill_failed_);
  spill_conns_.emplace(peer.name, conn);
  return conn;
}

engine::Submission NodeAgent::forward_spill(const proto::NodeInfo& peer,
                                            std::string_view shard_key,
                                            std::uint64_t digest,
                                            const serve::RssiVector& rssi,
                                            const engine::SubmitOptions& options) {
  engine::Submission out;
  out.status = engine::SubmitStatus::kQueueFull;  // "could not forward" verdict
  net::Frame frame;
  frame.type = proto::MsgType::kSpillSubmit;
  frame.cls = engine::RequestClass::kBulk;
  if (options.deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (*options.deadline <= now) {
      out.status = engine::SubmitStatus::kExpired;
      return out;
    }
    frame.deadline_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(*options.deadline - now)
            .count());
  }
  std::shared_ptr<SpillPeer> conn = peer_conn(peer);
  if (!conn) return out;
  frame.request_id = conn->next_request_id.fetch_add(1, std::memory_order_relaxed);
  frame.body = proto::encode_spill_submit_body(shard_key, digest, rssi);
  std::future<serve::Fix> result = conn->enlist(frame.request_id);
  if (!conn->send(frame)) {
    conn->abandon(frame.request_id);
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = spill_conns_.find(peer.name);
    if (it != spill_conns_.end() && it->second == conn) spill_conns_.erase(it);
    return out;
  }
  spill_forwarded_.inc();
  out.status = engine::SubmitStatus::kAccepted;
  out.result = std::move(result);
  return out;
}

// --- inbound frames (server side) --------------------------------------------

bool NodeAgent::on_frame(net::ServerConn& conn, net::Frame frame, std::uint64_t) {
  switch (frame.type.as<proto::MsgType>()) {
    case proto::MsgType::kSpillSubmit:
      serve_spill(conn, frame);
      return true;
    case proto::MsgType::kRolloutCommand:
      serve_rollout(conn, frame);
      return true;
    default:
      break;
  }
  // In-vocabulary but wrong direction (a node never receives kMembership,
  // kHello, ...): same one-error-frame discipline as a malformed body.
  protocol_errors_.inc();
  net::Frame reply;
  reply.type = net::kErrorType;
  reply.request_id = frame.request_id;
  reply.body = net::encode_text_body("unexpected message type for a node");
  conn.send(reply);
  conn.close_after_flush();
  return true;
}

void NodeAgent::serve_spill(net::ServerConn& conn, const net::Frame& frame) {
  std::string shard_key;
  std::uint64_t digest = 0;
  serve::RssiVector rssi;
  if (!proto::decode_spill_submit_body(frame.body, shard_key, digest, rssi)) {
    protocol_errors_.inc();
    net::Frame reply;
    reply.type = net::kErrorType;
    reply.request_id = frame.request_id;
    reply.body = net::encode_text_body("malformed spill_submit body");
    conn.send(reply);
    conn.close_after_flush();
    return;
  }
  const auto answer = [&](wire::Status status) {
    net::Frame reply;
    reply.type = proto::MsgType::kSpillResult;
    reply.request_id = frame.request_id;
    reply.body = wire::encode_fix_body(status, nullptr);
    conn.send(reply);
  };
  std::uint64_t local_digest = 0;
  bool found = false;
  for (const fleet::ShardArtifact& artifact : router_.shard_artifacts()) {
    if (artifact.shard == shard_key) {
      local_digest = artifact.digest;
      found = true;
      break;
    }
  }
  if (!found) {
    spill_refused_.inc();
    answer(wire::Status::kNoShard);
    return;
  }
  if (local_digest != digest) {
    // The bit-identity guard: mid-rollout (or a stale peer table) the
    // requester learns cleanly instead of getting a different model's fix.
    spill_refused_.inc();
    answer(wire::Status::kWrongArtifact);
    return;
  }
  engine::SubmitOptions options;
  options.request_class = frame.cls;
  if (frame.deadline_us > 0) {
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(frame.deadline_us);
  }
  // Strictly local: a spilled request is never spilled again, so the worst
  // case is one hop and an honest kQueueFull, not a forwarding storm.
  engine::Submission sub = router_.submit(shard_key, rssi, options);
  if (!sub.accepted()) {
    answer(wire::from_submit_status(sub.status));
    return;
  }
  state_of(conn).inflight.push_back(
      NodeConnState::Pending{frame.request_id, std::move(sub.result)});
}

void NodeAgent::serve_rollout(net::ServerConn& conn, const net::Frame& frame) {
  proto::RolloutCommand cmd;
  if (!proto::decode_rollout_command_body(frame.body, cmd)) {
    protocol_errors_.inc();
    net::Frame reply;
    reply.type = net::kErrorType;
    reply.request_id = frame.request_id;
    reply.body = net::encode_text_body("malformed rollout_command body");
    conn.send(reply);
    conn.close_after_flush();
    return;
  }
  proto::RolloutReport report;
  report.shard = cmd.shard;
  report.stage = cmd.stage;
  const auto reply_report = [&] {
    net::Frame reply;
    reply.type = proto::MsgType::kRolloutStatus;
    reply.request_id = frame.request_id;
    reply.body = proto::encode_rollout_report_body(report);
    conn.send(reply);
  };
  const auto refuse = [&](wire::Status status, std::string message) {
    rollouts_refused_.inc();
    report.status = static_cast<std::uint32_t>(status);
    report.message = std::move(message);
    for (const fleet::ShardArtifact& artifact : router_.shard_artifacts()) {
      if (artifact.shard == cmd.shard) report.digest = artifact.digest;
    }
    reply_report();
  };
  if (!router_.has_shard(cmd.shard)) {
    refuse(wire::Status::kNoShard, "unknown shard");
    return;
  }
  for (const fleet::ShardArtifact& artifact : router_.shard_artifacts()) {
    if (artifact.shard == cmd.shard && artifact.digest == cmd.digest) {
      // Idempotent: re-commanding the digest a shard already serves must
      // not churn engines (and would invalidate sticky sessions for
      // nothing) — the commit stage sweeps every node, canary included.
      report.status = static_cast<std::uint32_t>(wire::Status::kOk);
      report.digest = cmd.digest;
      report.message = "already serving this artifact";
      reply_report();
      return;
    }
  }
  // Loading + hot_swap runs on the handler thread: rollout traffic is rare
  // and small, and blocking one poll pass is simpler than a swap queue.
  std::optional<serve::WifiLocalizer> wifi = serve::WifiLocalizer::load(cmd.artifact_path);
  if (!wifi) {
    refuse(wire::Status::kStopped, "artifact load failed: " + cmd.artifact_path);
    return;
  }
  if (wifi->artifact_digest() != cmd.digest) {
    refuse(wire::Status::kWrongArtifact, "artifact digest mismatch");
    return;
  }
  if (!router_.hot_swap(cmd.shard, *wifi)) {
    refuse(wire::Status::kNoShard, "hot_swap failed");
    return;
  }
  rollouts_applied_.inc();
  report.status = static_cast<std::uint32_t>(wire::Status::kOk);
  report.digest = cmd.digest;
  report.message = proto::rollout_stage_name(cmd.stage);
  reply_report();
}

bool NodeAgent::on_service(net::ServerConn& conn) {
  if (!conn.user) return false;
  auto& state = *static_cast<NodeConnState*>(conn.user.get());
  for (auto it = state.inflight.begin(); it != state.inflight.end();) {
    if (it->result.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++it;
      continue;
    }
    net::Frame reply;
    reply.type = proto::MsgType::kSpillResult;
    reply.request_id = it->request_id;
    try {
      const serve::Fix fix = it->result.get();
      spill_served_.inc();
      reply.body = wire::encode_fix_body(wire::Status::kOk, &fix);
    } catch (const engine::DeadlineExpired&) {
      reply.body = wire::encode_fix_body(wire::Status::kDeadlineExpired, nullptr);
    } catch (...) {
      reply.body = wire::encode_fix_body(wire::Status::kStopped, nullptr);
    }
    conn.send(reply);
    it = state.inflight.erase(it);
  }
  return !state.inflight.empty();
}

void NodeAgent::on_close(net::ServerConn& conn) {
  // Pending spill futures die with the connection state; the engine still
  // fulfills its promises harmlessly. Nothing sticky to release — IMU
  // sessions never cross nodes.
  (void)conn;
}

}  // namespace noble::cluster
