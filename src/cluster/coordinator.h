// noble::cluster coordinator — the fleet's membership and rollout brain.
//
//   nodes ── kHello / kHeartbeat ──▶ member table ──▶ kMembership replies
//                                        │
//   model_dir ── watcher poll ──▶ changed artifact? ──▶ staged rollout
//                                                        1. canary one node
//                                                        2. probe bit-identity
//                                                        3. commit the rest
//
// Membership is heartbeat-driven and soft-state: a node is alive while its
// last beat is within dead_after_ms, and every hello/heartbeat is answered
// with the full member table (per-node shard digests, generations and queue
// depths) — the peer view nodes route cross-node spill on. Death is a
// verdict the coordinator computes, never a message a node sends.
//
// The rollout watcher closes the loop from a retrained model artifact on
// disk to a converged fleet: it polls model_dir, detects changed wifi
// artifacts by content hash (filename stem = shard key), and — when an
// alive member still serves a different digest — drives a staged rollout
// over the same cluster protocol nodes speak to each other: kRolloutCommand
// to one canary node first, then kSpillSubmit probes against the canary
// whose fixes must be byte-identical to the coordinator's own locally
// loaded copy of the artifact, and only then kRolloutCommand to the rest.
// A probe mismatch aborts before the fleet is touched; the spill digest
// guard keeps the half-rolled state safe in the meantime.
#ifndef NOBLE_CLUSTER_COORDINATOR_H_
#define NOBLE_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/proto.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/fix.h"

namespace noble::cluster {

struct CoordinatorConfig {
  /// The coordinator's FrameServer (hello/heartbeat traffic).
  net::ServerConfig server;
  /// A member whose last heartbeat is older than this is reported dead.
  std::uint64_t dead_after_ms = 1000;
  /// Directory of model artifacts to watch (`<shard>.<ext>` per shard,
  /// wifi artifacts only). Empty = no watcher thread; scan_model_dir()
  /// still works for manual driving.
  std::string model_dir;
  /// Watcher poll cadence.
  std::uint64_t poll_ms = 200;
  /// Per-RPC wait when commanding or probing a node during a rollout
  /// (hot_swap spins up fresh engines, so this is generous).
  std::uint64_t rollout_timeout_ms = 10'000;
};

struct CoordinatorCounters {
  std::uint64_t heartbeats = 0;  ///< hello + heartbeat frames consumed
  std::uint64_t members_joined = 0;
  std::uint64_t members_died = 0;  ///< alive -> dead transitions observed
  std::uint64_t rollouts_started = 0;
  std::uint64_t rollouts_committed = 0;
  std::uint64_t rollouts_failed = 0;
  std::uint64_t probes_matched = 0;
  std::uint64_t probes_mismatched = 0;
};

class Coordinator final : private net::FrameHandler {
 public:
  explicit Coordinator(CoordinatorConfig config = {});
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  bool start();
  void stop();
  bool running() const { return server_.running(); }
  std::uint16_t port() const { return server_.port(); }
  const CoordinatorConfig& config() const { return config_; }

  /// Current member table with liveness verdicts, as a kMembership frame
  /// would carry it. (Non-const: computing liveness records death edges.)
  std::vector<proto::NodeInfo> members();

  /// Queries a canary must answer byte-identically to the coordinator's
  /// local copy of the artifact before a rollout commits. No queries =
  /// canary is trusted on digest alone.
  void set_probe_queries(std::string_view shard, std::vector<serve::RssiVector> queries);

  /// One watcher pass over model_dir (the watcher thread calls this every
  /// poll_ms; tests and demos may drive it directly). Serialized: a second
  /// caller waits for the running pass.
  void scan_model_dir();

  /// Ordered human-readable rollout history ("canary node-a ok",
  /// "committed ...") — what the smoke harness asserts staging order on.
  std::vector<std::string> rollout_log() const;

  CoordinatorCounters counters() const;

 private:
  struct Member {
    proto::NodeInfo info;  ///< as last reported (alive rewritten on read)
    std::chrono::steady_clock::time_point last_beat{};
    bool was_alive = false;  ///< last liveness verdict (death-edge counting)
  };
  /// Change-detection state per artifact file.
  struct WatchedFile {
    std::uint64_t file_fnv = 0;      ///< hash of the raw file bytes
    std::uint64_t artifact_digest = 0;  ///< digest the loaded model reports
  };

  // --- net::FrameHandler -----------------------------------------------------
  const net::MessageSet& message_set() const override { return proto::message_set(); }
  bool on_frame(net::ServerConn& conn, net::Frame frame, std::uint64_t recv_ns) override;

  /// Liveness verdict + death-edge bookkeeping; members_mu_ held.
  std::vector<proto::NodeInfo> membership_locked();
  void watch_loop();
  /// Runs one staged rollout of `path` (digest `digest`) for `shard`.
  /// Returns true when the fleet converged.
  bool run_rollout(const std::string& shard, const std::string& path,
                   std::uint64_t digest);
  void log_line(std::string line);

  CoordinatorConfig config_;
  net::FrameServer server_;

  mutable std::mutex members_mu_;
  std::map<std::string, Member> members_;  ///< by node name

  std::thread watch_thread_;
  std::atomic<bool> watch_running_{false};
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::mutex scan_mu_;  ///< serializes scan_model_dir passes
  std::map<std::string, WatchedFile> watched_;  ///< by file path

  mutable std::mutex probes_mu_;
  std::map<std::string, std::vector<serve::RssiVector>> probe_queries_;

  mutable std::mutex log_mu_;
  std::vector<std::string> log_;

  obs::Counter heartbeats_;
  obs::Counter members_joined_;
  obs::Counter members_died_;
  obs::Counter rollouts_started_;
  obs::Counter rollouts_committed_;
  obs::Counter rollouts_failed_;
  obs::Counter probes_matched_;
  obs::Counter probes_mismatched_;
};

}  // namespace noble::cluster

#endif  // NOBLE_CLUSTER_COORDINATOR_H_
